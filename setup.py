"""Setup shim: environments without the `wheel` package need the legacy
`setup.py develop` editable-install path; all metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
