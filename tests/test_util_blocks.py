"""Unit tests for payload-block helpers."""

import numpy as np
import pytest

from repro.util.blocks import random_blocks, xor_into, xor_reduce, zeros_blocks


class TestXorReduce:
    def test_basic(self, rng):
        a, b, c = (rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(3))
        out = xor_reduce([a, b, c])
        assert np.array_equal(out, a ^ b ^ c)

    def test_single_operand_copies(self, rng):
        a = rng.integers(0, 256, 8, dtype=np.uint8)
        out = xor_reduce([a])
        assert np.array_equal(out, a)
        out[0] ^= 0xFF
        assert not np.array_equal(out, a)  # no aliasing

    def test_out_parameter(self, rng):
        a, b = (rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(2))
        out = np.empty(8, dtype=np.uint8)
        ret = xor_reduce([a, b], out=out)
        assert ret is out
        assert np.array_equal(out, a ^ b)

    def test_out_may_alias_first(self, rng):
        a, b = (rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(2))
        expect = a ^ b
        ret = xor_reduce([a, b], out=a)
        assert ret is a
        assert np.array_equal(a, expect)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            xor_reduce([])

    def test_self_inverse(self, rng):
        a, b = (rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(2))
        assert not xor_reduce([a, b, a, b]).any()


class TestXorInto:
    def test_accumulates_in_place(self, rng):
        a = rng.integers(0, 256, 8, dtype=np.uint8)
        b = rng.integers(0, 256, 8, dtype=np.uint8)
        orig = a.copy()
        ret = xor_into(a, b)
        assert ret is a
        assert np.array_equal(a, orig ^ b)

    def test_multiple_operands(self, rng):
        a, b, c = (rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(3))
        orig = a.copy()
        xor_into(a, b, c)
        assert np.array_equal(a, orig ^ b ^ c)


class TestAllocators:
    def test_zeros_blocks_shape(self):
        z = zeros_blocks(3, 4, block_size=32)
        assert z.shape == (3, 4, 32)
        assert z.dtype == np.uint8
        assert not z.any()

    def test_random_blocks_shape_and_determinism(self):
        a = random_blocks(np.random.default_rng(1), 2, 5, block_size=8)
        b = random_blocks(np.random.default_rng(1), 2, 5, block_size=8)
        assert a.shape == (2, 5, 8)
        assert np.array_equal(a, b)
