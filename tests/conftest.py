"""Shared fixtures for the test suite."""

import numpy as np
import pytest

#: primes used for exhaustive certification (13 keeps runtimes sane)
SMALL_PRIMES = (5, 7, 11, 13)

#: the paper's comparison primes
PAPER_PRIMES = (5, 7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0DE56)


@pytest.fixture(params=PAPER_PRIMES)
def paper_p(request) -> int:
    return request.param
