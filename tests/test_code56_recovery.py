"""Hybrid single-disk recovery (Section III-E.4, Figure 6)."""

import numpy as np
import pytest

from repro.codes import apply_recovery_plan, code56_layout, get_code
from repro.core.recovery import conventional_recovery_reads, plan_hybrid_recovery


class TestFigure6:
    def test_paper_numbers_at_p5(self):
        """9 reads instead of 12 per stripe when a data column fails."""
        lay = code56_layout(5)
        for col in range(4):
            h = plan_hybrid_recovery(lay, col)
            assert h.conventional_reads == 12
            assert h.reads == 9
            assert h.read_savings == pytest.approx(0.25)

    def test_savings_positive_for_larger_primes(self):
        for p in (7, 11):
            lay = code56_layout(p)
            for col in range(p - 1):
                h = plan_hybrid_recovery(lay, col)
                assert h.reads < h.conventional_reads

    def test_mixes_both_chain_families(self):
        lay = code56_layout(5)
        h = plan_hybrid_recovery(lay, 1)
        assert "horizontal" in h.choices
        assert "diagonal" in h.choices


class TestCorrectness:
    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_hybrid_plan_recovers_payload(self, p, rng):
        lay = code56_layout(p)
        code = get_code("code56", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for col in range(p):
            h = plan_hybrid_recovery(lay, col)
            broken = stripe.copy()
            broken[:, col, :] = 0
            apply_recovery_plan(h.plan, broken)
            assert np.array_equal(broken, stripe), (p, col)

    def test_diagonal_column_has_no_choice(self):
        lay = code56_layout(5)
        h = plan_hybrid_recovery(lay, 4)
        assert h.choices == ()
        assert h.reads == h.conventional_reads
        assert h.read_savings == 0.0

    def test_conventional_reads_definition(self):
        # p=5: each of the 4 rows reads its 3 surviving square cells
        lay = code56_layout(5)
        assert conventional_recovery_reads(lay, 0) == 12
        # diagonal column rebuild reads every data cell once
        assert conventional_recovery_reads(lay, 4) == 12

    def test_large_p_heuristic_path(self, rng):
        """p=19 exceeds the exhaustive bound; the local search must still
        produce a correct, no-worse-than-conventional plan."""
        p = 19
        lay = code56_layout(p)
        h = plan_hybrid_recovery(lay, 3)
        assert h.reads <= h.conventional_reads
        code = get_code("code56", p)
        data = rng.integers(0, 256, size=(code.num_data, 4), dtype=np.uint8)
        stripe = code.make_stripe(data)
        broken = stripe.copy()
        broken[:, 3, :] = 0
        apply_recovery_plan(h.plan, broken)
        assert np.array_equal(broken, stripe)

    def test_rejects_other_codes(self):
        from repro.codes import rdp_layout

        with pytest.raises(ValueError):
            plan_hybrid_recovery(rdp_layout(5), 0)

    def test_rejects_out_of_range_column(self):
        with pytest.raises(ValueError):
            plan_hybrid_recovery(code56_layout(5), 7)
