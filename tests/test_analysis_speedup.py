"""Speedup matrices (Tables IV / V)."""

import pytest

from repro.analysis import best_time_for_code, speedup_table


class TestTableIV:
    def test_table_structure(self):
        cells = speedup_table(n_values=(5, 6, 7))
        by_n = {}
        for c in cells:
            by_n.setdefault(c.n, set()).add(c.code)
        # n=5: only X-Code competes (as in the paper's Table IV row)
        assert by_n[5] >= {"xcode"}
        assert "pcode" not in by_n[5] and "hdp" not in by_n[5]
        # n=6: the five paper entries
        assert {"rdp", "evenodd", "hcode", "pcode", "hdp"} <= by_n[6]
        # n=7 includes X-Code again
        assert "xcode" in by_n[7]

    def test_all_speedups_at_least_one_with_lb(self):
        """With load balancing, Code 5-6 is never slower (Table IV)."""
        for cell in speedup_table(load_balanced=True):
            assert cell.speedup >= 1.0 - 1e-9, (cell.n, cell.code, cell.speedup)

    def test_xcode_n5_speedup_close_to_paper(self):
        """The paper's only legible Table IV cell: X-Code at n=5, ~1.27."""
        cells = [c for c in speedup_table(n_values=(5,)) if c.code == "xcode"]
        assert cells
        assert cells[0].speedup == pytest.approx(1.27, abs=0.1)

    def test_speedups_bounded_by_paper_range(self):
        """Prose: Code 5-6 accelerates by up to ~150% (speedup <= ~2.5)
        against best approaches; nothing should be wildly outside."""
        for cell in speedup_table(load_balanced=True):
            assert 0.9 <= cell.speedup <= 3.5

    def test_best_approach_is_recorded(self):
        for cell in speedup_table(n_values=(6,)):
            assert cell.best_approach in ("direct", "via-raid0", "via-raid4")


class TestBestTime:
    def test_picks_cheapest_approach(self):
        approach, t = best_time_for_code("rdp", 5, 6, load_balanced=False)
        # via-raid0 (NULL pass + generate) beats via-raid4's two
        # new-disk-bottlenecked passes under the NLB makespan model
        assert approach == "via-raid0"
        assert t > 0

    def test_custom_time_fn(self):
        approach, t = best_time_for_code(
            "rdp", 5, 6, load_balanced=False, time_fn=lambda plan: float(plan.total_ios)
        )
        assert t > 0

    def test_unbuildable_width_raises(self):
        with pytest.raises(ValueError):
            best_time_for_code("xcode", 5, 6, load_balanced=False)
