"""Byte-addressable volume layer."""

import numpy as np
import pytest

from repro.codes import get_code
from repro.raid import BlockArray, Raid5Array, Raid6Array
from repro.raid.volume import Volume


@pytest.fixture(params=["raid5", "raid6"])
def volume(request, rng):
    if request.param == "raid5":
        arr = BlockArray(4, 12, block_size=64)
        raid = Raid5Array(arr)
    else:
        code = get_code("code56", 5)
        arr = BlockArray(5, 12, block_size=64)
        raid = Raid6Array(arr, code)
    data = rng.integers(0, 256, size=(raid.capacity_blocks, 64), dtype=np.uint8)
    raid.format_with(data)
    return Volume(raid), data.reshape(-1).tobytes()


class TestRead:
    def test_whole_volume(self, volume):
        vol, truth = volume
        assert vol.pread(0, vol.size_bytes) == truth

    def test_unaligned_extent(self, volume):
        vol, truth = volume
        assert vol.pread(37, 301) == truth[37:338]

    def test_single_byte(self, volume):
        vol, truth = volume
        assert vol.pread(130, 1) == truth[130:131]

    def test_empty_read(self, volume):
        vol, _ = volume
        assert vol.pread(10, 0) == b""

    def test_out_of_range(self, volume):
        vol, _ = volume
        with pytest.raises(ValueError):
            vol.pread(vol.size_bytes - 3, 10)
        with pytest.raises(ValueError):
            vol.pread(-1, 4)


class TestWrite:
    def test_aligned_block_write(self, volume, rng):
        vol, truth = volume
        bs = vol.block_size
        payload = bytes(rng.integers(0, 256, bs, dtype=np.uint8))
        touched = vol.pwrite(2 * bs, payload)
        assert touched == 1
        assert vol.pread(2 * bs, bs) == payload

    def test_unaligned_write_preserves_neighbours(self, volume, rng):
        vol, truth = volume
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        vol.pwrite(100, payload)
        expect = truth[:100] + payload + truth[300:]
        assert vol.pread(0, vol.size_bytes) == expect

    def test_parity_stays_consistent(self, volume, rng):
        vol, _ = volume
        vol.pwrite(77, bytes(rng.integers(0, 256, 500, dtype=np.uint8)))
        assert vol.raid.verify()

    def test_empty_write(self, volume):
        vol, truth = volume
        assert vol.pwrite(50, b"") == 0
        assert vol.pread(0, vol.size_bytes) == truth

    def test_fill(self, volume):
        vol, _ = volume
        vol.fill(0xAB)
        assert vol.pread(0, 100) == b"\xab" * 100
        assert vol.raid.verify()

    def test_out_of_range(self, volume):
        vol, _ = volume
        with pytest.raises(ValueError):
            vol.pwrite(vol.size_bytes - 1, b"abc")


class TestDegraded:
    def test_reads_through_a_failed_disk(self, volume):
        vol, truth = volume
        vol.raid.array.fail_disk(1)
        assert vol.pread(0, vol.size_bytes) == truth


class TestProperty:
    def test_random_extents_roundtrip(self, volume, rng):
        vol, truth = volume
        shadow = bytearray(truth)
        for _ in range(30):
            off = int(rng.integers(0, vol.size_bytes - 1))
            length = int(rng.integers(1, min(400, vol.size_bytes - off)))
            payload = bytes(rng.integers(0, 256, length, dtype=np.uint8))
            vol.pwrite(off, payload)
            shadow[off : off + length] = payload
        assert vol.pread(0, vol.size_bytes) == bytes(shadow)
        assert vol.raid.verify()
