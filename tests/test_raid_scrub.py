"""Parity scrubbing and silent-corruption localisation."""

import numpy as np
import pytest

from repro.codes import get_code
from repro.raid import BlockArray, Raid5Array, Raid6Array
from repro.raid.scrub import scrub_raid5, scrub_raid6


@pytest.fixture
def raid5(rng):
    arr = BlockArray(5, 8, block_size=8)
    r5 = Raid5Array(arr)
    r5.format_with(rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8))
    return r5


def make_raid6(rng, name="code56", p=5, groups=4):
    code = get_code(name, p)
    arr = BlockArray(code.n_disks, groups * code.rows, block_size=8)
    r6 = Raid6Array(arr, code)
    data = rng.integers(0, 256, size=(r6.capacity_blocks, 8), dtype=np.uint8)
    r6.format_with(data)
    return r6, data


class TestRaid5Scrub:
    def test_clean_array(self, raid5):
        report = scrub_raid5(raid5)
        assert report.clean
        assert report.stripes_checked == 8

    def test_detects_but_cannot_locate(self, raid5):
        raid5.array.raw(2, 3)[0] ^= 0x40  # silent corruption
        report = scrub_raid5(raid5)
        assert report.inconsistent_stripes == [3]
        # RAID-5 exposes only the stripe, not the block — the motivation
        # for RAID-6's second chain.


class TestRaid6Scrub:
    @pytest.mark.parametrize("name", ["code56", "rdp", "xcode", "hdp"])
    def test_clean_array(self, name, rng):
        r6, _ = make_raid6(rng, name)
        report = scrub_raid6(r6)
        assert report.clean

    @pytest.mark.parametrize("name", ["code56", "rdp", "evenodd", "hcode", "xcode", "hdp"])
    def test_locates_and_repairs_single_corruption(self, name, rng):
        r6, data = make_raid6(rng, name)
        # corrupt one random DATA cell of group 1
        cell = r6.code.layout.data_cells[3]
        disk = r6.disk_of(1, cell[1])
        r6.array.raw(disk, r6.block_of(1, cell[0]))[0] ^= 0xA5
        report = scrub_raid6(r6)
        assert report.located == [(1, cell)]
        assert report.repaired == [(1, cell)]
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_locates_corrupt_parity(self, rng):
        r6, _ = make_raid6(rng)
        pcell = next(iter(r6.code.layout.parity_cells))
        disk = r6.disk_of(0, pcell[1])
        r6.array.raw(disk, r6.block_of(0, pcell[0]))[0] ^= 1
        report = scrub_raid6(r6)
        assert report.located == [(0, pcell)]
        assert r6.verify()

    def test_repair_flag_off(self, rng):
        r6, _ = make_raid6(rng)
        cell = r6.code.layout.data_cells[0]
        disk = r6.disk_of(0, cell[1])
        r6.array.raw(disk, r6.block_of(0, cell[0]))[0] ^= 1
        report = scrub_raid6(r6, repair=False)
        assert report.located and not report.repaired
        assert not r6.verify()  # untouched

    def test_double_corruption_is_unlocatable(self, rng):
        r6, _ = make_raid6(rng)
        c1, c2 = r6.code.layout.data_cells[0], r6.code.layout.data_cells[7]
        for cell in (c1, c2):
            disk = r6.disk_of(2, cell[1])
            r6.array.raw(disk, r6.block_of(2, cell[0]))[0] ^= 0x11
        report = scrub_raid6(r6)
        assert 2 in report.inconsistent_groups
        assert 2 in report.unlocatable_groups
        assert not report.repaired

    def test_independent_groups_handled_separately(self, rng):
        r6, data = make_raid6(rng, groups=5)
        for g in (0, 4):
            cell = r6.code.layout.data_cells[g]
            disk = r6.disk_of(g, cell[1])
            r6.array.raw(disk, r6.block_of(g, cell[0]))[0] ^= 0xF0
        report = scrub_raid6(r6)
        assert sorted(g for g, _ in report.repaired) == [0, 4]
        assert r6.verify()


class TestScrubAfterMigration:
    """Scrubbing the *product* of a RAID-5 -> Code 5-6 conversion.

    The paper's endgame: the migrated array must be a first-class
    RAID-6 — scrub-clean straight out of the converter, and able to
    locate/repair silent corruption that RAID-5 could only detect.
    """

    def _converted(self, rng, groups=4):
        from repro.codes import get_code
        from repro.migration import build_plan, execute_plan, prepare_source_array

        plan = build_plan("code56", "direct", 5, groups=groups)
        array, data = prepare_source_array(plan, rng)
        execute_plan(plan, array, data)
        return Raid6Array(array, get_code("code56", 5)), data

    def test_fresh_conversion_is_scrub_clean(self, rng):
        r6, data = self._converted(rng)
        report = scrub_raid6(r6)
        assert report.clean
        assert report.groups_checked == 4
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_post_conversion_corruption_is_healed(self, rng):
        r6, data = self._converted(rng)
        cell = r6.code.layout.data_cells[5]
        disk = r6.disk_of(2, cell[1])
        r6.array.raw(disk, r6.block_of(2, cell[0]))[0] ^= 0x3C
        report = scrub_raid6(r6)
        assert report.located == [(2, cell)]
        assert report.repaired == [(2, cell)]
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_corrupt_migrated_horizontal_parity_located(self, rng):
        """The horizontal parities were *inherited* from the RAID-5, not
        rewritten — corruption there must still be locatable."""
        from repro.codes.geometry import ChainKind

        r6, _ = self._converted(rng)
        # Code 5-6 horizontal parities rotate with the RAID-5 layout, so
        # select by chain kind rather than by column
        pcell = next(
            ch.parity
            for ch in r6.code.layout.chains
            if ch.kind is ChainKind.HORIZONTAL
        )
        disk = r6.disk_of(1, pcell[1])
        r6.array.raw(disk, r6.block_of(1, pcell[0]))[0] ^= 0x80
        report = scrub_raid6(r6)
        assert report.located == [(1, pcell)]
        assert r6.verify()
