"""Raid6Array: code-generic volumes, rotation (LB), degraded I/O, rebuild."""

import numpy as np
import pytest

from repro.codes import get_code
from repro.raid import BlockArray, Raid6Array


def make(code_name="code56", p=5, groups=4, rotation=None, rng=None, bs=8):
    code = get_code(code_name, p)
    arr = BlockArray(code.n_disks, groups * code.rows, block_size=bs)
    r6 = Raid6Array(arr, code, rotation_period=rotation)
    data = rng.integers(0, 256, size=(r6.capacity_blocks, bs), dtype=np.uint8)
    r6.format_with(data)
    return r6, data


class TestMapping:
    def test_capacity(self, rng):
        r6, _ = make(rng=rng)
        assert r6.capacity_blocks == 4 * 12

    def test_locate_roundtrip(self, rng):
        r6, _ = make(rng=rng)
        seen = set()
        for lba in range(r6.capacity_blocks):
            g, cell = r6.locate(lba)
            seen.add((g, cell))
        assert len(seen) == r6.capacity_blocks

    def test_rotation_moves_columns(self, rng):
        r6, _ = make(rotation=1, rng=rng)
        assert r6.disk_of(0, 0) == 0
        assert r6.disk_of(1, 0) == 1  # rotated by one each group

    def test_nlb_is_identity(self, rng):
        r6, _ = make(rng=rng)
        for g in range(r6.groups):
            for c in range(5):
                assert r6.disk_of(g, c) == c

    def test_virtual_column_has_no_disk(self, rng):
        code = get_code("evenodd", 5, virtual_cols=(4,))
        arr = BlockArray(code.n_disks, 8, block_size=8)
        r6 = Raid6Array(arr, code)
        with pytest.raises(ValueError):
            r6.disk_of(0, 4)

    def test_bad_rotation_period(self, rng):
        code = get_code("code56", 5)
        arr = BlockArray(5, 8, 8)
        with pytest.raises(ValueError):
            Raid6Array(arr, code, rotation_period=0)

    def test_array_too_narrow(self):
        code = get_code("rdp", 5)
        with pytest.raises(ValueError):
            Raid6Array(BlockArray(4, 8, 8), code)


@pytest.mark.parametrize("rotation", [None, 2])
@pytest.mark.parametrize("code_name", ["code56", "rdp", "xcode", "hdp"])
class TestIO:
    def test_read_write_verify(self, code_name, rotation, rng):
        r6, data = make(code_name, rotation=rotation, rng=rng)
        assert r6.verify()
        for lba in range(0, r6.capacity_blocks, 5):
            assert np.array_equal(r6.read(lba), data[lba])
        nb = rng.integers(0, 256, 8, dtype=np.uint8)
        r6.write(3, nb)
        data[3] = nb
        assert r6.verify()
        assert np.array_equal(r6.read(3), data[3])

    def test_degraded_read_two_failures(self, code_name, rotation, rng):
        r6, data = make(code_name, rotation=rotation, rng=rng)
        cols = r6.code.layout.physical_cols
        r6.array.fail_disk(cols[0])
        r6.array.fail_disk(cols[2])
        for lba in range(0, r6.capacity_blocks, 7):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_rebuild(self, code_name, rotation, rng):
        r6, data = make(code_name, rotation=rotation, rng=rng)
        before = r6.array.snapshot()
        cols = r6.code.layout.physical_cols
        r6.array.fail_disk(cols[1])
        r6.array.fail_disk(cols[3])
        r6.rebuild_disks(cols[1], cols[3])
        assert np.array_equal(r6.array.snapshot(), before)
        assert r6.verify()


class TestWriteSemantics:
    def test_small_write_io_count_optimal_codes(self, rng):
        """Optimal-update codes: 2 data I/Os + 2x2 parity I/Os = 6."""
        r6, _ = make("code56", rng=rng)
        r6.array.reset_counters()
        ios = r6.write(0, rng.integers(0, 256, 8, dtype=np.uint8))
        assert ios == 6

    def test_small_write_io_count_hdp(self, rng):
        """HDP's penalty-3 update -> 8 I/Os."""
        r6, _ = make("hdp", rng=rng)
        r6.array.reset_counters()
        ios = r6.write(0, rng.integers(0, 256, 8, dtype=np.uint8))
        assert ios == 8

    def test_corruption_detected(self, rng):
        r6, _ = make(rng=rng)
        loc_disk = r6.disk_of(0, 0)
        r6.array.raw(loc_disk, 0)[0] ^= 1
        assert not r6.verify()
