"""AST happens-before race detector over the process-crossing modules."""

import textwrap

from repro.staticcheck.concur.races import analyze_source, run_races


def scan(source, rel="sweep/probe.py"):
    return analyze_source(textwrap.dedent(source), rel)


def rules(source, rel="sweep/probe.py"):
    return [f.rule for f in scan(source, rel)]


class TestWorkerGlobalWrites:
    def test_flags_worker_write_to_module_global(self):
        src = """
            _CACHE: dict = {}

            def worker(x):
                _CACHE[x] = x * 2

            def go(executor, xs):
                for x in xs:
                    executor.submit(worker, x)
        """
        assert set(rules(src)) == {"SC-R001"}

    def test_flags_global_statement_rebind(self):
        src = """
            _COUNT = {}

            def worker(x):
                global _COUNT
                _COUNT = {}

            def go(executor, x):
                executor.submit(worker, x)
        """
        assert "SC-R001" in rules(src)

    def test_initializer_established_read_allowed(self):
        """The sweep runner's idiom: the pool initializer populates the
        global, workers only read it — ordered by pool start."""
        src = """
            _STATE: dict = {}

            def _init(handle):
                _STATE["handle"] = handle

            def worker(task):
                return _STATE["handle"], task

            def go(handle, tasks):
                from concurrent.futures import ProcessPoolExecutor
                with ProcessPoolExecutor(2, initializer=_init,
                                         initargs=(handle,)) as pool:
                    return list(pool.map(worker, tasks))
        """
        assert rules(src) == []

    def test_non_worker_write_allowed(self):
        src = """
            _CACHE: dict = {}

            def build():
                _CACHE["k"] = 1
        """
        assert rules(src) == []

    def test_transitive_worker_context(self):
        """A helper called from a worker inherits the worker context."""
        src = """
            _CACHE: dict = {}

            def helper(x):
                _CACHE[x] = x

            def worker(x):
                helper(x)

            def go(executor, x):
                executor.submit(worker, x)
        """
        assert "SC-R001" in rules(src)


class TestFilePublishes:
    def test_flags_shared_path_write(self):
        src = """
            def worker(path, payload):
                with open(path, "w") as fh:
                    fh.write(payload)

            def go(executor):
                executor.submit(worker, "cache.json", "{}")
        """
        assert "SC-R002" in rules(src)

    def test_atomic_rename_publish_allowed(self):
        """The compiled-program cache idiom: pid-private temp, then
        os.replace — atomic on POSIX, no torn reads."""
        src = """
            import os

            def worker(path, payload):
                tmp = f"{path}.{os.getpid()}.tmp"
                with open(tmp, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, path)

            def go(executor):
                executor.submit(worker, "cache.json", "{}")
        """
        assert rules(src) == []

    def test_write_text_flagged(self):
        src = """
            def worker(path, payload):
                path.write_text(payload)

            def go(executor, path):
                executor.submit(worker, path, "{}")
        """
        assert "SC-R002" in rules(src)


class TestShmStores:
    def test_flags_worker_store_into_attached_segment(self):
        src = """
            from repro.sweep.shm import SharedNDArray

            def worker(handle):
                segment = SharedNDArray.attach(handle)
                segment.ndarray[0] = 99

            def go(executor, handle):
                executor.submit(worker, handle)
        """
        assert "SC-R003" in rules(src)

    def test_alias_propagates_taint(self):
        src = """
            from repro.sweep.shm import SharedNDArray

            def worker(handle):
                segment = SharedNDArray.attach(handle)
                view = segment.ndarray
                view[3] = 1

            def go(executor, handle):
                executor.submit(worker, handle)
        """
        assert "SC-R003" in rules(src)

    def test_read_only_attach_allowed(self):
        src = """
            from repro.sweep.shm import SharedNDArray

            def worker(handle):
                segment = SharedNDArray.attach(handle)
                return segment.ndarray.sum()

            def go(executor, handle):
                executor.submit(worker, handle)
        """
        assert rules(src) == []

    def test_storing_taint_into_container_is_not_a_buffer_write(self):
        """The sweep runner stores the attached segment into its worker-
        state dict inside the *initializer* — that subscript store is a
        plain dict insert, not a write into the shared buffer."""
        src = """
            from repro.sweep.shm import SharedNDArray

            _STATE: dict = {}

            def _init(handle):
                segment = SharedNDArray.attach(handle)
                _STATE["segment"] = segment
                _STATE["pool"] = segment.ndarray

            def go(handle):
                from concurrent.futures import ProcessPoolExecutor
                return ProcessPoolExecutor(2, initializer=_init,
                                           initargs=(handle,))
        """
        assert rules(src) == []


class TestSingletonMutators:
    def test_flags_worker_registry_swap(self):
        src = """
            def worker(task):
                from repro.obs import set_registry
                set_registry(None)

            def go(executor, task):
                executor.submit(worker, task)
        """
        assert rules(src) == ["SC-R004"]

    def test_initializer_singleton_setup_allowed(self):
        src = """
            def _init(cache_dir):
                from repro.compiled import set_program_cache_dir
                set_program_cache_dir(cache_dir)

            def go(cache_dir):
                from concurrent.futures import ProcessPoolExecutor
                return ProcessPoolExecutor(2, initializer=_init,
                                           initargs=(cache_dir,))
        """
        assert rules(src) == []


class TestRepoIsClean:
    def test_run_races_over_scope(self):
        checks, findings = run_races()
        assert checks > 0
        assert findings == []
