"""AST lint rules: private buffers, hot-path loops, deprecated imports."""

import textwrap

from repro.staticcheck.lint import lint_source, run_lint


def lint(source, rel="some/module.py"):
    return lint_source(textwrap.dedent(source), rel)


class TestPrivateBufferRule:
    def test_flags_store_access(self):
        findings = lint("x = array._store[0]")
        assert [f.rule for f in findings] == ["SC-L001"]

    def test_flags_failed_access(self):
        findings = lint("if 3 in self.array._failed: pass")
        assert [f.rule for f in findings] == ["SC-L001"]

    def test_allows_inside_array_module(self):
        assert lint("self._store[disk] = 0", rel="raid/array.py") == []

    def test_similar_names_not_flagged(self):
        # raid6.py's _store_stripe helper must not trip the exact-attr rule
        assert lint("self._store_stripe(g, stripe)") == []

    def test_location_has_line_number(self):
        findings = lint("\n\nx = a._store")
        assert findings[0].location == "some/module.py:3"


class TestHotPathRule:
    HOT = "compiled/executor.py"

    def test_flags_per_block_loop(self):
        findings = lint(
            """
            for b in range(n):
                array.write(d, b, payload)
            """,
            rel=self.HOT,
        )
        assert [f.rule for f in findings] == ["SC-L002"]

    def test_read_and_write_zero_also_flagged(self):
        for call in ("array.read(d, b)", "array.write_zero(d, b)"):
            findings = lint(
                f"for b in range(n):\n    {call}\n", rel=self.HOT
            )
            assert [f.rule for f in findings] == ["SC-L002"], call

    def test_bulk_calls_allowed(self):
        findings = lint(
            """
            for ph in range(phases):
                array.read_blocks(disks, blocks)
            """,
            rel=self.HOT,
        )
        assert findings == []

    def test_non_hot_module_allowed(self):
        findings = lint(
            """
            for b in range(n):
                array.write(d, b, payload)
            """,
            rel="migration/engine.py",
        )
        assert findings == []

    def test_non_range_loop_allowed(self):
        findings = lint(
            """
            for cell, loc in gw.reads.items():
                array.read(loc.disk, loc.block)
            """,
            rel=self.HOT,
        )
        assert findings == []


class TestDeprecatedImportRule:
    def test_flags_from_import(self):
        findings = lint("from repro.migration.fast import fast_convert_code56")
        assert [f.rule for f in findings] == ["SC-L003"]

    def test_flags_module_import(self):
        findings = lint("import repro.migration.fast")
        assert [f.rule for f in findings] == ["SC-L003"]

    def test_flags_from_package_import(self):
        findings = lint("from repro.migration import fast")
        assert [f.rule for f in findings] == ["SC-L003"]

    def test_no_allowance_anywhere(self):
        """The shim is deleted — even the old allowance set members
        (the package __init__ and the shim itself) are flagged now."""
        for rel in ("migration/__init__.py", "migration/fast.py"):
            findings = lint("from repro.migration import fast", rel=rel)
            assert [f.rule for f in findings] == ["SC-L003"], rel

    def test_batch_module_is_hot_path(self):
        from repro.staticcheck.lint import HOT_PATH_MODULES

        assert "migration/batch.py" in HOT_PATH_MODULES
        assert "migration/fast.py" not in HOT_PATH_MODULES
        findings = lint(
            """
            for b in range(n):
                array.write(d, b, payload)
            """,
            rel="migration/batch.py",
        )
        assert [f.rule for f in findings] == ["SC-L002"]

    def test_other_migration_imports_allowed(self):
        assert lint("from repro.migration import build_plan") == []


class TestMultiprocessingBoundaryRule:
    def test_flags_import_multiprocessing(self):
        findings = lint("import multiprocessing")
        assert [f.rule for f in findings] == ["SC-L004"]

    def test_flags_submodule_import(self):
        findings = lint("import multiprocessing.shared_memory")
        assert [f.rule for f in findings] == ["SC-L004"]

    def test_flags_from_import(self):
        findings = lint("from multiprocessing import shared_memory")
        assert [f.rule for f in findings] == ["SC-L004"]

    def test_flags_concurrent_futures(self):
        for src in (
            "import concurrent.futures",
            "from concurrent.futures import ProcessPoolExecutor",
            "from concurrent import futures",
        ):
            findings = lint(src)
            assert [f.rule for f in findings] == ["SC-L004"], src

    def test_allowed_inside_sweep_package(self):
        for rel in ("sweep/runner.py", "sweep/shm.py", "sweep/spec.py"):
            assert lint("import multiprocessing", rel=rel) == []
            assert lint("from concurrent.futures import wait", rel=rel) == []

    def test_unrelated_imports_not_flagged(self):
        assert lint("import threading") == []
        assert lint("from concurrent import nonsense") == []

    def test_message_points_at_the_sweep_runner(self):
        findings = lint("import multiprocessing")
        assert "repro.sweep" in findings[0].message


class TestKernelXorRule:
    def test_flags_xor_on_bulk_view_result(self):
        findings = lint(
            """
            def f(array):
                region = array.bulk_view(a, b)
                np.bitwise_xor(acc, region[0], out=acc)
            """
        )
        assert [f.rule for f in findings] == ["SC-L005"]

    def test_flags_xor_on_gather_raw_result(self):
        findings = lint(
            """
            def f(array):
                payload = array.gather_raw(disks, blocks)
                np.bitwise_xor(payload, other, out=payload)
            """
        )
        assert [f.rule for f in findings] == ["SC-L005"]

    def test_taint_propagates_through_views(self):
        findings = lint(
            """
            def f(array):
                region = array.bulk_view(a, b).reshape(m, g, r, bs)
                acc = region[0]
                np.bitwise_xor(acc, x, out=acc)
            """
        )
        assert [f.rule for f in findings] == ["SC-L005"]

    def test_flags_inline_accessor_argument(self):
        findings = lint("np.bitwise_xor(acc, array.bulk_view(a, b), out=acc)")
        assert [f.rule for f in findings] == ["SC-L005"]

    def test_flags_xor_helpers_too(self):
        findings = lint(
            """
            def f(array):
                store = array.bulk_view(a, b)
                xor_into(store[0], views)
            """
        )
        assert [f.rule for f in findings] == ["SC-L005"]

    def test_allowed_inside_kernels_package(self):
        findings = lint(
            """
            def f(array):
                store = array.bulk_view(a, b)
                np.bitwise_xor(store[0], x, out=store[0])
            """,
            rel="kernels/numpy_backend.py",
        )
        assert findings == []

    def test_untainted_xor_allowed(self):
        findings = lint(
            """
            def f(stripe):
                np.bitwise_xor(out, stripe[r, c], out=out)
            """
        )
        assert findings == []

    def test_taint_is_function_local(self):
        findings = lint(
            """
            def g(array):
                region = array.bulk_view(a, b)

            def h(region):
                np.bitwise_xor(acc, region, out=acc)
            """
        )
        assert findings == []

    def test_kernel_seam_call_allowed(self):
        findings = lint(
            """
            def f(array, kernel):
                region = array.bulk_view(a, b)
                kernel.region_xor_reduce(dst, [region[0]], init=True)
            """
        )
        assert findings == []


class TestNondeterminismRule:
    DET = "core/conversion.py"

    def rules(self, source, rel=DET):
        return [f.rule for f in lint(source, rel=rel)]

    def test_flags_wall_clock(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert self.rules(src) == ["SC-L006"]

    def test_flags_time_ns_via_alias(self):
        src = """
            import time as clock

            def stamp():
                return clock.time_ns()
        """
        assert self.rules(src) == ["SC-L006"]

    def test_monotonic_deadline_allowed(self):
        src = """
            import time

            def wait(budget):
                return time.monotonic() + budget
        """
        assert self.rules(src) == []

    def test_flags_stdlib_random(self):
        src = """
            import random

            def pick(xs):
                return random.choice(xs)
        """
        assert self.rules(src) == ["SC-L006"]

    def test_flags_random_from_import(self):
        assert self.rules("from random import Random") == ["SC-L006"]

    def test_flags_os_urandom(self):
        src = """
            import os

            def salt():
                return os.urandom(8)
        """
        assert self.rules(src, rel="compiled/compiler.py") == ["SC-L006"]

    def test_flags_legacy_np_random(self):
        src = """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """
        assert self.rules(src) == ["SC-L006"]

    def test_flags_unseeded_default_rng(self):
        src = """
            import numpy as np

            def rng():
                return np.random.default_rng()
        """
        assert self.rules(src) == ["SC-L006"]

    def test_seeded_default_rng_allowed(self):
        src = """
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
        """
        assert self.rules(src) == []

    def test_unseeded_from_imported_ctor_flagged(self):
        src = """
            from numpy.random import default_rng

            def rng():
                return default_rng()
        """
        assert self.rules(src, rel="faults/plane.py") == ["SC-L006"]

    def test_generator_annotation_allowed(self):
        src = """
            import numpy as np

            def soak(rng: np.random.Generator):
                return rng.random()
        """
        assert self.rules(src, rel="faults/chaos.py") == []

    def test_outside_deterministic_packages_not_flagged(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert self.rules(src, rel="obs/tracer.py") == []


class TestRepoIsClean:
    def test_run_lint_over_src(self):
        checks, findings = run_lint()
        assert checks > 0
        assert findings == []
