"""Disk-array simulation engines and schedulers."""

import numpy as np
import pytest

from repro.simdisk import DiskArraySimulator, get_preset, make_scheduler, simulate_closed
from repro.simdisk.scheduler import FcfsQueue, LookQueue, SstfQueue
from repro.workloads import Trace, uniform_trace


@pytest.fixture
def model():
    return get_preset("sata-7200")


def closed_trace(rng, n=200, disks=4):
    return Trace(
        arrival_ms=np.zeros(n),
        disk=rng.integers(0, disks, n).astype(np.int32),
        block=rng.integers(0, 500_000, n),
        is_write=rng.random(n) > 0.5,
        block_size=4096,
    )


class TestClosedLoop:
    def test_event_engine_agrees(self, model, rng):
        trace = closed_trace(rng)
        a = simulate_closed(trace, model)
        b = DiskArraySimulator(model, 4, scheduler="fcfs").run(trace)
        assert a.makespan_ms == pytest.approx(b.makespan_ms)
        assert np.allclose(a.per_disk_busy_ms, b.per_disk_busy_ms)

    def test_makespan_is_busiest_disk(self, model, rng):
        trace = closed_trace(rng)
        res = simulate_closed(trace, model)
        assert res.makespan_ms == pytest.approx(res.per_disk_busy_ms.max())

    def test_empty_trace(self, model):
        trace = Trace(
            arrival_ms=np.zeros(0),
            disk=np.zeros(0, dtype=np.int32),
            block=np.zeros(0, dtype=np.int64),
            is_write=np.zeros(0, dtype=bool),
        )
        res = simulate_closed(trace, model, n_disks=4)
        assert res.makespan_ms == 0.0

    def test_sequential_much_faster_than_random(self, model):
        n = 1000
        seq = Trace(
            arrival_ms=np.zeros(n),
            disk=np.zeros(n, dtype=np.int32),
            block=np.arange(n),
            is_write=np.zeros(n, dtype=bool),
            block_size=4096,
        )
        rng = np.random.default_rng(3)
        rand = Trace(
            arrival_ms=np.zeros(n),
            disk=np.zeros(n, dtype=np.int32),
            block=rng.integers(0, 10_000_000, n),
            is_write=np.zeros(n, dtype=bool),
            block_size=4096,
        )
        t_seq = simulate_closed(seq, model).makespan_ms
        t_rand = simulate_closed(rand, model).makespan_ms
        assert t_rand > 10 * t_seq


class TestEventDriven:
    def test_open_arrivals_respect_time(self, model, rng):
        trace = uniform_trace(rng, 50, 3, 100_000, interarrival_ms=100.0)
        res = DiskArraySimulator(model, 3).run(trace)
        # with sparse arrivals the makespan is arrival-dominated
        assert res.makespan_ms >= float(trace.arrival_ms.max())

    def test_sstf_beats_fcfs_on_random_queue(self, model, rng):
        trace = closed_trace(rng, n=400, disks=2)
        fcfs = DiskArraySimulator(model, 2, scheduler="fcfs").run(trace)
        sstf = DiskArraySimulator(model, 2, scheduler="sstf").run(trace)
        assert sstf.makespan_ms < fcfs.makespan_ms

    def test_look_beats_fcfs_on_random_queue(self, model, rng):
        trace = closed_trace(rng, n=400, disks=2)
        fcfs = DiskArraySimulator(model, 2, scheduler="fcfs").run(trace)
        look = DiskArraySimulator(model, 2, scheduler="look").run(trace)
        assert look.makespan_ms < fcfs.makespan_ms

    def test_heterogeneous_models(self, rng):
        trace = closed_trace(rng, n=100, disks=2)
        fast, slow = get_preset("sas-15k"), get_preset("sata-7200")
        res = DiskArraySimulator(slow, 2, models=[fast, slow]).run(trace)
        assert res.n_requests == 100

    def test_model_list_length_checked(self, model):
        with pytest.raises(ValueError):
            DiskArraySimulator(model, 3, models=[model])

    def test_latency_stats_present(self, model, rng):
        trace = closed_trace(rng, n=100, disks=4)
        res = DiskArraySimulator(model, 4).run(trace)
        assert res.mean_latency_ms > 0
        assert res.p99_latency_ms >= res.mean_latency_ms
        assert res.makespan_s == pytest.approx(res.makespan_ms / 1e3)


class TestSchedulerQueues:
    def test_factory(self):
        assert isinstance(make_scheduler("fcfs"), FcfsQueue)
        assert isinstance(make_scheduler("sstf"), SstfQueue)
        assert isinstance(make_scheduler("look"), LookQueue)
        with pytest.raises(KeyError):
            make_scheduler("cfq")

    class _Req:
        def __init__(self, block):
            self.block = block

    def test_fcfs_order(self):
        q = FcfsQueue()
        for b in (5, 1, 9):
            q.push(self._Req(b))
        assert [q.pop(0).block for _ in range(3)] == [5, 1, 9]

    def test_sstf_picks_nearest(self):
        q = SstfQueue()
        for b in (100, 5, 60):
            q.push(self._Req(b))
        assert q.pop(50).block == 60
        assert q.pop(60).block == 100

    def test_look_sweeps(self):
        q = LookQueue()
        for b in (10, 90, 50):
            q.push(self._Req(b))
        # head at 40 moving up: 50, 90, then reverse to 10
        assert q.pop(40).block == 50
        assert q.pop(50).block == 90
        assert q.pop(90).block == 10


class TestReorderWindow:
    def test_reordering_never_hurts_much_and_often_helps(self, model, rng):
        trace = closed_trace(rng, n=600, disks=3)
        plain = simulate_closed(trace, model)
        sorted64 = simulate_closed(trace, model, reorder_window=64)
        assert sorted64.makespan_ms <= plain.makespan_ms

    def test_window_one_is_identity(self, model, rng):
        trace = closed_trace(rng, n=200, disks=3)
        a = simulate_closed(trace, model)
        b = simulate_closed(trace, model, reorder_window=1)
        assert a.makespan_ms == pytest.approx(b.makespan_ms)

    def test_invalid_window(self, model, rng):
        trace = closed_trace(rng, n=10, disks=2)
        with pytest.raises(ValueError):
            simulate_closed(trace, model, reorder_window=0)

    def test_huge_window_is_full_sort(self, model, rng):
        trace = closed_trace(rng, n=200, disks=1)
        res = simulate_closed(trace, model, reorder_window=10_000)
        blocks = np.sort(trace.per_disk_blocks(0))
        expect = model.service_ms_vector(blocks, trace.block_size).sum()
        assert res.makespan_ms == pytest.approx(expect)

    def test_matches_per_window_reference(self, model, rng):
        """The single-lexsort pass equals the explicit per-window sort."""
        trace = closed_trace(rng, n=500, disks=4)
        for window in (2, 7, 64):
            res = simulate_closed(trace, model, reorder_window=window)
            busy = np.zeros(4)
            lats = []
            for d in range(4):
                blocks = trace.per_disk_blocks(d).copy()
                for s in range(0, blocks.size, window):
                    blocks[s : s + window].sort()
                comp = np.cumsum(model.service_ms_vector(blocks, trace.block_size))
                busy[d] = comp[-1]
                lats.append(comp)
            assert np.allclose(res.per_disk_busy_ms, busy)
            lat = np.concatenate(lats)
            assert res.mean_latency_ms == pytest.approx(lat.mean())
            assert res.p99_latency_ms == pytest.approx(np.percentile(lat, 99))


class TestVectorisedClosedLoop:
    def test_staggered_arrivals_keep_stable_order(self, model, rng):
        """Ties in arrival_ms must replay in trace order (stable sort)."""
        n = 300
        trace = Trace(
            arrival_ms=rng.integers(0, 5, n).astype(np.float64),
            disk=rng.integers(0, 3, n).astype(np.int32),
            block=rng.integers(0, 500_000, n),
            is_write=np.zeros(n, dtype=bool),
            block_size=4096,
        )
        res = simulate_closed(trace, model)
        busy = np.zeros(3)
        for d in range(3):
            blocks = trace.per_disk_blocks(d)
            busy[d] = model.service_ms_vector(blocks, trace.block_size).sum()
        assert np.allclose(res.per_disk_busy_ms, busy)

    def test_requests_beyond_n_disks_are_dropped(self, model, rng):
        trace = closed_trace(rng, n=100, disks=6)
        res = simulate_closed(trace, model, n_disks=3)
        assert res.per_disk_busy_ms.shape == (3,)
        ref = np.zeros(3)
        for d in range(3):
            ref[d] = model.service_ms_vector(
                trace.per_disk_blocks(d), trace.block_size
            ).sum()
        assert np.allclose(res.per_disk_busy_ms, ref)

    def test_all_requests_dropped(self, model):
        trace = Trace(
            arrival_ms=np.zeros(2),
            disk=np.array([5, 6], dtype=np.int32),
            block=np.array([0, 1], dtype=np.int64),
            is_write=np.zeros(2, dtype=bool),
        )
        res = simulate_closed(trace, model, n_disks=3)
        assert res.n_requests == 0 and res.makespan_ms == 0.0

    def test_idle_disks_report_zero_busy(self, model):
        trace = Trace(
            arrival_ms=np.zeros(3),
            disk=np.array([2, 2, 2], dtype=np.int32),
            block=np.array([5, 1, 9], dtype=np.int64),
            is_write=np.zeros(3, dtype=bool),
        )
        res = simulate_closed(trace, model, n_disks=4)
        assert res.per_disk_busy_ms[0] == 0.0
        assert res.per_disk_busy_ms[2] > 0.0


class TestLatencyDigest:
    """Satellite: p50/p95 + per-disk request counts from both engines."""

    def test_closed_loop_fields_populated(self, model, rng):
        trace = closed_trace(rng, n=300, disks=4)
        res = simulate_closed(trace, model)
        assert res.p50_latency_ms > 0
        assert res.p50_latency_ms <= res.p95_latency_ms <= res.p99_latency_ms
        assert res.per_disk_requests is not None
        assert res.per_disk_requests.sum() == res.n_requests == 300
        counts = np.bincount(trace.disk, minlength=4)
        assert np.array_equal(res.per_disk_requests, counts)

    def test_event_engine_fields_populated(self, model, rng):
        trace = closed_trace(rng, n=300, disks=4)
        res = DiskArraySimulator(model, 4, scheduler="fcfs").run(trace)
        assert res.p50_latency_ms > 0
        assert res.p50_latency_ms <= res.p95_latency_ms <= res.p99_latency_ms
        assert res.per_disk_requests is not None
        assert res.per_disk_requests.sum() == 300

    def test_engines_agree_on_digest(self, model, rng):
        """Closed-loop FCFS and the event engine see identical latencies."""
        trace = closed_trace(rng, n=250, disks=4)
        a = simulate_closed(trace, model)
        b = DiskArraySimulator(model, 4, scheduler="fcfs").run(trace)
        assert a.p50_latency_ms == pytest.approx(b.p50_latency_ms)
        assert a.p95_latency_ms == pytest.approx(b.p95_latency_ms)
        assert a.p99_latency_ms == pytest.approx(b.p99_latency_ms)
        assert np.array_equal(a.per_disk_requests, b.per_disk_requests)

    def test_latency_summary_dict(self, model, rng):
        trace = closed_trace(rng, n=50, disks=2)
        res = simulate_closed(trace, model)
        summary = res.latency_summary()
        assert summary["mean_latency_ms"] == pytest.approx(res.mean_latency_ms)
        assert summary["p50_latency_ms"] == pytest.approx(res.p50_latency_ms)
        assert summary["p95_latency_ms"] == pytest.approx(res.p95_latency_ms)
        assert summary["p99_latency_ms"] == pytest.approx(res.p99_latency_ms)
        assert summary["n_requests"] == res.n_requests
        assert summary["per_disk_requests"] == [int(c) for c in res.per_disk_requests]

    def test_empty_trace_digest(self, model):
        trace = Trace(
            arrival_ms=np.zeros(0),
            disk=np.zeros(0, dtype=np.int32),
            block=np.zeros(0, dtype=np.int64),
            is_write=np.zeros(0, dtype=bool),
        )
        res = simulate_closed(trace, model, n_disks=2)
        assert res.p50_latency_ms == 0.0 and res.p95_latency_ms == 0.0
