"""The self-healing migration fleet: health, QoS, recovery, service gates."""

import numpy as np
import pytest

from repro.faults.events import DiskFailureEvent
from repro.faults.spec import FaultScenario
from repro.fleet import (
    CircuitBreaker,
    FleetConfig,
    FleetVolume,
    QosTarget,
    SparePool,
    TokenBucket,
    VolumeHealth,
    VolumeSpec,
    VolumeState,
    fleet_soak,
    run_fleet,
)
from repro.obs import record_fleet_report
from repro.obs.metrics import MetricsRegistry


def run_volume(spares=None, **spec_kwargs):
    spec_kwargs.setdefault("volume_id", 0)
    vol = FleetVolume(VolumeSpec(**spec_kwargs))
    return vol, vol.run(spares)


class TestHealthMachine:
    def test_happy_path(self):
        h = VolumeHealth()
        assert h.state is VolumeState.PENDING
        h.transition(VolumeState.MIGRATING, 0.0, "admitted")
        h.transition(VolumeState.DEGRADED, 5.0, "disk lost")
        h.transition(VolumeState.REBUILDING, 6.0, "spare attached")
        h.transition(VolumeState.MIGRATING, 9.0, "rebuilt")
        h.transition(VolumeState.COMPLETE, 20.0, "drained")
        assert h.terminal
        assert [t["to"] for t in h.history()] == [
            "migrating", "degraded", "rebuilding", "migrating", "complete",
        ]

    def test_illegal_edges_raise(self):
        h = VolumeHealth()
        with pytest.raises(ValueError):
            h.transition(VolumeState.COMPLETE, 0.0, "skip admission")
        h.transition(VolumeState.MIGRATING, 0.0, "admitted")
        with pytest.raises(ValueError):
            h.transition(VolumeState.REBUILDING, 1.0, "rebuild without degrade")
        with pytest.raises(ValueError):
            h.transition(VolumeState.MIGRATING, 1.0, "self edge")

    def test_terminal_states_are_absorbing(self):
        h = VolumeHealth()
        h.transition(VolumeState.FAILED, 0.0, "dead on arrival")
        for dst in VolumeState:
            with pytest.raises(ValueError):
                h.transition(dst, 1.0, "escape")

    def test_history_records_tick_and_reason(self):
        h = VolumeHealth()
        h.transition(VolumeState.MIGRATING, 3.5, "admitted")
        (entry,) = h.history()
        assert entry == {
            "tick": 3.5, "from": "pending", "to": "migrating",
            "reason": "admitted",
        }


class TestTokenBucket:
    def test_starts_full_and_refills(self):
        b = TokenBucket(rate=2.0, burst=8.0)
        assert b.available(0.0) == 8.0
        b.spend(8.0, 0.0)
        assert b.available(0.0) == 0.0
        assert b.available(2.0) == 4.0
        assert b.available(100.0) == 8.0  # clamped at burst

    def test_delay_until_schedules_refill(self):
        b = TokenBucket(rate=1.0, burst=4.0)
        b.spend(4.0, 0.0)
        assert b.delay_until(3.0, 0.0) == 3.0
        assert b.delay_until(3.0, 5.0) == 0.0

    def test_cost_above_burst_is_satisfiable(self):
        b = TokenBucket(rate=1.0, burst=4.0)
        b.spend(4.0, 0.0)
        # a cost the bucket can never hold is clamped to the burst so
        # the caller waits for a full bucket instead of forever
        assert b.delay_until(100.0, 0.0) == 4.0


class TestCircuitBreaker:
    def test_needs_min_samples_to_trip(self):
        br = CircuitBreaker(QosTarget(p99_ticks=5.0), min_samples=8)
        for t in range(7):
            assert not br.observe(100.0, float(t))
        assert not br.is_open(7.0)
        assert br.observe(100.0, 8.0)
        assert br.is_open(8.5)

    def test_backoff_grows_then_clean_sample_resets(self):
        br = CircuitBreaker(QosTarget(p99_ticks=5.0), min_samples=1)
        br.observe(50.0, 0.0)
        first = br.resume_tick - 0.0
        t = br.resume_tick
        br.observe(50.0, t)
        assert br.resume_tick - t == 2 * first
        t = br.resume_tick
        br.observe(1.0, t)  # clean sample after the pause
        assert not br.is_open(t)
        br.observe(50.0, t + 1)
        assert br.resume_tick - (t + 1) == first  # backoff re-armed

    def test_snapshot_counts(self):
        br = CircuitBreaker(QosTarget(p99_ticks=5.0), min_samples=1)
        br.observe(2.0, 0.0)
        br.observe(50.0, 1.0)
        snap = br.snapshot()
        assert snap["trips"] == 1
        assert len(snap["breaches"]) == 1
        assert snap["open_ticks"] > 0
        assert snap["closed_samples"] == 2


class TestVolumeLifecycle:
    def test_plain_volume_completes_verified(self):
        vol, res = run_volume(seed=7)
        assert res["state"] == "complete"
        assert res["error"] is None
        assert res["verified"] is True
        assert res["divergent_blocks"] == 0
        assert res["requests_served"] == vol.spec.n_requests
        assert res["parities_generated"] == vol.spec.groups * vol.spec.rows
        assert [t["to"] for t in res["transitions"]] == ["migrating", "complete"]

    def test_batched_volume_matches_reference(self):
        _, res = run_volume(seed=7, batch=4)
        assert res["state"] == "complete"
        assert res["verified"] is True
        assert res["divergent_blocks"] == 0

    def test_result_is_deterministic(self):
        _, a = run_volume(seed=3, batch=2)
        _, b = run_volume(seed=3, batch=2)
        assert a == b

    def test_final_image_is_offline_conversion_of_applied_writes(self):
        # the acceptance oracle itself: online bytes == analytically
        # built offline image of (initial data + applied writes)
        vol, res = run_volume(seed=11)
        assert res["divergent_blocks"] == 0
        assert np.array_equal(vol.reference_snapshot(), vol.array.snapshot())


class TestSpareRebuild:
    FAIL = (DiskFailureEvent(time=12.0, disk=1),)

    def test_rebuild_completes_with_zero_divergence(self):
        pool = SparePool(1)
        vol, res = run_volume(spares=pool, seed=5, failures=self.FAIL)
        assert res["state"] == "complete"
        assert res["rebuilds_completed"] == 1
        assert res["divergent_blocks"] == 0
        assert res["verified"] is True
        assert not vol.array.failed_disks
        path = [t["to"] for t in res["transitions"]]
        assert path == ["migrating", "degraded", "rebuilding", "migrating", "complete"]
        assert pool.snapshot() == {"total": 1, "free": 0, "granted": 1, "denied": 0}

    def test_no_spare_drains_degraded(self):
        pool = SparePool(0)
        vol, res = run_volume(spares=pool, seed=5, failures=self.FAIL)
        assert res["state"] == "complete"
        assert res["spare_denied"] == 1
        assert res["rebuilds_completed"] == 0
        assert 1 in vol.array.failed_disks
        # surviving disks still match the offline image exactly
        assert res["divergent_blocks"] == 0
        assert res["degraded_reads"] > 0
        assert res["transitions"][-1]["reason"] == "drained-degraded"

    def test_diagonal_disk_loss_reconverts_on_spare(self):
        pool = SparePool(1)
        fail = (DiskFailureEvent(time=12.0, disk=4),)  # the hot-added disk
        _, res = run_volume(spares=pool, seed=5, failures=fail)
        assert res["state"] == "complete"
        assert res["rebuilds_completed"] == 1
        assert res["divergent_blocks"] == 0
        assert res["verified"] is True

    def test_diagonal_disk_loss_without_spare_fails(self):
        fail = (DiskFailureEvent(time=12.0, disk=4),)
        _, res = run_volume(spares=SparePool(0), seed=5, failures=fail)
        assert res["state"] == "failed"

    def test_double_data_fault_fails_volume(self):
        fail = (
            DiskFailureEvent(time=12.0, disk=1),
            DiskFailureEvent(time=14.0, disk=2),
        )
        _, res = run_volume(spares=SparePool(0), seed=5, failures=fail)
        assert res["state"] == "failed"


class TestQosBreaker:
    def test_tight_target_trips_and_still_converges(self):
        # p99 of 7 ticks is below an interrupted write's service time,
        # so the breaker must trip; conversion pauses, backs off and
        # resumes from the watermark — and the bytes still land exactly
        _, res = run_volume(
            seed=9, groups=6, batch=4, qos=QosTarget(p99_ticks=7.0), n_requests=24
        )
        assert res["state"] == "complete"
        assert res["breaker"]["trips"] >= 1
        assert res["resumes"] >= 1
        assert res["divergent_blocks"] == 0
        assert res["verified"] is True

    def test_loose_target_never_trips(self):
        _, res = run_volume(seed=9, qos=QosTarget(p99_ticks=500.0), n_requests=24)
        assert res["breaker"]["trips"] == 0
        assert res["resumes"] == 0


class TestCrashResume:
    def test_clean_crash_resumes_to_identical_bytes(self):
        scen = FaultScenario(seed=1).with_crash(4)
        vol, res = run_volume(seed=13, scenario=scen)
        assert res["state"] == "complete"
        assert res["crashes"] == 1
        assert res["resumes"] >= 1
        assert res["divergent_blocks"] == 0
        clean_vol, clean_res = run_volume(seed=13)
        assert clean_res["crashes"] == 0
        # crash/resume must land the exact bytes of an uninterrupted run
        assert np.array_equal(vol.array.snapshot(), clean_vol.array.snapshot())

    def test_torn_crash_is_scrubbed_on_resume(self):
        scen = FaultScenario(seed=1).with_crash(4, 0.5)
        _, res = run_volume(seed=13, scenario=scen, batch=2)
        assert res["state"] == "complete"
        assert res["crashes"] == 1
        assert res["divergent_blocks"] == 0
        assert res["verified"] is True


class TestFleetService:
    def test_default_fleet_passes_every_gate(self):
        report = run_fleet(volumes=6, clients=3, requests_per_volume=8)
        assert report["ok"], report["gates"]
        assert report["volumes_complete"] == 6
        assert report["divergent_blocks"] == 0
        assert report["errors"] == []

    def test_injected_failures_complete_through_spares(self):
        report = run_fleet(
            volumes=8, clients=4, spares=2, fail_volumes=(2, 5), fail_disk=1,
            requests_per_volume=10,
        )
        assert report["ok"], report["gates"]
        assert report["rebuilds_completed"] >= 2
        for vid in (2, 5):
            vol = report["volumes"][vid]
            assert vol["state"] == "complete"
            assert vol["rebuilds_completed"] >= 1

    def test_results_independent_of_client_pool_width(self):
        cfg = dict(volumes=6, requests_per_volume=8, fail_volumes=(1,), spares=1)
        narrow = run_fleet(clients=1, **cfg)
        wide = run_fleet(clients=6, **cfg)
        for a, b in zip(narrow["volumes"], wide["volumes"]):
            assert a == b

    def test_tenants_round_robin_and_qos_scored_per_tenant(self):
        report = run_fleet(volumes=6, requests_per_volume=8)
        assert set(report["tenants"]) == {"gold", "silver", "bronze"}
        for t in report["tenants"].values():
            assert t["volumes"] == 2
            assert t["worst_closed_p99"] <= t["p99_target"]

    def test_config_round_trips(self):
        cfg = FleetConfig(
            volumes=5, fail_volumes=(1, 3), fail_disk=2, crash_volumes=(0,),
            transient_rate=0.01,
        )
        assert FleetConfig.from_dict(cfg.to_dict()) == cfg

    def test_spare_exhaustion_is_reported_not_fatal(self):
        report = run_fleet(
            volumes=4, spares=0, fail_volumes=(0, 1), fail_disk=1,
            requests_per_volume=8,
        )
        assert report["spares"]["denied"] == 2
        assert report["gates"]["zero_divergence"]
        states = [v["state"] for v in report["volumes"]]
        assert states.count("complete") == 4


class TestFleetSoak:
    def test_bounded_soak_passes(self):
        out = fleet_soak(seconds=60.0, seed=2, max_iterations=3)
        assert out["ok"], out["failures"]
        assert out["iterations"] == 3
        assert out["totals"]["volumes"] > 0

    def test_soak_is_seed_deterministic(self):
        a = fleet_soak(seconds=60.0, seed=4, max_iterations=2)
        b = fleet_soak(seconds=60.0, seed=4, max_iterations=2)
        assert a["totals"] == b["totals"]


class TestRecordFleetReport:
    def test_snapshot_carries_health_qos_and_recovery(self):
        report = run_fleet(
            volumes=4, spares=1, fail_volumes=(1,), fail_disk=1,
            requests_per_volume=8,
        )
        registry = MetricsRegistry(enabled=True)
        record_fleet_report(report, registry)
        snap = registry.snapshot()
        counters = {
            (s["name"], tuple(sorted(s.get("labels", {}).items()))): s["value"]
            for s in snap["counters"]
        }
        gauges = {
            (s["name"], tuple(sorted(s.get("labels", {}).items()))): s["value"]
            for s in snap["gauges"]
        }
        assert gauges[("fleet.volume_state", (("state", "complete"),))] == 4.0
        assert counters[("fleet.volumes", ())] == 4
        assert counters[("fleet.rebuilds_completed", ())] == report["rebuilds_completed"]
        assert counters[("fleet.spares_attached", ())] == 1
        assert gauges[("fleet.gate", (("gate", "zero_divergence"),))] == 1.0
        for tenant, t in report["tenants"].items():
            key = ("fleet.closed_latency_ticks.worst_p99", (("tenant", tenant),))
            assert gauges[key] == t["worst_closed_p99"]
        hist = {h["name"]: h for h in snap["histograms"]}
        total_samples = sum(v["latency"]["samples"] for v in report["volumes"])
        assert hist["fleet.request_latency_ticks"]["count"] == total_samples
        assert "fleet.volume_state" in registry.render_text()
