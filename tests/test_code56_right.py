"""The right-layout Code 5-6 variant (Section IV-B1, Figure 7)."""

import itertools

import numpy as np
import pytest

from repro.codes import ArrayCode, CellKind, certify_mds, get_code
from repro.codes.code56 import code56_layout, code56_right_layout
from repro.migration import build_plan, execute_plan, prepare_source_array, verify_conversion
from repro.raid.layouts import Raid5Layout, parity_disk


class TestGeometry:
    def test_horizontal_parities_on_main_diagonal(self):
        p = 7
        lay = code56_right_layout(p)
        for i in range(p - 1):
            assert lay.kind((i, i)) is CellKind.HORIZONTAL

    def test_matches_right_asymmetric_raid5(self):
        """The defining alignment: parity of stripe i on disk i mod m."""
        p = 7
        m = p - 1
        for i in range(m):
            assert parity_disk(Raid5Layout.RIGHT_ASYMMETRIC, i, m) == i

    def test_mirror_of_left_layout(self):
        p = 5
        left = code56_layout(p)
        right = code56_right_layout(p)
        # same counts, mirrored cells
        assert right.num_data == left.num_data
        mirrored = {
            (r, p - 2 - c) if c != p - 1 else (r, c) for r, c in left.parity_cells
        }
        assert right.parity_cells == mirrored

    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        rep = certify_mds(code56_right_layout(p))
        assert rep.is_mds and rep.storage_optimal

    def test_optimal_properties_inherited(self):
        p = 7
        lay = code56_right_layout(p)
        assert lay.xor_count_total() == 2 * (p - 1) * (p - 3)
        assert all(lay.update_penalty(c) == 2 for c in lay.data_cells)

    def test_virtual_columns_in_right_coordinates(self):
        lay = code56_right_layout(5, virtual_cols=(3,))
        assert (0, 3) in lay.virtual_cells
        assert certify_mds(lay).is_mds
        assert lay.num_data == 6  # same capacity as the left m=3 case


class TestRoundtrip:
    def test_all_double_erasures(self, rng, paper_p):
        p = paper_p
        code = get_code("code56-right", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(p), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)


class TestConversion:
    @pytest.mark.parametrize("p,n", [(5, 5), (7, 7), (7, 6)])
    def test_right_conversion_verifies(self, p, n, rng):
        plan = build_plan("code56-right", "direct", p, groups=3, n_disks=n)
        assert plan.source_layout is Raid5Layout.RIGHT_ASYMMETRIC
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        assert verify_conversion(result, rng)

    def test_same_cost_as_left(self):
        left = build_plan("code56", "direct", 7, groups=2)
        right = build_plan("code56-right", "direct", 7, groups=2)
        assert left.read_ios == right.read_ios
        assert left.write_ios == right.write_ios
        assert left.xors == right.xors
