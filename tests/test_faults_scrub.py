"""Scrubbing plane-injected corruption after a faulty conversion.

A torn diagonal-parity write that survives the conversion (no crash, so
no journal rollback) is silent corruption; ``scrub_raid6(repair=True)``
must locate and repair a single such error, and must report a chain
carrying *two* errors as unlocatable instead of silently "fixing" it.
"""

import numpy as np
import pytest

from repro.codes.registry import get_code
from repro.faults import (
    FaultPlane,
    FaultScenario,
    TornWrite,
    execute_checkpointed,
)
from repro.migration.approaches import build_plan
from repro.migration.engine import prepare_source_array, verify_conversion
from repro.raid.raid6 import Raid6Array
from repro.raid.scrub import scrub_raid6

# in the audited engine's op stream at p=5, groups=2, ops 12-15 are group
# 0's four diagonal-parity writes (12 chain reads precede them)
FIRST_PARITY_WRITE_OP = 12


def convert_with_faults(scenario, seed=0):
    plan = build_plan("code56", "direct", 5, groups=2)
    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=8
    )
    plane = FaultPlane(scenario)
    plane.attach(array)
    run = execute_checkpointed(plan, array, data, engine="audited")
    plane.detach()
    raid6 = Raid6Array(array, get_code("code56", plan.p))
    return plan, array, run, raid6, plane


class TestSingleErrorRepair:
    def test_torn_parity_located_and_repaired(self):
        scenario = FaultScenario(
            torn_writes=(TornWrite(op=FIRST_PARITY_WRITE_OP, keep_fraction=0.5),)
        )
        plan, array, run, raid6, plane = convert_with_faults(scenario)
        assert plane.counters["torn_writes"] == 1
        assert not raid6.verify()  # the tear really corrupted a parity
        report = scrub_raid6(raid6, repair=True)
        assert len(report.repaired) == 1
        assert not report.unlocatable_groups
        group, cell = report.repaired[0]
        assert group == 0 and cell[1] == 4  # a diagonal-parity cell
        assert raid6.verify()
        assert verify_conversion(run.result, check_io_counters=False)

    def test_each_single_error_group_repaired_independently(self):
        # one torn parity in each group: two single-error chains
        scenario = FaultScenario(
            torn_writes=(
                TornWrite(op=FIRST_PARITY_WRITE_OP, keep_fraction=0.5),
                TornWrite(op=FIRST_PARITY_WRITE_OP + 17, keep_fraction=0.5),
            )
        )
        plan, array, run, raid6, plane = convert_with_faults(scenario)
        assert plane.counters["torn_writes"] == 2
        report = scrub_raid6(raid6, repair=True)
        assert len(report.repaired) == 2
        assert not report.unlocatable_groups
        assert raid6.verify()


class TestTwoErrorChain:
    def test_reported_unlocatable_not_silently_fixed(self):
        scenario = FaultScenario(
            torn_writes=(TornWrite(op=FIRST_PARITY_WRITE_OP, keep_fraction=0.5),)
        )
        plan, array, run, raid6, plane = convert_with_faults(scenario)
        assert plane.counters["torn_writes"] == 1
        # second error in the SAME diagonal chain: corrupt one of the torn
        # parity's data members (chain of parity cell (0, 4))
        code = raid6.code
        chain = next(
            c for c in code.layout.chains if c.parity == (0, 4)
        )
        r, c = next(m for m in chain.members if m not in code.layout.virtual_cells)
        disk = raid6.disk_of(0, c)
        block = raid6.block_of(0, r)
        before = array.snapshot()
        array.raw(disk, block)[-1] ^= 0x01
        tampered = array.snapshot()
        report = scrub_raid6(raid6, repair=True)
        assert 0 in report.unlocatable_groups
        # nothing in the ambiguous group was "repaired" behind our back
        assert not any(g == 0 for g, _cell in report.repaired)
        assert np.array_equal(array.snapshot(), tampered)
        assert not raid6.verify()


class TestCrashTearIsJournalHealed:
    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_crash_torn_write_rolled_back_not_scrub_visible(self, engine):
        """A tear from a crash is healed by the journal, not the scrubber."""
        from repro.faults import ConversionCrash, ConversionJournal

        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(0), block_size=8
        )
        n_events = 36 if engine == "audited" else 34
        plane = FaultPlane(FaultScenario(crash_at=n_events // 2, crash_tear=0.5))
        plane.attach(array)
        journal = ConversionJournal()
        while True:
            try:
                run = execute_checkpointed(plan, array, data, journal, engine=engine)
                break
            except ConversionCrash:
                plane.disarm_crash()
        plane.detach()
        raid6 = Raid6Array(array, get_code("code56", plan.p))
        assert scrub_raid6(raid6, repair=False).clean
        assert raid6.verify()
