"""Workload replay (I/O amplification) and degraded-read analysis."""

import numpy as np
import pytest

from repro.analysis.degraded import degraded_read_profile, degraded_read_table
from repro.codes import CODE_NAMES, get_code, get_layout
from repro.raid import BlockArray, Raid5Array, Raid6Array
from repro.workloads.replay import LogicalWorkload, logical_workload, replay


def make_raid6(rng, name="code56", p=5, groups=4, bs=8):
    code = get_code(name, p)
    arr = BlockArray(code.n_disks, groups * code.rows, block_size=bs)
    r6 = Raid6Array(arr, code)
    r6.format_with(rng.integers(0, 256, size=(r6.capacity_blocks, bs), dtype=np.uint8))
    return r6


class TestLogicalWorkload:
    def test_generator_bounds(self, rng):
        w = logical_workload(rng, 200, 50, read_fraction=0.5)
        assert w.lba.max() < 50
        assert w.reads + w.writes == 200

    def test_empty_volume_rejected(self, rng):
        with pytest.raises(ValueError):
            logical_workload(rng, 10, 0)


class TestReplay:
    def test_read_only_has_no_amplification(self, rng):
        r6 = make_raid6(rng)
        w = logical_workload(rng, 100, r6.capacity_blocks, read_fraction=1.0)
        res = replay(r6, w, rng)
        assert res.physical_writes == 0
        assert res.physical_reads == 100
        assert res.io_amplification == 1.0

    def test_write_amplification_matches_update_penalty(self, rng):
        """Pure writes on an update-optimal code: 3 physical writes per
        logical write (data + two parities), 3 reads for the RMW."""
        r6 = make_raid6(rng, "code56")
        w = logical_workload(rng, 100, r6.capacity_blocks, read_fraction=0.0)
        res = replay(r6, w, rng)
        assert res.write_amplification == pytest.approx(3.0)
        assert res.read_amplification == pytest.approx(3.0)

    def test_hdp_amplifies_more(self, rng):
        opt = replay(
            make_raid6(rng, "code56"),
            logical_workload(rng, 60, 40, read_fraction=0.0),
            rng,
        )
        hdp = replay(
            make_raid6(rng, "hdp"),
            logical_workload(rng, 60, 30, read_fraction=0.0),
            rng,
        )
        assert hdp.write_amplification > opt.write_amplification

    def test_raid5_write_amplification_is_two(self, rng):
        arr = BlockArray(5, 8, block_size=8)
        r5 = Raid5Array(arr)
        r5.format_with(rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8))
        w = logical_workload(rng, 50, r5.capacity_blocks, read_fraction=0.0)
        res = replay(r5, w, rng)
        assert res.write_amplification == pytest.approx(2.0)

    def test_mixed_workload_accounting(self, rng):
        r6 = make_raid6(rng)
        w = LogicalWorkload(
            lba=np.array([0, 1, 2, 3]), is_write=np.array([True, False, True, False])
        )
        res = replay(r6, w, rng)
        assert res.logical_reads == 2 and res.logical_writes == 2
        assert res.physical_reads == 2 + 2 * 3
        assert res.physical_writes == 2 * 3


class TestDegradedReads:
    @pytest.mark.parametrize("name", CODE_NAMES)
    def test_profiles_exist_for_all_columns(self, name):
        lay = get_layout(name, 5)
        profiles = degraded_read_table(lay)
        assert len(profiles) == lay.n_disks
        for prof in profiles:
            assert 0 <= prof.data_fraction <= 1
            for cost in prof.per_cell_reads.values():
                assert cost >= 1

    def test_code56_data_column_costs(self):
        """Each lost Code 5-6 data cell rebuilds from p-2 blocks."""
        lay = get_layout("code56", 5)
        prof = degraded_read_profile(lay, 1)
        assert set(prof.per_cell_reads.values()) == {3}

    def test_parity_column_failure_is_free_for_reads(self):
        """Losing the diagonal column costs data reads nothing."""
        lay = get_layout("code56", 5)
        prof = degraded_read_profile(lay, 4)
        assert prof.per_cell_reads == {}
        assert prof.expected_read_cost == 1.0

    def test_expected_cost_interpolates(self):
        lay = get_layout("rdp", 5)
        prof = degraded_read_profile(lay, 0)
        assert 1.0 < prof.expected_read_cost < prof.avg_reads_per_degraded_read

    def test_matches_measured_degraded_reads(self, rng):
        """The model's per-cell cost equals the live array's counters."""
        r6 = make_raid6(rng, "code56", groups=2)
        lay = r6.code.layout
        prof = degraded_read_profile(lay, 2)
        r6.array.fail_disk(2)
        for lba in range(r6.capacity_blocks):
            g, cell = r6.locate(lba)
            if cell[1] != 2:
                continue
            r6.array.reset_counters()
            r6.read(lba)
            assert r6.array.total_reads == prof.per_cell_reads[cell], (lba, cell)

    def test_invalid_column(self):
        with pytest.raises(ValueError):
            degraded_read_profile(get_layout("code56", 5), 9)
