"""The shared retry/backoff policy: schedule identity across consumers."""

import numpy as np
import pytest

from repro.faults import FaultPlane, FaultScenario, RetryPolicy, TransientFault
from repro.fleet.qos import DEFAULT_BREAKER_POLICY
from repro.raid.array import BlockArray
from repro.util.retry import Backoff, BackoffPolicy, total_backoff


class TestTotalBackoff:
    def test_closed_form(self):
        assert total_backoff(3, 1.0, 2.0) == 1.0 + 2.0 + 4.0
        assert total_backoff(0, 1.0, 2.0) == 0.0
        assert total_backoff(4, 0.5, 3.0) == 0.5 + 1.5 + 4.5 + 13.5


class TestPolicySchedule:
    def test_undecorated_schedule_is_pure_exponential(self):
        policy = BackoffPolicy(base_ticks=1.0, multiplier=2.0, max_attempts=5)
        assert policy.schedule() == (1.0, 2.0, 4.0, 8.0, 16.0)
        assert policy.total() == total_backoff(5, 1.0, 2.0)

    def test_cap_bounds_each_delay(self):
        policy = BackoffPolicy(
            base_ticks=1.0, multiplier=2.0, max_attempts=6, cap_ticks=5.0
        )
        assert policy.schedule() == (1.0, 2.0, 4.0, 5.0, 5.0, 5.0)

    def test_deadline_bounds_the_sum(self):
        policy = BackoffPolicy(
            base_ticks=1.0, multiplier=2.0, max_attempts=10, deadline_ticks=7.0
        )
        # 1 + 2 + 4 = 7 fits exactly; the next delay (8) would overrun
        assert policy.schedule() == (1.0, 2.0, 4.0)

    def test_jitter_is_stateless_and_seeded(self):
        policy = BackoffPolicy(base_ticks=8.0, jitter=0.5, seed=3, max_attempts=4)
        assert policy.schedule() == policy.schedule()
        for attempt, d in enumerate(policy.schedule()):
            undecorated = 8.0 * 2.0**attempt
            assert 0.5 * undecorated <= d <= undecorated
            assert d == policy.delay(attempt)  # pure function of (seed, attempt)
        other = BackoffPolicy(base_ticks=8.0, jitter=0.5, seed=4, max_attempts=4)
        assert other.schedule() != policy.schedule()

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base_ticks=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=-1)


class TestBackoffIterator:
    def test_hands_out_schedule_then_none(self):
        b = Backoff(BackoffPolicy(base_ticks=1.0, max_attempts=3))
        assert [b.next_delay() for _ in range(4)] == [1.0, 2.0, 4.0, None]
        assert b.exhausted
        b.reset()
        assert not b.exhausted
        assert list(b) == [1.0, 2.0, 4.0]

    def test_deadline_exhaustion(self):
        b = Backoff(BackoffPolicy(base_ticks=1.0, max_attempts=10, deadline_ticks=3.0))
        assert b.next_delay() == 1.0
        assert b.next_delay() == 2.0
        assert b.next_delay() is None  # 4 would push spent past 3... the deadline
        assert b.exhausted


class TestScheduleIdentity:
    """The one-formula guarantee: every consumer walks the same curve."""

    def test_policy_reproduces_fault_plane_accounting(self):
        # the plane accrues total_backoff(retries, base, mult) per
        # exhausted transient; a jitterless BackoffPolicy with the same
        # parameters must sum to the identical ticks
        retry = RetryPolicy(max_retries=3, backoff_base_ticks=1.0,
                            backoff_multiplier=2.0)
        policy = BackoffPolicy(
            base_ticks=retry.backoff_base_ticks,
            multiplier=retry.backoff_multiplier,
            max_attempts=retry.max_retries,
        )
        array = BlockArray(3, 4, block_size=8)
        for d in range(3):
            for blk in range(4):
                array.write(d, blk, np.zeros(8, dtype=np.uint8))
        plane = FaultPlane(FaultScenario(
            transients=(TransientFault(op=0, failures=3),), retry=retry,
        ))
        plane.attach(array)
        array.read(0, 0)
        plane.detach()
        assert plane.backoff_ticks == policy.total() == 1.0 + 2.0 + 4.0

    def test_breaker_default_policy_schedule(self):
        # the fleet breaker's pause curve, pinned: 32, 64, ..., capped
        # at 256 and cut off after six pauses
        assert DEFAULT_BREAKER_POLICY.schedule() == (
            32.0, 64.0, 128.0, 256.0, 256.0, 256.0
        )
