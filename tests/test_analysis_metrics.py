"""Metric extraction and the closed-form cost model (Section V-A/B)."""

import math

import pytest

from repro.analysis import closed_form, conversion_time, metrics_from_plan
from repro.analysis.costmodel import comparison_width
from repro.migration import build_plan, supported_conversions
from repro.migration.approaches import alignment_cycle

FIELDS = (
    "invalid_parity_ratio",
    "migration_ratio",
    "new_parity_ratio",
    "extra_space_ratio",
    "computation_cost",
    "write_ios",
    "total_ios",
    "time_nlb",
    "time_lb",
)


@pytest.mark.parametrize("code,approach", supported_conversions())
@pytest.mark.parametrize("p", [5, 7, 11])
def test_closed_form_matches_engine_accounting(code, approach, p):
    """Two independent roads to every number of Figs 9-17."""
    n = comparison_width(code, p)
    groups = alignment_cycle(code, p, n)
    plan = build_plan(code, approach, p, groups=groups, n_disks=n)
    measured = metrics_from_plan(plan)
    model = closed_form(code, approach, p)
    for field in FIELDS:
        expect = getattr(model, field)
        if expect is None:
            continue
        got = getattr(measured, field)
        assert math.isclose(got, expect, abs_tol=1e-12), (code, approach, p, field)


class TestCode56Headline:
    """Section V-A's worked example, as ratios."""

    def test_paper_numbers_p5(self):
        m = metrics_from_plan(build_plan("code56", "direct", 5, groups=1))
        assert m.new_parity_ratio == pytest.approx(1 / 3)
        assert m.write_ios == pytest.approx(1 / 3)
        assert m.total_ios == pytest.approx(4 / 3)
        assert m.computation_cost == pytest.approx(2 / 3)
        assert m.time_nlb == pytest.approx(1 / 3)
        assert m.invalid_parity_ratio == 0.0
        assert m.migration_ratio == 0.0
        assert m.extra_space_ratio == 0.0

    def test_label_format(self):
        m = metrics_from_plan(build_plan("code56", "direct", 5, groups=1))
        assert m.label == "RAID-5->RAID-6(Code 5-6,4,5)"
        m = metrics_from_plan(build_plan("rdp", "via-raid0", 5, groups=1))
        assert m.label == "RAID-5->RAID-0->RAID-6(RDP,4,6)"


class TestDominance:
    """Figures 9-15: Code 5-6 minimises every cost metric at equal p."""

    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_code56_minimises_costs(self, p):
        base = metrics_from_plan(
            build_plan("code56", "direct", p, groups=alignment_cycle("code56", p))
        )
        for code, approach in supported_conversions():
            if code == "code56":
                continue
            n = comparison_width(code, p)
            m = metrics_from_plan(
                build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
            )
            assert base.write_ios <= m.write_ios + 1e-12, (code, approach)
            assert base.total_ios <= m.total_ios + 1e-12, (code, approach)
            assert base.computation_cost <= m.computation_cost + 1e-12, (code, approach)
            assert base.new_parity_ratio <= m.new_parity_ratio + 1e-12, (code, approach)
            assert base.extra_space_ratio <= m.extra_space_ratio + 1e-12, (code, approach)

    def test_direct_beats_two_step_on_parity_ops(self):
        """Direct conversion has no migration; via-RAID-0 has no migration
        but invalidates; via-RAID-4 migrates but invalidates nothing."""
        p = 5
        r0 = metrics_from_plan(build_plan("rdp", "via-raid0", p, groups=1))
        r4 = metrics_from_plan(build_plan("rdp", "via-raid4", p, groups=1))
        assert r0.invalid_parity_ratio > 0 and r0.migration_ratio == 0
        assert r4.invalid_parity_ratio == 0 and r4.migration_ratio > 0


class TestTiming:
    def test_lb_never_slower_than_nlb(self):
        for code, approach in supported_conversions():
            p = 5
            n = comparison_width(code, p)
            plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
            assert conversion_time(plan, load_balanced=True) <= conversion_time(
                plan, load_balanced=False
            ) + 1e-12

    def test_more_disks_convert_faster(self):
        """Fig 16's trend: conversion time falls as p grows."""
        times = [
            conversion_time(build_plan("code56", "direct", p, groups=1))
            for p in (5, 7, 11, 13)
        ]
        assert times == sorted(times, reverse=True)

    def test_unknown_closed_form(self):
        with pytest.raises(KeyError):
            closed_form("code56", "via-raid0", 5)
