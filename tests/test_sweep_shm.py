"""Shared-memory BlockArray backing: cross-process bytes, crash cleanup.

The child helpers live at module level because the sweep's spawn context
(the only start method whose semantics match production workers) imports
the test module fresh in each child.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.raid.array import BlockArray
from repro.sweep import SharedNDArray, ShmHandle, attach_block_array, shared_block_array

SPAWN = mp.get_context("spawn")


# ------------------------------------------------------------ child targets

def _child_fill(handle_dict, value):
    seg = SharedNDArray.attach(handle_dict)
    seg.ndarray[...] = value
    seg.close()


def _child_block_write(handle_dict):
    array, seg = attach_block_array(handle_dict)
    array.write(1, 2, np.full(array.block_size, 0xAB, dtype=np.uint8))
    seg.close()


def _child_crash(handle_dict):
    seg = SharedNDArray.attach(handle_dict)
    seg.ndarray[0, 0] = 99
    os._exit(1)  # simulate a worker dying without any cleanup


def _run_child(target, *args):
    proc = SPAWN.Process(target=target, args=args)
    proc.start()
    proc.join(timeout=60)
    assert not proc.is_alive()
    return proc.exitcode


# ----------------------------------------------------------------- in-process

class TestSharedNDArray:
    def test_create_zeroed_and_round_trip(self):
        with SharedNDArray.create((3, 4), np.uint8) as seg:
            assert seg.ndarray.shape == (3, 4)
            assert not seg.ndarray.any()
            seg.ndarray[...] = 7
            assert (seg.ndarray == 7).all()

    def test_from_array_copies_bytes(self):
        src = np.arange(24, dtype=np.uint8).reshape(2, 12)
        with SharedNDArray.from_array(src) as seg:
            np.testing.assert_array_equal(seg.ndarray, src)
            # it is a copy: mutating the source does not leak in
            src[...] = 0
            assert seg.ndarray.sum() > 0

    def test_handle_round_trip(self):
        with SharedNDArray.create((2, 2), np.uint8) as seg:
            handle = ShmHandle.from_dict(seg.handle.to_dict())
            assert handle == seg.handle

    def test_attach_sees_same_bytes(self):
        with SharedNDArray.create((4,), np.uint8) as seg:
            seg.ndarray[...] = (1, 2, 3, 4)
            other = SharedNDArray.attach(seg.handle)
            np.testing.assert_array_equal(other.ndarray, [1, 2, 3, 4])
            other.ndarray[0] = 9
            assert seg.ndarray[0] == 9
            other.close()

    def test_attacher_cannot_unlink(self):
        with SharedNDArray.create((2,), np.uint8) as seg:
            other = SharedNDArray.attach(seg.handle)
            with pytest.raises(ValueError, match="creating side"):
                other.unlink()
            other.close()

    def test_close_is_idempotent(self):
        seg = SharedNDArray.create((2,), np.uint8)
        seg.close()
        seg.close()
        seg._owner and seg.unlink()

    def test_unlink_destroys_segment(self):
        seg = SharedNDArray.create((2,), np.uint8)
        handle = seg.handle
        seg.unlink()
        with pytest.raises(FileNotFoundError):
            SharedNDArray.attach(handle)


# --------------------------------------------------------------- cross-process

class TestCrossProcess:
    def test_child_writes_visible_to_parent(self):
        with SharedNDArray.create((8, 8), np.uint8) as seg:
            assert _run_child(_child_fill, seg.handle.to_dict(), 0x5A) == 0
            assert (seg.ndarray == 0x5A).all()

    def test_block_array_bytes_identical_across_processes(self):
        array, seg = shared_block_array(3, 4, block_size=16)
        try:
            assert _run_child(_child_block_write, seg.handle.to_dict()) == 0
            np.testing.assert_array_equal(
                array.read(1, 2), np.full(16, 0xAB, dtype=np.uint8)
            )
            # counted I/O stays per-process (counters are not shared state)
            assert array.total_reads == 1
        finally:
            seg.unlink()

    def test_parent_cleanup_survives_worker_crash(self):
        seg = SharedNDArray.create((4, 4), np.uint8)
        handle = seg.handle
        assert _run_child(_child_crash, handle.to_dict()) == 1
        assert seg.ndarray[0, 0] == 99  # the write before the crash landed
        seg.unlink()  # parent cleanup works even though the child never closed
        with pytest.raises(FileNotFoundError):
            SharedNDArray.attach(handle)


# -------------------------------------------------- BlockArray external store

class TestExternalBuffer:
    def test_over_infers_geometry(self):
        buf = np.zeros((3, 5, 8), dtype=np.uint8)
        array = BlockArray.over(buf)
        assert (array.n_disks, array.blocks_per_disk, array.block_size) == (3, 5, 8)
        assert array.external_buffer

    def test_writes_land_in_the_buffer(self):
        buf = np.zeros((2, 3, 4), dtype=np.uint8)
        array = BlockArray.over(buf)
        array.write(1, 1, np.array([9, 9, 9, 9], dtype=np.uint8))
        assert (buf[1, 1] == 9).all()

    def test_resize_rejected_when_externally_backed(self):
        array = BlockArray.over(np.zeros((2, 2, 2), dtype=np.uint8))
        with pytest.raises(ValueError, match="externally backed"):
            array.add_disk()
        with pytest.raises(ValueError, match="externally backed"):
            array.remove_disk()

    def test_owned_array_still_resizes(self):
        array = BlockArray(2, 2, block_size=2)
        assert not array.external_buffer
        array.add_disk()
        assert array.n_disks == 3

    def test_bad_buffers_rejected(self):
        with pytest.raises(ValueError, match="uint8"):
            BlockArray.over(np.zeros((2, 2, 2), dtype=np.int32))
        with pytest.raises(ValueError, match="3-D"):
            BlockArray.over(np.zeros((4, 4), dtype=np.uint8))
        ro = np.zeros((2, 2, 2), dtype=np.uint8)
        ro.setflags(write=False)
        with pytest.raises(ValueError, match="writable"):
            BlockArray.over(ro)
