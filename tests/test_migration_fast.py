"""Vectorised converter vs the audited engine: byte-identical, same counts."""

import numpy as np
import pytest

from repro.migration import build_plan, execute_plan, prepare_source_array
from repro.migration.fast import fast_convert_code56

# fast_convert_code56 is deprecated in favour of repro.compiled but kept
# as the regression baseline; its warning is expected here.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.mark.parametrize("p", [5, 7, 11])
@pytest.mark.parametrize("groups", [1, 4])
def test_identical_to_engine(p, groups):
    plan = build_plan("code56", "direct", p, groups=groups)
    seed = 99 * p + groups
    array_a, data = prepare_source_array(plan, np.random.default_rng(seed), block_size=8)
    execute_plan(plan, array_a, data)
    array_b, _ = prepare_source_array(plan, np.random.default_rng(seed), block_size=8)
    fast_convert_code56(array_b, p, groups=groups)
    assert np.array_equal(array_a.snapshot(), array_b.snapshot())


def test_bytes_and_counters_match(rng):
    p, groups = 7, 5
    plan = build_plan("code56", "direct", p, groups=groups)
    seed = 1234
    a_rng = np.random.default_rng(seed)
    b_rng = np.random.default_rng(seed)
    array_a, data_a = prepare_source_array(plan, a_rng, block_size=16)
    array_b, data_b = prepare_source_array(plan, b_rng, block_size=16)
    assert np.array_equal(data_a, data_b)
    execute_plan(plan, array_a, data_a)
    written = fast_convert_code56(array_b, p, groups=groups)
    assert written == groups * (p - 1)
    assert np.array_equal(array_a.snapshot(), array_b.snapshot())
    assert np.array_equal(array_a.reads, array_b.reads)
    assert np.array_equal(array_a.writes, array_b.writes)


def test_requires_new_disk():
    from repro.raid import BlockArray

    with pytest.raises(ValueError):
        fast_convert_code56(BlockArray(4, 8, 8), 5)


def test_groups_bounds(rng):
    plan = build_plan("code56", "direct", 5, groups=2)
    array, _ = prepare_source_array(plan, rng, block_size=8)
    with pytest.raises(ValueError):
        fast_convert_code56(array, 5, groups=100)


@pytest.mark.filterwarnings("default::DeprecationWarning")
def test_emits_deprecation_warning(rng):
    plan = build_plan("code56", "direct", 5, groups=1)
    array, _ = prepare_source_array(plan, rng, block_size=8)
    with pytest.warns(DeprecationWarning, match="execute_plan_compiled"):
        fast_convert_code56(array, 5, groups=1)
