"""Generic hybrid single-disk recovery across every code."""

import numpy as np
import pytest

from repro.codes import CODE_NAMES, apply_recovery_plan, get_code, get_layout
from repro.core import plan_generic_hybrid_recovery
from repro.core.recovery import plan_hybrid_recovery

ALL_CODES = CODE_NAMES + ("code56-right",)


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_CODES)
    def test_recovers_every_column(self, name, paper_p, rng):
        lay = get_layout(name, paper_p)
        code = get_code(name, paper_p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for col in lay.physical_cols:
            h = plan_generic_hybrid_recovery(lay, col)
            broken = stripe.copy()
            broken[:, col, :] = 0
            apply_recovery_plan(h.plan, broken)
            assert np.array_equal(broken, stripe), (name, col)

    def test_never_worse_than_conventional(self, paper_p):
        for name in ALL_CODES:
            lay = get_layout(name, paper_p)
            for col in lay.physical_cols:
                h = plan_generic_hybrid_recovery(lay, col)
                assert h.reads <= h.conventional_reads, (name, col)

    def test_rejects_virtual_column(self):
        lay = get_layout("evenodd", 5, virtual_cols=(4,))
        with pytest.raises(ValueError):
            plan_generic_hybrid_recovery(lay, 4)

    def test_shortened_layout_recoverable(self, rng):
        lay = get_layout("code56", 7, virtual_cols=(0,))
        from repro.codes import ArrayCode

        code = ArrayCode(lay)
        data = rng.integers(0, 256, size=(lay.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for col in lay.physical_cols:
            h = plan_generic_hybrid_recovery(lay, col)
            broken = stripe.copy()
            broken[:, col, :] = 0
            apply_recovery_plan(h.plan, broken)
            assert np.array_equal(broken, stripe)


class TestKnownResults:
    def test_matches_specialised_code56_optimiser(self):
        """The generic optimiser must find the same optimum as the
        Code 5-6-specific module (9 reads at p=5)."""
        for p in (5, 7):
            lay = get_layout("code56", p)
            for col in range(p - 1):
                generic = plan_generic_hybrid_recovery(lay, col)
                special = plan_hybrid_recovery(lay, col)
                assert generic.reads == special.reads, (p, col)

    def test_rdp_xiang_saving(self):
        """Xiang et al. (SIGMETRICS'10): hybrid recovery of an RDP data
        column reads ~25% less (12 vs 16 at p=5)."""
        lay = get_layout("rdp", 5)
        h = plan_generic_hybrid_recovery(lay, 0)
        assert h.conventional_reads == 16
        assert h.reads == 12
        assert h.read_savings == pytest.approx(0.25)

    def test_code56_paper_numbers(self):
        lay = get_layout("code56", 5)
        h = plan_generic_hybrid_recovery(lay, 1)
        assert (h.reads, h.conventional_reads) == (9, 12)

    def test_parity_only_columns_have_no_choice(self):
        lay = get_layout("rdp", 5)
        h = plan_generic_hybrid_recovery(lay, 5)  # the diagonal column
        assert h.reads == h.conventional_reads

    def test_mirror_symmetry(self):
        """code56-right must save exactly what code56 saves."""
        for p in (5, 7):
            left = get_layout("code56", p)
            right = get_layout("code56-right", p)
            left_reads = sorted(
                plan_generic_hybrid_recovery(left, c).reads for c in range(p)
            )
            right_reads = sorted(
                plan_generic_hybrid_recovery(right, c).reads for c in range(p)
            )
            assert left_reads == right_reads
