"""Disk failures injected during the online conversion (Table VI, live)."""

import numpy as np
import pytest

from repro.core import Code56Migrator
from repro.migration import DiskFailureEvent, OnlineCode56Conversion, OnlineRequest
from repro.raid import BlockArray, Raid5Array, Raid5Layout


def fresh(rng, p=5, groups=8, bs=8):
    m = p - 1
    array = BlockArray(m, groups * (p - 1), block_size=bs)
    r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    data = rng.integers(0, 256, size=(r5.capacity_blocks, bs), dtype=np.uint8)
    r5.format_with(data)
    array.add_disk()
    return array, data


class TestDataDiskFailure:
    @pytest.mark.parametrize("fail_disk", [0, 1, 3])
    def test_conversion_completes_degraded(self, fail_disk, rng):
        array, data = fresh(rng)
        conv = OnlineCode56Conversion(array, 5)
        report = conv.run([], failures=[DiskFailureEvent(time=30.0, disk=fail_disk)])
        assert report.failures_survived == 1
        assert report.degraded_reads > 0
        assert report.parities_generated == 8 * 4

    def test_data_recoverable_after_rebuild(self, rng):
        array, data = fresh(rng)
        mig = Code56Migrator(array, 5)
        report = mig.convert_online(failures=[DiskFailureEvent(time=25.0, disk=2)])
        r6 = mig.as_raid6()
        r6.rebuild_disks(2)
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_early_failure_costs_more_degraded_reads(self, rng):
        def run(t):
            array, _ = fresh(rng, groups=10)
            conv = OnlineCode56Conversion(array, 5)
            return conv.run([], failures=[DiskFailureEvent(time=t, disk=1)])

        early = run(0.0)
        late = run(1e9)
        assert early.degraded_reads > late.degraded_reads
        assert late.degraded_reads == 0

    def test_writes_during_degraded_window(self, rng):
        array, data = fresh(rng, groups=10)
        truth = data.copy()
        mig = Code56Migrator(array, 5)
        reqs = []
        for t in (10.0, 60.0, 150.0, 1e6):
            lba = int(rng.integers(0, len(truth)))
            payload = rng.integers(0, 256, size=8, dtype=np.uint8)
            truth[lba] = payload
            reqs.append(OnlineRequest(time=t, lba=lba, is_write=True, payload=payload))
        mig.convert_online(reqs, failures=[DiskFailureEvent(time=5.0, disk=0)])
        r6 = mig.as_raid6()
        r6.rebuild_disks(0)
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), truth[lba]), lba

    def test_write_to_failed_disk_is_reconstruct_write(self, rng):
        """A write whose home disk is gone lands only in the parities."""
        array, data = fresh(rng, groups=6)
        truth = data.copy()
        mig = Code56Migrator(array, 5)
        # find an lba on disk 1
        conv = OnlineCode56Conversion(array, 5)
        lba = next(
            i for i in range(conv.capacity_blocks) if conv.locate(i)[2] == 1
        )
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        truth[lba] = payload
        mig.convert_online(
            [OnlineRequest(time=10.0, lba=lba, is_write=True, payload=payload)],
            failures=[DiskFailureEvent(time=0.0, disk=1)],
        )
        r6 = mig.as_raid6()
        r6.rebuild_disks(1)
        assert np.array_equal(r6.read(lba), payload)
        for i in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(i), truth[i])

    def test_degraded_read_served_correctly(self, rng):
        array, data = fresh(rng)
        conv = OnlineCode56Conversion(array, 5)
        report = conv.run(
            [OnlineRequest(time=20.0, lba=3, is_write=False)],
            failures=[DiskFailureEvent(time=0.0, disk=conv.locate(3)[2])],
        )
        # the degraded read cost m-1 ticks instead of 1
        assert report.request_latencies[0] == 3


class TestNewDiskFailure:
    def test_losing_the_diagonal_disk_aborts(self, rng):
        array, _ = fresh(rng)
        conv = OnlineCode56Conversion(array, 5)
        with pytest.raises(RuntimeError, match="diagonal-parity disk"):
            conv.run([], failures=[DiskFailureEvent(time=10.0, disk=4)])

    def test_old_disks_untouched_after_abort(self, rng):
        """The abort leaves a consistent RAID-5 — nothing was destroyed."""
        array, data = fresh(rng)
        before_r5 = array.snapshot()[:4]
        conv = OnlineCode56Conversion(array, 5)
        with pytest.raises(RuntimeError):
            conv.run([], failures=[DiskFailureEvent(time=10.0, disk=4)])
        assert np.array_equal(array.snapshot()[:4], before_r5)
        array.replace_disk(4)
        r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=4)
        assert r5.verify()


class TestBoundaryInstants:
    def test_failure_exactly_on_a_parity_generation_tick(self, rng):
        """The failure instant coincides with a generation completing.

        At p=5 a healthy diagonal-parity generation costs 5 ticks (4 chain
        reads + 1 write), so tick 5.0 is exactly the boundary after the
        first parity: the failure must apply *at* the boundary — the
        completed parity stands, everything later runs degraded.
        """
        array, data = fresh(rng, groups=6)
        mig = Code56Migrator(array, 5)
        report = mig.convert_online(failures=[DiskFailureEvent(time=5.0, disk=1)])
        assert report.failures_survived == 1
        assert report.parities_generated == 6 * 4
        assert report.degraded_reads > 0
        r6 = mig.as_raid6()
        r6.rebuild_disks(1)
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), data[lba])

    def test_diagonal_disk_failure_at_tick_zero(self, rng):
        """Losing the new column before any parity exists still aborts
        cleanly — and a replacement disk restarts from scratch."""
        array, data = fresh(rng)
        before_r5 = array.snapshot()[:4]
        conv = OnlineCode56Conversion(array, 5)
        with pytest.raises(RuntimeError, match="diagonal-parity disk"):
            conv.run([], failures=[DiskFailureEvent(time=0.0, disk=4)])
        assert np.array_equal(array.snapshot()[:4], before_r5)
        array.replace_disk(4)
        retry = OnlineCode56Conversion(array, 5)
        retry.run([])
        assert retry.verify()

    def test_failure_lands_inside_an_app_writes_rmw_window(self, rng):
        """A write and the failure of its home disk share one timestamp.

        Failure events sort before requests at equal times, so the RMW
        runs entirely degraded: the write's home disk is already gone and
        the update must land via reconstruct-write in the parities only.
        """
        array, data = fresh(rng, groups=6)
        truth = data.copy()
        mig = Code56Migrator(array, 5)
        conv_probe = OnlineCode56Conversion(array, 5)
        lba = next(
            i for i in range(conv_probe.capacity_blocks)
            if conv_probe.locate(i)[2] == 2
        )
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        truth[lba] = payload
        report = mig.convert_online(
            [OnlineRequest(time=40.0, lba=lba, is_write=True, payload=payload)],
            failures=[DiskFailureEvent(time=40.0, disk=2)],
        )
        assert report.failures_survived == 1
        r6 = mig.as_raid6()
        r6.rebuild_disks(2)
        assert r6.verify()
        assert np.array_equal(r6.read(lba), payload)
        for i in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(i), truth[i])


class TestVerifyGuards:
    def test_verify_refuses_degraded_array(self, rng):
        array, _ = fresh(rng)
        conv = OnlineCode56Conversion(array, 5)
        conv.run([], failures=[DiskFailureEvent(time=0.0, disk=1)])
        with pytest.raises(RuntimeError, match="rebuild"):
            conv.verify()


class TestJournalWatermarkEdges:
    """Resume edge cases of the OnlineJournal watermark (Algorithm 2)."""

    P, GROUPS = 5, 2
    ROWS = P - 1

    def partial(self, rng, steps):
        """Convert exactly ``steps`` parities through the step API, then
        'crash' by abandoning the converter (journal + array survive)."""
        from repro.faults.journal import OnlineJournal
        from repro.migration.online import OnlineReport

        array, data = fresh(rng, p=self.P, groups=self.GROUPS)
        journal = OnlineJournal(self.GROUPS, self.ROWS)
        conv = OnlineCode56Conversion(array, self.P, journal=journal)
        report = OnlineReport()
        for _ in range(steps):
            conv.generate_step(report)
            conv.mark_step()
        return array, data, journal

    def assert_complete(self, resumed, array, data):
        assert resumed.verify()
        r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=self.P - 1)
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba]), lba

    def test_resume_exactly_at_group_boundary(self, rng):
        """Crash with group 0 fully marked: resume must trust every
        group-0 mark and restart generation at (1, 0), not re-walk or
        re-write anything inside the completed group."""
        array, data, journal = self.partial(rng, steps=self.ROWS)
        assert journal.count() == self.ROWS
        writes_before = array.writes.copy()
        resumed = OnlineCode56Conversion(array, self.P, journal=journal)
        assert resumed.pending_parity() == (1, 0)
        report = resumed.run([])
        # only group 1's parities cost conversion ticks on resume
        assert report.conversion_ticks == self.ROWS * (self.P - 1)
        # exactly one counted parity write per remaining entry
        assert array.writes[-1] - writes_before[-1] == self.ROWS
        self.assert_complete(resumed, array, data)

    def test_resume_after_crash_between_last_mark_and_verify(self, rng):
        """Crash after the final mark but before verify: the journal is
        complete, so resume validates it and performs zero conversion."""
        total = self.GROUPS * self.ROWS
        array, data, journal = self.partial(rng, steps=total)
        assert journal.count() == total
        resumed = OnlineCode56Conversion(array, self.P, journal=journal)
        assert resumed.conversion_done
        assert resumed.pending_parity() is None
        report = resumed.run([])
        assert report.conversion_ticks == 0
        self.assert_complete(resumed, array, data)

    def test_duplicated_mark_replay_is_idempotent(self, rng):
        """A replayed journal tail re-marks entries already marked and
        carries one record whose parity write never landed: duplicates
        are harmless, the stale mark is dropped and regenerated."""
        array, data, journal = self.partial(rng, steps=3)
        for g, r in ((0, 0), (0, 1), (0, 2)):  # the replayed tail
            journal.mark(g, r)
        journal.mark(0, 3)  # record without its parity write
        resumed = OnlineCode56Conversion(array, self.P, journal=journal)
        assert not journal.is_marked(0, 3)  # stale: unmarked on validation
        assert journal.is_marked(0, 2)  # duplicates stayed trusted
        assert resumed.pending_parity() == (0, 3)
        resumed.run([])
        assert journal.count() == self.GROUPS * self.ROWS
        self.assert_complete(resumed, array, data)
