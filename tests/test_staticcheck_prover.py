"""Symbolic GF(2) prover: MDS proofs and the Code 5-6/RAID-5 identity."""

import time

import numpy as np
import pytest

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.codes.registry import CODE_CATALOG, get_layout
from repro.staticcheck.prover import (
    DEFAULT_PRIMES,
    equation_columns,
    prove_code,
    prove_code56_identity,
    prove_mds,
    run_prover,
)
from repro.util.gf2 import gf2_rank


class TestEquationColumns:
    def test_matches_dense_rank(self):
        """The bit-packed H has the same rank as the dense uint8 H."""
        layout = get_layout("rdp", 5)
        columns = equation_columns(layout)
        n_chains = len(layout.chains)
        dense = np.zeros((n_chains, len(columns)), dtype=np.uint8)
        from repro.util.gf2 import Gf2Basis

        for j, vec in enumerate(columns.values()):
            for i in range(n_chains):
                dense[i, j] = (vec >> i) & 1
        assert gf2_rank(dense) == Gf2Basis(columns.values()).rank

    def test_virtual_cells_have_no_column(self):
        layout = get_layout("code56", 7, virtual_cols=(0, 1))
        columns = equation_columns(layout)
        assert not (set(columns) & set(layout.virtual_cells))

    def test_every_physical_cell_has_a_column(self):
        layout = get_layout("evenodd", 5)
        columns = equation_columns(layout)
        expected = layout.rows * layout.n_disks - len(
            [c for c in layout.virtual_cells if c[1] in layout.physical_cols]
        )
        assert len(columns) == expected


class TestMdsProofs:
    @pytest.mark.parametrize("name", sorted(CODE_CATALOG))
    @pytest.mark.parametrize("p", [5, 7])
    def test_catalog_codes_proven(self, name, p):
        checks, findings = prove_code(name, p)
        assert checks > 0
        assert findings == []

    def test_star_proven_at_triple_tolerance(self):
        proof = prove_mds(get_layout("star", 5), tolerance=3)
        assert proof.proven
        assert proof.patterns_checked == 56  # C(8, 3)

    def test_shortened_code56_still_mds(self):
        layout = get_layout("code56", 7, virtual_cols=(0,))
        proof = prove_mds(layout)
        assert proof.proven

    def test_raid6_codes_fail_triple_erasure(self):
        """Sanity: a 2-tolerant code must NOT prove at tolerance 3."""
        proof = prove_mds(get_layout("rdp", 5), tolerance=3)
        assert not proof.proven
        assert proof.failed_patterns

    def test_broken_code_is_flagged(self):
        """Dropping one member breaks a pair erasure (SC-P001/P002)."""
        layout = get_layout("rdp", 5)
        chains = list(layout.chains)
        victim = chains[0]
        chains[0] = ParityChain(victim.parity, victim.members[1:], victim.kind)
        broken = CodeLayout(
            name=layout.name,
            p=layout.p,
            rows=layout.rows,
            cols=layout.cols,
            chains=chains,
        )
        _checks, findings = prove_code("rdp", 5, layout=broken)
        assert findings
        assert all(f.rule in ("SC-P001", "SC-P002") for f in findings)

    def test_non_deterministic_parity_is_flagged(self):
        """A dependent equation drops rank(H) below the parity count."""
        layout = get_layout("rdp", 5)
        chains = list(layout.chains)
        # rewrite chain 1 as row0 XOR row_donor, where the donor is a
        # diagonal chain that carries chain 1's parity as a member: the
        # new row lies in the span of the others, so rank(H) = 7 < 8
        h0, target = chains[0], chains[1]
        donor = next(ch for ch in chains if target.parity in ch.members)
        combo = ({h0.parity, *h0.members}) ^ ({donor.parity, *donor.members})
        chains[1] = ParityChain(
            target.parity, tuple(sorted(combo - {target.parity})), target.kind
        )
        broken = CodeLayout(
            name=layout.name,
            p=layout.p,
            rows=layout.rows,
            cols=layout.cols,
            chains=chains,
        )
        proof = prove_mds(broken)
        assert not proof.deterministic


class TestCode56Identity:
    @pytest.mark.parametrize("orientation", ["left", "right"])
    def test_full_width(self, paper_p, orientation):
        checks, findings = prove_code56_identity(paper_p, orientation)
        assert checks > 0
        assert findings == []

    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_shortened_widths(self, m):
        checks, findings = prove_code56_identity(7, "left", n_disks=m + 1)
        assert findings == []

    def test_wrong_source_layout_breaks_identity(self, monkeypatch):
        """The proof is not vacuous: against the wrong RAID-5 rotation
        the horizontal parities do NOT line up."""
        import repro.staticcheck.prover as prover_mod
        from repro.raid.layouts import Raid5Layout
        from repro.raid.layouts import parity_disk as real_parity_disk

        def flipped(layout, stripe, n):
            flip = {
                Raid5Layout.LEFT_ASYMMETRIC: Raid5Layout.RIGHT_ASYMMETRIC,
                Raid5Layout.RIGHT_ASYMMETRIC: Raid5Layout.LEFT_ASYMMETRIC,
            }[layout]
            return real_parity_disk(flip, stripe, n)

        monkeypatch.setattr(prover_mod, "parity_disk", flipped)
        _checks, findings = prove_code56_identity(5, "left")
        assert any(f.rule == "SC-P010" for f in findings)


class TestFullSweep:
    def test_acceptance_budget(self):
        """MDS for every code, every prime 5..31, plus the identity —
        zero findings, and well under the 60 s CI budget."""
        start = time.perf_counter()
        checks, findings = run_prover(primes=DEFAULT_PRIMES)
        elapsed = time.perf_counter() - start
        assert findings == []
        assert checks > 100_000
        assert elapsed < 60.0
