"""Span tracer: nesting, tracks, disabled no-op path."""

import pytest

from repro import obs
from repro.obs.tracer import Tracer, _NULL_SPAN, get_tracer, set_tracer


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


def test_span_records_on_exit(tracer):
    with tracer.span("work", cat="test", foo=1):
        pass
    assert len(tracer) == 1
    (s,) = tracer.spans
    assert s.name == "work" and s.cat == "test"
    assert s.args == {"foo": 1}
    assert s.dur_s >= 0.0
    assert s.end_s == pytest.approx(s.start_s + s.dur_s)


def test_nesting_contained(tracer):
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans  # inner exits first
    assert inner.name == "inner" and outer.name == "outer"
    assert outer.start_s <= inner.start_s
    assert inner.end_s <= outer.end_s + 1e-9


def test_disabled_is_shared_null_span():
    t = Tracer()  # disabled by default
    span = t.span("work", anything=1)
    assert span is _NULL_SPAN
    with span as s:
        s.set(more=2)  # no-op, no error
    t.instant("marker")
    assert len(t) == 0


def test_set_updates_args(tracer):
    with tracer.span("work", a=1) as s:
        s.set(b=2, a=3)
    assert tracer.spans[0].args == {"a": 3, "b": 2}


def test_error_annotated(tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    assert tracer.spans[0].args["error"] == "RuntimeError"


def test_tracks_default_and_override(tracer):
    with tracer.span("a"):
        pass
    prev = tracer.set_track("conversion")
    assert prev == "main"
    with tracer.span("b"):
        pass
    with tracer.span("c", track="application"):
        pass
    assert [s.track for s in tracer.spans] == ["main", "conversion", "application"]


def test_instant_zero_duration(tracer):
    tracer.instant("failure", disk=3)
    (s,) = tracer.spans
    assert s.dur_s == 0.0 and s.args == {"disk": 3}


def test_queries_and_clear(tracer):
    for _ in range(3):
        with tracer.span("x"):
            pass
    with tracer.span("y"):
        pass
    assert len(tracer.by_name("x")) == 3
    assert tracer.total_s("x") >= 0.0
    tracer.clear()
    assert len(tracer) == 0


def test_enable_disable_toggle(tracer):
    tracer.disable()
    with tracer.span("skipped"):
        pass
    tracer.enable()
    with tracer.span("kept"):
        pass
    assert [s.name for s in tracer.spans] == ["kept"]


def test_default_tracer_swap():
    mine = Tracer(enabled=True)
    prev = set_tracer(mine)
    try:
        assert get_tracer() is mine
    finally:
        set_tracer(prev)
    assert get_tracer() is prev


def test_obs_enable_disable_roundtrip():
    assert not obs.is_enabled()
    obs.enable()
    try:
        assert obs.is_enabled()
        assert get_tracer().enabled
        assert obs.get_registry().enabled
    finally:
        obs.disable()
    assert not obs.is_enabled()
    obs.get_tracer().clear()
    obs.get_registry().clear()
