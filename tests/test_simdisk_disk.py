"""Mechanical disk model."""

import numpy as np
import pytest

from repro.simdisk import DiskModel, PRESETS, get_preset


@pytest.fixture
def disk():
    return PRESETS["sata-7200"]


class TestComponents:
    def test_revolution(self, disk):
        assert disk.revolution_ms == pytest.approx(60000 / 7200)
        assert disk.avg_rotational_ms == pytest.approx(disk.revolution_ms / 2)

    def test_seek_zero_same_cylinder(self, disk):
        assert disk.seek_ms(100, 100) == 0.0

    def test_seek_single_cylinder(self, disk):
        assert disk.seek_ms(0, 1) == pytest.approx(
            disk.single_cyl_seek_ms, rel=0.05
        )

    def test_seek_full_stroke(self, disk):
        assert disk.seek_ms(0, disk.cylinders - 1) == pytest.approx(disk.max_seek_ms)

    def test_seek_monotone_sqrt(self, disk):
        a = disk.seek_ms(0, 100)
        b = disk.seek_ms(0, 400)
        assert a < b < 2 * a + disk.single_cyl_seek_ms  # sqrt growth, not linear

    def test_transfer_time(self, disk):
        assert disk.transfer_ms(4096) == pytest.approx(4096 / 100e6 * 1e3)


class TestServiceTime:
    def test_sequential_streams(self, disk):
        # next block: transfer only
        assert disk.service_ms(999, 1000, 4096) == pytest.approx(disk.transfer_ms(4096))

    def test_random_pays_seek_and_rotation(self, disk):
        t = disk.service_ms(0, 5_000_000, 4096)
        assert t > disk.avg_rotational_ms

    def test_first_request_seeks_from_zero(self, disk):
        t = disk.service_ms(None, 0, 4096)
        assert t == pytest.approx(disk.avg_rotational_ms + disk.transfer_ms(4096))

    def test_short_forward_gap_flies_over(self, disk):
        """Skipping blocks on a track costs their rotational pass, not a
        seek — what makes read-sparse recovery plans viable."""
        t = disk.service_ms(0, 5, 4096)  # same cylinder, gap of 4
        assert t == pytest.approx(5 * disk.transfer_ms(4096))
        assert t < disk.avg_rotational_ms

    def test_long_forward_gap_capped_by_rotation(self, disk):
        t = disk.service_ms(0, 900, 4096)  # same cylinder, huge gap
        assert t == pytest.approx(disk.avg_rotational_ms + disk.transfer_ms(4096))

    def test_backward_same_cylinder_pays_rotation(self, disk):
        t = disk.service_ms(5, 0, 4096)
        assert t == pytest.approx(disk.avg_rotational_ms + disk.transfer_ms(4096))


class TestVectorised:
    def test_matches_scalar_chain(self, disk, rng):
        blocks = rng.integers(0, 1_000_000, size=300)
        # sprinkle sequential runs
        blocks[50:80] = np.arange(30) + 12345
        vec = disk.service_ms_vector(blocks, 4096)
        prev = None
        for i, b in enumerate(blocks):
            expect = disk.service_ms(prev, int(b), 4096)
            assert vec[i] == pytest.approx(expect), i
            prev = int(b)

    def test_empty(self, disk):
        assert disk.service_ms_vector(np.array([], dtype=np.int64), 4096).size == 0

    def test_first_mask_splits_into_fresh_sequences(self, disk, rng):
        """One call over concatenated queues == one call per queue."""
        a = rng.integers(0, 1_000_000, size=40)
        b = rng.integers(0, 1_000_000, size=25)
        joined = np.concatenate([a, b])
        first = np.zeros(joined.size, dtype=bool)
        first[0] = first[a.size] = True
        vec = disk.service_ms_vector(joined, 4096, first=first)
        assert np.allclose(vec[: a.size], disk.service_ms_vector(a, 4096))
        assert np.allclose(vec[a.size :], disk.service_ms_vector(b, 4096))

    def test_first_mask_default_is_index_zero(self, disk, rng):
        blocks = rng.integers(0, 1_000_000, size=50)
        first = np.zeros(blocks.size, dtype=bool)
        first[0] = True
        assert np.allclose(
            disk.service_ms_vector(blocks, 4096, first=first),
            disk.service_ms_vector(blocks, 4096),
        )


class TestPresets:
    def test_known_presets(self):
        for name in ("sata-7200", "sas-10k", "sas-15k"):
            assert get_preset(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_preset("floppy")

    def test_faster_tiers_serve_faster(self):
        t = {
            name: get_preset(name).service_ms(0, 10_000_000, 4096)
            for name in PRESETS
        }
        assert t["sas-15k"] < t["sas-10k"] < t["sata-7200"]
