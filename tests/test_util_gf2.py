"""Unit tests for GF(2) linear algebra."""

import numpy as np
import pytest

from repro.util.gf2 import gf2_elimination, gf2_inverse, gf2_rank, gf2_solve


def _random_invertible(rng, n):
    while True:
        a = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        if gf2_rank(a) == n:
            return a


class TestElimination:
    def test_identity_passthrough(self):
        eye = np.eye(4, dtype=np.uint8)
        rref, t, pivots = gf2_elimination(eye)
        assert np.array_equal(rref, eye)
        assert pivots == [0, 1, 2, 3]

    def test_transform_reproduces_rref(self, rng):
        a = rng.integers(0, 2, size=(6, 4), dtype=np.uint8)
        rref, t, _ = gf2_elimination(a)
        assert np.array_equal((t @ a) % 2, rref)

    def test_does_not_mutate_input(self):
        a = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        before = a.copy()
        gf2_elimination(a)
        assert np.array_equal(a, before)


class TestRank:
    def test_full_rank(self):
        a = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 1]], dtype=np.uint8)
        assert gf2_rank(a) == 3

    def test_dependent_rows(self):
        a = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # row3 = row1 ^ row2
        assert gf2_rank(a) == 2

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 3), dtype=np.uint8)) == 0


class TestSolve:
    def test_known_system(self):
        a = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        # singular over GF(2): rows sum to zero
        assert gf2_solve(a, np.array([1, 0, 1], dtype=np.uint8)) is None

    def test_random_roundtrip(self, rng):
        for n in (2, 4, 7):
            a = _random_invertible(rng, n)
            x = rng.integers(0, 2, size=n, dtype=np.uint8)
            b = (a @ x) % 2
            got = gf2_solve(a, b)
            assert got is not None
            assert np.array_equal(got, x)

    def test_overdetermined_consistent(self, rng):
        a = _random_invertible(rng, 4)
        x = rng.integers(0, 2, size=4, dtype=np.uint8)
        extra = (a[0] ^ a[1]).reshape(1, -1)
        big = np.vstack([a, extra])
        b = (big @ x) % 2
        got = gf2_solve(big, b)
        assert np.array_equal(got, x)

    def test_overdetermined_inconsistent(self, rng):
        a = _random_invertible(rng, 4)
        x = rng.integers(0, 2, size=4, dtype=np.uint8)
        big = np.vstack([a, (a[0] ^ a[1]).reshape(1, -1)])
        b = (big @ x) % 2
        b[-1] ^= 1
        assert gf2_solve(big, b) is None

    def test_underdetermined_returns_none(self):
        a = np.array([[1, 0, 1]], dtype=np.uint8)
        assert gf2_solve(a, np.array([1], dtype=np.uint8)) is None


class TestInverse:
    def test_roundtrip(self, rng):
        a = _random_invertible(rng, 5)
        inv = gf2_inverse(a)
        assert inv is not None
        assert np.array_equal((inv @ a) % 2, np.eye(5, dtype=np.uint8))

    def test_singular(self):
        a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert gf2_inverse(a) is None

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))
