"""Unit tests for GF(2) linear algebra."""

import numpy as np
import pytest

from repro.util.gf2 import (
    Gf2Basis,
    gf2_elimination,
    gf2_inverse,
    gf2_rank,
    gf2_rank_ints,
    gf2_solve,
)


def _random_invertible(rng, n):
    while True:
        a = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        if gf2_rank(a) == n:
            return a


class TestElimination:
    def test_identity_passthrough(self):
        eye = np.eye(4, dtype=np.uint8)
        rref, t, pivots = gf2_elimination(eye)
        assert np.array_equal(rref, eye)
        assert pivots == [0, 1, 2, 3]

    def test_transform_reproduces_rref(self, rng):
        a = rng.integers(0, 2, size=(6, 4), dtype=np.uint8)
        rref, t, _ = gf2_elimination(a)
        assert np.array_equal((t @ a) % 2, rref)

    def test_does_not_mutate_input(self):
        a = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        before = a.copy()
        gf2_elimination(a)
        assert np.array_equal(a, before)


class TestRank:
    def test_full_rank(self):
        a = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 1]], dtype=np.uint8)
        assert gf2_rank(a) == 3

    def test_dependent_rows(self):
        a = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # row3 = row1 ^ row2
        assert gf2_rank(a) == 2

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 3), dtype=np.uint8)) == 0


class TestSolve:
    def test_known_system(self):
        a = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        # singular over GF(2): rows sum to zero
        assert gf2_solve(a, np.array([1, 0, 1], dtype=np.uint8)) is None

    def test_random_roundtrip(self, rng):
        for n in (2, 4, 7):
            a = _random_invertible(rng, n)
            x = rng.integers(0, 2, size=n, dtype=np.uint8)
            b = (a @ x) % 2
            got = gf2_solve(a, b)
            assert got is not None
            assert np.array_equal(got, x)

    def test_overdetermined_consistent(self, rng):
        a = _random_invertible(rng, 4)
        x = rng.integers(0, 2, size=4, dtype=np.uint8)
        extra = (a[0] ^ a[1]).reshape(1, -1)
        big = np.vstack([a, extra])
        b = (big @ x) % 2
        got = gf2_solve(big, b)
        assert np.array_equal(got, x)

    def test_overdetermined_inconsistent(self, rng):
        a = _random_invertible(rng, 4)
        x = rng.integers(0, 2, size=4, dtype=np.uint8)
        big = np.vstack([a, (a[0] ^ a[1]).reshape(1, -1)])
        b = (big @ x) % 2
        b[-1] ^= 1
        assert gf2_solve(big, b) is None

    def test_underdetermined_returns_none(self):
        a = np.array([[1, 0, 1]], dtype=np.uint8)
        assert gf2_solve(a, np.array([1], dtype=np.uint8)) is None


class TestInverse:
    def test_roundtrip(self, rng):
        a = _random_invertible(rng, 5)
        inv = gf2_inverse(a)
        assert inv is not None
        assert np.array_equal((inv @ a) % 2, np.eye(5, dtype=np.uint8))

    def test_singular(self):
        a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert gf2_inverse(a) is None

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))


def _pack_rows(a):
    """Rows of a dense 0/1 matrix as bit-packed ints (bit j = column j)."""
    return [int(sum(int(v) << j for j, v in enumerate(row))) for row in a]


class TestGf2Basis:
    def test_rank_matches_dense_on_random_matrices(self, rng):
        for shape in ((4, 4), (6, 10), (10, 6), (1, 8), (8, 1)):
            a = rng.integers(0, 2, size=shape, dtype=np.uint8)
            assert gf2_rank_ints(_pack_rows(a)) == gf2_rank(a), shape

    def test_add_reports_independence(self):
        basis = Gf2Basis()
        assert basis.add(0b101)
        assert basis.add(0b011)
        assert not basis.add(0b110)  # XOR of the first two
        assert basis.rank == 2

    def test_zero_vector_never_added(self):
        basis = Gf2Basis([0b1])
        assert not basis.add(0)
        assert basis.rank == 1

    def test_reduce_returns_residual(self):
        basis = Gf2Basis([0b100, 0b010])
        assert basis.reduce(0b111) == 0b001
        assert basis.reduce(0b110) == 0

    def test_contains_is_span_membership(self):
        basis = Gf2Basis([0b101, 0b011])
        assert 0b110 in basis
        assert 0 in basis
        assert 0b100 not in basis

    def test_incremental_matches_bulk_construction(self, rng):
        vectors = [int(v) for v in rng.integers(0, 1 << 12, size=20)]
        bulk = Gf2Basis(vectors)
        inc = Gf2Basis()
        for v in vectors:
            inc.add(v)
        assert bulk.rank == inc.rank
        for v in vectors:
            assert (v in bulk) == (v in inc)

    def test_duplicate_vectors_do_not_inflate_rank(self):
        assert gf2_rank_ints([0b11, 0b11, 0b11]) == 1
