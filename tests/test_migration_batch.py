"""Batched online conversion: fused runs, group commit, overlap check.

The contract under test is strict equivalence: for every batch budget,
the batched converter must be **byte-identical** to the audited
per-parity path — same final array, same per-disk I/O counters, same
foreground latencies and stalls — while spending fewer journal flushes
(one ``mark_many`` per run).  Crash/resume at and inside run boundaries
rides the chaos sweep; degraded arrays must fall back to the audited
generator without losing the run/mark protocol.
"""

import numpy as np
import pytest

from repro.faults.journal import OnlineJournal
from repro.migration import build_plan, prepare_source_array
from repro.migration.batch import fused_run_usable, run_read_credit
from repro.migration.online import OnlineCode56Conversion, OnlineRequest


def _online_array(p=5, groups=2, seed=0, block_size=8):
    plan = build_plan("code56", "direct", p, groups=groups)
    array, _data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    return array


def _requests(p=5, groups=2, seed=1, n=12, block_size=8):
    rng = np.random.default_rng(seed)
    capacity = groups * (p - 1) * (p - 2)
    reqs, t = [], 0.0
    for _ in range(n):
        t += float(rng.integers(1, 6))
        is_write = bool(rng.random() < 0.7)
        reqs.append(OnlineRequest(
            time=t,
            lba=int(rng.integers(capacity)),
            is_write=is_write,
            payload=(rng.integers(0, 256, size=block_size, dtype=np.uint8)
                     if is_write else None),
        ))
    return reqs


class TestQuietBatchedIdentity:
    """No application traffic: fused runs == audited path, exactly."""

    @pytest.mark.parametrize("batch", [2, 4, 8])
    def test_bytes_counters_and_ticks_identical(self, batch):
        ref = _online_array()
        ref_report = OnlineCode56Conversion(ref, 5).run([])

        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=batch)
        report = conv.run([])

        assert conv.verify()
        assert np.array_equal(ref.snapshot(), arr.snapshot())
        assert np.array_equal(ref.reads, arr.reads)
        assert np.array_equal(ref.writes, arr.writes)
        assert report.conversion_ticks == ref_report.conversion_ticks
        assert report.parities_generated == ref_report.parities_generated

    def test_batched_report_accounting(self):
        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=4)
        report = conv.run([])
        assert report.runs_committed == 2  # 8 parities / budget 4
        assert report.max_run == 4
        assert report.kernel == conv.kernel.name

    def test_per_parity_report_kernel_label(self):
        arr = _online_array()
        report = OnlineCode56Conversion(arr, 5, batch=1).run([])
        assert report.kernel == "per-parity"
        assert report.runs_committed == 0

    def test_group_commit_is_one_flush_per_run(self):
        journal = OnlineJournal(2, 4)
        arr = _online_array()
        OnlineCode56Conversion(arr, 5, journal=journal, batch=4).run([])
        assert journal.appends == 2
        assert journal.count() == 8

        per_parity = OnlineJournal(2, 4)
        arr2 = _online_array()
        OnlineCode56Conversion(arr2, 5, journal=per_parity, batch=1).run([])
        assert per_parity.appends == 8


class TestBatchedUnderWrites:
    """Application traffic: byte identity AND identical foreground latency."""

    @pytest.mark.parametrize("batch", [2, 3, 4, 24])
    def test_identical_to_per_parity(self, batch):
        reqs = _requests()
        ref = _online_array()
        ref_report = OnlineCode56Conversion(ref, 5).run(reqs)

        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=batch)
        report = conv.run(reqs)

        assert conv.verify()
        assert np.array_equal(ref.snapshot(), arr.snapshot())
        # the deadline-shrunk batch claims exactly the per-parity
        # schedule's work per interval, so the foreground (stall +
        # service) is not merely "no worse" — it is identical
        assert report.request_latencies == ref_report.request_latencies
        assert report.request_stalls == ref_report.request_stalls

    def test_shrinks_are_counted(self):
        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=24)
        report = conv.run(_requests())
        assert report.batch_shrinks > 0
        assert report.max_run <= 24


class TestDegradedFallback:
    """Fault plane / failed disks force the audited per-parity generator."""

    def test_fused_unusable_on_failed_disk(self):
        arr = _online_array()
        arr.fail_disk(1)
        assert not fused_run_usable(arr)

    def test_fused_usable_on_healthy_array(self):
        assert fused_run_usable(_online_array())

    def test_degraded_batched_matches_degraded_per_parity(self):
        ref = _online_array()
        ref.fail_disk(1)
        ref_report = OnlineCode56Conversion(ref, 5).run([])

        arr = _online_array()
        arr.fail_disk(1)
        conv = OnlineCode56Conversion(arr, 5, batch=4)
        report = conv.run([])

        assert np.array_equal(ref.snapshot(), arr.snapshot())
        assert report.degraded_reads == ref_report.degraded_reads
        assert report.conversion_ticks == ref_report.conversion_ticks
        assert report.runs_committed == 2  # run/mark protocol survives fallback


class TestRunProtocol:
    """The explicit run transitions the model checker drives."""

    def test_pending_run_is_pure(self):
        conv = OnlineCode56Conversion(_online_array(), 5, batch=4)
        first = conv.pending_run()
        assert first == ((0, 0), (0, 1), (0, 2), (0, 3))
        assert conv.pending_run() == first  # no cursor movement
        assert conv.pending_run(budget=2) == first[:2]

    def test_generate_twice_without_mark_raises(self):
        from repro.migration.online import OnlineReport

        conv = OnlineCode56Conversion(_online_array(), 5, batch=2)
        conv.generate_run_step(OnlineReport())
        with pytest.raises(RuntimeError):
            conv.generate_run_step(OnlineReport())

    def test_mark_without_run_raises(self):
        conv = OnlineCode56Conversion(_online_array(), 5, batch=2)
        with pytest.raises(RuntimeError):
            conv.mark_run_step()

    def test_run_overlap_membership(self):
        from repro.migration.online import OnlineReport

        conv = OnlineCode56Conversion(_online_array(), 5, batch=3)
        assert not conv.run_overlaps(0, 0)  # nothing in flight
        conv.generate_run_step(OnlineReport())
        assert conv.in_flight_run == ((0, 0), (0, 1), (0, 2))
        assert conv.run_overlaps(0, 1)
        assert not conv.run_overlaps(0, 3)  # past the run interval
        assert not conv.run_overlaps(1, 0)
        conv.mark_run_step()
        assert conv.in_flight_run is None
        assert not conv.run_overlaps(0, 1)

    def test_thread_state_roundtrip_with_run(self):
        from repro.migration.online import OnlineReport

        conv = OnlineCode56Conversion(_online_array(), 5, batch=2)
        conv.generate_run_step(OnlineReport())
        saved = conv.thread_state()
        assert saved[2] == ((0, 0), (0, 1))
        conv.mark_run_step()
        conv.restore_thread_state(saved)
        assert conv.in_flight_run == ((0, 0), (0, 1))
        assert conv.run_overlaps(0, 0)
        conv.mark_run_step()  # restored run is committable

    def test_gapped_run_skips_generated_entries(self):
        """A run claimed around already-generated parities exercises the
        fancy-indexed (non-contiguous) fused gather."""
        from repro.migration.online import OnlineReport

        ref = _online_array()
        OnlineCode56Conversion(ref, 5).run([])

        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=8)
        report = OnlineReport()
        # pre-generate (0,1) and (0,2) per-parity, leaving a gap
        conv._generated[0, 1] = True
        conv._generated[0, 2] = True
        run = conv.pending_run()
        assert run[:2] == ((0, 0), (0, 3))
        conv.generate_run_step(report)
        conv.mark_run_step()
        # regenerate the two skipped entries so bytes are complete
        conv._generated[0, 1] = False
        conv._generated[0, 2] = False
        conv._cursor = 0
        conv.generate_run_step(report)
        conv.mark_run_step()
        assert conv.verify()
        assert np.array_equal(ref.snapshot(), arr.snapshot())

    def test_batch_zero_rejected(self):
        with pytest.raises(ValueError):
            OnlineCode56Conversion(_online_array(), 5, batch=0)


class TestReadCredit:
    def test_credit_matches_audited_reads(self):
        arr = _online_array()
        ref = _online_array()
        OnlineCode56Conversion(ref, 5, batch=1).run([])
        OnlineCode56Conversion(arr, 5, batch=8).run([])
        run = tuple((g, r) for g in range(2) for r in range(4))
        credit = run_read_credit(arr, 5, run)
        assert credit.sum() == 8 * 3  # (p-2) chain reads per parity
        assert np.array_equal(arr.reads, ref.reads)


class TestCrashResumeAtRunBoundaries:
    """Chaos sweep with batch > 1: crashes land inside commit windows."""

    @pytest.mark.parametrize("batch", [2, 4])
    def test_sweep_is_clean(self, batch):
        from repro.faults.chaos import crash_sweep_online

        report = crash_sweep_online(
            5, groups=2, schedules=2, batch=batch, sample=8
        )
        assert report["ok"], report["failures"]
        assert report["batch"] == batch

    def test_soak_spec_replays(self):
        from repro.faults.chaos import _online_single, replay_scenario
        from repro.faults.spec import FaultScenario

        scenario = FaultScenario(seed=3).with_crash(9, 0.5)
        spec = {
            "kind": "online-crash", "p": 5, "groups": 2, "block_size": 8,
            "seed": 3, "schedule": 1, "n_requests": 6, "batch": 4,
            "scenario": scenario.to_dict(),
        }
        direct = _online_single(
            5, 2, 3, 1, 8, scenario, None, n_requests=6, batch=4
        )
        assert direct["ok"]
        assert replay_scenario(spec)["ok"]


class TestObsBridge:
    def test_record_online_report_histogram(self):
        from repro.obs import record_online_report
        from repro.obs.metrics import MetricsRegistry

        arr = _online_array()
        conv = OnlineCode56Conversion(arr, 5, batch=4)
        report = conv.run(_requests())
        registry = MetricsRegistry()
        registry.enabled = True
        record_online_report(report, registry)
        kernel = report.kernel
        hist = registry.histogram(
            "online.request_latency_ticks",
            kernel=kernel,
        )
        assert hist.count == len(report.request_latencies)
        foreground = [s + l for s, l in
                      zip(report.request_stalls, report.request_latencies)]
        assert hist.sum == pytest.approx(sum(foreground))
        p99 = registry.gauge("online.request_latency_ticks.p99", kernel=kernel)
        assert p99.value >= 0.0
        snap = registry.snapshot()
        assert any(
            h["name"] == "online.request_latency_ticks"
            for h in snap["histograms"]
        )
