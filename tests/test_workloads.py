"""Traces and generators."""

import numpy as np
import pytest

from repro.migration import build_plan
from repro.migration.approaches import alignment_cycle
from repro.migration.ops import OpKind
from repro.workloads import (
    Trace,
    conversion_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)


class TestTraceContainer:
    def test_from_lists(self):
        t = Trace.from_lists([(0.0, 1, 100, False), (1.0, 0, 5, True)], block_size=8192)
        assert len(t) == 2
        assert t.reads == 1 and t.writes == 1
        assert t.n_disks == 2
        assert t.block_size == 8192

    def test_from_empty(self):
        t = Trace.from_lists([])
        assert len(t) == 0
        assert t.n_disks == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                arrival_ms=np.zeros(2),
                disk=np.zeros(1, dtype=np.int32),
                block=np.zeros(2, dtype=np.int64),
                is_write=np.zeros(2, dtype=bool),
            )

    def test_save_load_roundtrip(self, tmp_path, rng):
        t = uniform_trace(rng, 50, 4, 1000)
        path = tmp_path / "trace.npz"
        t.save(path)
        back = Trace.load(path)
        assert np.array_equal(back.disk, t.disk)
        assert np.array_equal(back.block, t.block)
        assert np.array_equal(back.is_write, t.is_write)
        assert back.block_size == t.block_size

    def test_per_disk_blocks_stable_order(self):
        t = Trace.from_lists(
            [(0.0, 0, 5, False), (0.0, 0, 3, False), (0.0, 1, 7, False)]
        )
        assert list(t.per_disk_blocks(0)) == [5, 3]

    def test_describe(self, rng):
        assert "reqs" in uniform_trace(rng, 5, 2, 10).describe()


class TestConversionTrace:
    def test_request_count_matches_plan(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        t = conversion_trace(plan)
        ios = sum(1 for op in plan.ops if op.kind is not OpKind.TRIM)
        assert len(t) == ios
        assert t.reads == plan.read_ios
        assert t.writes == plan.write_ios

    def test_tiling_scales_requests(self):
        plan = build_plan("code56", "direct", 5, groups=1)
        t = conversion_trace(plan, total_data_blocks=plan.data_blocks * 7)
        assert len(t) == 7 * plan.total_ios
        assert t.meta["tiles"] == 7

    def test_tiles_do_not_collide(self):
        plan = build_plan("code56", "direct", 5, groups=1)
        t = conversion_trace(plan, total_data_blocks=plan.data_blocks * 3)
        keys = set(zip(t.disk.tolist(), t.block.tolist(), t.is_write.tolist()))
        assert len(keys) == len(t)  # every (disk, block, rw) unique

    def test_phase_major_ordering(self):
        """All degrade ops across tiles precede all upgrade ops."""
        plan = build_plan("rdp", "via-raid4", 5, groups=1)
        t = conversion_trace(plan, total_data_blocks=plan.data_blocks * 3)
        # phase 0 of via-raid4 = parity migrations: read old slot + write
        # to the new row-parity disk (disk m). The first third of the
        # trace must contain every write to disk m's migration region.
        writes_disk4 = np.flatnonzero((t.disk == 4) & t.is_write)
        n_phase0_writes = 3 * plan.m  # one per row per tile... p-1 rows
        assert (writes_disk4[: n_phase0_writes] < len(t) // 2).all()

    def test_lb_rotation_spreads_parity_writes(self):
        plan = build_plan("code56", "direct", 5, groups=4)
        nlb = conversion_trace(plan, total_data_blocks=plan.data_blocks * 8)
        lb = conversion_trace(
            plan, total_data_blocks=plan.data_blocks * 8, lb_rotation_period=4
        )
        nlb_write_disks = set(nlb.disk[nlb.is_write].tolist())
        lb_write_disks = set(lb.disk[lb.is_write].tolist())
        assert nlb_write_disks == {4}
        assert len(lb_write_disks) > 1

    def test_bad_rotation_period(self):
        plan = build_plan("code56", "direct", 5, groups=1)
        with pytest.raises(ValueError):
            conversion_trace(plan, lb_rotation_period=0)

    def test_conversion_reads_are_sequential_per_disk(self):
        plan = build_plan("code56", "direct", 5, groups=4)
        t = conversion_trace(plan)
        for d in range(4):  # data disks
            blocks = t.per_disk_blocks(d)
            assert (np.diff(blocks) >= 0).all()  # monotone scan


class TestSyntheticTraces:
    def test_uniform_bounds(self, rng):
        t = uniform_trace(rng, 500, 4, 1000, read_fraction=0.8)
        assert t.disk.max() < 4
        assert t.block.max() < 1000
        assert 0.6 < t.reads / len(t) < 0.95
        assert (np.diff(t.arrival_ms) >= 0).all()

    def test_zipf_skews_hot_blocks(self, rng):
        t = zipf_trace(rng, 2000, 4, 10_000, skew=1.5)
        flat = t.disk.astype(np.int64) + 4 * t.block
        _, counts = np.unique(flat, return_counts=True)
        assert counts.max() > 10  # a genuinely hot block exists

    def test_sequential_walks_stripes(self):
        t = sequential_trace(12, 4)
        assert list(t.disk[:4]) == [0, 1, 2, 3]
        assert list(t.block[:8]) == [0, 0, 0, 0, 1, 1, 1, 1]


class TestRebuildTrace:
    def test_counts_match_plan(self):
        from repro.codes import get_layout
        from repro.core import plan_generic_hybrid_recovery
        from repro.workloads.rebuild import rebuild_trace

        lay = get_layout("code56", 5)
        h = plan_generic_hybrid_recovery(lay, 1)
        t = rebuild_trace(lay, h.plan, 1, groups=10)
        assert t.reads == 10 * h.reads
        assert t.writes == 10 * (lay.rows)  # whole column rewritten

    def test_writes_target_replacement_disk(self):
        from repro.codes import get_layout
        from repro.core import plan_generic_hybrid_recovery
        from repro.workloads.rebuild import rebuild_trace

        lay = get_layout("rdp", 5)
        h = plan_generic_hybrid_recovery(lay, 2)
        t = rebuild_trace(lay, h.plan, 2, groups=4)
        assert set(t.disk[t.is_write].tolist()) == {2}
        assert 2 not in set(t.disk[~t.is_write].tolist())

    def test_rejects_mismatched_plan(self):
        import pytest

        from repro.codes import get_layout
        from repro.core import plan_generic_hybrid_recovery
        from repro.workloads.rebuild import rebuild_trace

        lay = get_layout("code56", 5)
        h = plan_generic_hybrid_recovery(lay, 1)
        with pytest.raises(ValueError):
            rebuild_trace(lay, h.plan, 2, groups=4)


class TestDisksimFormat:
    def test_roundtrip(self, tmp_path, rng):
        from repro.workloads import load_disksim, save_disksim, uniform_trace

        t = uniform_trace(rng, 40, 4, 1000, block_size=4096)
        path = tmp_path / "migration.trace"
        save_disksim(t, path)
        back = load_disksim(path, block_size=4096)
        assert np.array_equal(back.disk, t.disk)
        assert np.array_equal(back.block, t.block)
        assert np.array_equal(back.is_write, t.is_write)
        assert np.allclose(back.arrival_ms, t.arrival_ms, atol=1e-5)

    def test_format_fields(self, tmp_path):
        from repro.workloads import Trace, save_disksim

        t = Trace.from_lists([(1.5, 2, 7, False)], block_size=4096)
        path = tmp_path / "one.trace"
        save_disksim(t, path)
        fields = path.read_text().split()
        # arrival, devno, sector (7 * 8 sectors of 512B), size, read flag
        assert fields == ["1.500000", "2", "56", "8", "1"]

    def test_skips_comments(self, tmp_path):
        from repro.workloads import load_disksim

        path = tmp_path / "c.trace"
        path.write_text("# header\n0.0 1 8 8 0\n\n")
        t = load_disksim(path, block_size=4096)
        assert len(t) == 1
        assert t.is_write[0]
        assert t.block[0] == 1
