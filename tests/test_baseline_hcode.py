"""H-Code baseline (Wu et al., IPDPS'11)."""

import itertools

import numpy as np
import pytest

from repro.codes import certify_mds, get_code, hcode_layout
from repro.codes.geometry import CellKind
from repro.codes.hcode import anti_diagonal_parity_cell


class TestGeometry:
    def test_shape(self):
        lay = hcode_layout(5)
        assert (lay.rows, lay.cols) == (4, 6)

    def test_dedicated_horizontal_column(self):
        p = 7
        lay = hcode_layout(p)
        for i in range(p - 1):
            assert lay.kind((i, p)) is CellKind.HORIZONTAL

    def test_anti_parities_fill_one_antidiagonal(self):
        p = 7
        lay = hcode_layout(p)
        for i in range(p - 1):
            cell = anti_diagonal_parity_cell(p, i)
            assert cell == (i, p - 1 - i)
            assert (cell[0] + cell[1]) % p == p - 1
            assert lay.kind(cell) is CellKind.DIAGONAL

    def test_column_zero_is_parity_free(self):
        p = 7
        lay = hcode_layout(p)
        assert all(lay.kind((r, 0)) is CellKind.DATA for r in range(p - 1))

    def test_anti_chains_are_data_only(self):
        p = 7
        lay = hcode_layout(p)
        for i in range(p - 1):
            chain = lay.chain_of_parity[anti_diagonal_parity_cell(p, i)]
            assert all(m not in lay.parity_cells for m in chain.members)
            assert len(chain.members) == p - 1

    def test_update_optimal(self):
        """H-Code's claim: optimal update complexity everywhere."""
        lay = hcode_layout(7)
        assert all(lay.update_penalty(c) == 2 for c in lay.data_cells)


class TestCorrectness:
    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(hcode_layout(p)).is_mds

    def test_roundtrip_all_pairs(self, rng, paper_p):
        p = paper_p
        code = get_code("hcode", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        for f1, f2 in itertools.combinations(range(p + 1), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)

    def test_shortening_only_column_zero(self):
        assert certify_mds(hcode_layout(7, virtual_cols=(0,))).is_mds
        with pytest.raises(ValueError):
            hcode_layout(7, virtual_cols=(2,))
