"""Explicit-seed contract of the workload generators.

Every stochastic generator takes its seed as the first argument and holds
no module state, so the same (generator, seed) pair must produce
bit-identical traces anywhere — including in a freshly spawned process,
which is exactly how sweep workers replay them.  The child helper is at
module level for the spawn context's re-import.
"""

import hashlib
import multiprocessing as mp

import numpy as np
import pytest

from repro.workloads import sequential_trace, uniform_trace, zipf_trace

SPAWN = mp.get_context("spawn")


def _trace_digest(kind: str, seed: int) -> str:
    gen = {"uniform": uniform_trace, "zipf": zipf_trace}[kind]
    trace = gen(seed, 500, 7, 1000)
    payload = (
        trace.arrival_ms.tobytes()
        + trace.disk.tobytes()
        + trace.block.tobytes()
        + trace.is_write.tobytes()
    )
    return hashlib.sha256(payload).hexdigest()


def _child_digest(kind, seed, queue):
    queue.put(_trace_digest(kind, seed))


class TestExplicitSeeds:
    @pytest.mark.parametrize("kind", ["uniform", "zipf"])
    def test_same_seed_same_trace_in_process(self, kind):
        assert _trace_digest(kind, 123) == _trace_digest(kind, 123)

    @pytest.mark.parametrize("kind", ["uniform", "zipf"])
    def test_different_seed_different_trace(self, kind):
        assert _trace_digest(kind, 1) != _trace_digest(kind, 2)

    @pytest.mark.parametrize("kind", ["uniform", "zipf"])
    def test_same_seed_identical_across_processes(self, kind):
        queue = SPAWN.Queue()
        proc = SPAWN.Process(target=_child_digest, args=(kind, 777, queue))
        proc.start()
        child = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert child == _trace_digest(kind, 777)

    def test_generator_instance_passes_through(self):
        rng = np.random.default_rng(5)
        a = uniform_trace(rng, 100, 3, 50)
        b = uniform_trace(np.random.default_rng(5), 100, 3, 50)
        np.testing.assert_array_equal(a.block, b.block)

    def test_sequential_is_seed_free_and_deterministic(self):
        a = sequential_trace(100, 4)
        b = sequential_trace(100, 4)
        np.testing.assert_array_equal(a.disk, b.disk)
        np.testing.assert_array_equal(a.block, b.block)
