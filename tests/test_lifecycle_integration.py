"""Full-lifecycle integration: the aging-datacenter story on one array.

One array lives through the whole narrative the paper motivates:

  format RAID-5 → serve I/O → suffer silent corruption (detected only)
  → migrate online to Code 5-6 RAID-6 while serving writes and surviving
  a disk failure → rebuild → scrub heals fresh corruption → survive a
  double failure → downgrade back to RAID-5 — with bit-exact data at
  every checkpoint.
"""

import numpy as np
import pytest

from repro.core import Code56Migrator
from repro.migration import DiskFailureEvent, OnlineRequest
from repro.raid import (
    BlockArray,
    Raid5Array,
    Raid5Layout,
    scrub_raid5,
    scrub_raid6,
)


@pytest.mark.parametrize("p", [5, 7])
def test_full_lifecycle(p, rng):
    m = p - 1
    groups = 12
    bs = 32
    array = BlockArray(m, groups * (p - 1), block_size=bs)
    raid5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    truth = rng.integers(0, 256, size=(raid5.capacity_blocks, bs), dtype=np.uint8)
    raid5.format_with(truth)

    # --- era 1: RAID-5 service -------------------------------------------
    for _ in range(20):
        lba = int(rng.integers(0, len(truth)))
        payload = rng.integers(0, 256, size=bs, dtype=np.uint8)
        raid5.write(lba, payload)
        truth[lba] = payload
    assert raid5.verify()

    # silent corruption: RAID-5 can detect but not locate
    array.raw(1, 3)[0] ^= 0x08
    report5 = scrub_raid5(raid5)
    assert report5.inconsistent_stripes == [3]
    # operator repairs by rewriting the stripe from a backup of the row
    # (here: recompute parity, i.e. accept the data as-is)
    pd = raid5.parity_disk(3)
    acc = np.zeros(bs, dtype=np.uint8)
    for d in range(m):
        if d != pd:
            np.bitwise_xor(acc, array.raw(d, 3), out=acc)
    array.raw(pd, 3)[...] = acc
    # refresh the ground truth for whatever block the flip landed in
    for k in range(m - 1):
        lba = raid5.logical_of(3, d) if (d := raid5.data_disk_of(3, k)) is not None else None
        if lba is not None:
            truth[lba] = array.raw(d, 3)
    assert raid5.verify()

    # --- era 2: online migration under load with a failure ----------------
    mig = Code56Migrator(array, p)
    mig.check_source()
    mig.add_parity_disk()
    requests = []
    t = 0.0
    for _ in range(30):
        t += float(rng.exponential(10.0))
        lba = int(rng.integers(0, len(truth)))
        payload = rng.integers(0, 256, size=bs, dtype=np.uint8)
        truth[lba] = payload
        requests.append(OnlineRequest(time=t, lba=lba, is_write=True, payload=payload))
    report = mig.convert_online(
        requests, failures=[DiskFailureEvent(time=t / 2, disk=m - 1)]
    )
    assert report.failures_survived == 1

    raid6 = mig.as_raid6()
    raid6.rebuild_disks(m - 1)
    assert raid6.verify()
    for lba in range(raid6.capacity_blocks):
        assert np.array_equal(raid6.read(lba), truth[lba])

    # --- era 3: RAID-6 service, healing, double failure -------------------
    cell = raid6.code.layout.data_cells[5]
    disk = raid6.disk_of(2, cell[1])
    array.raw(disk, raid6.block_of(2, cell[0]))[1] ^= 0x80
    heal = scrub_raid6(raid6)
    assert heal.repaired == [(2, cell)]
    assert raid6.verify()

    array.fail_disk(0)
    array.fail_disk(2)
    sample = rng.integers(0, raid6.capacity_blocks, size=25)
    for lba in sample:
        assert np.array_equal(raid6.read(int(lba)), truth[int(lba)])
    raid6.rebuild_disks(0, 2)
    assert raid6.verify()

    # --- era 4: back to RAID-5 -------------------------------------------
    raid5_again = mig.revert()
    assert raid5_again.verify()
    for lba in range(raid5_again.capacity_blocks):
        assert np.array_equal(raid5_again.read(lba), truth[lba])
