"""RDP baseline (Corbett et al., FAST'04)."""

import itertools

import numpy as np
import pytest

from repro.codes import ArrayCode, CellKind, certify_mds, get_code, rdp_layout


class TestGeometry:
    def test_shape(self):
        lay = rdp_layout(5)
        assert (lay.rows, lay.cols) == (4, 6)

    def test_parity_columns(self):
        p = 5
        lay = rdp_layout(p)
        for i in range(p - 1):
            assert lay.kind((i, p - 1)) is CellKind.HORIZONTAL
            assert lay.kind((i, p)) is CellKind.DIAGONAL

    def test_diagonal_includes_row_parity_column(self):
        """RDP's signature: diagonals cover the row-parity column."""
        p = 5
        lay = rdp_layout(p)
        touched = set()
        for i in range(p - 1):
            chain = lay.chain_of_parity[(i, p)]
            touched.update(m for m in chain.members if m[1] == p - 1)
        assert touched  # at least one row parity feeds a diagonal

    def test_missing_diagonal(self):
        """Diagonal p-1 has no parity — each diagonal chain covers p-1 cells."""
        p = 7
        lay = rdp_layout(p)
        for i in range(p - 1):
            assert len(lay.chain_of_parity[(i, p)].members) == p - 1

    def test_update_penalty_profile(self):
        """Data on the missing diagonal costs 2; elsewhere the row parity
        ripples into one diagonal -> 3 (RDP's known non-optimal update)."""
        lay = rdp_layout(5)
        pens = {lay.update_penalty(c) for c in lay.data_cells}
        assert pens == {2, 3}

    def test_rejects_nonprime(self):
        with pytest.raises(ValueError):
            rdp_layout(9)

    def test_virtual_must_be_data_column(self):
        with pytest.raises(ValueError):
            rdp_layout(5, virtual_cols=(4,))


class TestCorrectness:
    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(rdp_layout(p)).is_mds

    def test_roundtrip_all_pairs(self, rng, paper_p):
        p = paper_p
        code = get_code("rdp", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        for f1, f2 in itertools.combinations(range(p + 1), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)

    def test_shortened_still_mds(self):
        lay = rdp_layout(7, virtual_cols=(4, 5))
        report = certify_mds(lay)
        assert report.is_mds
        assert lay.n_disks == 6

    def test_corrupted_stripe_fails_verify(self, rng):
        code = get_code("rdp", 5)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        stripe[0, 0, 0] ^= 1
        assert not code.verify(stripe)
