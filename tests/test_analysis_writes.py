"""Partial-stripe write cost analysis."""

import numpy as np
import pytest

from repro.analysis.writes import average_partial_write_cost, partial_write_cost
from repro.codes import CODE_NAMES, get_code, get_layout


class TestSingleWrite:
    def test_optimal_codes_cost_six(self):
        """w=1 on an update-optimal code: 2 data + 2x2 parity I/Os."""
        for name in ("code56", "hcode", "xcode", "pcode"):
            lay = get_layout(name, 7)
            costs = {partial_write_cost(lay, s, 1).ios for s in range(lay.num_data)}
            assert costs == {6}, name

    def test_evenodd_adjuster_storm(self):
        """Writing an S-diagonal cell of EVENODD touches p parities."""
        lay = get_layout("evenodd", 5)
        worst = max(partial_write_cost(lay, s, 1).ios for s in range(lay.num_data))
        assert worst == 2 + 2 * 5  # data pair + p parity pairs

    def test_hdp_penalty_three(self):
        lay = get_layout("hdp", 7)
        assert partial_write_cost(lay, 0, 1).ios == 2 + 2 * 3


class TestPartialWrites:
    def test_full_stripe_uses_reconstruct(self):
        lay = get_layout("code56", 5)
        cost = partial_write_cost(lay, 0, lay.num_data)
        assert cost.uses_reconstruct
        assert cost.ios == lay.num_data + lay.num_parity

    def test_row_segment_shares_horizontal_parity(self):
        """Two consecutive blocks in one Code 5-6 row touch ONE horizontal
        parity plus two diagonals: 10 I/Os, not 12."""
        lay = get_layout("code56", 7)
        # data cells are row-major: cells 0 and 1 share row 0
        cost = partial_write_cost(lay, 0, 2)
        assert cost.parities_touched == 3
        assert cost.rmw_ios == 2 * 2 + 2 * 3

    def test_cost_monotone_in_length(self):
        lay = get_layout("code56", 7)
        costs = [average_partial_write_cost(lay, w) for w in range(1, lay.num_data + 1)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_reconstruct_bounds_everything(self):
        for name in CODE_NAMES:
            lay = get_layout(name, 5)
            bound = lay.num_data + lay.num_parity
            for w in range(1, lay.num_data + 1):
                assert average_partial_write_cost(lay, w) <= bound

    def test_validation(self):
        lay = get_layout("code56", 5)
        with pytest.raises(ValueError):
            partial_write_cost(lay, -1, 1)
        with pytest.raises(ValueError):
            partial_write_cost(lay, 0, 99)
        with pytest.raises(ValueError):
            average_partial_write_cost(lay, 0)


class TestAgainstRuntime:
    def test_rmw_prediction_matches_raid6array(self, rng):
        """The predicted w=1 RMW cost must equal the live array's I/Os."""
        from repro.raid import BlockArray, Raid6Array

        for name in ("code56", "rdp", "hdp"):
            code = get_code(name, 5)
            arr = BlockArray(code.n_disks, 2 * code.rows, block_size=8)
            r6 = Raid6Array(arr, code)
            r6.format_with(
                rng.integers(0, 256, size=(r6.capacity_blocks, 8), dtype=np.uint8)
            )
            for lba in range(code.num_data):
                arr.reset_counters()
                measured = r6.write(lba, rng.integers(0, 256, 8, dtype=np.uint8))
                predicted = partial_write_cost(code.layout, lba, 1).rmw_ios
                assert measured == predicted, (name, lba)
