"""Vertical baselines: X-Code, P-Code, HDP."""

import itertools

import numpy as np
import pytest

from repro.codes import certify_mds, get_code, hdp_layout, pcode_layout, xcode_layout
from repro.codes.geometry import CellKind
from repro.codes.pcode import pcode_cell_labels


class TestXCode:
    def test_shape_and_parity_rows(self):
        p = 5
        lay = xcode_layout(p)
        assert (lay.rows, lay.cols) == (p, p)
        for i in range(p):
            assert lay.kind((p - 2, i)) is CellKind.DIAGONAL
            assert lay.kind((p - 1, i)) is CellKind.DIAGONAL

    def test_chain_lengths(self):
        p = 7
        lay = xcode_layout(p)
        assert all(len(ch.members) == p - 2 for ch in lay.chains)

    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(xcode_layout(p)).is_mds

    def test_update_optimal(self):
        lay = xcode_layout(7)
        assert all(lay.update_penalty(c) == 2 for c in lay.data_cells)

    def test_roundtrip(self, rng, paper_p):
        code = get_code("xcode", paper_p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(paper_p), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)

    def test_rejects_nonprime(self):
        with pytest.raises(ValueError):
            xcode_layout(8)


class TestPCode:
    def test_shape(self):
        lay = pcode_layout(7)
        assert (lay.rows, lay.cols) == (3, 6)

    def test_labels_are_valid_pairs(self):
        p = 7
        labels = pcode_cell_labels(p)
        for (row, col), lab in labels.items():
            a, b = sorted(lab)
            assert 1 <= a < b <= p - 1
            assert (a + b) % p == col + 1
            assert row >= 1

    def test_labels_unique_and_complete(self):
        p = 11
        labels = pcode_cell_labels(p)
        assert len(set(labels.values())) == len(labels)
        assert len(labels) == (p - 1) * (p - 3) // 2

    def test_each_parity_chain_has_p_minus_3_members(self):
        # labels containing j: {j, b} with b != j and b != p - j
        p = 7
        lay = pcode_layout(p)
        assert all(len(ch.members) == p - 3 for ch in lay.chains)

    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(pcode_layout(p)).is_mds

    def test_update_optimal(self):
        lay = pcode_layout(7)
        assert all(lay.update_penalty(c) == 2 for c in lay.data_cells)

    def test_roundtrip(self, rng, paper_p):
        code = get_code("pcode", paper_p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(paper_p - 1), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)


class TestHDP:
    def test_shape_and_parity_diagonals(self):
        p = 7
        lay = hdp_layout(p)
        assert (lay.rows, lay.cols) == (p - 1, p - 1)
        for i in range(p - 1):
            assert lay.kind((i, i)) is CellKind.HORIZONTAL
            assert lay.kind((i, p - 2 - i)) is CellKind.DIAGONAL

    def test_anti_chains_protect_horizontal_parities(self):
        """HDP's double-parity protection of horizontal parities."""
        p = 7
        lay = hdp_layout(p)
        horiz = {(i, i) for i in range(p - 1)}
        covered = set()
        for i in range(p - 1):
            chain = lay.chain_of_parity[(i, p - 2 - i)]
            covered.update(m for m in chain.members if m in horiz)
        assert covered  # anti-diagonal chains include horizontal parities

    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(hdp_layout(p)).is_mds

    def test_update_penalty_is_three(self):
        """A data write touches its row parity, its anti-diagonal parity,
        and — through the row parity — one more anti-diagonal parity."""
        lay = hdp_layout(7)
        assert all(lay.update_penalty(c) == 3 for c in lay.data_cells)

    def test_roundtrip(self, rng, paper_p):
        code = get_code("hdp", paper_p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(paper_p - 1), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)
