"""The fused region-op execution path: lowering, scratch, fallbacks.

Companion to ``test_compiled_engine.py`` (which proves byte identity of
the executor as a whole) and ``test_kernels.py`` (identity per backend):
this file pins down the machinery the fused path adds — when the
lowering pass produces region ops and when it must refuse, that the
executor's preallocated scratch is actually reused instead of churned,
that fused execution steps aside for fault planes / failed disks /
``use_fused=False``, that the obs bridge records kernel-labelled
counters with zero I/O drift, and that degraded and crash/resume
conversions from :mod:`repro.faults` stay byte-identical while fused
selection is active.
"""

import dataclasses

import numpy as np
import pytest

from repro.codes.base import ArrayCode
from repro.compiled import (
    compile_plan,
    execute_compiled,
    execute_plan_compiled,
    lower_program,
)
from repro.compiled import executor as executor_mod
from repro.kernels import get_default_kernel, set_default_kernel
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    verify_conversion,
)
from repro.migration.approaches import alignment_cycle
from repro.obs.metrics import MetricsRegistry, set_registry


def _cycle_plan(code, approach, p, cycles=1):
    n = build_plan(code, approach, p, groups=1).n
    return build_plan(code, approach, p, groups=alignment_cycle(code, p, n) * cycles)


class TestLowering:
    def test_parity_phases_are_lowered(self):
        program = compile_plan(_cycle_plan("code56", "direct", 5), use_cache=False)
        lowered = [ph for ph in program.phases if ph.fused is not None]
        assert lowered
        for ph in lowered:
            fz = ph.fused
            assert fz.batch == ph.batch
            assert fz.parity_src.shape == ph.parity_cell.shape
            assert fz.check_src.shape == ph.check_cell.shape
            assert np.array_equal(
                fz.read_credit,
                np.bincount(ph.read_disk, minlength=program.n_disks),
            )

    def test_pure_migration_phases_are_not(self):
        program = compile_plan(_cycle_plan("rdp", "via-raid4", 5), use_cache=False)
        for ph in program.phases:
            if ph.batch == 0:
                assert ph.fused is None

    def test_custom_encode_disables_fusion(self):
        """A code subclass with its own ``encode`` cannot be replayed
        symbolically — the gate must keep every phase unfused."""
        program = compile_plan(_cycle_plan("code56", "direct", 5), use_cache=False)

        class WeirdCode(type(program.code)):
            def encode(self, stripe):  # pragma: no cover - never called
                return super().encode(stripe)

        weird = object.__new__(WeirdCode)
        weird.__dict__.update(program.code.__dict__)
        stripped = dataclasses.replace(
            program,
            code=weird,
            phases=tuple(
                dataclasses.replace(ph, fused=None) for ph in program.phases
            ),
        )
        relowered = lower_program(stripped)
        assert all(ph.fused is None for ph in relowered.phases)
        # sanity: the stock encode does get lowered again
        stock = dataclasses.replace(
            program,
            phases=tuple(
                dataclasses.replace(ph, fused=None) for ph in program.phases
            ),
        )
        assert any(ph.fused is not None for ph in lower_program(stock).phases)
        assert type(program.code).encode is ArrayCode.encode

    def test_lowering_is_deterministic(self):
        plan = _cycle_plan("hdp", "direct", 5, cycles=2)
        a = compile_plan(plan, use_cache=False)
        b = compile_plan(plan, use_cache=False)
        for pa, pb in zip(a.phases, b.phases):
            assert (pa.fused is None) == (pb.fused is None)
            if pa.fused is None:
                continue
            assert len(pa.fused.ops) == len(pb.fused.ops)
            for oa, ob in zip(pa.fused.ops, pb.fused.ops):
                assert oa.parity == ob.parity
                assert [t.kind for t in oa.terms] == [t.kind for t in ob.terms]


class TestScratchReuse:
    """Satellite: no per-op temporary churn — one grow-only pool."""

    def _run(self, plan, data, block_size=32):
        array, _ = prepare_source_array(
            plan, np.random.default_rng(0), block_size=block_size
        )
        execute_plan_compiled(plan, array, data)
        return array

    def test_pool_views_share_memory(self):
        pool = executor_mod._ScratchPool()
        pool.reserve(1024)
        a = pool.take((4, 64))
        assert np.shares_memory(a, pool._buf)
        b = pool.take((2, 128))
        assert np.shares_memory(a, b)  # same backing, sequential reuse

    def test_pool_grows_only(self):
        pool = executor_mod._ScratchPool()
        pool.reserve(512)
        buf = pool._buf
        pool.reserve(256)
        assert pool._buf is buf  # shrink request: keep the allocation
        pool.take((8, 8))
        assert pool._buf is buf

    def test_executor_reuses_process_pool_across_runs(self):
        plan = _cycle_plan("code56", "direct", 5, cycles=4)
        _array, data = prepare_source_array(
            plan, np.random.default_rng(0), block_size=32
        )
        self._run(plan, data)  # warm: the pool is now sized for this plan
        buf = executor_mod._SCRATCH._buf
        assert buf.size > 0
        self._run(plan, data)
        assert executor_mod._SCRATCH._buf is buf  # no reallocation churn
        assert np.shares_memory(executor_mod._SCRATCH.take((1, 1)), buf)

    def test_phase_buffers_are_pool_views(self, monkeypatch):
        plan = _cycle_plan("code56", "direct", 5, cycles=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(1), block_size=16
        )
        takes = []
        orig = executor_mod._ScratchPool.take

        def spy(self, shape):
            out = orig(self, shape)
            takes.append(out)
            return out

        monkeypatch.setattr(executor_mod._ScratchPool, "take", spy)
        execute_plan_compiled(plan, array, data)
        assert takes
        assert all(np.shares_memory(t, executor_mod._SCRATCH._buf) for t in takes)


class _FusedSpy:
    def __init__(self, monkeypatch):
        self.calls = 0
        orig = executor_mod._run_phase_fused

        def spy(*args, **kwargs):
            self.calls += 1
            return orig(*args, **kwargs)

        monkeypatch.setattr(executor_mod, "_run_phase_fused", spy)


class TestFallbacks:
    def _arrays(self, plan, block_size=16, seed=2):
        return prepare_source_array(
            plan, np.random.default_rng(seed), block_size=block_size
        )

    def test_fused_runs_by_default(self, monkeypatch):
        plan = _cycle_plan("code56", "direct", 5)
        array, data = self._arrays(plan)
        spy = _FusedSpy(monkeypatch)
        execute_plan_compiled(plan, array, data)
        assert spy.calls > 0

    def test_use_fused_false_forces_stripe_path(self, monkeypatch):
        plan = _cycle_plan("code56", "direct", 5)
        ref, data = self._arrays(plan)
        execute_plan(plan, ref, data)
        array, _ = self._arrays(plan)
        spy = _FusedSpy(monkeypatch)
        result = execute_plan_compiled(plan, array, data, use_fused=False)
        assert spy.calls == 0
        assert np.array_equal(ref.snapshot(), array.snapshot())
        assert np.array_equal(ref.reads, array.reads)
        assert verify_conversion(result)

    def test_fault_plane_disables_fused(self, monkeypatch):
        from repro.faults import FaultPlane, FaultScenario

        plan = _cycle_plan("code56", "direct", 5)
        array, data = self._arrays(plan)
        plane = FaultPlane(FaultScenario())
        plane.attach(array)
        spy = _FusedSpy(monkeypatch)
        result = execute_plan_compiled(plan, array, data)
        plane.detach()
        assert spy.calls == 0  # hooks observe the counted path; honour them
        assert verify_conversion(result)

    def test_failed_disk_disables_fused(self, monkeypatch):
        program = compile_plan(_cycle_plan("code56", "direct", 5), use_cache=False)
        plan = _cycle_plan("code56", "direct", 5)
        array, _data = self._arrays(plan)
        array.fail_disk(1)
        assert not executor_mod._fused_usable(array)
        array2, _ = self._arrays(plan)
        assert executor_mod._fused_usable(array2)
        del program


class TestObsBridge:
    def test_kernel_counters_recorded_and_io_exact(self):
        plan = _cycle_plan("code56", "direct", 5, cycles=2)
        audited, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=32
        )
        execute_plan(plan, audited, data)
        fused, _ = prepare_source_array(
            plan, np.random.default_rng(3), block_size=32
        )
        registry = MetricsRegistry(enabled=True)
        prev = set_registry(registry)
        try:
            result = execute_plan_compiled(plan, fused, data, kernel="numpy")
        finally:
            set_registry(prev)
        snap = registry.snapshot()
        phases = [
            m for m in snap["counters"]
            if m["name"] == "kernels.fused_phases" and m["labels"]["kernel"] == "numpy"
        ]
        assert phases and phases[0]["value"] > 0
        assert any(
            m["name"] == "kernels.xor_bytes" and m["value"] > 0
            for m in snap["counters"]
        )
        # zero drift: instrumentation must not perturb the counted I/O
        assert np.array_equal(audited.reads, fused.reads)
        assert np.array_equal(audited.writes, fused.writes)
        assert result.measured_reads == plan.read_ios
        assert result.measured_writes == plan.write_ios

    def test_disabled_registry_records_nothing(self):
        plan = _cycle_plan("code56", "direct", 5)
        array, data = prepare_source_array(
            plan, np.random.default_rng(4), block_size=16
        )
        registry = MetricsRegistry(enabled=False)
        prev = set_registry(registry)
        try:
            execute_plan_compiled(plan, array, data)
        finally:
            set_registry(prev)
        assert registry.snapshot()["counters"] == []


class TestFaultsUnderFusedSelection:
    """Degraded and crash/resume conversions with fused selection active.

    The fused path must step aside for these (they observe the counted
    read path) without the caller doing anything — same bytes, same
    recovery behaviour, whatever the process-default kernel says.
    """

    @pytest.fixture(autouse=True)
    def _numpy_default(self):
        prev = get_default_kernel()
        set_default_kernel("numpy")
        yield
        set_default_kernel(prev)

    def test_degraded_conversion_byte_identical(self):
        from repro.faults import FaultPlane, FaultScenario, execute_checkpointed

        def degraded(engine):
            plan = build_plan("code56", "direct", 5, groups=2)
            array, data = prepare_source_array(
                plan, np.random.default_rng(5), block_size=8
            )
            array.fail_disk(1)
            plane = FaultPlane(FaultScenario())
            plane.attach(array)
            run = execute_checkpointed(plan, array, data, engine=engine)
            plane.detach()
            assert run.degraded
            assert verify_conversion(run.result, check_io_counters=False)
            return array

        audited = degraded("audited")
        compiled = degraded("compiled")
        assert np.array_equal(audited.snapshot(), compiled.snapshot())

    def test_crash_resume_byte_identical(self):
        from repro.faults import (
            ConversionCrash,
            ConversionJournal,
            FaultPlane,
            FaultScenario,
            execute_checkpointed,
        )

        plan = build_plan("code56", "direct", 5, groups=2)
        ref, data = prepare_source_array(
            plan, np.random.default_rng(6), block_size=8
        )
        execute_plan(plan, ref, data)

        array, _ = prepare_source_array(
            plan, np.random.default_rng(6), block_size=8
        )
        plane = FaultPlane(FaultScenario(crash_at=6, crash_tear=0.5))
        plane.attach(array)
        journal = ConversionJournal()
        crashes = 0
        while True:
            try:
                run = execute_checkpointed(
                    plan, array, data, journal, engine="compiled"
                )
                break
            except ConversionCrash:
                crashes += 1
                plane.disarm_crash()
        plane.detach()
        assert crashes == 1
        assert np.array_equal(array.snapshot(), ref.snapshot())
        assert verify_conversion(run.result, check_io_counters=False)

    def test_healthy_checkpointed_run_uses_fused(self, monkeypatch):
        from repro.faults import execute_checkpointed

        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(7), block_size=8
        )
        spy = _FusedSpy(monkeypatch)
        run = execute_checkpointed(plan, array, data, engine="compiled")
        assert spy.calls > 0  # no plane attached: the fast path stays on
        assert verify_conversion(run.result, check_io_counters=False)
