"""Conversion plan structure and accounting invariants."""

import pytest

from repro.migration import build_plan, supported_conversions
from repro.migration.approaches import (
    alignment_cycle,
    canonical_disks,
    conversions_for_n,
)
from repro.migration.ops import OpKind, Purpose


class TestBuildPlanValidation:
    def test_rejects_nonprime(self):
        with pytest.raises(ValueError):
            build_plan("code56", "direct", 6)

    def test_rejects_unknown_approach(self):
        with pytest.raises(ValueError):
            build_plan("code56", "sideways", 5)

    def test_rejects_unsupported_pairing(self):
        with pytest.raises(ValueError):
            build_plan("code56", "via-raid0", 5)
        with pytest.raises(ValueError):
            build_plan("rdp", "direct", 5)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            build_plan("code56", "direct", 5, groups=0)

    def test_rejects_unshortenable_width(self):
        with pytest.raises(ValueError):
            build_plan("xcode", "direct", 5, n_disks=4)
        with pytest.raises(ValueError):
            build_plan("hcode", "via-raid0", 5, n_disks=4)

    def test_supported_matrix(self):
        pairs = supported_conversions()
        assert ("code56", "direct") in pairs
        assert ("rdp", "via-raid0") in pairs
        assert ("rdp", "via-raid4") in pairs
        assert ("hdp", "direct") in pairs
        assert ("code56-right", "direct") in pairs
        assert len(pairs) == 11


class TestAccountingInvariants:
    @pytest.mark.parametrize("code,approach", supported_conversions())
    def test_ops_match_tallies(self, code, approach, paper_p):
        plan = build_plan(code, approach, paper_p, groups=alignment_cycle(code, paper_p))
        reads = sum(1 for op in plan.ops if op.kind is OpKind.READ)
        writes = sum(1 for op in plan.ops if op.kind is OpKind.WRITE)
        assert reads == plan.read_ios
        assert writes == plan.write_ios
        assert plan.total_ios == reads + writes

    @pytest.mark.parametrize("code,approach", supported_conversions())
    def test_per_disk_sums_to_total(self, code, approach, paper_p):
        plan = build_plan(code, approach, paper_p, groups=alignment_cycle(code, paper_p))
        assert plan.per_disk_ios().sum() == plan.total_ios

    @pytest.mark.parametrize("code,approach", supported_conversions())
    def test_new_parities_counted_as_writes(self, code, approach, paper_p):
        plan = build_plan(code, approach, paper_p, groups=alignment_cycle(code, paper_p))
        parity_writes = sum(
            1 for op in plan.ops
            if op.kind is OpKind.WRITE and op.purpose is Purpose.NEW_PARITY_WRITE
        )
        assert parity_writes == plan.new_parities

    @pytest.mark.parametrize("code,approach", supported_conversions())
    def test_data_locations_cover_all_lbas(self, code, approach, paper_p):
        plan = build_plan(code, approach, paper_p, groups=alignment_cycle(code, paper_p))
        assert set(plan.data_locations) == set(range(plan.data_blocks))
        # every mapped cell is physical and unique
        targets = list(plan.data_locations.values())
        assert len(set(targets)) == len(targets)
        for g, cell in targets:
            assert (g, cell) in plan.cell_locations

    def test_two_step_plans_have_two_phases(self):
        plan = build_plan("rdp", "via-raid4", 5)
        assert plan.phases == (0, 1)
        plan = build_plan("code56", "direct", 5)
        assert plan.phases == (0,)

    def test_trims_are_not_io(self):
        plan = build_plan("rdp", "via-raid4", 5)
        trims = [op for op in plan.ops if op.kind is OpKind.TRIM]
        assert trims
        assert all(not op.is_io for op in trims)


class TestHeadlineAccounting:
    """The worked example of Section V-A for Code 5-6 (p=5, 4->5 disks)."""

    def test_code56_exact_numbers(self):
        plan = build_plan("code56", "direct", 5, groups=1)
        b = plan.data_blocks
        assert b == 12
        assert plan.read_ios == b  # read every data block once
        assert plan.write_ios == b // 3  # B/3 diagonal parities
        assert plan.total_ios == 4 * b // 3  # 4B/3
        assert plan.invalid_parities == 0
        assert plan.migrated_parities == 0
        assert plan.new_parities == 4
        assert plan.extra_blocks_per_disk == 0

    def test_code56_writes_confined_to_new_disk(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        for op in plan.ops:
            if op.kind is OpKind.WRITE:
                assert op.disk == 4  # only the hot-added disk is written


class TestWidthSelection:
    def test_canonical_disks(self):
        assert canonical_disks("code56", 5) == 5
        assert canonical_disks("evenodd", 5) == 7
        assert canonical_disks("pcode", 7) == 6

    def test_conversions_for_n_matches_paper_table_iv(self):
        at5 = {c for c, _a, _p in conversions_for_n(5)}
        assert "xcode" in at5 and "code56" in at5
        assert "pcode" not in at5 and "hdp" not in at5  # no prime fits
        at6 = {c for c, _a, _p in conversions_for_n(6)}
        assert {"rdp", "evenodd", "hcode", "pcode", "hdp", "code56"} <= at6
        assert "xcode" not in at6
        at7 = {c for c, _a, _p in conversions_for_n(7)}
        assert "xcode" in at7 and "rdp" in at7

    def test_alignment_cycle_values(self):
        assert alignment_cycle("code56", 5) == 1
        assert alignment_cycle("rdp", 5) == 1
        assert alignment_cycle("xcode", 5) == 5
        assert alignment_cycle("hdp", 5) == 2
        assert alignment_cycle("evenodd", 5) == 5  # canonical m=p
        assert alignment_cycle("evenodd", 5, n_disks=6) == 1  # shortened m=4
