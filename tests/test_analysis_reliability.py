"""Reliability models: Table I data, MTTDL Markov chains, Table VI risk."""

import numpy as np
import pytest

from repro.analysis.reliability import (
    AFR_BY_AGE,
    ARR_BY_AGE,
    HOURS_PER_YEAR,
    TABLE_VI_CLASSES,
    afr_to_lambda,
    conversion_window_risk,
    mttdl_raid,
    mttdl_raid5,
    mttdl_raid6,
)


class TestTableI:
    def test_published_values(self):
        assert AFR_BY_AGE[1] == pytest.approx(0.017)
        assert AFR_BY_AGE[2] == pytest.approx(0.081)
        assert AFR_BY_AGE[3] == pytest.approx(0.086)
        assert ARR_BY_AGE[4] == pytest.approx(0.076)

    def test_failure_rates_jump_after_year_one(self):
        """The paper's motivation: AFR rises sharply after year 1."""
        assert all(AFR_BY_AGE[y] > 3 * AFR_BY_AGE[1] for y in (2, 3, 4, 5))

    def test_all_exceed_user_requirement(self):
        # "less than 1% in terms of AFR" is violated from year 2 on
        assert all(AFR_BY_AGE[y] > 0.01 for y in (1, 2, 3, 4, 5))


class TestRates:
    def test_afr_to_lambda_small_rate_approximation(self):
        lam = afr_to_lambda(0.01)
        assert lam == pytest.approx(0.01 / HOURS_PER_YEAR, rel=0.01)

    def test_afr_roundtrip(self):
        lam = afr_to_lambda(0.08)
        assert 1 - np.exp(-lam * HOURS_PER_YEAR) == pytest.approx(0.08)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            afr_to_lambda(1.0)
        with pytest.raises(ValueError):
            afr_to_lambda(-0.1)


class TestMttdl:
    def test_raid5_matches_textbook_approximation(self):
        """MTTDL_RAID5 ~= mu / (n(n-1) lambda^2) when mu >> lambda."""
        n, lam, mu = 8, 1e-6, 1e-2
        exact = mttdl_raid5(n, lam, mu)
        approx = mu / (n * (n - 1) * lam**2)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_raid6_matches_textbook_approximation(self):
        # parallel-repair model: state 2 repairs at 2*mu, hence the
        # factor 2 over the single-crew textbook expression
        n, lam, mu = 8, 1e-6, 1e-2
        exact = mttdl_raid6(n, lam, mu)
        approx = 2 * mu**2 / (n * (n - 1) * (n - 2) * lam**3)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_raid6_beats_raid5(self):
        lam, mu = afr_to_lambda(0.086), 1 / 24
        assert mttdl_raid6(7, lam, mu) > 100 * mttdl_raid5(6, lam, mu)

    def test_raid0_is_expected_first_failure(self):
        n, lam = 5, 1e-4
        t = mttdl_raid(n, 0, lam, 1.0) if False else None
        # tolerance 0: MTTDL = 1/(n lam) regardless of mu
        assert mttdl_raid(n, 0, lam, 123.0) == pytest.approx(1 / (n * lam))

    def test_monotone_in_failure_rate(self):
        mu = 1 / 24
        vals = [mttdl_raid6(7, afr_to_lambda(a), mu) for a in (0.01, 0.05, 0.1)]
        assert vals == sorted(vals, reverse=True)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            mttdl_raid(2, 2, 1e-6, 1e-2)
        with pytest.raises(ValueError):
            mttdl_raid(5, 1, 0.0, 1e-2)


class TestTableVI:
    def test_classes(self):
        assert TABLE_VI_CLASSES["via-raid0"]["reliability"] == "Low"
        assert TABLE_VI_CLASSES["via-raid4"]["reliability"] == "Medium"
        assert TABLE_VI_CLASSES["direct-code56"]["reliability"] == "High"
        assert TABLE_VI_CLASSES["direct-vertical"]["reliability"] == "High"

    def test_window_tolerance_per_approach(self):
        afr, hours = 0.086, 5.0
        r0 = conversion_window_risk("via-raid0", "rdp", 6, hours, afr)
        r4 = conversion_window_risk("via-raid4", "rdp", 6, hours, afr)
        d56 = conversion_window_risk("direct", "code56", 5, hours, afr)
        dv = conversion_window_risk("direct", "xcode", 5, hours, afr)
        assert r0.tolerance_during_window == 0
        assert r4.tolerance_during_window == 1
        assert d56.tolerance_during_window == 1
        assert dv.reliability_class == "High"

    def test_risk_ordering_matches_table(self):
        """RAID-0 window is orders of magnitude riskier than the others."""
        afr, hours = 0.086, 5.0
        r0 = conversion_window_risk("via-raid0", "rdp", 6, hours, afr)
        d56 = conversion_window_risk("direct", "code56", 5, hours, afr)
        assert r0.loss_probability > 100 * d56.loss_probability
        assert 0 <= d56.loss_probability < r0.loss_probability < 1

    def test_longer_window_is_riskier(self):
        afr = 0.086
        short = conversion_window_risk("direct", "code56", 5, 1.0, afr)
        long = conversion_window_risk("direct", "code56", 5, 50.0, afr)
        assert long.loss_probability > short.loss_probability

    def test_raid0_risk_approximates_any_failure(self):
        """With tolerance 0, P(loss) ~= 1 - exp(-n lam t)."""
        afr, hours, n = 0.05, 10.0, 6
        lam = afr_to_lambda(afr)
        risk = conversion_window_risk("via-raid0", "rdp", n, hours, afr)
        assert risk.loss_probability == pytest.approx(1 - np.exp(-n * lam * hours), rel=1e-6)
