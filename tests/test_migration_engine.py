"""End-to-end conversion execution and verification."""

import numpy as np
import pytest

from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
    verify_conversion,
)
from repro.migration.approaches import alignment_cycle
from repro.raid import Raid5Array


@pytest.mark.parametrize("code,approach", supported_conversions())
def test_every_conversion_verifies(code, approach, paper_p, rng):
    plan = build_plan(code, approach, paper_p, groups=alignment_cycle(code, paper_p))
    array, data = prepare_source_array(plan, rng)
    result = execute_plan(plan, array, data)
    assert verify_conversion(result, rng), plan.describe()


@pytest.mark.parametrize(
    "code,approach,p,n",
    [
        ("code56", "direct", 7, 6),   # one virtual disk
        ("code56", "direct", 7, 5),   # two virtual disks
        ("code56", "direct", 11, 9),
        ("rdp", "via-raid0", 7, 6),
        ("rdp", "via-raid4", 7, 7),
        ("evenodd", "via-raid0", 5, 6),
        ("evenodd", "via-raid4", 5, 6),
        ("hcode", "via-raid0", 7, 7),
        ("hcode", "via-raid4", 7, 7),
    ],
)
def test_shortened_conversions_verify(code, approach, p, n, rng):
    plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n) * 2, n_disks=n)
    array, data = prepare_source_array(plan, rng)
    result = execute_plan(plan, array, data)
    assert verify_conversion(result, rng), plan.describe()


class TestSourcePreparation:
    def test_source_is_consistent_raid5(self, rng):
        plan = build_plan("code56", "direct", 5, groups=3)
        array, data = prepare_source_array(plan, rng)
        r5 = Raid5Array(array, plan.source_layout, n_disks=plan.m)
        assert r5.verify()
        for lba in range(plan.data_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_new_disks_start_blank(self, rng):
        plan = build_plan("rdp", "via-raid0", 5, groups=2)
        array, _ = prepare_source_array(plan, rng)
        for d in plan.new_disks:
            for b in range(array.blocks_per_disk):
                assert not array.raw(d, b).any()

    def test_counters_zeroed(self, rng):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, _ = prepare_source_array(plan, rng)
        assert array.total_ios == 0


class TestMeasuredEqualsPlanned:
    @pytest.mark.parametrize("code,approach", supported_conversions())
    def test_io_counters(self, code, approach, rng):
        p = 5
        plan = build_plan(code, approach, p, groups=alignment_cycle(code, p))
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        assert result.measured_reads == plan.read_ios
        assert result.measured_writes == plan.write_ios

    def test_per_disk_distribution_matches(self, rng):
        plan = build_plan("code56", "direct", 5, groups=4)
        array, data = prepare_source_array(plan, rng)
        execute_plan(plan, array, data)
        measured = array.reads + array.writes
        assert np.array_equal(measured, plan.per_disk_ios())


class TestOldParityValidity:
    """The engine asserts that parities the plan reuses are recomputable
    to the same value; corrupting one before conversion must explode."""

    def test_code56_detects_invalid_old_parity(self, rng):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(plan, rng)
        # corrupt one RAID-5 parity (horizontal parity of group 0, row 0)
        from repro.raid.layouts import parity_disk

        pd = parity_disk(plan.source_layout, 0, plan.m)
        array.raw(pd, 0)[0] ^= 1
        with pytest.raises(AssertionError):
            execute_plan(plan, array, data)

    def test_via_raid4_detects_invalid_migrated_parity(self, rng):
        plan = build_plan("rdp", "via-raid4", 5, groups=2)
        array, data = prepare_source_array(plan, rng)
        from repro.raid.layouts import parity_disk

        pd = parity_disk(plan.source_layout, 1, plan.m)
        array.raw(pd, 1)[0] ^= 1
        with pytest.raises(AssertionError):
            execute_plan(plan, array, data)


class TestVerificationCatchesDamage:
    def test_post_conversion_corruption_detected(self, rng):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        array.raw(0, 0)[0] ^= 1
        assert not verify_conversion(result, rng)

    def test_miscounted_io_detected(self, rng):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        array.read(0, 0)  # extra unplanned I/O
        result2 = type(result)(
            array=array, plan=plan, data=data,
            measured_reads=array.total_reads, measured_writes=array.total_writes,
        )
        assert not verify_conversion(result2, rng)
