"""XOR kernel backends: registry, unit semantics, and byte identity.

The kernel seam only earns its keep if every backend is bit-for-bit
interchangeable: the parametrized identity suite runs every supported
(code, approach) pair through the fused executor under every backend
available on this host, at block sizes from sub-cache-line to well past
the kernels' tile budgets, and demands the audited engine's exact bytes
and per-disk counters.  The numba tier is exercised when importable and
skipped (not silently passed) when not.
"""

import numpy as np
import pytest

from repro.compiled import execute_plan_compiled
from repro.kernels import (
    KernelUnavailableError,
    NumbaXorKernel,
    NumpyXorKernel,
    XorKernel,
    available_kernels,
    get_default_kernel,
    get_kernel,
    kernel_info,
    resolve_kernel,
    set_default_kernel,
)
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
    verify_conversion,
)
from repro.migration.approaches import alignment_cycle

CONVERSIONS = supported_conversions()
#: every backend this host can actually run (numpy is always present)
BACKENDS = available_kernels()
#: sub-tile, one-page, the bench floor, and past the numpy tile budget
BLOCK_SIZES = (16, 512, 4096, 65536)


def _cycle_plan(code, approach, p, cycles=1):
    n = build_plan(code, approach, p, groups=1).n
    return build_plan(code, approach, p, groups=alignment_cycle(code, p, n) * cycles)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS

    def test_auto_resolves_to_available_backend(self):
        kernel = resolve_kernel("auto")
        assert isinstance(kernel, XorKernel)
        assert kernel.name in BACKENDS

    def test_instances_are_cached(self):
        assert get_kernel("numpy") is get_kernel("numpy")

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("cuda")

    def test_kernel_info_reports_all_tiers(self):
        info = kernel_info()
        assert set(info) >= {"numpy", "numba"}
        assert info["numpy"]["available"] is True
        assert isinstance(info["numba"]["available"], bool)

    def test_unavailable_backend_raises(self):
        if NumbaXorKernel.is_available():
            pytest.skip("numba importable here; nothing is unavailable")
        with pytest.raises(KernelUnavailableError):
            get_kernel("numba")
        with pytest.raises(KernelUnavailableError):
            NumbaXorKernel()

    def test_default_kernel_roundtrip(self):
        prev = get_default_kernel()
        try:
            set_default_kernel("numpy")
            assert get_default_kernel() == "numpy"
            assert resolve_kernel().name == "numpy"
        finally:
            set_default_kernel(prev)

    def test_set_default_validates_eagerly(self):
        if NumbaXorKernel.is_available():
            pytest.skip("numba importable here")
        prev = get_default_kernel()
        with pytest.raises(KernelUnavailableError):
            set_default_kernel("numba")
        assert get_default_kernel() == prev


def _reference_reduce(dst, sources, init):
    ref = np.zeros_like(dst) if init else dst.copy()
    for src in sources:
        ref ^= np.broadcast_to(src, dst.shape) if src.shape != dst.shape else src
    return ref


class TestKernelSemantics:
    """Unit contract of region_xor_reduce / scatter_xor, per backend."""

    @pytest.fixture(params=BACKENDS)
    def kernel(self, request):
        return get_kernel(request.param)

    def test_reduce_matches_reference(self, kernel):
        rng = np.random.default_rng(0)
        rows, width = 37, 48
        sources = [rng.integers(0, 256, (rows, width), dtype=np.uint8) for _ in range(5)]
        dst = np.empty((rows, width), dtype=np.uint8)
        kernel.region_xor_reduce(dst, sources, init=True)
        assert np.array_equal(dst, _reference_reduce(dst, sources, init=True))

    def test_reduce_accumulates_without_init(self, kernel):
        rng = np.random.default_rng(1)
        dst = rng.integers(0, 256, (9, 32), dtype=np.uint8)
        before = dst.copy()
        sources = [rng.integers(0, 256, (9, 32), dtype=np.uint8) for _ in range(3)]
        kernel.region_xor_reduce(dst, sources, init=False)
        assert np.array_equal(dst, _reference_reduce(before, sources, init=False))

    def test_empty_sources_zero_with_init(self, kernel):
        dst = np.full((4, 16), 0xEE, dtype=np.uint8)
        kernel.region_xor_reduce(dst, [], init=True)
        assert not dst.any()
        dst = np.full((4, 16), 0xEE, dtype=np.uint8)
        kernel.region_xor_reduce(dst, [], init=False)
        assert (dst == 0xEE).all()

    def test_broadcast_single_row_source(self, kernel):
        """A (1, width) operand folds into every destination row — the
        'const' term of the fused IR."""
        rng = np.random.default_rng(2)
        rows, width = 23, 40
        full = rng.integers(0, 256, (rows, width), dtype=np.uint8)
        one = rng.integers(0, 256, (1, width), dtype=np.uint8)
        dst = np.empty((rows, width), dtype=np.uint8)
        kernel.region_xor_reduce(dst, [full, one], init=True)
        assert np.array_equal(dst, full ^ one)

    def test_strided_views_supported(self, kernel):
        """Zero-copy store views (the 'stride' term) need no contiguity."""
        rng = np.random.default_rng(3)
        backing = rng.integers(0, 256, (64, 24), dtype=np.uint8)
        a, b = backing[::4][:8], backing[1::4][:8]
        dst = np.empty((8, 24), dtype=np.uint8)
        kernel.region_xor_reduce(dst, [a, b], init=True)
        assert np.array_equal(dst, a ^ b)

    def test_reduce_tiles_past_tile_budget(self):
        """Destinations larger than the tile budget are still exact."""
        rng = np.random.default_rng(4)
        kernel = NumpyXorKernel(tile_bytes=128)  # force many tiles
        rows, width = 50, 33
        sources = [
            rng.integers(0, 256, (rows, width), dtype=np.uint8),
            rng.integers(0, 256, (1, width), dtype=np.uint8),  # broadcast
            rng.integers(0, 256, (rows, width), dtype=np.uint8),
        ]
        dst = np.empty((rows, width), dtype=np.uint8)
        kernel.region_xor_reduce(dst, sources, init=True)
        assert np.array_equal(dst, _reference_reduce(dst, sources, init=True))

    def test_scatter_xor(self, kernel):
        rng = np.random.default_rng(5)
        dst = rng.integers(0, 256, (16, 20), dtype=np.uint8)
        before = dst.copy()
        rows = np.array([1, 4, 11], dtype=np.intp)
        payload = rng.integers(0, 256, (3, 20), dtype=np.uint8)
        kernel.scatter_xor(dst, rows, payload)
        expect = before.copy()
        expect[rows] ^= payload
        assert np.array_equal(dst, expect)


@pytest.mark.skipif(
    NumbaXorKernel.is_available(), reason="numba importable; tier is live"
)
class TestNumbaUnavailable:
    def test_capabilities_report_unavailable(self):
        caps = NumbaXorKernel.capabilities()
        assert caps["available"] is False

    def test_auto_falls_back_to_numpy(self):
        assert resolve_kernel("auto").name == "numpy"


class TestByteIdentity:
    """Fused executor under every backend == the audited engine, exactly."""

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("kernel_name", BACKENDS)
    @pytest.mark.parametrize("code,approach", CONVERSIONS)
    def test_all_pairs_all_backends_all_block_sizes(
        self, code, approach, kernel_name, block_size
    ):
        plan = _cycle_plan(code, approach, 5)
        audited, data = prepare_source_array(
            plan, np.random.default_rng(7), block_size=block_size
        )
        execute_plan(plan, audited, data)
        fused, _ = prepare_source_array(
            plan, np.random.default_rng(7), block_size=block_size
        )
        result = execute_plan_compiled(plan, fused, data, kernel=kernel_name)
        assert np.array_equal(audited.snapshot(), fused.snapshot())
        assert np.array_equal(audited.reads, fused.reads)
        assert np.array_equal(audited.writes, fused.writes)
        assert result.measured_reads == plan.read_ios
        assert result.measured_writes == plan.write_ios
        assert verify_conversion(result)

    @pytest.mark.parametrize("kernel_name", BACKENDS)
    def test_multi_cycle_batches_get_stride_terms(self, kernel_name):
        """Batches past the alignment cycle exercise strided operands."""
        plan = _cycle_plan("code56", "direct", 5, cycles=8)
        audited, data = prepare_source_array(
            plan, np.random.default_rng(8), block_size=64
        )
        execute_plan(plan, audited, data)
        fused, _ = prepare_source_array(
            plan, np.random.default_rng(8), block_size=64
        )
        execute_plan_compiled(plan, fused, data, kernel=kernel_name)
        assert np.array_equal(audited.snapshot(), fused.snapshot())
        assert np.array_equal(audited.reads, fused.reads)
        assert np.array_equal(audited.writes, fused.writes)

    def test_kernel_instance_accepted(self):
        plan = _cycle_plan("code56", "direct", 5)
        fused, data = prepare_source_array(
            plan, np.random.default_rng(9), block_size=32
        )
        result = execute_plan_compiled(plan, fused, data, kernel=NumpyXorKernel())
        assert verify_conversion(result)


class TestOnlineBackendMatrix:
    """Batched online conversion under every backend == per-parity bytes.

    The live-migration analogue of TestByteIdentity: batch sizes x
    backends x {healthy, degraded} x crash/resume at run boundaries,
    always byte-compared against the audited per-parity converter.
    """

    @staticmethod
    def _array(block_size=8, seed=0):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, _data = prepare_source_array(
            plan, np.random.default_rng(seed), block_size=block_size
        )
        return array

    @staticmethod
    def _requests(n=10, seed=2, block_size=8):
        from repro.migration.online import OnlineRequest

        rng = np.random.default_rng(seed)
        reqs, t = [], 0.0
        for _ in range(n):
            t += float(rng.integers(1, 6))
            is_write = bool(rng.random() < 0.7)
            reqs.append(OnlineRequest(
                time=t, lba=int(rng.integers(24)), is_write=is_write,
                payload=(rng.integers(0, 256, size=block_size, dtype=np.uint8)
                         if is_write else None),
            ))
        return reqs

    @pytest.mark.parametrize("block_size", (16, 4096))
    @pytest.mark.parametrize("batch", (2, 4, 8))
    @pytest.mark.parametrize("kernel_name", BACKENDS)
    def test_healthy_identity(self, kernel_name, batch, block_size):
        from repro.migration.online import OnlineCode56Conversion

        plan = build_plan("code56", "direct", 5, groups=2)
        ref, _ = prepare_source_array(
            plan, np.random.default_rng(0), block_size=block_size
        )
        OnlineCode56Conversion(ref, 5).run(self._requests(block_size=block_size))

        arr, _ = prepare_source_array(
            plan, np.random.default_rng(0), block_size=block_size
        )
        conv = OnlineCode56Conversion(arr, 5, batch=batch, kernel=kernel_name)
        report = conv.run(self._requests(block_size=block_size))

        assert conv.verify()
        assert report.kernel == kernel_name
        assert np.array_equal(ref.snapshot(), arr.snapshot())
        assert np.array_equal(ref.reads, arr.reads)
        assert np.array_equal(ref.writes, arr.writes)

    @pytest.mark.parametrize("kernel_name", BACKENDS)
    def test_degraded_identity(self, kernel_name):
        from repro.migration.online import OnlineCode56Conversion

        ref = self._array()
        ref.fail_disk(2)
        OnlineCode56Conversion(ref, 5).run([])

        arr = self._array()
        arr.fail_disk(2)
        conv = OnlineCode56Conversion(arr, 5, batch=4, kernel=kernel_name)
        conv.run([])
        assert np.array_equal(ref.snapshot(), arr.snapshot())

    @pytest.mark.parametrize("kernel_name", BACKENDS)
    def test_crash_resume_at_run_boundaries(self, kernel_name):
        from repro.faults.chaos import crash_sweep_online
        from repro.kernels import set_default_kernel

        set_default_kernel(kernel_name)
        try:
            report = crash_sweep_online(
                5, groups=2, schedules=1, batch=4, sample=6
            )
        finally:
            set_default_kernel("auto")
        assert report["ok"], report["failures"]
