"""Dataflow analyzer: plan invariants, program fidelity, online windows."""

import dataclasses

import pytest

from repro.compiled.compiler import compile_plan
from repro.migration.approaches import build_plan, supported_conversions
from repro.migration.plan import Location
from repro.staticcheck.dataflow import (
    analyze_conversion,
    analyze_fused,
    analyze_plan,
    analyze_program,
    check_online_lost_writes,
)
from repro.staticcheck.selftest import _copy_program


class TestAllPlansClean:
    @pytest.mark.parametrize("code_name,approach", supported_conversions())
    def test_plan_and_program(self, code_name, approach, paper_p):
        checks, findings = analyze_conversion(code_name, approach, paper_p)
        assert checks > 0
        assert findings == []


class TestPlanInvariants:
    def test_double_write_flagged(self):
        plan = build_plan("rdp", "via-raid0", 5, groups=2)
        gw = next(g for g in plan.group_works if g.parity_writes)
        cell = next(iter(gw.parity_writes))
        other = next(
            g for g in plan.group_works if g.parity_writes and g is not gw
        )
        # alias: make another group's parity land on the same block
        ocell = next(iter(other.parity_writes))
        other.parity_writes[ocell] = gw.parity_writes[cell]
        _checks, findings = analyze_plan(plan)
        assert any(f.rule == "SC-D001" for f in findings)

    def test_out_of_bounds_location_flagged(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        (key, _loc) = next(iter(plan.cell_locations.items()))
        plan.cell_locations[key] = Location(plan.n + 3, 0)
        _checks, findings = analyze_plan(plan)
        assert any(f.rule == "SC-D004" for f in findings)

    def test_aliased_cells_flagged(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        keys = list(plan.cell_locations)
        plan.cell_locations[keys[0]] = plan.cell_locations[keys[1]]
        _checks, findings = analyze_plan(plan)
        assert any(f.rule == "SC-D004" for f in findings)

    def test_migration_source_clobber_flagged(self):
        plan = build_plan("rdp", "via-raid4", 5, groups=4)
        # pick a migrating group that actually has a predecessor in its
        # phase (group 0 never does)
        mig_gw = next(
            g
            for g in plan.group_works
            if g.migrates
            and any(
                o.phase == g.phase and o.group < g.group
                for o in plan.group_works
            )
        )
        cell, (src, dst, rp, wp) = next(iter(mig_gw.migrates.items()))
        # make an earlier group NULL-write the migration source
        earlier = next(
            g
            for g in plan.group_works
            if g.phase == mig_gw.phase and g.group < mig_gw.group
        )
        earlier.null_writes[(0, 0)] = src
        _checks, findings = analyze_plan(plan)
        assert any(f.rule in ("SC-D001", "SC-D002") for f in findings)

    def test_missing_parity_coverage_flagged(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        for gw in plan.group_works:
            if gw.parity_writes:
                gw.parity_writes.clear()
        _checks, findings = analyze_plan(plan)
        assert any(f.rule == "SC-D003" for f in findings)


class TestProgramFidelity:
    def test_identity_program_clean(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        program = compile_plan(plan, use_cache=False)
        checks, findings = analyze_program(plan, program)
        assert checks > 0
        assert findings == []

    def test_dropped_op_flagged(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        program = _copy_program(compile_plan(plan, use_cache=False))
        ph = program.phases[0]
        truncated = dataclasses.replace(
            ph,
            parity_disk=ph.parity_disk[:-1],
            parity_block=ph.parity_block[:-1],
            parity_cell=ph.parity_cell[:-1],
        )
        program = dataclasses.replace(program, phases=(truncated,) + program.phases[1:])
        _checks, findings = analyze_program(plan, program)
        assert any(f.rule == "SC-D005" for f in findings)

    def test_wrong_geometry_flagged(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        program = compile_plan(plan, use_cache=False)
        program = dataclasses.replace(program, n_disks=program.n_disks + 1)
        _checks, findings = analyze_program(plan, program)
        assert any(f.rule == "SC-D005" for f in findings)


def _mutate_first_fused(program, fn):
    """Apply ``fn`` to the first lowered phase's FusedPhase."""
    phases = []
    done = False
    for ph in program.phases:
        if ph.fused is not None and not done:
            ph = dataclasses.replace(ph, fused=fn(ph.fused))
            done = True
        phases.append(ph)
    assert done, "program has no fused phase"
    return dataclasses.replace(program, phases=tuple(phases))


class TestFusionFidelity:
    """SC-D006: fused region ops expand to exactly the unfused encode."""

    def _plan_and_program(self, groups=8):
        # groups > alignment cycle so stride terms (not just const) appear
        plan = build_plan("code56", "direct", 5, groups=groups)
        return plan, compile_plan(plan, use_cache=False)

    def test_lowered_program_clean(self):
        plan, program = self._plan_and_program()
        assert any(ph.fused is not None for ph in program.phases)
        checks, findings = analyze_fused(plan, program)
        assert checks > 0
        assert findings == []

    @pytest.mark.parametrize("code_name,approach", supported_conversions())
    def test_all_conversions_clean(self, code_name, approach, paper_p):
        plan = build_plan(code_name, approach, paper_p)
        checks, findings = analyze_fused(plan, compile_plan(plan, use_cache=False))
        assert findings == []

    def test_shifted_stride_term_flagged(self):
        import numpy as np  # noqa: F401  (parity with sibling tests)

        from repro.compiled.program import RegionTerm

        plan, program = self._plan_and_program()

        def shift(fz):
            ops = list(fz.ops)
            for i, op in enumerate(ops):
                for j, t in enumerate(op.terms):
                    if t.kind == "stride":
                        terms = list(op.terms)
                        terms[j] = dataclasses.replace(t, start=t.start + 1)
                        ops[i] = dataclasses.replace(op, terms=tuple(terms))
                        return dataclasses.replace(fz, ops=tuple(ops))
            raise AssertionError("no stride term to mutate")

        _checks, findings = analyze_fused(plan, _mutate_first_fused(program, shift))
        assert any(f.rule == "SC-D006" for f in findings)

    def test_dropped_term_flagged(self):
        plan, program = self._plan_and_program()

        def drop(fz):
            ops = list(fz.ops)
            ops[0] = dataclasses.replace(ops[0], terms=ops[0].terms[1:])
            return dataclasses.replace(fz, ops=tuple(ops))

        _checks, findings = analyze_fused(plan, _mutate_first_fused(program, drop))
        assert any(f.rule == "SC-D006" for f in findings)

    def test_read_credit_drift_flagged(self):
        plan, program = self._plan_and_program()

        def credit(fz):
            rc = fz.read_credit.copy()
            rc[0] += 1
            return dataclasses.replace(fz, read_credit=rc)

        _checks, findings = analyze_fused(plan, _mutate_first_fused(program, credit))
        assert any(
            f.rule == "SC-D006" and "read_credit" in f.message for f in findings
        )

    def test_swapped_parity_rows_flagged(self):
        plan, program = self._plan_and_program()

        def swap(fz):
            ps = fz.parity_src.copy()
            assert ps.size >= 2
            ps[[0, 1]] = ps[[1, 0]]
            return dataclasses.replace(fz, parity_src=ps)

        _checks, findings = analyze_fused(plan, _mutate_first_fused(program, swap))
        assert any(f.rule == "SC-D006" for f in findings)

    def test_forward_ref_flagged(self):
        from repro.compiled.program import RegionTerm

        plan, program = self._plan_and_program()

        def forward(fz):
            ops = list(fz.ops)
            terms = ops[0].terms + (RegionTerm(kind="ref", ref=len(ops)),)
            ops[0] = dataclasses.replace(ops[0], terms=terms)
            return dataclasses.replace(fz, ops=tuple(ops))

        _checks, findings = analyze_fused(plan, _mutate_first_fused(program, forward))
        assert any(
            f.rule == "SC-D006" and "not computed before" in f.message
            for f in findings
        )


class TestOnlineLostWrites:
    def test_exhaustive_interleavings_clean(self):
        checks, findings = check_online_lost_writes(p=5, groups=2)
        # capacity (2*4*3 = 24 lbas) x 8 parity boundaries
        assert checks == 24 * 8
        assert findings == []

    def test_detects_a_lost_update(self, monkeypatch):
        """Disable the diagonal-parity patch on writes: interleavings
        where the write lands after conversion must produce stale
        parities — and the checker must see them."""
        import numpy as np

        from repro.migration.online import OnlineCode56Conversion

        def lazy_serve(self, req, clock, report):
            # simulate the buggy converter: forget the diagonal patch
            group, row, disk, stripe = self.locate(req.lba)
            payload = np.asarray(req.payload, dtype=np.uint8)
            old = self.array.read(disk, stripe)
            delta = np.bitwise_xor(old, payload)
            self.array.write(disk, stripe, payload)
            from repro.raid.layouts import parity_disk

            pd = parity_disk(self.layout, stripe, self.m)
            hp = self.array.read(pd, stripe)
            self.array.write(pd, stripe, np.bitwise_xor(hp, delta))
            return clock + 4

        monkeypatch.setattr(OnlineCode56Conversion, "_serve", lazy_serve)
        _checks, findings = check_online_lost_writes(p=5, groups=2)
        assert any(f.rule == "SC-D010" for f in findings)
