"""Unit tests for the declarative stripe geometry."""

import pytest

from repro.codes.geometry import CellKind, ChainKind, CodeLayout, ParityChain


def tiny_layout() -> CodeLayout:
    """A 2x3 toy: one row-parity per row in column 2."""
    chains = [
        ParityChain(parity=(0, 2), members=((0, 0), (0, 1)), kind=ChainKind.HORIZONTAL),
        ParityChain(parity=(1, 2), members=((1, 0), (1, 1)), kind=ChainKind.HORIZONTAL),
    ]
    return CodeLayout(name="toy", p=3, rows=2, cols=3, chains=chains)


class TestParityChain:
    def test_rejects_self_membership(self):
        with pytest.raises(ValueError):
            ParityChain(parity=(0, 0), members=((0, 0), (0, 1)), kind=ChainKind.HORIZONTAL)

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError):
            ParityChain(parity=(0, 2), members=((0, 0), (0, 0)), kind=ChainKind.HORIZONTAL)

    def test_xor_count(self):
        ch = ParityChain(parity=(0, 3), members=((0, 0), (0, 1), (0, 2)), kind=ChainKind.HORIZONTAL)
        assert ch.xor_count == 2


class TestCodeLayout:
    def test_cells_partition(self):
        lay = tiny_layout()
        assert lay.parity_cells == {(0, 2), (1, 2)}
        assert lay.data_cells == ((0, 0), (0, 1), (1, 0), (1, 1))
        assert lay.num_data == 4
        assert lay.num_parity == 2

    def test_kind(self):
        lay = tiny_layout()
        assert lay.kind((0, 0)) is CellKind.DATA
        assert lay.kind((0, 2)) is CellKind.HORIZONTAL

    def test_out_of_bounds_cell_rejected(self):
        with pytest.raises(ValueError):
            CodeLayout(
                name="bad", p=3, rows=2, cols=3,
                chains=[ParityChain(parity=(0, 3), members=((0, 0),), kind=ChainKind.HORIZONTAL)],
            )

    def test_duplicate_parity_rejected(self):
        ch = ParityChain(parity=(0, 2), members=((0, 0),), kind=ChainKind.HORIZONTAL)
        ch2 = ParityChain(parity=(0, 2), members=((0, 1),), kind=ChainKind.DIAGONAL)
        with pytest.raises(ValueError):
            CodeLayout(name="bad", p=3, rows=2, cols=3, chains=[ch, ch2])

    def test_virtual_cols(self):
        lay = CodeLayout(
            name="toy", p=3, rows=2, cols=3,
            chains=[
                ParityChain(parity=(0, 2), members=((0, 0), (0, 1)), kind=ChainKind.HORIZONTAL),
                ParityChain(parity=(1, 2), members=((1, 0), (1, 1)), kind=ChainKind.HORIZONTAL),
            ],
            virtual_cols=frozenset({0}),
        )
        assert lay.kind((0, 0)) is CellKind.VIRTUAL
        assert lay.data_cells == ((0, 1), (1, 1))
        assert lay.physical_cols == (1, 2)
        assert lay.n_disks == 2

    def test_update_penalty(self):
        lay = tiny_layout()
        assert lay.update_penalty((0, 0)) == 1  # single row parity

    def test_update_penalty_transitive(self):
        # parity B includes parity A; a data write touching A touches B too
        chains = [
            ParityChain(parity=(0, 1), members=((0, 0),), kind=ChainKind.HORIZONTAL),
            ParityChain(parity=(0, 2), members=((0, 1),), kind=ChainKind.DIAGONAL),
        ]
        lay = CodeLayout(name="chainy", p=3, rows=1, cols=3, chains=chains)
        assert lay.update_penalty((0, 0)) == 2

    def test_encode_order_resolves_dependencies(self):
        chains = [
            ParityChain(parity=(0, 2), members=((0, 1),), kind=ChainKind.DIAGONAL),
            ParityChain(parity=(0, 1), members=((0, 0),), kind=ChainKind.HORIZONTAL),
        ]
        lay = CodeLayout(name="dep", p=3, rows=1, cols=3, chains=chains)
        order = [c.parity for c in lay.encode_order]
        assert order.index((0, 1)) < order.index((0, 2))

    def test_encode_order_detects_cycles(self):
        chains = [
            ParityChain(parity=(0, 1), members=((0, 2),), kind=ChainKind.HORIZONTAL),
            ParityChain(parity=(0, 2), members=((0, 1),), kind=ChainKind.DIAGONAL),
        ]
        lay = CodeLayout(name="cycle", p=3, rows=1, cols=3, chains=chains)
        with pytest.raises(ValueError, match="cyclic"):
            _ = lay.encode_order

    def test_xor_count_total(self):
        assert tiny_layout().xor_count_total() == 2  # two 2-member chains

    def test_describe_renders_grid(self):
        text = tiny_layout().describe()
        assert "toy" in text
        assert text.count("\n") == 2  # header + 2 rows

    def test_chains_of_cell(self):
        lay = tiny_layout()
        assert len(lay.chains_of_cell[(0, 0)]) == 1
        assert (0, 2) not in lay.chains_of_cell  # parity is a member of nothing
