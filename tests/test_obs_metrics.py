"""Metrics registry: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_identity(self, registry):
        c = registry.counter("reads", disk=0)
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert registry.counter("reads", disk=0) is c

    def test_labels_separate_series(self, registry):
        registry.counter("reads", disk=0).inc(3)
        registry.counter("reads", disk=1).inc(7)
        assert registry.counter("reads", disk=0).value == 3
        assert registry.counter("reads", disk=1).value == 7

    def test_label_order_irrelevant(self, registry):
        a = registry.counter("x", a=1, b=2)
        b = registry.counter("x", b=2, a=1)
        assert a is b

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("reads").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0


class TestHistogram:
    def test_count_sum_mean(self, registry):
        h = registry.histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0

    def test_percentiles_bracket_data(self, registry):
        h = registry.histogram("lat")
        h.observe_many(range(1, 101))  # 1..100, buckets up to 10000
        # fixed buckets: estimates are within one bucket of the truth
        assert 40 <= h.p50 <= 60
        assert 90 <= h.p95 <= 110
        assert 95 <= h.p99 <= 260
        assert h.percentile(0) <= h.percentile(100)

    def test_overflow_bucket(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.counts[-1] == 1
        assert h.p99 >= 2.0

    def test_empty(self, registry):
        h = registry.histogram("lat")
        assert h.p50 == 0.0 and h.mean == 0.0 and h.min == 0.0

    def test_bad_buckets(self, registry):
        with pytest.raises(ValueError):
            Histogram("x", {}, buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", {}, buckets=())

    def test_bad_quantile(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("lat").percentile(101)

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)


class TestRegistry:
    def test_snapshot_shape_and_json(self, registry):
        registry.counter("reads", disk=0).inc(2)
        registry.gauge("busy").set(1.5)
        registry.histogram("lat").observe(3.0)
        snap = registry.snapshot()
        assert {c["name"] for c in snap["counters"]} == {"reads"}
        assert snap["gauges"][0]["value"] == 1.5
        assert snap["histograms"][0]["count"] == 1
        json.loads(registry.render_json())  # round-trippable

    def test_reset_keeps_identity(self, registry):
        c = registry.counter("reads")
        c.inc(9)
        h = registry.histogram("lat")
        h.observe(1.0)
        registry.reset()
        assert c.value == 0 and h.count == 0
        assert registry.counter("reads") is c

    def test_clear_drops(self, registry):
        registry.counter("reads").inc()
        registry.clear()
        assert len(registry) == 0

    def test_render_text(self, registry):
        registry.counter("reads", disk=3).inc(7)
        registry.histogram("lat").observe(2.0)
        text = registry.render_text()
        assert 'reads{disk="3"} 7' in text
        assert "count=1" in text

    def test_types_do_not_collide(self, registry):
        registry.counter("x")
        registry.gauge("x")
        registry.histogram("x")
        assert len(registry) == 3

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        prev = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(prev)
        assert get_registry() is prev

    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False
