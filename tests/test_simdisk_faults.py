"""Typed request validation and service faults in both simulator engines."""

import numpy as np
import pytest

from repro.simdisk import (
    DiskArraySimulator,
    ServiceFaults,
    SimRequestError,
    get_preset,
    simulate_closed,
    validate_trace,
)
from repro.workloads import Trace


@pytest.fixture
def model():
    return get_preset("sata-7200")


def make_trace(rng, n=64, disks=4, block=None, block_size=4096, disk=None):
    capacity_blocks = 500_000
    return Trace(
        arrival_ms=np.zeros(n),
        disk=(rng.integers(0, disks, n) if disk is None
              else np.full(n, disk)).astype(np.int32),
        block=(rng.integers(0, capacity_blocks, n) if block is None
               else np.full(n, block, dtype=np.int64)),
        is_write=rng.random(n) > 0.5,
        block_size=block_size,
    )


class TestRequestValidation:
    def test_out_of_range_block_rejected_closed(self, model, rng):
        capacity = model.cylinders * model.blocks_per_cylinder
        trace = make_trace(rng, block=capacity)  # one past the end
        with pytest.raises(SimRequestError) as exc:
            simulate_closed(trace, model, n_disks=4)
        assert "out of range" in exc.value.reason
        assert exc.value.index == 0
        assert exc.value.block == capacity

    def test_out_of_range_block_rejected_event(self, model, rng):
        capacity = model.cylinders * model.blocks_per_cylinder
        trace = make_trace(rng, block=capacity)
        with pytest.raises(SimRequestError):
            DiskArraySimulator(model, 4).run(trace)

    def test_negative_block_rejected(self, model, rng):
        trace = make_trace(rng, block=-1)
        with pytest.raises(SimRequestError):
            simulate_closed(trace, model, n_disks=4)

    def test_negative_size_rejected_both_engines(self, model, rng):
        trace = make_trace(rng, block_size=-4096)
        with pytest.raises(SimRequestError, match="size must be positive"):
            simulate_closed(trace, model, n_disks=4)
        with pytest.raises(SimRequestError, match="size must be positive"):
            DiskArraySimulator(model, 4).run(trace)

    def test_event_engine_rejects_disk_out_of_range(self, model, rng):
        trace = make_trace(rng, disk=7)
        with pytest.raises(SimRequestError, match="disk index out of range"):
            DiskArraySimulator(model, 4).run(trace)

    def test_closed_engine_ignores_unserved_disks(self, model, rng):
        """The closed engine drops disks >= n; their blocks aren't validated."""
        capacity = model.cylinders * model.blocks_per_cylinder
        trace = make_trace(rng, disk=7, block=capacity)
        res = simulate_closed(trace, model, n_disks=4)
        assert res.makespan_ms == 0.0

    def test_valid_trace_passes(self, model, rng):
        validate_trace(make_trace(rng), model, 4, require_disk_in_range=True)


class TestServiceFaults:
    def test_delays_are_seed_deterministic(self):
        faults = ServiceFaults(seed=9, transient_rate=0.2, retry_penalty_ms=5.0)
        a, b = faults.delays_ms(100), faults.delays_ms(100)
        assert np.array_equal(a, b)
        assert set(np.unique(a)) <= {0.0, 5.0}

    def test_zero_rate_is_free(self):
        assert ServiceFaults(transient_rate=0.0).delays_ms(50).sum() == 0.0

    def test_faults_slow_the_closed_engine(self, model, rng):
        trace = make_trace(rng, n=200)
        clean = simulate_closed(trace, model)
        faults = ServiceFaults(seed=1, transient_rate=0.5, retry_penalty_ms=20.0)
        faulty = simulate_closed(trace, model, faults=faults)
        assert faulty.makespan_ms > clean.makespan_ms
        assert faults.delays_ms(len(trace)).sum() > 0

    def test_engines_stay_equivalent_under_faults(self, model, rng):
        trace = make_trace(rng, n=200)
        faults = ServiceFaults(seed=3, transient_rate=0.3, retry_penalty_ms=12.0)
        a = simulate_closed(trace, model, faults=faults)
        b = DiskArraySimulator(model, 4, scheduler="fcfs").run(trace, faults=faults)
        assert a.makespan_ms == pytest.approx(b.makespan_ms)
        assert np.allclose(a.per_disk_busy_ms, b.per_disk_busy_ms)

    def test_metrics_recorded_when_observing(self, model, rng):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.clear()
        registry.enabled = True
        try:
            trace = make_trace(rng, n=100)
            faults = ServiceFaults(seed=2, transient_rate=0.4)
            simulate_closed(trace, model, faults=faults)
            doc = registry.snapshot()
            names = {c["name"] for c in doc["counters"]}
            assert "simdisk.service_faults" in names
            assert "simdisk.fault_penalty_ms" in names
        finally:
            registry.enabled = False
            registry.clear()

    def test_schedule_accounts_fault_time(self, model, rng):
        from repro.simdisk import closed_request_schedule

        trace = make_trace(rng, n=50)
        faults = ServiceFaults(seed=4, transient_rate=0.5, retry_penalty_ms=8.0)
        sched = closed_request_schedule(trace, model, faults=faults)
        assert sched.fault_ms is not None
        total = (sched.seek_ms + sched.rotate_ms + sched.transfer_ms
                 + sched.fault_ms)
        assert np.allclose(sched.start_ms + total, sched.completion_ms)
