"""Registry factory and MDS certifier."""

import pytest

from repro.codes import (
    CODE_CATALOG,
    CODE_NAMES,
    certify_mds,
    check_double_erasures,
    disks_for,
    get_code,
    get_layout,
)
from repro.codes.geometry import ChainKind, CodeLayout, ParityChain


class TestRegistry:
    def test_all_paper_codes_present(self):
        assert set(CODE_NAMES) == {
            "code56", "rdp", "evenodd", "hcode", "xcode", "pcode", "hdp",
        }
        assert set(CODE_NAMES) <= set(CODE_CATALOG)

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            get_layout("nope", 5)

    def test_disks_for(self):
        assert disks_for("code56", 5) == 5
        assert disks_for("rdp", 5) == 6
        assert disks_for("evenodd", 5) == 7
        assert disks_for("hcode", 5) == 6
        assert disks_for("xcode", 5) == 5
        assert disks_for("pcode", 5) == 4
        assert disks_for("hdp", 5) == 4

    def test_catalog_disks_match_layouts(self):
        for name in CODE_NAMES:
            assert get_layout(name, 7).n_disks == disks_for(name, 7)

    def test_shorten_guard(self):
        with pytest.raises(ValueError):
            get_layout("xcode", 5, virtual_cols=(0,))

    def test_get_code_wraps_layout(self):
        code = get_code("rdp", 5)
        assert code.name == "rdp"
        assert code.p == 5


class TestCertifier:
    def test_all_codes_certify(self, paper_p):
        for name in CODE_NAMES:
            report = certify_mds(get_layout(name, paper_p))
            assert bool(report), (name, paper_p, report.failed_pairs)

    def test_broken_layout_detected(self):
        """A single-parity 'RAID-5' layout is not double-erasure safe."""
        p = 5
        chains = [
            ParityChain(
                parity=(i, p - 1),
                members=tuple((i, j) for j in range(p - 1)),
                kind=ChainKind.HORIZONTAL,
            )
            for i in range(p - 1)
        ]
        lay = CodeLayout(name="raid5ish", p=p, rows=p - 1, cols=p, chains=chains)
        failures = check_double_erasures(lay)
        assert failures  # every data-column pair is unrecoverable
        report = certify_mds(lay)
        assert not report.is_mds
        assert not bool(report)

    def test_report_records_failed_pairs(self):
        p = 5
        chains = [
            ParityChain(
                parity=(i, p - 1),
                members=tuple((i, j) for j in range(p - 1)),
                kind=ChainKind.HORIZONTAL,
            )
            for i in range(p - 1)
        ]
        lay = CodeLayout(name="raid5ish", p=p, rows=p - 1, cols=p, chains=chains)
        report = certify_mds(lay)
        assert (0, 1) in report.failed_pairs
