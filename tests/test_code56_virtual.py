"""Virtual disks (Section IV-B2, Figure 8)."""

import itertools

import numpy as np
import pytest

from repro.codes import ArrayCode, certify_mds, code56_layout
from repro.core.virtual import virtual_disk_plan


class TestFigure8:
    """m = 3 -> p = 5 with one virtual disk: the paper's worked example."""

    def test_virtual_elements_match_paper(self):
        lay = code56_layout(5, virtual_cols=(0,))
        # "C(0,0), C(1,0), C(2,0), C(3,0), C(3,1), C(3,2) and C(3,3) are
        #  virtual elements"
        expected = {(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2), (3, 3)}
        assert lay.virtual_cells == expected

    def test_six_data_elements_remain(self):
        lay = code56_layout(5, virtual_cols=(0,))
        assert lay.num_data == 6  # Eq. 6's numerator m(m-1) = 3*2

    def test_still_double_erasure_recoverable(self):
        report = certify_mds(code56_layout(5, virtual_cols=(0,)))
        assert report.is_mds
        assert not report.storage_optimal  # virtual disks cost capacity

    def test_roundtrip_and_recovery(self, rng):
        lay = code56_layout(5, virtual_cols=(0,))
        code = ArrayCode(lay)
        data = rng.integers(0, 256, size=(lay.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        for f1, f2 in itertools.combinations(lay.physical_cols, 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)


class TestGeneralVirtual:
    @pytest.mark.parametrize("p,v", [(7, 1), (7, 2), (11, 1), (11, 3)])
    def test_mds_preserved(self, p, v):
        report = certify_mds(code56_layout(p, virtual_cols=tuple(range(v))))
        assert report.is_mds

    def test_virtual_rows_hold_no_data(self):
        p, v = 7, 2
        lay = code56_layout(p, virtual_cols=(0, 1))
        # rows whose horizontal parity is in cols 0..1 are rows p-2, p-3
        for row in (p - 2, p - 3):
            for col in range(p - 1):
                assert (row, col) in lay.virtual_cells

    def test_data_per_group_is_m_times_m_minus_1(self):
        for m in (3, 5, 8, 9):
            plan = virtual_disk_plan(m)
            lay = plan.layout()
            assert lay.num_data == m * (m - 1) == plan.data_per_group

    def test_rejects_out_of_square_virtual(self):
        with pytest.raises(ValueError):
            code56_layout(5, virtual_cols=(4,))  # the diagonal column


class TestVirtualDiskPlan:
    def test_no_virtual_when_m_plus_1_prime(self):
        for m in (4, 6, 10, 12):
            plan = virtual_disk_plan(m)
            assert not plan.needs_virtual
            assert plan.p == m + 1

    def test_virtual_when_needed(self):
        plan = virtual_disk_plan(7)  # 8 not prime -> p = 11, v = 3
        assert plan.p == 11
        assert plan.v == 3
        assert plan.virtual_cols == (0, 1, 2)
        assert plan.needs_virtual

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            virtual_disk_plan(2)
