"""Algorithm 1 (two recovery chains) vs the generic decoder."""

import itertools

import numpy as np
import pytest

from repro.codes import apply_recovery_plan, code56_layout, get_code
from repro.core.chain_decoder import (
    plan_double_column_recovery,
    recovery_chain_starting_points,
)

PRIMES = (5, 7, 11)


class TestStartingPoints:
    def test_paper_figure5_example(self):
        # p=5, failures in columns 1 and 2: starts are A=(0,1) and E=(3,2)
        assert recovery_chain_starting_points(5, 1, 2) == ((0, 1), (3, 2))

    def test_starting_points_are_diagonally_recoverable(self):
        # each start lies on the diagonal that misses the *other* column
        for p in PRIMES:
            for f1, f2 in itertools.combinations(range(p - 1), 2):
                (r1, c1), (r2, c2) = recovery_chain_starting_points(p, f1, f2)
                assert c1 == f1 and c2 == f2
                # diagonal of start 1 misses column f2
                d1 = (r1 + c1) % p
                assert all((r + f2) % p != d1 for r in range(p - 1))
                d2 = (r2 + c2) % p
                assert all((r + f1) % p != d2 for r in range(p - 1))

    def test_rejects_parity_column(self):
        with pytest.raises(ValueError):
            recovery_chain_starting_points(5, 1, 4)


class TestChainDecoder:
    @pytest.mark.parametrize("p", PRIMES)
    def test_all_double_failures(self, p, rng):
        lay = code56_layout(p)
        code = get_code("code56", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(p), 2):
            plan = plan_double_column_recovery(lay, f1, f2)
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            apply_recovery_plan(plan, broken)
            assert np.array_equal(broken, stripe), (p, f1, f2)

    @pytest.mark.parametrize("p", PRIMES)
    def test_single_failures(self, p, rng):
        lay = code56_layout(p)
        code = get_code("code56", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f in range(p):
            plan = plan_double_column_recovery(lay, f)
            broken = stripe.copy()
            broken[:, f, :] = 0
            apply_recovery_plan(plan, broken)
            assert np.array_equal(broken, stripe)

    @pytest.mark.parametrize("p", PRIMES)
    def test_optimal_decode_complexity(self, p):
        """Every recovered element costs exactly p-3 XORs (Sec. III-E.2)."""
        lay = code56_layout(p)
        for f1, f2 in itertools.combinations(range(p), 2):
            plan = plan_double_column_recovery(lay, f1, f2)
            assert all(step.xor_count == p - 3 for step in plan.steps)
            assert len(plan.steps) == 2 * (p - 1)

    def test_order_insensitive(self):
        lay = code56_layout(5)
        a = plan_double_column_recovery(lay, 3, 1)
        b = plan_double_column_recovery(lay, 1, 3)
        assert a.lost == b.lost

    def test_same_column_twice_is_single(self):
        lay = code56_layout(5)
        plan = plan_double_column_recovery(lay, 2, 2)
        assert len(plan.lost) == 4  # one column only

    def test_agrees_with_generic_decoder_on_values(self, rng):
        p = 7
        lay = code56_layout(p)
        code = get_code("code56", p)
        data = rng.integers(0, 256, size=(code.num_data, 16), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(range(p), 2):
            via_chain = stripe.copy()
            via_chain[:, f1, :] = 0
            via_chain[:, f2, :] = 0
            apply_recovery_plan(plan_double_column_recovery(lay, f1, f2), via_chain)
            via_generic = stripe.copy()
            via_generic[:, f1, :] = 0
            via_generic[:, f2, :] = 0
            apply_recovery_plan(code.plan_column_recovery(f1, f2), via_generic)
            assert np.array_equal(via_chain, via_generic)

    def test_rejects_other_codes(self):
        from repro.codes import rdp_layout

        with pytest.raises(ValueError):
            plan_double_column_recovery(rdp_layout(5), 0, 1)

    def test_rejects_shortened_layouts(self):
        lay = code56_layout(5, virtual_cols=(0,))
        with pytest.raises(ValueError):
            plan_double_column_recovery(lay, 1, 2)

    def test_rejects_out_of_range(self):
        lay = code56_layout(5)
        with pytest.raises(ValueError):
            plan_double_column_recovery(lay, 0, 5)
