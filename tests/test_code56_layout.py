"""Code 5-6 geometry: the paper's Section III, checked cell by cell."""

import pytest

from repro.codes import CellKind, certify_mds, code56_layout, get_code
from repro.codes.code56 import (
    diagonal_chain_cells,
    diagonal_of_cell,
    horizontal_parity_cell,
)

SMALL_PRIMES = (5, 7, 11, 13)


class TestPlacement:
    def test_shape(self):
        lay = code56_layout(5)
        assert (lay.rows, lay.cols) == (4, 5)
        assert lay.n_disks == 5

    def test_horizontal_parities_on_antidiagonal(self):
        p = 5
        lay = code56_layout(p)
        for i in range(p - 1):
            cell = horizontal_parity_cell(p, i)
            assert cell == (i, p - 2 - i)
            assert lay.kind(cell) is CellKind.HORIZONTAL

    def test_diagonal_column_is_last(self):
        p = 7
        lay = code56_layout(p)
        for i in range(p - 1):
            assert lay.kind((i, p - 1)) is CellKind.DIAGONAL

    def test_data_count_is_mds_capacity(self):
        for p in SMALL_PRIMES:
            lay = code56_layout(p)
            assert lay.num_data == (p - 1) * (p - 2)
            assert lay.num_parity == 2 * (p - 1)

    def test_rejects_nonprime(self):
        with pytest.raises(ValueError):
            code56_layout(6)

    def test_rejects_tiny_prime(self):
        with pytest.raises(ValueError):
            code56_layout(3)


class TestPaperEquations:
    """The worked examples printed in Section III-A."""

    def test_eq1_example(self):
        # "C(0,3) can be calculated by C(0,0) ^ C(0,1) ^ C(0,2)"
        lay = code56_layout(5)
        chain = lay.chain_of_parity[(0, 3)]
        assert set(chain.members) == {(0, 0), (0, 1), (0, 2)}

    def test_eq2_example(self):
        # "C(1,4) = C(0,0) ^ C(3,2) ^ C(2,3)"
        lay = code56_layout(5)
        chain = lay.chain_of_parity[(1, 4)]
        assert set(chain.members) == {(0, 0), (3, 2), (2, 3)}

    def test_every_diagonal_chain_has_p_minus_2_members(self):
        for p in SMALL_PRIMES:
            lay = code56_layout(p)
            for i in range(p - 1):
                chain = lay.chain_of_parity[(i, p - 1)]
                assert len(chain.members) == p - 2

    def test_diagonal_chains_cover_all_data_once(self):
        for p in SMALL_PRIMES:
            seen = []
            for i in range(p - 1):
                seen.extend(diagonal_chain_cells(p, i))
            lay = code56_layout(p)
            assert sorted(seen) == sorted(lay.data_cells)

    def test_horizontal_antidiagonal_is_diagonal_p_minus_2(self):
        for p in SMALL_PRIMES:
            for i in range(p - 1):
                assert diagonal_of_cell(p, horizontal_parity_cell(p, i)) == p - 2


class TestOptimalProperties:
    """Section III-E's four properties, measured not assumed."""

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_property_1_mds(self, p):
        report = certify_mds(code56_layout(p))
        assert report.is_mds
        assert report.storage_optimal

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_property_2_encode_complexity(self, p):
        # 2(p-1)(p-3) XORs per stripe == (2p-6)/(p-2) per data element
        lay = code56_layout(p)
        assert lay.xor_count_total() == 2 * (p - 1) * (p - 3)

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_property_3_single_write_optimal(self, p):
        lay = code56_layout(p)
        assert all(lay.update_penalty(c) == 2 for c in lay.data_cells)

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_storage_efficiency_is_mds_bound(self, p):
        code = get_code("code56", p)
        assert code.storage_efficiency() == pytest.approx((p - 2) / p)
