"""The paper's headline quantitative claims, measured end to end.

Abstract: "compared to existing MDS codes, Code 5-6 reduces new
parities, decreases the total I/O operations, and speeds up the
conversion process by up to 80%, 48.5%, and 3.38x, respectively";
Section V-C: "Code 5-6 saves the conversion time by up to 89.0%"
(simulation).  Exact magnitudes depend on the authors' configurations
(not all legible in the source); each claim is checked as a band around
the published number, with the measured value recorded in
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis import conversion_time, metrics_from_plan
from repro.analysis.costmodel import comparison_width
from repro.migration import build_plan, supported_conversions
from repro.migration.approaches import alignment_cycle
from repro.simdisk import get_preset, simulate_closed
from repro.workloads import conversion_trace


def all_metrics(p):
    out = {}
    for code, approach in supported_conversions():
        n = comparison_width(code, p)
        plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
        out[(code, approach)] = metrics_from_plan(plan)
    return out


class TestNewParityReduction:
    def test_up_to_80_percent(self, paper_p):
        """Code 5-6 vs the worst competitor: ~80% fewer new parities.

        At p=5: Code 5-6 generates B/3 new parities; X-Code's direct
        conversion generates 10/12 B — a 60% reduction; vs EVENODD/RDP
        via RAID-0 (2/3 B) it is 50%.  The 80% headline corresponds to
        larger configurations; we assert the reduction grows with p and
        reaches >= 60% within the paper's p range.
        """
        m = all_metrics(paper_p)
        base = m[("code56", "direct")].new_parity_ratio
        worst = max(v.new_parity_ratio for k, v in m.items() if k[0] != "code56")
        reduction = 1 - base / worst
        assert reduction >= 0.45
        if paper_p == 7:
            assert reduction >= 0.60


class TestTotalIOReduction:
    def test_up_to_48_5_percent(self):
        """Total I/Os: Code 5-6 saves up to ~48.5% vs the worst approach."""
        best_reduction = 0.0
        for p in (5, 7, 11):
            m = all_metrics(p)
            base = m[("code56", "direct")].total_ios
            worst = max(v.total_ios for k, v in m.items() if k[0] != "code56")
            best_reduction = max(best_reduction, 1 - base / worst)
        assert 0.30 <= best_reduction <= 0.60  # band around 48.5%


class TestConversionSpeedup:
    def test_up_to_3_38x_analysis(self):
        """Conversion-time speedup vs other codes' *worst* applicable
        approaches reaches the >3x regime of the abstract."""
        speedups = []
        for p in (5, 7):
            m = all_metrics(p)
            base = m[("code56", "direct")].time_nlb
            for k, v in m.items():
                if k[0] != "code56":
                    speedups.append(v.time_nlb / base)
        assert max(speedups) >= 2.0
        assert max(speedups) <= 5.0

    def test_code56_has_fastest_lb_time(self, paper_p):
        m = all_metrics(paper_p)
        base = m[("code56", "direct")].time_lb
        assert all(
            v.time_lb >= base - 1e-12 for k, v in m.items() if k[0] != "code56"
        )


class TestSimulatedTimeSaving:
    def test_up_to_89_percent_in_simulation(self):
        """Figure 19 / Table V: simulated conversion time saved by up to
        ~89% at equal p (LB, 4KB blocks)."""
        model = get_preset("sata-7200")
        p = 5
        times = {}
        for code, approach in supported_conversions():
            n = comparison_width(code, p)
            plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
            tr = conversion_trace(
                plan, total_data_blocks=60_000, block_size=4096, lb_rotation_period=16
            )
            times[(code, approach)] = simulate_closed(tr, model).makespan_ms
        base = times[("code56", "direct")]
        worst = max(v for k, v in times.items() if k[0] != "code56")
        saving = 1 - base / worst
        # the paper reports up to 89%; our disk model's track fly-over
        # makes the sequential Code 5-6 trace cheaper still (EXPERIMENTS.md)
        assert 0.70 <= saving <= 0.995

    def test_code56_fastest_in_simulation(self):
        model = get_preset("sata-7200")
        p = 5
        base = None
        others = []
        for code, approach in supported_conversions():
            if code == "code56-right":
                continue  # identical to code56 by symmetry
            n = comparison_width(code, p)
            plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
            tr = conversion_trace(plan, total_data_blocks=24_000, block_size=4096)
            t = simulate_closed(tr, model).makespan_ms
            if code == "code56":
                base = t
            else:
                others.append(t)
        assert base is not None
        assert all(base < t for t in others)


class TestStructuralClaims:
    def test_conversion_is_online_safe(self):
        """Direct Code 5-6 conversion writes ONLY the new disk, so every
        old disk stays read-only — the paper's no-conflict argument for
        online reads."""
        plan = build_plan("code56", "direct", 7, groups=2)
        from repro.migration.ops import OpKind

        for op in plan.ops:
            if op.kind is OpKind.WRITE:
                assert op.disk == plan.m

    def test_bigger_blocks_scale_simulated_time(self):
        """Fig 19(a) vs 19(b): 8KB traces take longer than 4KB."""
        model = get_preset("sata-7200")
        plan = build_plan("code56", "direct", 5, groups=1)
        t4 = simulate_closed(
            conversion_trace(plan, total_data_blocks=12_000, block_size=4096), model
        ).makespan_ms
        t8 = simulate_closed(
            conversion_trace(plan, total_data_blocks=12_000, block_size=8192), model
        ).makespan_ms
        assert t8 > t4

    def test_p7_speedup_exceeds_p5_in_simulation(self):
        """Section V-C: 'When p becomes larger (from 5 to 7), Code 5-6
        achieves higher speedup' (vs RDP's best approach, LB)."""
        model = get_preset("sata-7200")
        speedups = {}
        for p in (5, 7):
            times = {}
            for code, approach in [("code56", "direct"), ("rdp", "via-raid0"), ("rdp", "via-raid4")]:
                n = comparison_width(code, p)
                plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
                tr = conversion_trace(
                    plan, total_data_blocks=42_000, block_size=4096, lb_rotation_period=16
                )
                times[(code, approach)] = simulate_closed(tr, model).makespan_ms
            best_rdp = min(times[("rdp", "via-raid0")], times[("rdp", "via-raid4")])
            speedups[p] = best_rdp / times[("code56", "direct")]
        assert speedups[7] >= speedups[5] * 0.95  # allow noise, expect growth
