"""Crash-consistent conversion: exhaustive crash-point sweeps + resume.

The acceptance gate for the fault plane: crash the conversion at every
crashable event boundary (clean and torn-write variants), resume from
the journal, and require the final array to be byte-identical to an
uninterrupted run — for both offline engines and the online converter,
exhaustively at p ∈ {5, 7} and sampled at p = 13.
"""

import numpy as np
import pytest

from repro.faults import (
    ConversionCrash,
    ConversionJournal,
    FaultPlane,
    FaultScenario,
    count_crash_events,
    crash_sweep_offline,
    crash_sweep_online,
    execute_checkpointed,
    fault_soak,
    replay_scenario,
    run_to_completion,
)
from repro.migration.approaches import build_plan
from repro.migration.engine import prepare_source_array


class TestCheckpointedExecution:
    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_healthy_run_matches_plain_execution(self, engine, rng):
        from repro.migration.engine import execute_plan, verify_conversion

        plan = build_plan("code56", "direct", 5, groups=2)
        ref_array, ref_data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        execute_plan(plan, ref_array, ref_data)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        run = execute_checkpointed(plan, array, data, engine=engine)
        assert verify_conversion(run.result, check_io_counters=False)
        assert np.array_equal(array.snapshot(), ref_array.snapshot())
        assert run.units_skipped == 0 and run.rollbacks == 0

    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_counted_io_matches_plan_when_healthy(self, engine):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        run = execute_checkpointed(plan, array, data, engine=engine)
        assert run.result.measured_reads == plan.read_ios
        assert run.result.measured_writes == plan.write_ios

    def test_run_to_completion_retries_through_crashes(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        plane = FaultPlane(FaultScenario(crash_at=5, crash_tear=0.5))
        plane.attach(array)
        journal = ConversionJournal()

        def attempt():
            try:
                return execute_checkpointed(plan, array, data, journal)
            except ConversionCrash:
                plane.disarm_crash()  # the "restarted process" has no armed crash
                raise

        run, crashes = run_to_completion(attempt)
        assert crashes == 1
        assert plane.counters["crashes"] == 1

    def test_probe_counts_match_between_engines_and_scenarios(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        for engine in ("audited", "compiled"):
            n1 = count_crash_events(plan, engine=engine)
            n2 = count_crash_events(plan, engine=engine)
            assert n1 == n2 > 0


class TestOfflineSweeps:
    @pytest.mark.parametrize("p", [5, 7])
    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_exhaustive_sweep_byte_identical(self, p, engine):
        report = crash_sweep_offline(p, engine)
        assert report["ok"], report["failures"][:2]
        assert report["points_swept"] == report["crash_events"]
        assert report["runs"] == report["crash_events"] * len(report["variants"])
        assert set(report["variants"]) == {"clean", "torn-half", "torn-1-byte"}

    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_sampled_sweep_large_p(self, engine):
        report = crash_sweep_offline(13, engine, sample=6)
        assert report["ok"], report["failures"][:2]
        assert report["points_swept"] == 6


class TestOnlineSweeps:
    @pytest.mark.parametrize("p", [5, 7])
    def test_exhaustive_sweep_with_app_writes(self, p):
        report = crash_sweep_online(p, schedules=3)
        assert report["ok"], report["failures"][:2]
        assert report["schedules"] == 3
        assert all(n > 0 for n in report["crash_events"])

    def test_sampled_sweep_large_p(self):
        report = crash_sweep_online(13, schedules=3, sample=4, n_requests=4)
        assert report["ok"], report["failures"][:2]


class TestSoakAndReplay:
    def test_short_soak_is_clean(self):
        report = fault_soak(2.0, seed=123, max_iterations=10)
        assert report["ok"], report["failures"][:2]
        assert report["iterations"] == 10
        assert sum(report["by_kind"].values()) == 10

    def test_failure_specs_replay_verbatim(self):
        spec = {
            "kind": "offline-crash",
            "engine": "audited",
            "p": 5,
            "groups": 2,
            "block_size": 8,
            "seed": 77,
            "scenario": FaultScenario(seed=77).with_crash(3, 0.5).to_dict(),
        }
        first = replay_scenario(spec)
        second = replay_scenario(spec)
        assert first["ok"] and second["ok"]
        assert first == second

    def test_artifacts_written_for_failures(self, tmp_path):
        from repro.faults import save_failures

        paths = save_failures([{"kind": "offline-crash", "seed": 1}], tmp_path)
        assert len(paths) == 1 and paths[0].exists()


class TestJournalDiscipline:
    def test_stale_committed_unit_rolled_back_and_reexecuted(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        journal = ConversionJournal()
        execute_checkpointed(plan, array, data, journal)
        reference = array.snapshot()
        rec = next(iter(journal.records.values()))
        payloads = array.gather_raw(rec.disks, rec.blocks)
        payloads[0, 0] ^= 0xFF
        array.restore_blocks(rec.disks, rec.blocks, payloads)
        plane = FaultPlane(FaultScenario())
        plane.attach(array)
        run = execute_checkpointed(plan, array, data, journal)
        assert run.stale_detected == 1
        assert run.rollbacks == 1
        assert plane.counters["stale_checkpoints"] == 1
        assert np.array_equal(array.snapshot(), reference)

    def test_validate_false_trusts_committed_units(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        journal = ConversionJournal()
        execute_checkpointed(plan, array, data, journal)
        rerun = execute_checkpointed(plan, array, data, journal, validate=False)
        assert rerun.units_executed == 0 and rerun.stale_detected == 0

    def test_crash_mid_unit_leaves_unit_in_flight(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(3), block_size=8
        )
        plane = FaultPlane(FaultScenario(crash_at=7))
        plane.attach(array)
        journal = ConversionJournal()
        with pytest.raises(ConversionCrash):
            execute_checkpointed(plan, array, data, journal)
        states = {rec.state for rec in journal.records.values()}
        assert "in-flight" in states
