"""Reed-Solomon P+Q reference baseline."""

import itertools

import numpy as np
import pytest

from repro.codes import ReedSolomonRaid6


@pytest.fixture
def rs_stripe(rng):
    rs = ReedSolomonRaid6(k=8, rows=3)
    stripe = rs.empty_stripe(block_size=32)
    stripe[:, :8, :] = rng.integers(0, 256, size=(3, 8, 32), dtype=np.uint8)
    rs.encode(stripe)
    return rs, stripe


class TestEncode:
    def test_p_is_xor(self, rs_stripe):
        rs, stripe = rs_stripe
        expect = np.bitwise_xor.reduce(stripe[:, :8, :], axis=1)
        assert np.array_equal(stripe[:, rs.p_col, :], expect)

    def test_verify(self, rs_stripe):
        rs, stripe = rs_stripe
        assert rs.verify(stripe)
        stripe[1, 2, 5] ^= 0x10
        assert not rs.verify(stripe)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ReedSolomonRaid6(k=1)
        with pytest.raises(ValueError):
            ReedSolomonRaid6(k=256)

    def test_shape_check(self, rs_stripe):
        rs, _ = rs_stripe
        with pytest.raises(ValueError):
            rs.encode(np.zeros((3, 5, 8), dtype=np.uint8))


class TestDecode:
    def test_every_double_erasure(self, rs_stripe):
        rs, stripe = rs_stripe
        for c1, c2 in itertools.combinations(range(rs.cols), 2):
            broken = stripe.copy()
            broken[:, c1, :] = 0xAA
            broken[:, c2, :] = 0x55
            rs.decode_columns(broken, c1, c2)
            assert np.array_equal(broken, stripe), (c1, c2)

    def test_every_single_erasure(self, rs_stripe):
        rs, stripe = rs_stripe
        for c in range(rs.cols):
            broken = stripe.copy()
            broken[:, c, :] = 0
            rs.decode_columns(broken, c)
            assert np.array_equal(broken, stripe)

    def test_triple_erasure_rejected(self, rs_stripe):
        rs, stripe = rs_stripe
        with pytest.raises(ValueError):
            rs.decode_columns(stripe, 0, 1, 2)

    def test_noop_without_failures(self, rs_stripe):
        rs, stripe = rs_stripe
        before = stripe.copy()
        rs.decode_columns(stripe)
        assert np.array_equal(stripe, before)


class TestProperties:
    def test_storage_efficiency(self):
        assert ReedSolomonRaid6(k=8).storage_efficiency() == pytest.approx(0.8)

    def test_num_data(self):
        assert ReedSolomonRaid6(k=4, rows=5).num_data == 20
