"""Front-end contract: `repro check` and `python -m repro.staticcheck`.

Exit codes are load-bearing for CI: 0 = clean, 1 = findings,
2 = an analyzer itself failed.
"""

import json
import subprocess
import sys

import repro.staticcheck.runner as runner_mod
from repro.cli import main
from repro.obs import MetricsRegistry
from repro.staticcheck import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    Finding,
    run_checks,
)


def run_cli(*argv):
    return main(list(argv))


def _fake_finding():
    return Finding(
        analyzer="lint", rule="SC-L001", location="x.py:1", message="synthetic"
    )


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert run_cli("check", "--quick", "--analyzer", "lint",
                       "--analyzer", "selftest") == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "CLEAN" in out and "exit 0" in out

    def test_findings_exit_one(self, capsys, monkeypatch):
        monkeypatch.setitem(
            runner_mod.ANALYZERS, "lint", lambda primes: (1, [_fake_finding()])
        )
        assert run_cli("check", "--quick", "--analyzer", "lint") == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "[SC-L001]" in out and "exit 1" in out

    def test_internal_error_exit_two(self, capsys, monkeypatch):
        def boom(primes):
            raise RuntimeError("analyzer crashed")

        monkeypatch.setitem(runner_mod.ANALYZERS, "lint", boom)
        assert run_cli("check", "--quick", "--analyzer", "lint") == EXIT_INTERNAL_ERROR
        out = capsys.readouterr().out
        assert "INTERNAL ERROR" in out and "analyzer crashed" in out

    def test_findings_beat_nothing_but_internal_errors_beat_findings(self, monkeypatch):
        def boom(primes):
            raise RuntimeError("dead analyzer")

        monkeypatch.setitem(runner_mod.ANALYZERS, "selftest", boom)
        monkeypatch.setitem(
            runner_mod.ANALYZERS, "lint", lambda primes: (1, [_fake_finding()])
        )
        report = run_checks(analyzers=("lint", "selftest"), registry=MetricsRegistry())
        assert report.findings and report.internal_errors
        assert report.exit_code == EXIT_INTERNAL_ERROR


class TestJsonReport:
    def test_json_shape(self, capsys):
        assert run_cli("check", "--quick", "--json",
                       "--analyzer", "lint") == EXIT_CLEAN
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True
        assert doc["exit_code"] == 0
        assert doc["checks"]["lint"] > 0
        assert doc["findings"] == []
        assert "lint" in doc["durations_s"]

    def test_json_findings_roundtrip(self, capsys, monkeypatch):
        monkeypatch.setitem(
            runner_mod.ANALYZERS, "lint", lambda primes: (1, [_fake_finding()])
        )
        assert run_cli("check", "--quick", "--json",
                       "--analyzer", "lint") == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "SC-L001"
        assert doc["findings"][0]["severity"] == "error"


class TestMetricsIntegration:
    def test_registry_counts_checks_and_findings(self, monkeypatch):
        monkeypatch.setitem(
            runner_mod.ANALYZERS, "lint", lambda primes: (7, [_fake_finding()])
        )
        registry = MetricsRegistry()
        report = run_checks(analyzers=("lint",), registry=registry)
        assert report.exit_code == EXIT_FINDINGS
        snap = registry.render_json()
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in json.loads(snap)["counters"]
        }
        assert counters[("staticcheck.checks", (("analyzer", "lint"),))] == 7
        assert (
            counters[
                ("staticcheck.findings", (("analyzer", "lint"), ("rule", "SC-L001")))
            ]
            == 1
        )

    def test_cli_metrics_flag_prints_snapshot(self, capsys):
        assert run_cli("check", "--quick", "--analyzer", "selftest",
                       "--metrics") == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "staticcheck.checks" in out


class TestModuleEntryPoint:
    def test_python_dash_m_quick(self):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.staticcheck",
                "--quick", "--analyzer", "lint", "--analyzer", "selftest",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout

    def test_unknown_analyzer_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "--analyzer", "nope"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2
