"""Storage efficiency with virtual disks (Eq. 6, Fig. 18)."""

import pytest

from repro.analysis import code56_efficiency, efficiency_sweep, mds_raid6_efficiency


class TestEq6:
    def test_paper_example_m3(self):
        """Section IV-B2: m=3 gives 6/13 vs the MDS 1/2."""
        e = code56_efficiency(3)
        assert e.p == 5 and e.v == 1
        assert e.paper_efficiency == pytest.approx(6 / 13)
        assert e.mds_efficiency == pytest.approx(0.5)

    def test_no_virtual_matches_mds(self):
        for m in (4, 6, 10, 12):
            e = code56_efficiency(m)
            assert e.v == 0
            assert e.paper_efficiency == pytest.approx(e.mds_efficiency)
            assert e.penalty == pytest.approx(0.0)

    def test_paper_claim_penalty_below_3_8_percent(self):
        """Fig. 18: 'virtual disks have minor effect (< 3.8%)'.

        Eq. 6 gives exactly that bound whenever at most one virtual disk
        is needed (v <= 1); widths inside large prime gaps (e.g. m = 7,
        v = 3 -> 5.1%) exceed it slightly — recorded as a measured delta
        in EXPERIMENTS.md.  The penalty stays under 6% for every m >= 5.
        """
        for m in range(5, 40):
            e = code56_efficiency(m)
            if e.v <= 1:
                assert e.penalty <= 0.038 + 1e-9, (m, e.penalty)
            assert e.penalty <= 0.06, (m, e.penalty)

    def test_penalty_shrinks_with_scale(self):
        worst_small = max(code56_efficiency(m).penalty for m in range(5, 12))
        worst_large = max(code56_efficiency(m).penalty for m in range(20, 30))
        assert worst_large < worst_small

    def test_physical_efficiency_not_above_paper(self):
        """The stricter layout metric can only be <= Eq. 6's value."""
        for m in range(3, 20):
            e = code56_efficiency(m)
            assert e.physical_efficiency <= e.paper_efficiency + 1e-12

    def test_physical_equals_paper_without_virtual(self):
        e = code56_efficiency(6)
        assert e.physical_efficiency == pytest.approx(e.paper_efficiency)


class TestHelpers:
    def test_mds_efficiency(self):
        assert mds_raid6_efficiency(6) == pytest.approx(4 / 6)
        with pytest.raises(ValueError):
            mds_raid6_efficiency(2)

    def test_sweep(self):
        pts = efficiency_sweep(range(3, 9))
        assert [e.m for e in pts] == [3, 4, 5, 6, 7, 8]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            code56_efficiency(2)
