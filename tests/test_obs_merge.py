"""Cross-process observability merging (repro.obs.merge)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    merge_snapshot,
    spans_from_dicts,
)


def _worker_registry(scale: int) -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    reg.counter("io.total").inc(10 * scale)
    reg.counter("io.reads", disk=0).inc(scale)
    reg.gauge("config.p").set(5)
    h = reg.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
    h.observe(0.5 * scale)
    h.observe(50.0)
    return reg


class TestMergeSnapshot:
    def test_counters_add(self):
        parent = MetricsRegistry(enabled=True)
        merge_snapshot(_worker_registry(1).snapshot(), parent)
        merge_snapshot(_worker_registry(2).snapshot(), parent)
        assert parent.counter("io.total").value == 30
        assert parent.counter("io.reads", disk=0).value == 3

    def test_gauges_last_wins(self):
        parent = MetricsRegistry(enabled=True)
        merge_snapshot(_worker_registry(1).snapshot(), parent)
        merge_snapshot(_worker_registry(2).snapshot(), parent)
        assert parent.gauge("config.p").value == 5

    def test_histograms_fold_observations(self):
        parent = MetricsRegistry(enabled=True)
        merge_snapshot(_worker_registry(1).snapshot(), parent)
        merge_snapshot(_worker_registry(2).snapshot(), parent)
        h = parent.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
        assert h.count == 4
        assert h.min == 0.5
        assert h.max == 50.0

    def test_mismatched_bucket_bounds_rejected(self):
        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_ms", buckets=(1.0, 2.0)).observe(1)
        with pytest.raises(ValueError, match="bucket bounds"):
            merge_snapshot(_worker_registry(1).snapshot(), parent)

    def test_merge_into_fresh_registry_equals_source(self):
        src = _worker_registry(3)
        parent = merge_snapshot(src.snapshot(), MetricsRegistry(enabled=True))
        assert parent.snapshot() == src.snapshot()


class TestSpansFromDicts:
    def _spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test", detail=1):
                pass
        return tracer.spans

    def test_round_trip_preserves_fields(self):
        spans = self._spans()
        back = spans_from_dicts([s.to_dict() for s in spans])
        assert [s.name for s in back] == [s.name for s in spans]
        assert [s.dur_s for s in back] == [s.dur_s for s in spans]
        assert back[0].args == spans[0].args

    def test_track_prefix_namespaces_workers(self):
        spans = self._spans()
        back = spans_from_dicts([s.to_dict() for s in spans], track_prefix="worker-7/")
        assert all(s.track.startswith("worker-7/") for s in back)
        # original track name survives behind the prefix
        assert back[0].track == f"worker-7/{spans[0].track}"
