"""Unit tests for the generic GF(2) erasure decoder and recovery plans."""

import itertools

import numpy as np
import pytest

from repro.codes import (
    PlanCache,
    RecoveryPlan,
    RecoveryStep,
    UnrecoverableError,
    apply_recovery_plan,
    build_recovery_plan,
    get_code,
)


class TestRecoveryPlanValidation:
    def test_plan_must_cover_lost(self):
        with pytest.raises(ValueError):
            RecoveryPlan(
                lost=((0, 0), (0, 1)),
                steps=(RecoveryStep(target=(0, 0), sources=((0, 2),)),),
            )

    def test_plan_rejects_forward_references(self):
        with pytest.raises(ValueError):
            RecoveryPlan(
                lost=((0, 0), (0, 1)),
                steps=(
                    RecoveryStep(target=(0, 0), sources=((0, 1),)),  # not yet recovered
                    RecoveryStep(target=(0, 1), sources=((0, 2),)),
                ),
            )

    def test_plan_allows_backward_references(self):
        plan = RecoveryPlan(
            lost=((0, 0), (0, 1)),
            steps=(
                RecoveryStep(target=(0, 1), sources=((0, 2),)),
                RecoveryStep(target=(0, 0), sources=((0, 1), (0, 2))),
            ),
        )
        assert plan.total_xors == 1
        assert plan.read_set == frozenset({(0, 2)})
        assert plan.total_reads == 1


class TestGenericDecoder:
    @pytest.mark.parametrize("name", ["code56", "rdp", "evenodd", "xcode", "pcode", "hcode", "hdp"])
    def test_all_double_column_erasures(self, name, rng):
        code = get_code(name, 5)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        for f1, f2 in itertools.combinations(code.layout.physical_cols, 2):
            plan = code.plan_column_recovery(f1, f2)
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            apply_recovery_plan(plan, broken)
            assert np.array_equal(broken, stripe), (name, f1, f2)

    def test_triple_erasure_unrecoverable(self):
        code = get_code("rdp", 5)
        lost = tuple(
            (r, c) for c in (0, 1, 2) for r in range(code.rows)
        )
        with pytest.raises(UnrecoverableError):
            build_recovery_plan(code.layout, lost)

    def test_partial_cell_erasure(self, rng):
        code = get_code("code56", 5)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        lost = ((0, 0), (2, 3), (1, 4))
        plan = build_recovery_plan(code.layout, lost)
        broken = stripe.copy()
        for r, c in lost:
            broken[r, c, :] = 0
        apply_recovery_plan(plan, broken)
        assert np.array_equal(broken, stripe)

    def test_empty_loss_is_empty_plan(self):
        code = get_code("rdp", 5)
        plan = build_recovery_plan(code.layout, ())
        assert plan.steps == ()

    def test_duplicates_deduplicated(self):
        code = get_code("rdp", 5)
        plan = build_recovery_plan(code.layout, ((0, 0), (0, 0)))
        assert plan.lost == ((0, 0),)

    def test_virtual_cells_skipped(self):
        code = get_code("evenodd", 5, virtual_cols=(4,))
        plan = build_recovery_plan(code.layout, ((0, 4), (1, 4)))
        assert plan.lost == ()  # virtual cells need no recovery

    def test_batched_apply(self, rng):
        code = get_code("rdp", 5)
        data = rng.integers(0, 256, size=(6, code.num_data, 8), dtype=np.uint8)
        stripes = code.make_stripe(data)
        broken = stripes.copy()
        broken[:, :, 0, :] = 0
        broken[:, :, 4, :] = 0
        plan = code.plan_column_recovery(0, 4)
        apply_recovery_plan(plan, broken)
        assert np.array_equal(broken, stripes)


class TestPlanCache:
    def test_cache_returns_same_object(self):
        code = get_code("code56", 5)
        cache = PlanCache(code.layout)
        a = cache.plan_for_columns(1, 3)
        b = cache.plan_for_columns(3, 1)  # order-insensitive
        assert a is b

    def test_cell_plan_sorted_key(self):
        code = get_code("code56", 5)
        cache = PlanCache(code.layout)
        a = cache.plan_for_cells(((1, 1), (0, 0)))
        b = cache.plan_for_cells(((0, 0), (1, 1)))
        assert a is b
