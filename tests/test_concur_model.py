"""Interleaving model checker: exhaustive DFS over Algorithm 2's steps."""

import numpy as np

from repro.migration.online import OnlineCode56Conversion
from repro.staticcheck.concur.model import (
    ModelScenario,
    ModelStats,
    check_scenario,
    model_scenarios,
)


class TestCleanProtocol:
    def test_single_write_scenario_is_clean(self):
        stats, findings = check_scenario(ModelScenario(p=5, groups=2, lbas=(0,)))
        assert findings == []
        assert stats.states > 0
        assert stats.transitions >= stats.states - 1
        assert stats.checks > stats.states  # several invariants per state

    def test_pair_scenario_is_clean(self):
        stats, findings = check_scenario(ModelScenario(p=5, groups=2, lbas=(0, 7)))
        assert findings == []
        assert stats.states > 0

    def test_crashes_are_explored(self):
        """max_crashes=0 removes the crash transitions — strictly fewer
        states than the default single-crash budget."""
        base = ModelScenario(p=5, groups=2, lbas=(3,))
        with_crash, _ = check_scenario(base)
        without, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(3,), max_crashes=0)
        )
        assert findings == []
        assert without.states < with_crash.states

    def test_exploration_is_deterministic(self):
        scenario = ModelScenario(p=5, groups=2, lbas=(5,))
        first, _ = check_scenario(scenario)
        second, _ = check_scenario(scenario)
        assert (first.states, first.transitions, first.checks) == (
            second.states,
            second.transitions,
            second.checks,
        )


class TestScenarioBattery:
    def test_exhaustive_battery_covers_every_lba(self):
        scenarios = model_scenarios(5, exhaustive=True)
        # 2 groups x 4 rows x 3 data disks = 24 single-write scenarios
        # (the fleet pause/spare singles ride on representative LBAs only)
        singles = [
            s for s in scenarios
            if len(s.lbas) == 1 and s.batch == 1 and not s.pauses and not s.spare
        ]
        assert sorted(s.lbas[0] for s in singles) == list(range(24))
        assert any(len(s.lbas) == 2 for s in scenarios)
        assert any(len(s.lbas) == 3 for s in scenarios)

    def test_exhaustive_battery_reproves_batched_budgets(self):
        """ISSUE 9: the batched protocol is re-proved at run budgets
        {2, rows, groups*rows} alongside the per-parity battery."""
        scenarios = model_scenarios(5, exhaustive=True)
        budgets = {s.batch for s in scenarios}
        assert budgets == {1, 2, 4, 8}
        for b in (2, 4, 8):
            batched = [s for s in scenarios if s.batch == b]
            assert any(len(s.lbas) == 1 for s in batched)
            assert any(len(s.lbas) == 2 for s in batched)

    def test_sampled_battery_is_small(self):
        scenarios = model_scenarios(7, exhaustive=False)
        assert 0 < len(scenarios) < 16
        assert all(s.p == 7 for s in scenarios)
        assert any(s.batch > 1 for s in scenarios)

    def test_labels_are_distinct(self):
        scenarios = model_scenarios(5, exhaustive=True)
        labels = [s.label for s in scenarios]
        assert len(set(labels)) == len(labels)

    def test_stats_merge(self):
        a = ModelStats(scenarios=1, states=10, transitions=20, checks=30)
        a.merge(ModelStats(scenarios=2, states=1, transitions=2, checks=3))
        assert (a.scenarios, a.states, a.transitions, a.checks) == (3, 11, 22, 33)


class TestSeededDefects:
    """The checker must catch each planted protocol bug (no vacuous green)."""

    SCENARIO = ModelScenario(p=5, groups=2, lbas=(0, 7))

    def test_lost_diagonal_patch_is_caught(self):
        class LostPatch(OnlineCode56Conversion):
            def _patch_diagonal(self, group, prow, delta, report):
                report.writes_to_converted += 1
                return 2  # claims the I/O, never writes the parity

        _stats, findings = check_scenario(self.SCENARIO, converter_cls=LostPatch)
        assert {f.rule for f in findings} & {"SC-C001", "SC-C003", "SC-C004"}

    def test_mark_before_write_is_caught(self):
        class MarkFirst(OnlineCode56Conversion):
            def generate_step(self, report):
                pending = self.pending_parity()
                if pending is not None and self.journal is not None:
                    self.journal.mark(*pending)
                return super().generate_step(report)

        _stats, findings = check_scenario(self.SCENARIO, converter_cls=MarkFirst)
        assert "SC-C002" in {f.rule for f in findings}

    def test_eager_watermark_is_caught(self):
        class Eager(OnlineCode56Conversion):
            def mark_step(self):
                super().mark_step()
                if self.journal is not None:
                    ahead = self.pending_parity()
                    if ahead is not None:
                        self.journal.mark(*ahead)

        _stats, findings = check_scenario(self.SCENARIO, converter_cls=Eager)
        assert "SC-C002" in {f.rule for f in findings}

    def test_findings_are_capped_per_scenario(self):
        class LostPatch(OnlineCode56Conversion):
            def _patch_diagonal(self, group, prow, delta, report):
                report.writes_to_converted += 1
                return 2

        _stats, findings = check_scenario(self.SCENARIO, converter_cls=LostPatch)
        assert 0 < len(findings) <= 8


class TestBatchedProtocol:
    """Run/mark transitions: the group-commit window is model-checked."""

    def test_batched_scenarios_are_clean(self):
        for batch in (2, 4, 8):
            stats, findings = check_scenario(
                ModelScenario(p=5, groups=2, lbas=(0,), batch=batch)
            )
            assert findings == []
            assert stats.states > 0

    def test_batched_pair_is_clean(self):
        _stats, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0, 7), batch=4)
        )
        assert findings == []

    def test_batched_labels_carry_budget(self):
        plain = ModelScenario(p=5, groups=2, lbas=(0,))
        batched = ModelScenario(p=5, groups=2, lbas=(0,), batch=4)
        assert "batch" not in plain.label
        assert "batch=4" in batched.label

    def test_group_commit_before_run_is_caught(self):
        class MarkManyFirst(OnlineCode56Conversion):
            def generate_run_step(self, report, budget=None):
                run = self.pending_run(budget)
                if run and self.journal is not None:
                    self.journal.mark_many(run)
                return super().generate_run_step(report, budget=budget)

        _stats, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0, 7), batch=2),
            converter_cls=MarkManyFirst,
        )
        assert "SC-C002" in {f.rule for f in findings}

    def test_blind_overlap_check_is_caught(self):
        """A write landing inside the run window must be patched into the
        in-flight parity — disabling the overlap check is a real bug."""

        class BlindOverlap(OnlineCode56Conversion):
            def run_overlaps(self, group, prow):
                return False

        _stats, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0, 7), batch=4),
            converter_cls=BlindOverlap,
        )
        assert {f.rule for f in findings} & {"SC-C003", "SC-C004"}

    def test_window_crash_is_explored(self):
        """max_crashes=0 removes K/KC/KT from the batched alphabet too."""
        base = ModelScenario(p=5, groups=2, lbas=(3,), batch=2)
        with_crash, _ = check_scenario(base)
        without, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(3,), batch=2, max_crashes=0)
        )
        assert findings == []
        assert without.states < with_crash.states


class TestStepFunctionRefactor:
    """run() is a driver over the explicit transitions — same bytes."""

    def test_step_api_reaches_run_result(self, rng):
        from repro.migration.online import OnlineReport
        from repro.raid import BlockArray, Raid5Array, Raid5Layout

        def build():
            array = BlockArray(4, 8, block_size=8)
            r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
            data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
            r5.format_with(data.copy())
            array.add_disk()
            return array

        rng_state = rng.bit_generator.state
        via_run = build()
        OnlineCode56Conversion(via_run, 5).run([])

        rng.bit_generator.state = rng_state  # same formatted bytes
        via_steps = build()
        conv = OnlineCode56Conversion(via_steps, 5)
        report = OnlineReport()
        while conv.pending_parity() is not None:
            conv.generate_step(report)
            conv.mark_step()
        assert conv.conversion_done
        assert np.array_equal(via_run.snapshot(), via_steps.snapshot())

    def test_thread_state_roundtrip(self, rng):
        from repro.migration.online import OnlineReport
        from repro.raid import BlockArray, Raid5Array, Raid5Layout

        array = BlockArray(4, 8, block_size=8)
        r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
        data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
        r5.format_with(data)
        array.add_disk()
        conv = OnlineCode56Conversion(array, 5)
        report = OnlineReport()
        conv.generate_step(report)
        conv.mark_step()
        saved = conv.thread_state()
        pending_before = conv.pending_parity()
        conv.generate_step(report)
        conv.mark_step()
        conv.restore_thread_state(saved)
        assert conv.pending_parity() == pending_before


class TestRunnerWiring:
    def test_concur_is_registered_but_not_default(self):
        from repro.staticcheck import ANALYZERS, DEFAULT_ANALYZERS

        assert "concur" in ANALYZERS
        assert "concur" not in DEFAULT_ANALYZERS

    def test_selftest_has_no_false_negatives(self):
        from repro.staticcheck.concur.selftest import run_concur_selftest

        checks, findings = run_concur_selftest()
        assert checks >= 8
        assert findings == []


class TestFleetTransitions:
    """The fleet's pause (P), disk-failure (F) and spare-attach (S) rules."""

    def test_pause_resume_is_clean(self):
        stats, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0, 7), pauses=1)
        )
        assert findings == []
        base, _ = check_scenario(ModelScenario(p=5, groups=2, lbas=(0, 7)))
        assert stats.states > base.states  # P genuinely enlarges the space

    def test_spare_attach_is_clean_on_every_data_disk(self):
        for disk in range(4):
            _, findings = check_scenario(
                ModelScenario(p=5, groups=2, lbas=(3,), spare=True, fail_disk=disk)
            )
            assert findings == [], (disk, findings)

    def test_batched_spare_scenario_is_clean(self):
        _, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0, 7), batch=2, spare=True, fail_disk=1)
        )
        assert findings == []

    def test_pause_plus_spare_compose(self):
        _, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(0,), pauses=1, spare=True, fail_disk=2)
        )
        assert findings == []

    def test_labels_carry_fleet_alphabet(self):
        paused = ModelScenario(p=5, groups=2, lbas=(0,), pauses=1)
        spared = ModelScenario(p=5, groups=2, lbas=(0,), spare=True, fail_disk=1)
        assert "pauses=1" in paused.label
        assert "spare(d1)" in spared.label

    def test_invalid_spare_disk_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            check_scenario(
                ModelScenario(p=5, groups=2, lbas=(0,), spare=True, fail_disk=4)
            )

    def test_battery_includes_fleet_scenarios(self):
        labels = [s.label for s in model_scenarios(5, exhaustive=True)]
        assert any("pauses=1" in label for label in labels)
        assert any("spare(" in label for label in labels)

    def test_dropped_reconstruct_write_is_caught(self):
        """A converter that swallows writes to failed-disk blocks must
        trip SC-C001 via the reconstruction read — the degraded
        invariants have teeth, not just vacuous skips."""
        from repro.migration.online import OnlineCode56Conversion as _Conv

        class DropReconstructWrite(_Conv):
            def _serve(self, req, clock, report):
                if req.is_write:
                    _g, _r, disk, _stripe = self.locate(req.lba)
                    if disk in self.array.failed_disks:
                        return clock + 1.0  # swallow the write, charge a tick
                return super()._serve(req, clock, report)

        # LBA 1 lives on data disk 1 — the failed one — so its write
        # exercises exactly the reconstruct-write path being swallowed
        _, findings = check_scenario(
            ModelScenario(p=5, groups=2, lbas=(1, 8), spare=True, fail_disk=1),
            converter_cls=DropReconstructWrite,
        )
        assert any(f.rule == "SC-C001" for f in findings)
