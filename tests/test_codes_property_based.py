"""Property-based tests (hypothesis) on the code framework's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import CODE_NAMES, apply_recovery_plan, get_code

CODES = st.sampled_from(CODE_NAMES)
PRIMES = st.sampled_from([5, 7])
BLOCK_SIZES = st.sampled_from([1, 4, 16])


def _payload(draw, code, block_size):
    n = code.num_data * block_size
    raw = draw(st.binary(min_size=n, max_size=n))
    return np.frombuffer(raw, dtype=np.uint8).reshape(code.num_data, block_size).copy()


@st.composite
def code_and_stripe(draw):
    name = draw(CODES)
    p = draw(PRIMES)
    bs = draw(BLOCK_SIZES)
    code = get_code(name, p)
    data = _payload(draw, code, bs)
    return code, data


@given(code_and_stripe())
@settings(max_examples=60, deadline=None)
def test_encode_then_verify(cs):
    """Any payload encodes to a parity-consistent stripe."""
    code, data = cs
    stripe = code.make_stripe(data)
    assert code.verify(stripe)


@given(code_and_stripe())
@settings(max_examples=60, deadline=None)
def test_extract_data_roundtrip(cs):
    code, data = cs
    stripe = code.make_stripe(data)
    assert np.array_equal(code.extract_data(stripe), data)


@given(code_and_stripe(), st.data())
@settings(max_examples=60, deadline=None)
def test_double_erasure_roundtrip(cs, data_strategy):
    """Any two failed disks are always fully recoverable."""
    code, data = cs
    cols = code.layout.physical_cols
    idx = data_strategy.draw(
        st.lists(st.integers(0, len(cols) - 1), min_size=2, max_size=2, unique=True)
    )
    f1, f2 = cols[idx[0]], cols[idx[1]]
    stripe = code.make_stripe(data)
    broken = stripe.copy()
    broken[:, f1, :] = 0
    broken[:, f2, :] = 0
    code.decode_columns(broken, f1, f2)
    assert np.array_equal(broken, stripe)


@given(code_and_stripe(), st.data())
@settings(max_examples=60, deadline=None)
def test_delta_update_equals_reencode(cs, data_strategy):
    """update_block's delta path must equal a full re-encode."""
    code, data = cs
    stripe = code.make_stripe(data)
    i = data_strategy.draw(st.integers(0, code.num_data - 1))
    cell = code.layout.data_cells[i]
    bs = data.shape[1]
    raw = data_strategy.draw(st.binary(min_size=bs, max_size=bs))
    new_val = np.frombuffer(raw, dtype=np.uint8).copy()
    touched = code.update_block(stripe, cell, new_val)
    assert touched == code.layout.update_penalty(cell)
    # full re-encode of the mutated data must give the identical stripe
    data2 = data.copy()
    data2[i] = new_val
    assert np.array_equal(stripe, code.make_stripe(data2))


@given(code_and_stripe(), st.data())
@settings(max_examples=40, deadline=None)
def test_random_cell_erasures_recoverable(cs, data_strategy):
    """Any loss pattern confined to at most two columns is recoverable."""
    code, data = cs
    cols = code.layout.physical_cols
    idx = data_strategy.draw(
        st.lists(st.integers(0, len(cols) - 1), min_size=2, max_size=2, unique=True)
    )
    chosen = [cols[idx[0]], cols[idx[1]]]
    candidates = [
        (r, c)
        for c in chosen
        for r in range(code.rows)
        if (r, c) not in code.layout.virtual_cells
    ]
    k = data_strategy.draw(st.integers(1, len(candidates)))
    lost = tuple(candidates[:k])
    stripe = code.make_stripe(data)
    broken = stripe.copy()
    for r, c in lost:
        broken[r, c, :] = 0
    plan = code.plan_cell_recovery(lost)
    apply_recovery_plan(plan, broken)
    assert np.array_equal(broken, stripe)


@given(st.sampled_from([5, 7]), st.integers(2, 5), BLOCK_SIZES, st.data())
@settings(max_examples=30, deadline=None)
def test_batched_encode_equals_per_stripe(p, batch, bs, data_strategy):
    """Encoding a batch must equal stripe-by-stripe encoding."""
    code = get_code("code56", p)
    n = batch * code.num_data * bs
    raw = data_strategy.draw(st.binary(min_size=n, max_size=n))
    data = np.frombuffer(raw, dtype=np.uint8).reshape(batch, code.num_data, bs).copy()
    batched = code.make_stripe(data)
    for b in range(batch):
        single = code.make_stripe(data[b])
        assert np.array_equal(batched[b], single)
