"""Compiled execution layer vs the audited engine.

The compiled executor must be *indistinguishable* from the audited
engine from outside: byte-identical arrays, identical per-disk read and
write counters, and a passing full audit — for every supported
(code, approach) pair.  Plans that cannot be batched faithfully must be
rejected at compile time, never silently diverged from.
"""

import numpy as np
import pytest

from repro.codes.decoder import apply_recovery_plan
from repro.compiled import (
    UnsupportedPlanError,
    assemble_all_groups,
    batch_recover_columns,
    clear_program_cache,
    compile_plan,
    execute_compiled,
    execute_plan_compiled,
    plan_cache_key,
)
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
    verify_conversion,
)
from repro.migration.approaches import alignment_cycle
from repro.migration.engine import assemble_group
from repro.migration.plan import Location
from repro.raid import BlockArray

CONVERSIONS = supported_conversions()


def _cycle_plan(code, approach, p, cycles=1, block_size=8):
    n = build_plan(code, approach, p, groups=1).n
    groups = alignment_cycle(code, p, n) * cycles
    return build_plan(code, approach, p, groups=groups)


def _both_engines(plan, block_size=8, seed=0):
    audited, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    execute_plan(plan, audited, data)
    compiled, _ = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    result = execute_plan_compiled(plan, compiled, data)
    return audited, compiled, result


class TestEquivalence:
    @pytest.mark.parametrize("p", [5, 7])
    @pytest.mark.parametrize("code,approach", CONVERSIONS)
    def test_bytes_counters_and_audit(self, code, approach, p):
        plan = _cycle_plan(code, approach, p)
        audited, compiled, result = _both_engines(plan)
        assert np.array_equal(audited.snapshot(), compiled.snapshot())
        assert np.array_equal(audited.reads, compiled.reads)
        assert np.array_equal(audited.writes, compiled.writes)
        assert result.measured_reads == plan.read_ios
        assert result.measured_writes == plan.write_ios
        assert verify_conversion(result)

    def test_multiple_cycles_and_block_sizes(self):
        for bs in (1, 8, 64):
            plan = _cycle_plan("code56", "direct", 5, cycles=3)
            audited, compiled, _ = _both_engines(plan, block_size=bs)
            assert np.array_equal(audited.snapshot(), compiled.snapshot())
            assert np.array_equal(audited.reads, compiled.reads)
            assert np.array_equal(audited.writes, compiled.writes)

    def test_geometry_mismatch_rejected(self):
        plan = _cycle_plan("code56", "direct", 5)
        program = compile_plan(plan)
        wrong = BlockArray(plan.n + 1, plan.blocks_per_disk, 8)
        with pytest.raises(ValueError, match="geometry"):
            execute_compiled(program, wrong)


class TestProgramCache:
    def test_identical_plans_share_programs(self):
        clear_program_cache()
        a = compile_plan(_cycle_plan("rdp", "via-raid0", 5))
        b = compile_plan(_cycle_plan("rdp", "via-raid0", 5))
        assert a is b
        assert plan_cache_key(_cycle_plan("rdp", "via-raid0", 5)) == a.key

    def test_distinct_plans_do_not_collide(self):
        a = compile_plan(_cycle_plan("evenodd", "via-raid0", 5))
        b = compile_plan(_cycle_plan("evenodd", "via-raid4", 5))
        assert a is not b and a.key != b.key

    def test_cache_bypass(self):
        plan = _cycle_plan("xcode", "direct", 5)
        a = compile_plan(plan)
        b = compile_plan(plan, use_cache=False)
        assert a is not b


class TestHazardRejection:
    def test_cross_group_write_conflict(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        works = sorted(plan.group_works, key=lambda g: (g.phase, g.group))
        donor, victim = works[0], works[1]
        cell, loc = next(iter(donor.parity_writes.items()))
        vcell = next(iter(victim.parity_writes))
        victim.parity_writes[vcell] = Location(loc.disk, loc.block)
        with pytest.raises(UnsupportedPlanError, match="multiple groups"):
            compile_plan(plan, use_cache=False)

    def test_audited_parity_overwritten(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        works = sorted(plan.group_works, key=lambda g: (g.phase, g.group))
        gw = works[0]
        # redirect a parity write onto a reused (audited) RAID-5 parity
        reused = next(
            plan.cell_locations[(gw.group, cell)]
            for cell in plan.code.layout.parity_cells
            if cell not in gw.parity_writes
            and cell not in plan.code.layout.virtual_cells
            and (gw.group, cell) in plan.cell_locations
        )
        cell = next(iter(gw.parity_writes))
        gw.parity_writes[cell] = Location(reused.disk, reused.block)
        with pytest.raises(UnsupportedPlanError):
            compile_plan(plan, use_cache=False)


class TestBatchedRecovery:
    @pytest.mark.parametrize("code,approach", [("code56", "direct"), ("hdp", "direct")])
    def test_assemble_matches_per_group(self, code, approach):
        plan = _cycle_plan(code, approach, 5)
        array, data = prepare_source_array(plan, np.random.default_rng(3), block_size=8)
        execute_plan(plan, array, data)
        stripes = assemble_all_groups(plan, array)
        assert stripes.shape[0] == plan.groups
        for g in range(plan.groups):
            assert np.array_equal(stripes[g], assemble_group(plan, array, g))

    def test_batch_recover_matches_loop(self):
        plan = _cycle_plan("code56", "direct", 5)
        array, data = prepare_source_array(plan, np.random.default_rng(4), block_size=8)
        execute_plan(plan, array, data)
        code = plan.code
        stripes = assemble_all_groups(plan, array)
        cols = code.layout.physical_cols
        for c1, c2 in [(cols[0], cols[2]), (cols[1], cols[-1])]:
            recovery = code.plan_column_recovery(c1, c2)
            batched = batch_recover_columns(recovery, stripes.copy(), c1, c2)
            for g in range(plan.groups):
                broken = stripes[g].copy()
                broken[:, c1, :] = 0
                broken[:, c2, :] = 0
                apply_recovery_plan(recovery, broken)
                assert np.array_equal(batched[g], broken)
            assert np.array_equal(batched, stripes)

    def test_batch_recover_requires_4d(self):
        plan = _cycle_plan("code56", "direct", 5)
        recovery = plan.code.plan_column_recovery(0, 1)
        with pytest.raises(ValueError, match="groups"):
            batch_recover_columns(recovery, np.zeros((4, 5, 8), dtype=np.uint8), 0, 1)
