"""Algorithm 2: online conversion concurrent with application I/O."""

import numpy as np
import pytest

from repro.migration import OnlineCode56Conversion, OnlineRequest
from repro.raid import BlockArray, Raid5Array, Raid5Layout


def make_source(p=5, groups=4, bs=8, rng=None):
    m = p - 1
    array = BlockArray(m, groups * (p - 1), block_size=bs)
    r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    data = rng.integers(0, 256, size=(r5.capacity_blocks, bs), dtype=np.uint8)
    r5.format_with(data)
    array.add_disk()
    return array, data


class TestQuietConversion:
    def test_no_requests(self, rng):
        array, _ = make_source(rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        report = conv.run([])
        assert conv.verify()
        assert report.interruptions == 0
        assert report.parities_generated == 16  # 4 groups x 4 rows

    def test_conversion_io_cost(self, rng):
        """Per parity: p-2 chain reads + 1 write = p-1 ticks."""
        p = 7
        array, _ = make_source(p=p, groups=3, rng=rng)
        conv = OnlineCode56Conversion(array, p)
        report = conv.run([])
        per_parity = p - 1
        assert report.conversion_ticks == 3 * (p - 1) * per_parity

    def test_requires_added_disk(self, rng):
        m = 4
        array = BlockArray(m, 8, block_size=8)
        with pytest.raises(ValueError):
            OnlineCode56Conversion(array, 5)


class TestConcurrentIO:
    def test_reads_do_not_interrupt(self, rng):
        array, data = make_source(rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        reqs = [OnlineRequest(time=float(t), lba=t % 10, is_write=False) for t in range(5)]
        report = conv.run(reqs)
        assert report.interruptions == 0
        assert report.app_ticks == 5
        assert conv.verify()

    def test_writes_interrupt_and_stay_consistent(self, rng):
        array, data = make_source(groups=6, rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        truth = data.copy()
        reqs = []
        for t in (1.0, 30.0, 70.0, 120.0, 350.0):
            lba = int(rng.integers(0, len(truth)))
            payload = rng.integers(0, 256, size=8, dtype=np.uint8)
            truth[lba] = payload
            reqs.append(OnlineRequest(time=t, lba=lba, is_write=True, payload=payload))
        report = conv.run(reqs)
        assert report.interruptions == 5
        assert conv.verify()
        # all logical data reflects the writes
        r5_like = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=4)
        for lba in range(len(truth)):
            assert np.array_equal(r5_like.read(lba), truth[lba])

    def test_early_writes_hit_unconverted_region(self, rng):
        array, data = make_source(groups=8, rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        # lba in the LAST group, written before conversion reaches it
        last_lba = conv.capacity_blocks - 1
        report = conv.run([OnlineRequest(time=0.0, lba=last_lba, is_write=True, payload=payload)])
        assert report.writes_to_unconverted == 1
        assert report.writes_to_converted == 0
        assert conv.verify()

    def test_late_writes_patch_generated_parity(self, rng):
        array, data = make_source(groups=4, rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        report = conv.run([OnlineRequest(time=1e9, lba=0, is_write=True, payload=payload)])
        assert report.writes_to_converted == 1
        assert conv.verify()

    def test_write_costs_more_in_converted_region(self, rng):
        """Converted: 6 ticks (data RMW + 2 parity RMWs); unconverted: 4."""
        array, _ = make_source(groups=4, rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        payload = np.zeros(8, dtype=np.uint8)
        late = OnlineRequest(time=1e9, lba=0, is_write=True, payload=payload)
        report = conv.run([late])
        assert report.request_latencies[0] == 6

    def test_write_without_payload_rejected(self, rng):
        array, _ = make_source(rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        with pytest.raises(ValueError):
            conv.run([OnlineRequest(time=0.0, lba=0, is_write=True)])


class TestLatencyAccounting:
    def test_latencies_recorded_per_request(self, rng):
        array, _ = make_source(rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        reqs = [OnlineRequest(time=float(i * 10), lba=i, is_write=False) for i in range(4)]
        report = conv.run(reqs)
        assert len(report.request_latencies) == 4
        assert all(lat >= 1 for lat in report.request_latencies)

    def test_finish_tick_covers_all_work(self, rng):
        array, _ = make_source(rng=rng)
        conv = OnlineCode56Conversion(array, 5)
        report = conv.run([])
        assert report.finish_tick == report.conversion_ticks
