"""The fault-injection plane: deterministic faults under BlockArray I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ConversionCrash,
    DiskFailureAt,
    FaultPlane,
    FaultScenario,
    ReadFaultError,
    RetryPolicy,
    SectorError,
    TornWrite,
    TransientFault,
    TransientIOError,
)
from repro.raid.array import BlockArray, DiskFailure


def fresh_array(rng, n_disks=5, blocks=8, bs=8):
    array = BlockArray(n_disks, blocks, block_size=bs)
    for d in range(n_disks):
        for b in range(blocks):
            array.write(d, b, rng.integers(0, 256, size=bs, dtype=np.uint8))
    return array


def attach(array, **scenario_kwargs):
    plane = FaultPlane(FaultScenario(**scenario_kwargs))
    plane.attach(array)
    return plane


class TestScenarioRoundTrip:
    def test_json_round_trip_is_identity(self):
        scenario = FaultScenario(
            seed=42,
            sector_errors=(SectorError(1, 3), SectorError(2, 0)),
            torn_writes=(TornWrite(5, 0.25),),
            transients=(TransientFault(7, failures=2),),
            disk_failures=(DiskFailureAt(11, disk=0),),
            transient_rate=0.01,
            crash_at=9,
            crash_tear=0.5,
            retry=RetryPolicy(max_retries=5, backoff_base_ticks=2.0),
            meta={"p": 5},
        )
        assert FaultScenario.from_json(scenario.to_json()) == scenario

    def test_crash_variants(self):
        base = FaultScenario(seed=1)
        armed = base.with_crash(4, 0.5)
        assert (armed.crash_at, armed.crash_tear) == (4, 0.5)
        assert armed.without_crash() == base

    def test_every_registered_event_type_round_trips(self):
        # one entry of every type in _SCHEDULE_FIELDS; a newly
        # registered event type that misses its _FIELD_TYPES coercions
        # fails here before it ships in a CI artifact
        from repro.faults.spec import _SCHEDULE_FIELDS

        scenario = FaultScenario(
            sector_errors=(SectorError(0, 1),),
            torn_writes=(TornWrite(2, 0.75),),
            transients=(TransientFault(3, failures=1),),
            disk_failures=(DiskFailureAt(4, disk=2),),
        )
        doc = scenario.to_dict()
        for name in _SCHEDULE_FIELDS:
            assert len(doc[name]) == 1, f"{name} dropped in to_dict"
        assert FaultScenario.from_dict(doc) == scenario

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip_over_full_grammar(self, data):
        # numpy scalars are deliberately mixed in: schedule entries are
        # routinely built straight from rng draws and the boundary must
        # coerce them to JSON primitives
        def op(coerce=False):
            v = data.draw(st.integers(0, 10_000))
            return np.int64(v) if coerce and data.draw(st.booleans()) else v

        scenario = FaultScenario(
            seed=op(coerce=True),
            sector_errors=tuple(
                SectorError(op(coerce=True), op())
                for _ in range(data.draw(st.integers(0, 3)))
            ),
            torn_writes=tuple(
                TornWrite(op(), data.draw(st.floats(0.0, 1.0)))
                for _ in range(data.draw(st.integers(0, 3)))
            ),
            transients=tuple(
                TransientFault(op(), failures=data.draw(st.integers(1, 5)))
                for _ in range(data.draw(st.integers(0, 3)))
            ),
            disk_failures=tuple(
                DiskFailureAt(op(), disk=op(coerce=True))
                for _ in range(data.draw(st.integers(0, 3)))
            ),
            transient_rate=data.draw(st.floats(0.0, 1.0)),
            crash_at=data.draw(st.none() | st.integers(0, 100)),
            crash_tear=data.draw(st.none() | st.floats(0.0, 1.0)),
            retry=RetryPolicy(
                max_retries=data.draw(st.integers(0, 8)),
                backoff_base_ticks=data.draw(st.floats(0.0, 16.0)),
                backoff_multiplier=data.draw(st.floats(1.0, 4.0)),
            ),
            meta={
                "p": op(coerce=True),
                "note": data.draw(st.text(max_size=12)),
                "flag": data.draw(st.booleans()),
                "nested": [op(coerce=True), None],
            },
        )
        restored = FaultScenario.from_json(scenario.to_json())
        # numpy scalars compare == to their Python values, so dataclass
        # equality holds; the JSON text itself must also be stable
        assert restored == scenario
        assert restored.to_json() == FaultScenario.from_json(restored.to_json()).to_json()


class TestSectorErrors:
    def test_read_fails_until_rewritten(self, rng):
        array = fresh_array(rng)
        plane = attach(array, sector_errors=(SectorError(1, 2),))
        with pytest.raises(ReadFaultError) as exc:
            array.read(1, 2)
        assert (exc.value.disk, exc.value.block) == (1, 2)
        assert plane.counters["sector_errors_hit"] == 1
        # the write remaps the sector and clears the error
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        array.write(1, 2, payload)
        assert plane.counters["sector_errors_cleared"] == 1
        assert np.array_equal(array.read(1, 2), payload)

    def test_other_blocks_unaffected(self, rng):
        array = fresh_array(rng)
        attach(array, sector_errors=(SectorError(1, 2),))
        array.read(1, 3)
        array.read(0, 2)

    def test_bulk_read_raises_on_any_bad_element(self, rng):
        array = fresh_array(rng)
        plane = attach(array, sector_errors=(SectorError(2, 1),))
        with pytest.raises(ReadFaultError):
            array.read_blocks(np.array([0, 2, 3]), np.array([1, 1, 1]))
        assert plane.counters["sector_errors_hit"] == 1

    def test_bad_mask_pre_screen(self, rng):
        array = fresh_array(rng)
        plane = attach(array, sector_errors=(SectorError(2, 1), SectorError(0, 0)))
        mask = plane.bad_mask(np.array([0, 2, 3]), np.array([0, 1, 1]))
        assert mask.tolist() == [True, True, False]


class TestTransients:
    def test_retried_within_budget(self, rng):
        array = fresh_array(rng)
        plane = attach(array, transients=(TransientFault(op=0, failures=2),))
        array.read(0, 0)  # succeeds after 2 internal retries
        assert plane.counters["transients"] == 1
        assert plane.counters["retries"] == 2
        assert plane.counters["retries_exhausted"] == 0

    def test_exhausted_budget_raises(self, rng):
        array = fresh_array(rng)
        plane = attach(array, transients=(TransientFault(op=0, failures=4),))
        with pytest.raises(TransientIOError) as exc:
            array.read(0, 0)
        assert exc.value.attempts == 4  # max_retries + 1
        assert plane.counters["retries_exhausted"] == 1

    def test_exponential_backoff_accounting(self, rng):
        array = fresh_array(rng)
        plane = attach(
            array,
            transients=(TransientFault(op=0, failures=3),),
            retry=RetryPolicy(max_retries=3, backoff_base_ticks=1.0,
                              backoff_multiplier=2.0),
        )
        array.read(0, 0)
        assert plane.backoff_ticks == 1.0 + 2.0 + 4.0

    def test_rate_based_transients_are_seed_deterministic(self, rng):
        def run(seed):
            array = fresh_array(np.random.default_rng(0))
            plane = attach(array, seed=seed, transient_rate=0.3)
            for b in range(8):
                array.read(0, b)
            return plane.counters["transients"]

        assert run(7) == run(7)


class TestTornWrites:
    def test_prefix_persisted_suffix_stale(self, rng):
        array = fresh_array(rng)
        old = array.read(0, 0).copy()
        plane = attach(array, torn_writes=(TornWrite(op=0, keep_fraction=0.5),))
        new = old ^ 0xFF
        array.write(0, 0, new)
        assert plane.counters["torn_writes"] == 1
        stored = array.read(0, 0)
        assert np.array_equal(stored[:4], new[:4])
        assert np.array_equal(stored[4:], old[4:])

    def test_zero_keep_fraction_keeps_one_byte(self, rng):
        array = fresh_array(rng)
        old = array.read(0, 0).copy()
        attach(array, torn_writes=(TornWrite(op=0, keep_fraction=0.0),))
        array.write(0, 0, old ^ 0xFF)
        stored = array.read(0, 0)
        assert stored[0] == old[0] ^ 0xFF
        assert np.array_equal(stored[1:], old[1:])


class TestDiskFailures:
    def test_fires_at_op_boundary(self, rng):
        array = fresh_array(rng)
        plane = attach(array, disk_failures=(DiskFailureAt(op=2, disk=1),))
        array.read(1, 0)  # op 0
        array.read(1, 1)  # op 1
        with pytest.raises(DiskFailure):
            array.read(1, 2)  # boundary before op 2: disk is gone
        assert plane.counters["disk_failures"] == 1
        assert array.failed_disks == {1}

    def test_other_disks_keep_serving(self, rng):
        array = fresh_array(rng)
        attach(array, disk_failures=(DiskFailureAt(op=0, disk=3),))
        array.read(0, 0)


class TestCrashPoints:
    def test_crash_only_inside_crashable_sections(self, rng):
        array = fresh_array(rng)
        plane = attach(array, crash_at=0)
        array.read(0, 0)  # app I/O: never crashable
        with plane.crashable():
            with pytest.raises(ConversionCrash):
                array.read(0, 1)
        assert plane.counters["crashes"] == 1

    def test_crash_tear_leaves_partial_write(self, rng):
        array = fresh_array(rng)
        old = array.read(0, 0).copy()
        plane = attach(array, crash_at=0, crash_tear=0.5)
        new = old ^ 0xFF
        with plane.crashable(), pytest.raises(ConversionCrash):
            array.write(0, 0, new)
        stored = array.read(0, 0)
        assert np.array_equal(stored[:4], new[:4])
        assert np.array_equal(stored[4:], old[4:])

    def test_crash_point_barrier_counts_once(self, rng):
        array = fresh_array(rng)
        plane = attach(array)
        with plane.crashable():
            plane.crash_point("commit")
            array.read(0, 0)
        assert plane.crash_events_done == 2

    def test_probe_and_armed_run_agree_on_numbering(self, rng):
        def events(crash_at):
            array = fresh_array(np.random.default_rng(0))
            plane = FaultPlane(FaultScenario(crash_at=crash_at))
            plane.attach(array)
            with plane.crashable():
                try:
                    for b in range(4):
                        array.read(0, b)
                        plane.crash_point(f"b{b}")
                except ConversionCrash:
                    pass
            return plane.crash_events_done

        probe = events(None)
        assert probe == 8
        for k in range(probe):
            assert events(k) == k


class TestOverheadAndDetach:
    def test_detached_array_has_no_plane(self, rng):
        array = fresh_array(rng)
        plane = attach(array)
        assert array.fault_plane is plane
        plane.detach()
        assert array.fault_plane is None
        array.read(0, 0)
        assert plane.op == 0

    def test_faultless_plane_is_transparent(self, rng):
        array = fresh_array(rng)
        mirror = BlockArray(5, 8, block_size=8)
        mirror.restore_blocks(
            np.repeat(np.arange(5), 8), np.tile(np.arange(8), 5),
            array.gather_raw(np.repeat(np.arange(5), 8), np.tile(np.arange(8), 5)),
        )
        attach(array)
        payload = rng.integers(0, 256, size=8, dtype=np.uint8)
        array.write(2, 3, payload)
        mirror.write(2, 3, payload)
        assert np.array_equal(array.snapshot(), mirror.snapshot())

    def test_snapshot_reports_outstanding_errors(self, rng):
        array = fresh_array(rng)
        plane = attach(array, sector_errors=(SectorError(0, 0), SectorError(1, 1)))
        doc = plane.snapshot()
        assert doc["outstanding_sector_errors"] == 2
        assert doc["ops_seen"] == 0
