"""Per-volume OnlineJournal watermarks under fleet-style interleaving.

The fleet runs many converters concurrently, one journal per volume.
These tests prove the watermark protocol composes: journals are
isolated (a mark in one never changes another's resume point), a crash
of one volume mid-interleave resumes from *its* journal without
perturbing the survivor, and replayed/duplicated marks stay idempotent
even when the replay interleaves two volumes' logs.
"""

import numpy as np
import pytest

from repro.faults.journal import OnlineJournal
from repro.migration import OnlineCode56Conversion
from repro.migration.online import OnlineReport
from repro.raid import BlockArray, Raid5Array, Raid5Layout

P, GROUPS = 5, 2
ROWS = P - 1
TOTAL = GROUPS * ROWS


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def volume(rng, seed_offset=0, batch=1):
    """(array, data, journal, converter) for one independent volume."""
    m = P - 1
    array = BlockArray(m, GROUPS * ROWS, block_size=8)
    r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    data = np.random.default_rng((0, seed_offset)).integers(
        0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8
    )
    r5.format_with(data)
    array.add_disk()
    journal = OnlineJournal(GROUPS, ROWS)
    conv = OnlineCode56Conversion(array, P, journal=journal, batch=batch)
    return array, data, journal, conv


def finish(conv, journal):
    report = OnlineReport()
    while conv.pending_parity() is not None:
        conv.generate_step(report)
        conv.mark_step()
    assert journal.count() == TOTAL
    assert conv.verify()


class TestIsolation:
    def test_marks_do_not_leak_between_volumes(self, rng):
        _, _, j_a, conv_a = volume(rng, 0)
        _, _, j_b, conv_b = volume(rng, 1)
        report = OnlineReport()
        # drive A three parities ahead while B stands still
        for _ in range(3):
            conv_a.generate_step(report)
            conv_a.mark_step()
        assert j_a.count() == 3
        assert j_b.count() == 0
        assert conv_b.pending_parity() == (0, 0)
        # B's resume point is a function of B's journal alone
        _, _, _, resumed_b = volume(rng, 1)
        assert resumed_b.pending_parity() == (0, 0)

    def test_same_shape_journals_are_independent_objects(self, rng):
        j_a, j_b = OnlineJournal(GROUPS, ROWS), OnlineJournal(GROUPS, ROWS)
        j_a.mark(0, 0)
        assert not j_b.is_marked(0, 0)
        j_b.restore_marks(j_a.marked())
        j_a.unmark(0, 0)
        assert j_b.is_marked(0, 0)  # snapshot was a copy, not a view


class TestInterleavedCrashResume:
    def test_one_volume_crashes_mid_interleave(self, rng):
        """A and B alternate steps; A 'crashes' (converter abandoned,
        parity written but unmarked); A resumes from its own watermark
        and both land bit-identical to clean runs."""
        array_a, data_a, j_a, conv_a = volume(rng, 0)
        array_b, data_b, j_b, conv_b = volume(rng, 1)
        report = OnlineReport()
        for _ in range(3):  # interleave: A, B, A, B, ...
            conv_a.generate_step(report)
            conv_a.mark_step()
            conv_b.generate_step(report)
            conv_b.mark_step()
        # A's crash window: parity generated, mark never flushed
        conv_a.generate_step(report)
        del conv_a
        marks_b = j_b.marked().copy()
        resumed_a = OnlineCode56Conversion(array_a, P, journal=j_a)
        # the unmarked parity is regenerated, not trusted
        assert resumed_a.pending_parity() == (0, 3)
        finish(resumed_a, j_a)
        assert np.array_equal(j_b.marked(), marks_b)  # B untouched
        finish(conv_b, j_b)
        for array, data in ((array_a, data_a), (array_b, data_b)):
            r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=P - 1)
            for lba in range(r5.capacity_blocks):
                assert np.array_equal(r5.read(lba), data[lba])

    def test_batched_crash_resume_leaves_other_volume_alone(self, rng):
        array_a, _, j_a, conv_a = volume(rng, 0, batch=ROWS)
        _, _, j_b, conv_b = volume(rng, 1, batch=ROWS)
        report = OnlineReport()
        # A commits one full run; B generates a run but crashes before
        # its group commit
        conv_a.generate_run_step(report, budget=ROWS)
        conv_a.mark_run_step()
        conv_b.generate_run_step(report, budget=ROWS)
        del conv_b
        assert j_a.count() == ROWS
        assert j_b.count() == 0  # the whole window is unmarked
        resumed_a = OnlineCode56Conversion(array_a, P, journal=j_a, batch=ROWS)
        assert resumed_a.pending_parity() == (1, 0)


class TestDuplicatedMarkReplay:
    def test_interleaved_replay_of_two_logs(self, rng):
        """Replaying both volumes' tails (with duplicates) against the
        same journals is a no-op for completed entries and drops marks
        whose parity writes never landed."""
        array_a, data_a, j_a, conv_a = volume(rng, 0)
        array_b, data_b, j_b, conv_b = volume(rng, 1)
        report = OnlineReport()
        for _ in range(2):
            conv_a.generate_step(report)
            conv_a.mark_step()
            conv_b.generate_step(report)
            conv_b.mark_step()
        # interleaved replay: each log's tail re-marked, plus one stale
        # record per volume (no parity bytes behind it)
        for j in (j_a, j_b):
            j.mark(0, 0)
            j.mark(0, 1)
            j.mark(0, 2)  # stale: parity (0, 2) was never written
        counts = (j_a.count(), j_b.count())
        assert counts == (3, 3)
        resumed_a = OnlineCode56Conversion(array_a, P, journal=j_a)
        resumed_b = OnlineCode56Conversion(array_b, P, journal=j_b)
        # trust-but-verify dropped exactly the stale mark on each volume
        for j, resumed in ((j_a, resumed_a), (j_b, resumed_b)):
            assert j.count() == 2
            assert not j.is_marked(0, 2)
            assert resumed.pending_parity() == (0, 2)
        finish(resumed_a, j_a)
        finish(resumed_b, j_b)

    def test_mark_many_duplicates_are_one_flush(self, rng):
        j = OnlineJournal(GROUPS, ROWS)
        j.mark_many([(0, 0), (0, 1), (0, 0), (0, 1)])
        assert j.count() == 2
        assert j.appends == 1  # one group commit regardless of duplicates
        j.mark_many([])
        assert j.appends == 1  # empty replay batch is not a flush
