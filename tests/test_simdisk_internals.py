"""Event-core and scheduler edge cases: tie-breaking, direction reversal."""

from dataclasses import dataclass

import pytest

from repro.simdisk.events import Event, EventQueue
from repro.simdisk.scheduler import LookQueue, SstfQueue, make_scheduler


@dataclass
class Req:
    block: int
    tag: str = ""


class TestEventQueueTieBreaking:
    def test_same_timestamp_pops_in_push_order(self):
        q = EventQueue()
        for tag in "abcde":
            q.push(5.0, "arrival", tag)
        assert [q.pop().payload for _ in range(5)] == list("abcde")

    def test_time_dominates_sequence(self):
        q = EventQueue()
        q.push(9.0, "late", "late")
        q.push(1.0, "early", "early")
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_interleaved_ties_stay_fifo(self):
        q = EventQueue()
        q.push(2.0, "x", "t2-first")
        q.push(1.0, "x", "t1-first")
        q.push(2.0, "x", "t2-second")
        q.push(1.0, "x", "t1-second")
        order = [q.pop().payload for _ in range(4)]
        assert order == ["t1-first", "t1-second", "t2-first", "t2-second"]

    def test_determinism_across_instances(self):
        """Two queues fed identically drain identically (no id()/hash order)."""
        batches = [(3.0, "c"), (1.0, "a"), (3.0, "d"), (2.0, "b"), (1.0, "e")]
        drains = []
        for _ in range(2):
            q = EventQueue()
            for t, tag in batches:
                q.push(t, "x", tag)
            drains.append([q.pop().payload for _ in range(len(batches))])
        assert drains[0] == drains[1] == ["a", "e", "b", "c", "d"]

    def test_event_comparison_ignores_payload(self):
        # kind/payload are compare=False: events with unorderable payloads
        # still sort (this is what lets payloads be arbitrary objects)
        assert Event(1.0, 0, "a", object()) < Event(1.0, 1, "b", object())

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1
        q.pop()
        assert not q


class TestSstfEdgeCases:
    def test_equidistant_tie_is_first_pushed(self):
        q = SstfQueue()
        q.push(Req(90, "below"))
        q.push(Req(110, "above"))
        # both are 10 away from head 100; min() keeps the earliest index
        assert q.pop(100).tag == "below"

    def test_exact_head_position_wins(self):
        q = SstfQueue()
        q.push(Req(500))
        q.push(Req(100, "here"))
        q.push(Req(101))
        assert q.pop(100).tag == "here"

    def test_greedy_never_scans_ahead(self):
        """SSTF serves the near cluster before a lone far request."""
        q = SstfQueue()
        q.push(Req(10_000, "far"))
        for b in (110, 90, 105):
            q.push(Req(b))
        order = []
        head = 100
        while len(q):
            r = q.pop(head)
            head = r.block
            order.append(r.tag)
        assert order[-1] == "far"


class TestLookDirectionReversal:
    def drain(self, q, head):
        order = []
        while len(q):
            r = q.pop(head)
            head = r.block
            order.append(r.block)
        return order

    def test_upward_sweep_then_reverse(self):
        q = LookQueue()
        for b in (150, 50, 200, 80):
            q.push(Req(b))
        # head 100, direction up: serve 150, 200; reverse: 80, 50
        assert self.drain(q, 100) == [150, 200, 80, 50]

    def test_reversal_flips_direction_state(self):
        q = LookQueue()
        q.push(Req(10))
        assert q._direction == 1
        assert q.pop(100).block == 10  # nothing ahead -> reversed
        assert q._direction == -1
        # next sweep continues downward: 40 is "ahead" (<= head 10? no — 40 > 10,
        # so going down from 10 nothing is ahead and it reverses again)
        q.push(Req(40))
        q.push(Req(5))
        assert q.pop(10).block == 5
        assert q._direction == -1

    def test_block_at_head_counts_as_ahead_in_both_directions(self):
        for direction in (1, -1):
            q = LookQueue()
            q._direction = direction
            q.push(Req(100, "at-head"))
            q.push(Req(100 + direction * 50))
            assert q.pop(100).tag == "at-head"
            assert q._direction == direction  # no reversal needed

    def test_double_reversal_on_alternating_extremes(self):
        q = LookQueue()
        for b in (900, 100, 800, 200):
            q.push(Req(b))
        # head 500 going up: 800, 900; reverse: 200, 100
        assert self.drain(q, 500) == [800, 900, 200, 100]

    def test_factory_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("elevator-2000")
