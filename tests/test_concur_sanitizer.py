"""Runtime vector-clock sanitizer behind the counted BlockArray I/O API."""

import numpy as np
import pytest

from repro.migration.online import OnlineCode56Conversion
from repro.raid import BlockArray, Raid5Array, Raid5Layout
from repro.staticcheck.concur.sanitizer import (
    BlockSanitizer,
    SharedStateRaceError,
    sanitized_online_smoke,
)


class TestVectorClocks:
    def test_same_actor_is_program_ordered(self):
        san = BlockSanitizer()
        san.record_write(0, 0)
        san.record_read(0, 0)
        san.record_write(0, 0)
        assert san.violations == []

    def test_unfenced_cross_actor_write_read_races(self):
        san = BlockSanitizer()
        with san.actor("a"):
            san.record_write(0, 0)
        with san.actor("b"):
            san.record_read(0, 0)
        assert [v.kind for v in san.violations] == ["write-read"]
        assert san.violations[0].prior_actor == "a"

    def test_fence_orders_the_pair(self):
        san = BlockSanitizer()
        with san.actor("a"):
            san.record_write(0, 0)
        san.fence("a", "b")
        with san.actor("b"):
            san.record_read(0, 0)
        assert san.violations == []

    def test_read_write_conflict(self):
        san = BlockSanitizer()
        with san.actor("a"):
            san.record_read(1, 2)
        with san.actor("b"):
            san.record_write(1, 2)
        assert [v.kind for v in san.violations] == ["read-write"]

    def test_write_write_conflict(self):
        san = BlockSanitizer()
        with san.actor("a"):
            san.record_write(1, 2)
        with san.actor("b"):
            san.record_write(1, 2)
        assert "write-write" in [v.kind for v in san.violations]

    def test_distinct_regions_never_conflict(self):
        san = BlockSanitizer()
        with san.actor("a"):
            san.record_write(0, 0)
        with san.actor("b"):
            san.record_write(0, 1)
            san.record_write(1, 0)
        assert san.violations == []

    def test_fence_is_directional(self):
        """a->b orders b after a, but not a after b."""
        san = BlockSanitizer()
        with san.actor("b"):
            san.record_write(0, 0)
        san.fence("a", "b")  # wrong direction for this conflict
        with san.actor("a"):
            san.record_read(0, 0)
        assert [v.kind for v in san.violations] == ["write-read"]

    def test_strict_mode_raises(self):
        san = BlockSanitizer(strict=True)
        with san.actor("a"):
            san.record_write(0, 0)
        with san.actor("b"), pytest.raises(SharedStateRaceError):
            san.record_read(0, 0)


def build_array(rng, p=5, groups=2, bs=8):
    m = p - 1
    array = BlockArray(m, groups * (p - 1), block_size=bs)
    r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    data = rng.integers(0, 256, size=(r5.capacity_blocks, bs), dtype=np.uint8)
    r5.format_with(data.copy())
    array.add_disk()
    return array


class TestBlockArrayIntegration:
    def test_detached_is_the_default(self, rng):
        assert build_array(rng).sanitizer is None

    def test_counters_identical_with_and_without_sanitizer(self, rng):
        """Acceptance gate: attaching the shadow recorder must not move
        the I/O counters (or the bytes) by a single unit."""
        state = rng.bit_generator.state
        plain = build_array(rng)
        OnlineCode56Conversion(plain, 5).run([])

        rng.bit_generator.state = state
        shadowed = build_array(rng)
        san = BlockSanitizer()
        shadowed.attach_sanitizer(san)
        OnlineCode56Conversion(shadowed, 5).run([])

        assert np.array_equal(plain.reads, shadowed.reads)
        assert np.array_equal(plain.writes, shadowed.writes)
        assert np.array_equal(plain.snapshot(), shadowed.snapshot())
        assert san.ops > 0  # and it really was recording

    def test_counted_io_is_shadowed(self, rng):
        array = build_array(rng)
        san = BlockSanitizer()
        array.attach_sanitizer(san)
        array.read(0, 0)
        array.write(0, 0, np.zeros(8, dtype=np.uint8))
        assert san.ops == 2

    def test_uncounted_io_is_invisible(self, rng):
        """raw/snapshot are recovery-scan accessors — never recorded."""
        array = build_array(rng)
        san = BlockSanitizer()
        array.attach_sanitizer(san)
        array.raw(0, 0)
        array.snapshot()
        assert san.ops == 0

    def test_bulk_io_is_shadowed_per_block(self, rng):
        array = build_array(rng)
        san = BlockSanitizer()
        array.attach_sanitizer(san)
        disks = np.array([0, 1, 2])
        blocks = np.array([0, 0, 0])
        array.read_blocks(disks, blocks)
        assert san.ops == 3


class TestOnlineSmoke:
    def test_fenced_run_is_violation_free(self):
        san = sanitized_online_smoke(fenced=True)
        assert san.violations == []
        assert san.ops > 0

    def test_unfenced_run_races(self):
        san = sanitized_online_smoke(fenced=False)
        assert len(san.violations) > 0
        kinds = {v.kind for v in san.violations}
        assert kinds <= {"write-read", "read-write", "write-write"}
        actors = {v.actor for v in san.violations} | {
            v.prior_actor for v in san.violations
        }
        assert actors <= {"main", "conversion", "app"}

    def test_violation_describe_names_the_region(self):
        san = sanitized_online_smoke(fenced=False)
        text = san.violations[0].describe()
        assert "race on (disk" in text and "fence" in text
