"""Seeded faults: zero false negatives on the fault corpus."""

import numpy as np

from repro.codes.registry import CODE_CATALOG
from repro.compiled.compiler import compile_plan, plan_cache_key
from repro.migration.approaches import build_plan
from repro.staticcheck.dataflow import analyze_program
from repro.staticcheck.prover import prove_code
from repro.staticcheck.selftest import (
    _copy_program,
    crash_recovery_checks,
    mutated_fused_programs,
    mutated_layouts,
    mutated_programs,
    run_selftest,
)


class TestFaultCorpus:
    def test_covers_every_catalog_code(self):
        names = [name for name, _layout in mutated_layouts()]
        assert names == sorted(CODE_CATALOG)

    def test_every_layout_fault_detected(self):
        for name, broken in mutated_layouts():
            _checks, findings = prove_code(name, 5, layout=broken)
            assert findings, f"prover missed the seeded fault in {name}"

    def test_every_program_fault_detected(self):
        cases = mutated_programs()
        assert len(cases) >= 5
        for description, plan, program in cases:
            _checks, findings = analyze_program(plan, program)
            assert findings, f"dataflow missed: {description}"

    def test_every_fused_fault_detected(self):
        from repro.staticcheck.dataflow import analyze_fused

        cases = mutated_fused_programs()
        assert len(cases) >= 3
        for description, plan, program in cases:
            _checks, findings = analyze_fused(plan, program)
            assert findings, f"SC-D006 missed: {description}"

    def test_every_crash_recovery_drill_passes(self):
        drills = crash_recovery_checks()
        # both offline engines plus the online watermark
        assert len(drills) == 3
        for description, recovered in drills:
            assert recovered, f"recovery drill failed: {description}"

    def test_selftest_green_on_healthy_tree(self):
        checks, findings = run_selftest()
        expected = (
            len(mutated_layouts())
            + len(mutated_programs())
            + len(mutated_fused_programs())
            + len(crash_recovery_checks())
        )
        assert checks == expected
        assert findings == []


class TestNoCachePoisoning:
    def test_mutations_do_not_leak_into_cache(self):
        """mutated_programs must not corrupt the shared program cache."""
        plan = build_plan("code56", "direct", 5, groups=2)
        before = compile_plan(plan)  # seeds / reads the cache
        snapshot = [ph.parity_block.copy() for ph in before.phases]
        mutated_programs()
        after = compile_plan(build_plan("code56", "direct", 5, groups=2))
        assert plan_cache_key(plan) == after.key
        for snap, ph in zip(snapshot, after.phases):
            assert np.array_equal(snap, ph.parity_block)

    def test_copy_program_is_deep(self):
        plan = build_plan("code56", "direct", 5, groups=2)
        base = compile_plan(plan, use_cache=False)
        clone = _copy_program(base)
        clone.phases[0].parity_block[0] += 1
        assert base.phases[0].parity_block[0] != clone.phases[0].parity_block[0]
