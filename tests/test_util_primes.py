"""Unit tests for repro.util.primes."""

import pytest

from repro.util.primes import (
    is_prime,
    next_prime,
    previous_prime,
    prime_for_disks,
    primes_in_range,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 49):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_larger_values(self):
        assert is_prime(7919)  # 1000th prime
        assert not is_prime(7917)
        assert not is_prime(7921)  # 89^2


class TestNextPrime:
    def test_from_composite(self):
        assert next_prime(8) == 11
        assert next_prime(14) == 17

    def test_from_prime_is_strictly_greater(self):
        assert next_prime(7) == 11
        assert next_prime(2) == 3

    def test_from_zero(self):
        assert next_prime(0) == 2


class TestPreviousPrime:
    def test_basic(self):
        assert previous_prime(10) == 7
        assert previous_prime(8) == 7

    def test_strictly_smaller(self):
        assert previous_prime(7) == 5

    def test_no_prime_below_two(self):
        with pytest.raises(ValueError):
            previous_prime(2)


class TestPrimesInRange:
    def test_range(self):
        assert primes_in_range(5, 20) == [5, 7, 11, 13, 17, 19]

    def test_empty(self):
        assert primes_in_range(24, 29) == []

    def test_clamps_below_two(self):
        assert primes_in_range(-10, 4) == [2, 3]


class TestPrimeForDisks:
    def test_exact_fit(self):
        # m + 1 prime -> no virtual disks
        assert prime_for_disks(4) == 5
        assert prime_for_disks(6) == 7
        assert prime_for_disks(10) == 11

    def test_needs_virtual(self):
        assert prime_for_disks(3) == 5  # p-1 = 4 >= 3
        assert prime_for_disks(5) == 7
        assert prime_for_disks(8) == 11

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            prime_for_disks(1)

    def test_always_hosts_m(self):
        for m in range(3, 40):
            p = prime_for_disks(m)
            assert is_prime(p)
            assert p - 1 >= m
