"""BlockArray: storage, failure injection, I/O accounting."""

import numpy as np
import pytest

from repro.raid import BlockArray, DiskFailure


@pytest.fixture
def arr():
    return BlockArray(4, 8, block_size=16)


class TestBasicIO:
    def test_write_read_roundtrip(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(2, 3, payload)
        assert np.array_equal(arr.read(2, 3), payload)

    def test_read_returns_copy(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(0, 0, payload)
        got = arr.read(0, 0)
        got[0] ^= 0xFF
        assert np.array_equal(arr.read(0, 0), payload)

    def test_counters(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(1, 0, payload)
        arr.write(1, 1, payload)
        arr.read(1, 0)
        arr.write_zero(3, 0)
        assert arr.writes[1] == 2
        assert arr.reads[1] == 1
        assert arr.writes[3] == 1
        assert arr.total_ios == 4
        arr.reset_counters()
        assert arr.total_ios == 0

    def test_raw_and_snapshot_uncounted(self, arr):
        arr.raw(0, 0)
        arr.snapshot()
        assert arr.total_ios == 0

    def test_bounds(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        with pytest.raises(IndexError):
            arr.read(4, 0)
        with pytest.raises(IndexError):
            arr.read(0, 8)
        with pytest.raises(ValueError):
            arr.write(0, 0, payload[:8])

    def test_write_zero(self, arr, rng):
        arr.write(0, 0, rng.integers(0, 256, 16, dtype=np.uint8))
        arr.write_zero(0, 0)
        assert not arr.read(0, 0).any()


class TestFailures:
    def test_failed_disk_rejects_io(self, arr, rng):
        arr.fail_disk(1)
        with pytest.raises(DiskFailure):
            arr.read(1, 0)
        with pytest.raises(DiskFailure):
            arr.write(1, 0, rng.integers(0, 256, 16, dtype=np.uint8))
        assert arr.failed_disks == {1}

    def test_replace_clears_contents(self, arr, rng):
        arr.write(1, 0, rng.integers(1, 256, 16, dtype=np.uint8))
        arr.fail_disk(1)
        arr.replace_disk(1)
        assert not arr.read(1, 0).any()
        assert arr.failed_disks == frozenset()


class TestTopology:
    def test_add_disk(self, arr):
        idx = arr.add_disk()
        assert idx == 4
        assert arr.n_disks == 5
        assert not arr.read(4, 0).any()
        assert arr.reads[4] == 1

    def test_remove_disk(self, arr):
        arr.add_disk()
        arr.remove_disk()
        assert arr.n_disks == 4

    def test_remove_last_disk_rejected(self):
        tiny = BlockArray(1, 2, 8)
        with pytest.raises(ValueError):
            tiny.remove_disk()

    def test_counters_follow_topology(self, arr):
        arr.add_disk()
        assert len(arr.reads) == 5
        arr.remove_disk()
        assert len(arr.reads) == 4

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            BlockArray(0, 4, 8)
        with pytest.raises(ValueError):
            BlockArray(4, 0, 8)
