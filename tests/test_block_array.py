"""BlockArray: storage, failure injection, I/O accounting."""

import numpy as np
import pytest

from repro.raid import BlockArray, DiskFailure


@pytest.fixture
def arr():
    return BlockArray(4, 8, block_size=16)


class TestBasicIO:
    def test_write_read_roundtrip(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(2, 3, payload)
        assert np.array_equal(arr.read(2, 3), payload)

    def test_read_returns_copy(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(0, 0, payload)
        got = arr.read(0, 0)
        got[0] ^= 0xFF
        assert np.array_equal(arr.read(0, 0), payload)

    def test_counters(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(1, 0, payload)
        arr.write(1, 1, payload)
        arr.read(1, 0)
        arr.write_zero(3, 0)
        assert arr.writes[1] == 2
        assert arr.reads[1] == 1
        assert arr.writes[3] == 1
        assert arr.total_ios == 4
        arr.reset_counters()
        assert arr.total_ios == 0

    def test_raw_and_snapshot_uncounted(self, arr):
        arr.raw(0, 0)
        arr.snapshot()
        assert arr.total_ios == 0

    def test_bounds(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        with pytest.raises(IndexError):
            arr.read(4, 0)
        with pytest.raises(IndexError):
            arr.read(0, 8)
        with pytest.raises(ValueError):
            arr.write(0, 0, payload[:8])

    def test_write_zero(self, arr, rng):
        arr.write(0, 0, rng.integers(0, 256, 16, dtype=np.uint8))
        arr.write_zero(0, 0)
        assert not arr.read(0, 0).any()


class TestBulkIO:
    def test_read_blocks_counts_and_values(self, arr, rng):
        payloads = rng.integers(0, 256, (3, 16), dtype=np.uint8)
        for i, (d, b) in enumerate([(0, 1), (0, 5), (2, 7)]):
            arr.write(d, b, payloads[i])
        arr.reset_counters()
        got = arr.read_blocks([0, 0, 2], [1, 5, 7])
        assert np.array_equal(got, payloads)
        assert arr.reads.tolist() == [2, 0, 1, 0]
        assert arr.total_writes == 0

    def test_read_blocks_returns_copy(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(1, 2, payload)
        got = arr.read_blocks([1], [2])
        got[0, 0] ^= 0xFF
        assert np.array_equal(arr.read(1, 2), payload)

    def test_write_blocks_last_wins_and_counts_duplicates(self, arr, rng):
        payloads = rng.integers(0, 256, (2, 16), dtype=np.uint8)
        arr.write_blocks([3, 3], [0, 0], payloads)
        assert np.array_equal(arr.raw(3, 0), payloads[1])  # queue order
        assert arr.writes[3] == 2  # both physical writes counted

    def test_write_zero_and_trim(self, arr, rng):
        arr.write(0, 0, rng.integers(1, 256, 16, dtype=np.uint8))
        arr.write(1, 1, rng.integers(1, 256, 16, dtype=np.uint8))
        arr.reset_counters()
        arr.write_zero_blocks([0], [0])
        arr.trim_blocks([1], [1])
        assert not arr.raw(0, 0).any() and not arr.raw(1, 1).any()
        assert arr.writes.tolist() == [1, 0, 0, 0]  # trim is uncounted

    def test_gather_raw_uncounted(self, arr, rng):
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        arr.write(2, 3, payload)
        arr.reset_counters()
        assert np.array_equal(arr.gather_raw([2], [3])[0], payload)
        assert arr.total_ios == 0

    def test_bulk_bounds_and_shapes(self, arr):
        with pytest.raises(ValueError, match="same length"):
            arr.read_blocks([0, 1], [0])
        with pytest.raises(IndexError):
            arr.read_blocks([4], [0])
        with pytest.raises(IndexError):
            arr.read_blocks([0], [8])
        with pytest.raises(ValueError, match="payloads"):
            arr.write_blocks([0], [0], np.zeros((2, 16), dtype=np.uint8))

    def test_bulk_respects_failures(self, arr):
        arr.fail_disk(2)
        with pytest.raises(DiskFailure):
            arr.read_blocks([0, 2], [0, 0])

    def test_empty_bulk_is_noop(self, arr):
        assert arr.read_blocks([], []).shape == (0, 16)
        arr.write_blocks([], [], np.zeros((0, 16), dtype=np.uint8))
        assert arr.total_ios == 0

    def test_bulk_view_is_a_view(self, arr):
        view = arr.bulk_view(slice(0, 2), slice(0, 4))
        view[...] = 7
        assert arr.raw(1, 3)[0] == 7
        assert arr.total_ios == 0
        with pytest.raises(TypeError):
            arr.bulk_view([0, 1], slice(0, 4))

    def test_credit_ios(self, arr):
        arr.credit_ios(reads=[1, 2, 0, 0], writes=[0, 0, 0, 3])
        assert arr.reads.tolist() == [1, 2, 0, 0]
        assert arr.writes[3] == 3
        with pytest.raises(ValueError, match="shape"):
            arr.credit_ios(reads=[1, 2])
        with pytest.raises(ValueError, match="non-negative"):
            arr.credit_ios(writes=[0, 0, -1, 0])

    def test_restore(self, arr, rng):
        arr.write(0, 0, rng.integers(1, 256, 16, dtype=np.uint8))
        snap = arr.snapshot()
        arr.write_zero(0, 0)
        arr.reset_counters()
        arr.restore(snap)
        assert np.array_equal(arr.snapshot(), snap)
        assert arr.total_ios == 0
        with pytest.raises(ValueError, match="shape"):
            arr.restore(snap[:1])


class TestFailures:
    def test_failed_disk_rejects_io(self, arr, rng):
        arr.fail_disk(1)
        with pytest.raises(DiskFailure):
            arr.read(1, 0)
        with pytest.raises(DiskFailure):
            arr.write(1, 0, rng.integers(0, 256, 16, dtype=np.uint8))
        assert arr.failed_disks == {1}

    def test_replace_clears_contents(self, arr, rng):
        arr.write(1, 0, rng.integers(1, 256, 16, dtype=np.uint8))
        arr.fail_disk(1)
        arr.replace_disk(1)
        assert not arr.read(1, 0).any()
        assert arr.failed_disks == frozenset()


class TestTopology:
    def test_add_disk(self, arr):
        idx = arr.add_disk()
        assert idx == 4
        assert arr.n_disks == 5
        assert not arr.read(4, 0).any()
        assert arr.reads[4] == 1

    def test_remove_disk(self, arr):
        arr.add_disk()
        arr.remove_disk()
        assert arr.n_disks == 4

    def test_remove_last_disk_rejected(self):
        tiny = BlockArray(1, 2, 8)
        with pytest.raises(ValueError):
            tiny.remove_disk()

    def test_counters_follow_topology(self, arr):
        arr.add_disk()
        assert len(arr.reads) == 5
        arr.remove_disk()
        assert len(arr.reads) == 4

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            BlockArray(0, 4, 8)
        with pytest.raises(ValueError):
            BlockArray(4, 0, 8)
