"""The sweep task model: stable expansion, stable seeds, wire round-trips."""

import pytest

from repro.sweep import SweepSpec, SweepTask, Workload, derive_seed, paper_grid_pairs


class TestWorkload:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            Workload("fuzz")

    def test_unknown_appsim_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown appsim pattern"):
            Workload.appsim("random")

    def test_params_sorted_for_equality(self):
        a = Workload("sim", (("lb", 4), ("block_size", 512)))
        b = Workload("sim", (("block_size", 512), ("lb", 4)))
        assert a == b
        assert hash(a) == hash(b)

    def test_names(self):
        assert Workload.analysis().name == "analysis"
        assert Workload.sim(block_size=4096, lb=16).name == "sim-4k-lb16"
        assert Workload.sim(block_size=8192, lb=None).name == "sim-8k"
        assert Workload.sim(reorder_window=64).name == "sim-4k-lb16-ncq64"
        assert Workload.appsim("zipf").name == "appsim-zipf"
        assert Workload.execute().name == "execute"

    def test_dict_round_trip(self):
        for w in (
            Workload.analysis(),
            Workload.sim(total_blocks=1000),
            Workload.execute(block_size=4),
            Workload.appsim("uniform", n_requests=10),
        ):
            assert Workload.from_dict(w.to_dict()) == w


class TestSpecExpansion:
    def test_paper_grid_excludes_mirror(self):
        pairs = paper_grid_pairs()
        assert ("code56", "direct") in pairs
        assert all(code != "code56-right" for code, _ in pairs)

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(primes=(5, 7), seed=3)
        assert spec.tasks() == spec.tasks()

    def test_indexes_are_contiguous_and_ordered(self):
        spec = SweepSpec(
            primes=(5, 7),
            workloads=(Workload.analysis(), Workload.execute()),
        )
        tasks = spec.tasks()
        assert [t.index for t in tasks] == list(range(len(tasks)))
        # workload-major ordering: all analysis cells precede all execute cells
        kinds = [t.workload.kind for t in tasks]
        assert kinds == sorted(kinds, key=("analysis", "execute").index)

    def test_task_count(self):
        spec = SweepSpec(primes=(5, 7, 11), pairs=(("code56", "direct"),))
        assert len(spec.tasks()) == 3

    def test_seeds_differ_per_cell_but_are_stable(self):
        spec = SweepSpec(primes=(5, 7), seed=9)
        seeds = [t.seed for t in spec.tasks()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [t.seed for t in SweepSpec(primes=(5, 7), seed=9).tasks()]

    def test_root_seed_changes_every_task_seed(self):
        a = {t.task_id: t.seed for t in SweepSpec(primes=(5,), seed=0).tasks()}
        b = {t.task_id: t.seed for t in SweepSpec(primes=(5,), seed=1).tasks()}
        assert a.keys() == b.keys()
        assert all(a[k] != b[k] for k in a)

    def test_task_wire_round_trip(self):
        task = SweepSpec(primes=(5,), workloads=(Workload.execute(),)).tasks()[0]
        assert SweepTask.from_dict(task.to_dict()) == task

    def test_labels(self):
        task = SweepSpec(primes=(5,), pairs=(("code56", "direct"),)).tasks()[0]
        assert task.label == "direct(code56)"
        assert task.task_id == "code56/direct/p5/analysis"


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)

    def test_sensitive_to_every_component(self):
        base = derive_seed(0, "a", 1)
        assert derive_seed(1, "a", 1) != base
        assert derive_seed(0, "b", 1) != base
        assert derive_seed(0, "a", 2) != base

    def test_fits_in_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x") < 2**63
