"""Raid5Array: formatting, I/O paths, degradation, rebuild."""

import numpy as np
import pytest

from repro.raid import BlockArray, Raid5Array, Raid5Layout


@pytest.fixture(params=list(Raid5Layout))
def raid5(request, rng):
    arr = BlockArray(5, 10, block_size=8)
    r5 = Raid5Array(arr, request.param)
    data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
    r5.format_with(data)
    return r5, data


class TestFormatting:
    def test_capacity(self):
        arr = BlockArray(5, 10, block_size=8)
        assert Raid5Array(arr).capacity_blocks == 40

    def test_parity_consistent(self, raid5):
        r5, _ = raid5
        assert r5.verify()

    def test_wrong_data_shape(self):
        arr = BlockArray(4, 4, block_size=8)
        r5 = Raid5Array(arr)
        with pytest.raises(ValueError):
            r5.format_with(np.zeros((5, 8), dtype=np.uint8))

    def test_too_few_disks(self):
        with pytest.raises(ValueError):
            Raid5Array(BlockArray(2, 4, 8))

    def test_narrower_than_array(self, rng):
        arr = BlockArray(6, 8, block_size=8)
        r5 = Raid5Array(arr, n_disks=4)
        data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
        r5.format_with(data)
        assert r5.verify()
        assert not arr.raw(5, 0).any()  # untouched spare


class TestReads:
    def test_healthy_reads(self, raid5):
        r5, data = raid5
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_degraded_reads(self, raid5):
        r5, data = raid5
        r5.array.fail_disk(2)
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_out_of_range(self, raid5):
        r5, _ = raid5
        with pytest.raises(IndexError):
            r5.read(r5.capacity_blocks)


class TestWrites:
    def test_small_write_is_four_ios(self, raid5, rng):
        r5, data = raid5
        r5.array.reset_counters()
        ios = r5.write(7, rng.integers(0, 256, 8, dtype=np.uint8))
        assert ios == 4
        assert r5.array.total_ios == 4

    def test_write_keeps_parity(self, raid5, rng):
        r5, data = raid5
        for lba in (0, 9, 17):
            nb = rng.integers(0, 256, 8, dtype=np.uint8)
            r5.write(lba, nb)
            data[lba] = nb
        assert r5.verify()
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_degraded_write_to_failed_data_disk(self, raid5, rng):
        r5, data = raid5
        stripe, disk = r5.locate(5)
        r5.array.fail_disk(disk)
        nb = rng.integers(0, 256, 8, dtype=np.uint8)
        r5.write(5, nb)
        data[5] = nb
        # the write must be reconstructable through parity
        assert np.array_equal(r5.read(5), data[5])

    def test_write_with_failed_parity_disk(self, raid5, rng):
        r5, data = raid5
        stripe, _ = r5.locate(3)
        r5.array.fail_disk(r5.parity_disk(stripe))
        nb = rng.integers(0, 256, 8, dtype=np.uint8)
        r5.write(3, nb)
        assert np.array_equal(r5.read(3), nb)


class TestRebuild:
    def test_rebuild_restores_content(self, raid5):
        r5, data = raid5
        before = r5.array.snapshot()
        r5.array.fail_disk(1)
        r5.rebuild_disk(1)
        assert np.array_equal(r5.array.snapshot(), before)
        assert r5.verify()

    def test_logical_of_roundtrip(self, raid5):
        r5, _ = raid5
        for lba in range(r5.capacity_blocks):
            stripe, disk = r5.locate(lba)
            assert r5.logical_of(stripe, disk) == lba

    def test_parity_map(self, raid5):
        r5, _ = raid5
        pm = r5.parity_map()
        assert len(pm) == r5.stripes
        assert all(r5.logical_of(s, d) is None for s, d in pm)
