"""Cauchy Reed-Solomon (k, m) baseline."""

import itertools

import numpy as np
import pytest

from repro.codes.cauchy import CauchyReedSolomon


@pytest.fixture
def crs(rng):
    code = CauchyReedSolomon(k=6, m=3)
    stripe = code.empty_stripe(32)
    stripe[:6] = rng.integers(0, 256, size=(6, 32), dtype=np.uint8)
    code.encode(stripe)
    return code, stripe


class TestConstruction:
    def test_matrix_entries_nonzero(self):
        code = CauchyReedSolomon(k=10, m=4)
        assert (code.matrix != 0).all()

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            CauchyReedSolomon(k=0, m=2)
        with pytest.raises(ValueError):
            CauchyReedSolomon(k=250, m=10)

    def test_storage_efficiency(self):
        assert CauchyReedSolomon(k=8, m=2).storage_efficiency() == pytest.approx(0.8)


class TestCodec:
    def test_verify(self, crs):
        code, stripe = crs
        assert code.verify(stripe)
        stripe[0, 0] ^= 1
        assert not code.verify(stripe)

    def test_all_triple_erasures(self, crs):
        code, stripe = crs
        for lost in itertools.combinations(range(code.cols), 3):
            broken = stripe.copy()
            for c in lost:
                broken[c] = 0xEE
            code.decode(broken, lost)
            assert np.array_equal(broken, stripe), lost

    def test_fewer_erasures(self, crs):
        code, stripe = crs
        for lost in itertools.combinations(range(code.cols), 2):
            broken = stripe.copy()
            for c in lost:
                broken[c] = 0
            code.decode(broken, lost)
            assert np.array_equal(broken, stripe)

    def test_too_many_erasures_rejected(self, crs):
        code, stripe = crs
        with pytest.raises(ValueError):
            code.decode(stripe, (0, 1, 2, 3))

    def test_out_of_range_column(self, crs):
        code, stripe = crs
        with pytest.raises(ValueError):
            code.decode(stripe, (99,))

    def test_noop_decode(self, crs):
        code, stripe = crs
        before = stripe.copy()
        code.decode(stripe, ())
        assert np.array_equal(stripe, before)

    def test_parity_only_loss_recomputes(self, crs):
        code, stripe = crs
        broken = stripe.copy()
        broken[6] = 0
        broken[8] = 0
        code.decode(broken, (6, 8))
        assert np.array_equal(broken, stripe)

    @pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (5, 4), (12, 3)])
    def test_other_geometries(self, k, m, rng):
        code = CauchyReedSolomon(k=k, m=m)
        stripe = code.empty_stripe(8)
        stripe[:k] = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
        code.encode(stripe)
        lost = tuple(range(min(m, k)))  # wipe the first data columns
        broken = stripe.copy()
        for c in lost:
            broken[c] = 0
        code.decode(broken, lost)
        assert np.array_equal(broken, stripe)

    def test_shape_check(self, crs):
        code, _ = crs
        with pytest.raises(ValueError):
            code.encode(np.zeros((4, 8), dtype=np.uint8))
