"""The sweep runner: byte-identity, retry/fallback, observability merge.

The real-pool test spawns actual workers (the production spawn context);
the failure-mode tests inject fake executors so worker death, poisoned
chunks and hangs are exercised deterministically and fast.
"""

import dataclasses
from concurrent.futures import Future

import pytest

from repro.sweep import SweepError, SweepSpec, Workload, run_sweep
from repro.sweep.runner import _run_chunk

TINY = SweepSpec(
    primes=(5,),
    pairs=(("code56", "direct"), ("evenodd", "via-raid0")),
    workloads=(Workload.analysis(), Workload.execute(block_size=8)),
    seed=11,
)


class TestSerial:
    def test_results_cover_every_task_in_order(self):
        res = run_sweep(TINY, workers=0)
        tasks = TINY.tasks()
        assert len(res.results) == len(tasks)
        assert [r["task"] for r in res.results] == [t.task_id for t in tasks]

    def test_serial_rerun_is_byte_identical(self):
        assert run_sweep(TINY, workers=0).digest() == run_sweep(TINY, workers=0).digest()

    def test_seed_changes_execute_digests_only(self):
        a = run_sweep(TINY, workers=0)
        b = run_sweep(dataclasses.replace(TINY, seed=12), workers=0)
        assert a.digest() != b.digest()
        per_task = zip(a.results, b.results)
        for ra, rb in per_task:
            if ra["workload"] == "analysis":
                assert ra["result"] == rb["result"]  # closed-form: seed-free
            else:
                assert ra["result"]["digest"] != rb["result"]["digest"]

    def test_execute_tasks_verify(self):
        res = run_sweep(TINY, workers=0)
        for r in res.by_workload("execute"):
            assert r["result"]["verified"]

    def test_unsupported_cells_become_skip_records(self):
        spec = SweepSpec(primes=(4,), pairs=(("code56", "direct"),))
        res = run_sweep(spec, workers=0)
        assert len(res.results) == 1
        assert "skipped" in res.results[0]
        # skips are part of the canonical payload (deterministic digest)
        assert res.digest() == run_sweep(spec, workers=0).digest()

    def test_serial_collects_spans_and_metrics(self):
        res = run_sweep(TINY, workers=0)
        assert len(res.spans) >= len(TINY.tasks())
        snap = res.registry.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert "sweep.tasks" in names

    def test_oversized_execute_blocks_rejected(self):
        spec = SweepSpec(primes=(5,), workloads=(Workload.execute(block_size=128),))
        with pytest.raises(ValueError, match="POOL_BLOCK_SIZE"):
            run_sweep(spec, workers=0)


class TestRealPool:
    def test_two_workers_byte_identical_with_obs_merge(self, tmp_path):
        serial = run_sweep(TINY, workers=0)
        par = run_sweep(TINY, workers=2, cache_dir=tmp_path)
        assert par.digest() == serial.digest()
        assert par.payload_json() == serial.payload_json()
        assert par.retried_chunks == 0 and par.fallback_tasks == 0
        # worker spans merged under per-process tracks
        assert par.spans and all(s.track.startswith("worker-") for s in par.spans)
        names = {c["name"] for c in par.registry.snapshot()["counters"]}
        assert "sweep.tasks" in names
        # both workers compiled into the shared disk tier
        assert par.cache["compiled_total"] >= 1
        assert list(tmp_path.glob("*.npz"))
        # warm rerun: every program served from cache, still identical
        warm = run_sweep(TINY, workers=2, cache_dir=tmp_path)
        assert warm.digest() == serial.digest()
        assert warm.cache["compiled_total"] == 0


# ------------------------------------------------------------ fake executors

class _InlineExecutor:
    """Runs chunks in-process; optionally fails the first N submissions."""

    def __init__(self, poison_first: int = 0, hang: bool = False):
        self.poison_first = poison_first
        self.hang = hang
        self.submitted = 0

    def submit(self, fn, chunk):
        self.submitted += 1
        fut = Future()
        if self.hang:
            return fut  # never resolves -> exercises the timeout path
        if self.submitted <= self.poison_first:
            fut.set_exception(RuntimeError("worker died"))
        else:
            fut.set_result(fn(chunk))
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


ANALYSIS = SweepSpec(primes=(5,), workloads=(Workload.analysis(),), seed=0)


class TestFailureModes:
    def test_poisoned_chunk_retried_on_fresh_pool(self):
        pools = []

        def factory(n, initargs):
            pools.append(_InlineExecutor(poison_first=len(pools) == 0 and 99 or 0))
            return pools[-1]

        res = run_sweep(ANALYSIS, workers=2, executor_factory=factory, retries=2)
        assert res.digest() == run_sweep(ANALYSIS, workers=0).digest()
        assert res.retried_chunks > 0
        assert res.fallback_tasks == 0
        assert len(pools) == 2  # first pool poisoned, second clean

    def test_exhausted_retries_fall_back_to_parent(self):
        res = run_sweep(
            ANALYSIS, workers=2, retries=1,
            executor_factory=lambda n, a: _InlineExecutor(poison_first=99),
        )
        assert res.fallback_tasks == len(ANALYSIS.tasks())
        assert res.digest() == run_sweep(ANALYSIS, workers=0).digest()

    def test_exhausted_retries_raise_when_fallback_disabled(self):
        with pytest.raises(SweepError, match="failed after"):
            run_sweep(
                ANALYSIS, workers=2, retries=1, fallback_serial=False,
                executor_factory=lambda n, a: _InlineExecutor(poison_first=99),
            )

    def test_hung_pool_times_out_and_falls_back(self):
        res = run_sweep(
            ANALYSIS, workers=2, retries=0, task_timeout=0.05,
            executor_factory=lambda n, a: _InlineExecutor(hang=True),
        )
        assert res.fallback_tasks == len(ANALYSIS.tasks())
        assert res.digest() == run_sweep(ANALYSIS, workers=0).digest()

    def test_chunking_covers_all_tasks(self):
        res = run_sweep(
            ANALYSIS, workers=2, chunksize=1,
            executor_factory=lambda n, a: _InlineExecutor(),
        )
        assert res.digest() == run_sweep(ANALYSIS, workers=0).digest()


def test_run_chunk_wire_format():
    """The worker response carries indexed records plus obs snapshots."""
    tasks = ANALYSIS.tasks()
    response = _run_chunk([t.to_dict() for t in tasks[:2]])
    assert {r["index"] for r in response["results"]} == {0, 1}
    assert set(response) >= {"pid", "results", "metrics", "spans", "cache"}
