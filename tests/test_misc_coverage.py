"""Edge cases not exercised elsewhere."""

import numpy as np
import pytest

from repro.analysis.timing import conversion_time, phase_makespans
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    verify_conversion,
)
from repro.simdisk.events import EventQueue


class TestHdpPartialOverflow:
    @pytest.mark.parametrize("groups", [1, 3, 5])
    def test_non_cycle_group_counts_still_verify(self, groups, rng):
        """HDP's overflow repacking with a PARTIAL last overflow group
        (groups not a multiple of p-3) must still convert correctly."""
        plan = build_plan("hdp", "direct", 5, groups=groups)
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        assert verify_conversion(result, rng), plan.describe()

    def test_overflow_group_count(self):
        p, groups = 7, 5  # 5 * 6 displaced blocks over 24-per-group = 2 groups
        plan = build_plan("hdp", "direct", p, groups=groups)
        assert plan.groups == groups + 2


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_on_ties(self):
        q = EventQueue()
        for k in ("first", "second", "third"):
            q.push(1.0, k)
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1


class TestTimingInternals:
    def test_phase_makespans_shape(self):
        plan = build_plan("rdp", "via-raid4", 5, groups=2)
        nlb = phase_makespans(plan, load_balanced=False)
        lb = phase_makespans(plan, load_balanced=True)
        assert len(nlb) == len(lb) == 2  # degrade + upgrade
        assert all(l <= n for l, n in zip(lb, nlb))

    def test_conversion_time_sums_phases(self):
        plan = build_plan("rdp", "via-raid4", 5, groups=2)
        spans = phase_makespans(plan, load_balanced=False)
        assert conversion_time(plan) == pytest.approx(sum(spans) / plan.data_blocks)


class TestGeometryMisc:
    def test_column_cells(self):
        from repro.codes import get_layout

        lay = get_layout("code56", 5)
        assert lay.column_cells(2) == ((0, 2), (1, 2), (2, 2), (3, 2))

    def test_describe_shows_virtual(self):
        from repro.codes import get_layout

        text = get_layout("code56", 5, virtual_cols=(0,)).describe()
        assert " . " in text  # virtual glyph

    def test_right_layout_describe(self):
        from repro.codes import get_layout

        text = get_layout("code56-right", 7).describe()
        assert "code56-right" in text


class TestEnginePartialVerification:
    def test_verify_catches_swapped_blocks(self, rng):
        """Swapping two equal-role blocks breaks the logical map even if
        parities happen to stay consistent per-stripe."""
        plan = build_plan("code56", "direct", 5, groups=2)
        array, data = prepare_source_array(plan, rng)
        result = execute_plan(plan, array, data)
        a = array.raw(0, 0).copy()
        array.raw(0, 0)[...] = array.raw(0, 4)
        array.raw(0, 4)[...] = a
        assert not verify_conversion(result, rng)


class TestRaid5SymmetricMappings:
    @pytest.mark.parametrize(
        "layout_name", ["LEFT_SYMMETRIC", "RIGHT_SYMMETRIC", "RIGHT_ASYMMETRIC"]
    )
    def test_non_default_layouts_roundtrip(self, layout_name, rng):
        from repro.raid import BlockArray, Raid5Array, Raid5Layout

        arr = BlockArray(5, 10, block_size=8)
        r5 = Raid5Array(arr, Raid5Layout[layout_name])
        data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
        r5.format_with(data)
        assert r5.verify()
        arr.fail_disk(3)
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])
