"""Persistent compiled-program cache: round-trips and invalidation.

The invariant under test: the disk tier may only ever make compilation
*faster* — a stale, corrupted, or mismatched file must cause a fresh
compile, never a wrong program.  Correctness is asserted by executing
the disk-loaded program and comparing converted bytes against the
freshly-compiled baseline.
"""

import numpy as np
import pytest

import repro.compiled.compiler as compiler
from repro.compiled import (
    clear_program_cache,
    compile_plan,
    execute_plan_compiled,
    program_cache_file,
    program_cache_info,
    set_program_cache_dir,
)
from repro.migration import build_plan, prepare_source_array, verify_conversion
from repro.migration.approaches import alignment_cycle


@pytest.fixture
def plan():
    groups = alignment_cycle("code56", 5, None)
    return build_plan("code56", "direct", 5, groups=groups)


@pytest.fixture
def cache_dir(tmp_path):
    prev = set_program_cache_dir(tmp_path)
    clear_program_cache()
    yield tmp_path
    set_program_cache_dir(prev)
    clear_program_cache()


def _delta(before, after):
    return {k: after[k] - before[k] for k in before if k != "entries"}


def _converted_bytes(plan, program):
    rng = np.random.default_rng(7)
    array, data = prepare_source_array(plan, rng, block_size=8)
    result = execute_plan_compiled(plan, array, data, program=program)
    assert verify_conversion(result, np.random.default_rng(7))
    return array.snapshot().tobytes()


class TestDiskRoundTrip:
    def test_compile_writes_one_file(self, plan, cache_dir):
        compile_plan(plan)
        files = list(cache_dir.glob("*.npz"))
        assert len(files) == 1
        assert files[0] == program_cache_file(compiler.plan_cache_key(plan))
        assert files[0].name.startswith("code56-direct-p5-")

    def test_disk_hit_skips_compilation(self, plan, cache_dir):
        compile_plan(plan)
        clear_program_cache()  # drop the memory tier, keep the file
        before = program_cache_info()
        program = compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_hits"] == 1
        assert d["compiled"] == 0
        assert program.phases  # a real program came back

    def test_loaded_program_produces_identical_bytes(self, plan, cache_dir):
        baseline = _converted_bytes(plan, compile_plan(plan))
        clear_program_cache()
        loaded = compile_plan(plan)
        assert _converted_bytes(plan, loaded) == baseline

    def test_cache_disabled_when_dir_unset(self, plan, cache_dir):
        set_program_cache_dir(None)
        before = program_cache_info()
        compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_hits"] == d["disk_misses"] == 0
        assert not list(cache_dir.glob("*.npz"))


class TestInvalidation:
    def test_geometry_change_misses(self, plan, cache_dir):
        compile_plan(plan)
        other = build_plan(
            "code56", "direct", 5,
            groups=alignment_cycle("code56", 5, None) * 2,
        )
        before = program_cache_info()
        compile_plan(other)
        d = _delta(before, program_cache_info())
        assert d["disk_misses"] == 1
        assert d["compiled"] == 1
        assert len(list(cache_dir.glob("*.npz"))) == 2

    def test_version_bump_recompiles(self, plan, cache_dir, monkeypatch):
        compile_plan(plan)
        clear_program_cache()
        # a new cache version must not read old files — the content hash
        # includes the version, so the old entry is simply never addressed
        monkeypatch.setattr(compiler, "PROGRAM_CACHE_VERSION", 2)
        before = program_cache_info()
        compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_hits"] == 0
        assert d["compiled"] == 1

    def test_stale_version_inside_file_rejected(self, plan, cache_dir, monkeypatch):
        # force the old file to be *addressed* by the new version by pinning
        # the path, so the in-file version check is what must reject it
        compile_plan(plan)
        key = compiler.plan_cache_key(plan)
        path = program_cache_file(key)
        clear_program_cache()
        monkeypatch.setattr(compiler, "PROGRAM_CACHE_VERSION", 2)
        monkeypatch.setattr(compiler, "program_cache_file", lambda k: path)
        before = program_cache_info()
        compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_errors"] == 1  # addressed, loaded, rejected
        assert d["compiled"] == 1

    def test_corrupted_file_recompiles_not_wrong_answer(self, plan, cache_dir):
        baseline = _converted_bytes(plan, compile_plan(plan))
        path = program_cache_file(compiler.plan_cache_key(plan))
        path.write_bytes(b"\x00garbage" * 64)
        clear_program_cache()
        before = program_cache_info()
        program = compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_errors"] == 1
        assert d["compiled"] == 1
        assert _converted_bytes(plan, program) == baseline

    def test_truncated_npz_recompiles(self, plan, cache_dir):
        compile_plan(plan)
        path = program_cache_file(compiler.plan_cache_key(plan))
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        clear_program_cache()
        before = program_cache_info()
        compile_plan(plan)
        d = _delta(before, program_cache_info())
        assert d["disk_errors"] == 1
        assert d["compiled"] == 1

    def test_rewrite_after_corruption_heals_the_file(self, plan, cache_dir):
        compile_plan(plan)
        path = program_cache_file(compiler.plan_cache_key(plan))
        path.write_bytes(b"junk")
        clear_program_cache()
        compile_plan(plan)  # recompiles and rewrites the entry
        clear_program_cache()
        before = program_cache_info()
        compile_plan(plan)
        assert _delta(before, program_cache_info())["disk_hits"] == 1
