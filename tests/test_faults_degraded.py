"""Degraded-mode conversion: RAID-5 → RAID-6 with a failed disk.

The direct Code 5-6 conversion never writes the old RAID-5 columns, so
row parity stays valid throughout and a failed data disk is survivable
via reconstruct-on-read.  The converted array must then rebuild the
failed disk and pass both the decoder's verification and the scrubber.
"""

import numpy as np
import pytest

from repro.codes.registry import get_code
from repro.faults import (
    ConversionJournal,
    FaultPlane,
    FaultScenario,
    ReadFaultError,
    ReconstructingReader,
    SectorError,
    execute_checkpointed,
    plan_is_zero_movement,
)
from repro.migration.approaches import build_plan
from repro.migration.engine import prepare_source_array, verify_conversion
from repro.raid.raid6 import Raid6Array
from repro.raid.scrub import scrub_raid6


def degraded_setup(p=5, groups=2, seed=0, bs=8, failed_disk=1):
    plan = build_plan("code56", "direct", p, groups=groups)
    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=bs
    )
    if failed_disk is not None:
        array.fail_disk(failed_disk)
    return plan, array, data


class TestZeroMovementPredicate:
    def test_direct_conversion_qualifies(self):
        assert plan_is_zero_movement(build_plan("code56", "direct", 5, groups=2))

    @pytest.mark.parametrize("code", ["evenodd", "rdp"])
    def test_data_moving_plans_do_not(self, code):
        assert not plan_is_zero_movement(build_plan(code, "via-raid4", 5, groups=2))


class TestDegradedConversion:
    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    @pytest.mark.parametrize("failed_disk", [0, 2])
    def test_completes_and_rebuilds(self, engine, failed_disk, rng):
        plan, array, data = degraded_setup(failed_disk=failed_disk)
        plane = FaultPlane(FaultScenario())
        plane.attach(array)
        run = execute_checkpointed(plan, array, data, engine=engine)
        assert run.degraded
        assert plane.counters["reconstructed_blocks"] > 0
        plane.detach()
        raid6 = Raid6Array(array, get_code("code56", plan.p))
        raid6.rebuild_disks(failed_disk)
        assert verify_conversion(run.result, check_io_counters=False)
        assert raid6.verify()
        assert scrub_raid6(raid6).clean

    @pytest.mark.parametrize("engine", ["audited", "compiled"])
    def test_crash_resume_while_degraded(self, engine):
        plan, array, data = degraded_setup()
        ref_plan, ref_array, ref_data = degraded_setup()
        ref_run = execute_checkpointed(ref_plan, ref_array, ref_data, engine=engine)
        plane = FaultPlane(FaultScenario(crash_at=6, crash_tear=0.5))
        plane.attach(array)
        journal = ConversionJournal()
        from repro.faults import ConversionCrash

        crashes = 0
        while True:
            try:
                run = execute_checkpointed(plan, array, data, journal, engine=engine)
                break
            except ConversionCrash:
                crashes += 1
                plane.disarm_crash()
        assert crashes == 1
        plane.detach()
        assert np.array_equal(array.snapshot(), ref_array.snapshot())
        assert verify_conversion(run.result, check_io_counters=False)

    def test_failed_new_disk_is_refused(self):
        plan, array, data = degraded_setup(failed_disk=4)  # the diagonal column
        with pytest.raises(ValueError, match="hot-added"):
            execute_checkpointed(plan, array, data)

    def test_data_moving_plan_is_refused_degraded(self):
        plan = build_plan("rdp", "via-raid4", 5, groups=2)
        array, data = prepare_source_array(
            plan, np.random.default_rng(0), block_size=8
        )
        array.fail_disk(1)
        with pytest.raises(ValueError, match="zero"):
            execute_checkpointed(plan, array, data)

    def test_sector_errors_reconstructed_through_row(self):
        # cell (2, 2) lies on a stored diagonal, so the conversion reads it
        plan, array, data = degraded_setup(failed_disk=None)
        plane = FaultPlane(FaultScenario(sector_errors=(SectorError(2, 2),)))
        plane.attach(array)
        run = execute_checkpointed(plan, array, data)
        assert plane.counters["sector_errors_hit"] >= 1
        assert plane.counters["reconstructed_blocks"] >= 1
        assert verify_conversion(run.result, check_io_counters=False)


class TestReconstructingReader:
    def test_reconstructs_failed_disk(self, rng):
        plan, array, _data = degraded_setup(failed_disk=1)
        reader = ReconstructingReader(array, m=4)
        # the row invariant: the reconstruction equals the XOR of the rest
        expect = np.zeros(8, dtype=np.uint8)
        for d in (0, 2, 3):
            expect ^= array.raw(d, 0)
        assert np.array_equal(reader.read(1, 0), expect)

    def test_pass_through_mode_reraises(self):
        plan, array, _data = degraded_setup(failed_disk=1)
        reader = ReconstructingReader(array, m=4, allow_reconstruction=False)
        from repro.raid.array import DiskFailure

        with pytest.raises(DiskFailure):
            reader.read(1, 0)

    def test_sector_error_hidden_by_reconstruction(self, rng):
        plan = build_plan("code56", "direct", 5, groups=2)
        array, _ = prepare_source_array(
            plan, np.random.default_rng(0), block_size=8
        )
        truth = array.raw(2, 3).copy()
        plane = FaultPlane(FaultScenario(sector_errors=(SectorError(2, 3),)))
        plane.attach(array)
        reader = ReconstructingReader(array, m=4)
        assert np.array_equal(reader.read(2, 3), truth)
        with pytest.raises(ReadFaultError):
            ReconstructingReader(array, m=4, allow_reconstruction=False).read(2, 3)

    def test_check_ok_tracks_failed_disks(self):
        plan, array, _data = degraded_setup(failed_disk=1)
        reader = ReconstructingReader(array, m=4)
        assert not reader.check_ok(1)
        assert reader.check_ok(0)
