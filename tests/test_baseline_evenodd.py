"""EVENODD baseline (Blaum et al., 1995)."""

import itertools

import numpy as np
import pytest

from repro.codes import ArrayCode, certify_mds, evenodd_layout, get_code
from repro.codes.evenodd import adjuster_cells


class TestGeometry:
    def test_shape(self):
        lay = evenodd_layout(5)
        assert (lay.rows, lay.cols) == (4, 7)

    def test_adjuster_is_diagonal_p_minus_1(self):
        p = 5
        cells = adjuster_cells(p)
        assert all((r + c) % p == p - 1 for r, c in cells)
        assert len(cells) == p - 1

    def test_every_diagonal_chain_carries_the_adjuster(self):
        p = 5
        lay = evenodd_layout(p)
        s = set(adjuster_cells(p))
        for i in range(p - 1):
            chain = lay.chain_of_parity[(i, p + 1)]
            assert s <= set(chain.members)

    def test_adjuster_update_penalty(self):
        """Writing an S-diagonal cell dirties every diagonal parity: the
        EVENODD small-write storm (penalty 1 + (p-1))."""
        p = 5
        lay = evenodd_layout(p)
        for cell in adjuster_cells(p):
            assert lay.update_penalty(cell) == p
        # non-adjuster data cells are optimal
        others = [c for c in lay.data_cells if c not in set(adjuster_cells(p))]
        assert all(lay.update_penalty(c) == 2 for c in others)


class TestCorrectness:
    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_mds(self, p):
        assert certify_mds(evenodd_layout(p)).is_mds

    def test_roundtrip_all_pairs(self, rng, paper_p):
        p = paper_p
        code = get_code("evenodd", p)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        for f1, f2 in itertools.combinations(range(p + 2), 2):
            broken = stripe.copy()
            broken[:, f1, :] = 0
            broken[:, f2, :] = 0
            code.decode_columns(broken, f1, f2)
            assert np.array_equal(broken, stripe)

    def test_shortened_to_paper_width(self, rng):
        """(EVENODD,4,6): one data column shortened."""
        lay = evenodd_layout(5, virtual_cols=(4,))
        assert lay.n_disks == 6
        assert certify_mds(lay).is_mds
        code = ArrayCode(lay)
        data = rng.integers(0, 256, size=(lay.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        broken = stripe.copy()
        broken[:, 0, :] = 0
        broken[:, 6, :] = 0
        code.decode_columns(broken, 0, 6)
        assert np.array_equal(broken, stripe)

    def test_nonzero_adjuster_propagates(self, rng):
        """When S != 0 every diagonal parity differs from the plain
        diagonal XOR — the defining EVENODD behaviour."""
        p = 5
        code = get_code("evenodd", p)
        data = np.zeros((code.num_data, 1), dtype=np.uint8)
        # set exactly one S-diagonal cell to 1 -> S = 1
        s_cell = adjuster_cells(p)[0]
        idx = code.layout.data_cells.index(s_cell)
        data[idx] = 1
        stripe = code.make_stripe(data)
        # all diagonal parities except the one whose plain diagonal holds
        # the cell must equal S = 1
        for i in range(p - 1):
            val = int(stripe[i, p + 1, 0])
            assert val in (0, 1)
        assert sum(int(stripe[i, p + 1, 0]) for i in range(p - 1)) >= p - 2
