"""Command-line interface."""

import json
import subprocess
import sys

import pytest

import repro
from repro.cli import _package_version, main
from repro.obs import load_chrome_trace, validate_chrome_trace


def run_cli(*argv):
    return main(list(argv))


class TestInProcess:
    def test_info(self, capsys):
        assert run_cli("info", "--p", "7") == 0
        out = capsys.readouterr().out
        assert "code56" in out and "evenodd" in out

    def test_layout(self, capsys):
        assert run_cli("layout", "code56", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "data cells: 12" in out

    def test_layout_with_virtual(self, capsys):
        assert run_cli("layout", "code56", "--p", "5", "--virtual", "0") == 0
        out = capsys.readouterr().out
        assert "data cells: 6" in out

    def test_certify_pass(self, capsys):
        assert run_cli("certify", "rdp", "--p", "5") == 0
        assert "recoverable=True" in capsys.readouterr().out

    def test_convert_verified(self, capsys):
        assert run_cli("convert", "code56", "direct", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "total=1.333" in out

    def test_convert_two_step(self, capsys):
        assert run_cli("convert", "rdp", "via-raid4", "--p", "5") == 0
        assert "verified: True" in capsys.readouterr().out

    def test_convert_compiled_engine(self, capsys):
        assert run_cli(
            "convert", "code56", "direct", "--p", "5", "--engine", "compiled"
        ) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "total=1.333" in out

    def test_recover(self, capsys):
        assert run_cli("recover", "code56", "--p", "5", "--column", "1") == 0
        assert "hybrid=9" in capsys.readouterr().out

    def test_simulate_small(self, capsys):
        assert run_cli("simulate", "--blocks", "1200", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "direct(code56)" in out

    def test_simulate_nlb(self, capsys):
        assert run_cli("simulate", "--blocks", "1200", "--lb", "0") == 0
        assert "NLB" in capsys.readouterr().out

    def test_efficiency(self, capsys):
        assert run_cli("efficiency", "--max-m", "8") == 0
        out = capsys.readouterr().out
        assert "penalty" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")


class TestSubprocess:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "certify", "code56", "--p", "5"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "recoverable=True" in proc.stdout


class TestScrubCommand:
    def test_scrub_heals(self, capsys):
        assert run_cli("scrub", "code56", "--p", "5", "--corruptions", "2") == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "True" in out

    def test_scrub_other_codes(self, capsys):
        assert run_cli("scrub", "rdp", "--p", "5", "--corruptions", "1") == 0


class TestFaultInjectionCli:
    def test_convert_with_inline_scenario(self, capsys):
        scenario = json.dumps(
            {"seed": 5, "crash_at": 8, "crash_tear": 0.5,
             "transients": [{"op": 3, "failures": 1}]}
        )
        assert run_cli(
            "convert", "code56", "direct", "--p", "5", "--groups", "2",
            "--engine", "audited", "--inject", scenario,
        ) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "fault injection: 1 crash(es)" in out
        assert "crashes=1" in out

    def test_convert_with_scenario_file_and_metrics(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"seed": 1, "sector_errors":
                                    [{"disk": 2, "block": 2}]}))
        assert run_cli(
            "convert", "code56", "direct", "--p", "5", "--groups", "2",
            "--engine", "audited", "--inject", str(path), "--metrics",
        ) == 0
        out = capsys.readouterr().out
        assert "faults.sector_errors_hit" in out
        assert "faults.reconstructed_blocks" in out

    def test_chaos_sampled_sweep(self, capsys):
        assert run_cli(
            "chaos", "--crash-sweep", "--sample", "3", "--engine", "audited",
        ) == 0
        out = capsys.readouterr().out
        assert "crash-sweep-offline" in out and "PASS" in out

    def test_chaos_soak_bounded(self, capsys):
        assert run_cli(
            "chaos", "--soak", "60", "--max-iterations", "5", "--seed", "42",
        ) == 0
        out = capsys.readouterr().out
        assert "fault-soak" in out and "5 iterations" in out

    def test_chaos_replay_inline(self, capsys):
        spec = json.dumps({
            "kind": "offline-crash", "engine": "compiled", "p": 5,
            "groups": 2, "block_size": 8, "seed": 3,
            "scenario": {"seed": 3, "crash_at": 4, "crash_tear": 0.5},
        })
        assert run_cli("chaos", "--replay", spec) == 0
        assert "replay offline-crash: PASS" in capsys.readouterr().out


class TestCertifyTolerance:
    def test_star_triple(self, capsys):
        assert run_cli("certify", "star", "--p", "5", "--tolerance", "3") == 0
        assert "recoverable=True" in capsys.readouterr().out

    def test_raid6_code_fails_triple(self, capsys):
        assert run_cli("certify", "rdp", "--p", "5", "--tolerance", "3") == 1


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli("--version")
        assert exc.value.code == 0
        assert _package_version() in capsys.readouterr().out

    def test_package_version_matches_module_fallback(self):
        # installed metadata (if any) or the module constant; either way
        # it is a non-empty dotted version string
        v = _package_version()
        assert v and v[0].isdigit()
        assert repro.__version__[0].isdigit()


class TestObservability:
    """The acceptance path: convert --trace --metrics end to end."""

    def test_convert_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert run_cli(
            "convert", "--code", "code56", "--approach", "direct", "--p", "7",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "metrics snapshot" in out

        doc = load_chrome_trace(trace_path)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        # real execution spans...
        assert {"plan", "compile", "execute", "verify"} <= names
        # ...and simulated per-disk activity slices
        assert names & {"R", "W"}

        # metrics counters equal the plan's op accounting exactly
        metrics = json.loads(metrics_path.read_text())
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in metrics["counters"]
        }
        reads = counters[("conversion.reads.total", ())]
        writes = counters[("conversion.writes.total", ())]
        assert reads == counters[("conversion.planned_reads", ())]
        assert writes == counters[("conversion.planned_writes", ())]

        from repro.migration import build_plan
        from repro.migration.approaches import alignment_cycle

        plan = build_plan("code56", "direct", 7,
                          groups=alignment_cycle("code56", 7, None))
        assert reads == plan.read_ios
        assert writes == plan.write_ios

    def test_convert_metrics_stdout_only(self, capsys):
        assert run_cli("convert", "code56", "direct", "--p", "5", "--metrics") == 0
        out = capsys.readouterr().out
        assert "conversion.reads.total" in out

    def test_convert_audited_engine_traces_too(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        assert run_cli(
            "convert", "code56", "direct", "--p", "5",
            "--engine", "audited", "--trace", str(trace_path),
        ) == 0
        doc = load_chrome_trace(trace_path)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"plan", "execute", "verify"} <= names

    def test_convert_missing_args_exit_2(self, capsys):
        assert run_cli("convert", "--p", "5") == 2
        assert "required" in capsys.readouterr().err

    def test_convert_tracing_disabled_after_run(self, tmp_path):
        from repro.obs import get_registry, get_tracer

        assert run_cli("convert", "code56", "direct", "--p", "5",
                       "--trace", str(tmp_path / "t.json")) == 0
        assert not get_tracer().enabled
        assert not get_registry().enabled

    def test_simulate_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "sim.json"
        assert run_cli(
            "simulate", "--blocks", "1200", "--p", "5",
            "--trace", str(trace_path), "--metrics",
        ) == 0
        out = capsys.readouterr().out
        assert "direct(code56)" in out
        assert "sim.direct(code56).requests" in out
        doc = load_chrome_trace(trace_path)
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "simulate" in names
        assert names & {"R", "W"}

    def test_stats_roundtrip(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        assert run_cli("convert", "code56", "direct", "--p", "5",
                       "--trace", str(trace_path)) == 0
        capsys.readouterr()
        assert run_cli("stats", str(trace_path)) == 0
        out = capsys.readouterr().out
        assert "execute" in out and "disk" in out

    def test_stats_missing_file_exit_1(self, capsys, tmp_path):
        assert run_cli("stats", str(tmp_path / "nope.json")) == 1
        assert "no such file" in capsys.readouterr().err

    def test_stats_invalid_json_exit_1(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert run_cli("stats", str(bad)) == 1
        assert "bad.json" in capsys.readouterr().err

    def test_stats_not_a_trace_exit_1(self, capsys, tmp_path):
        bad = tmp_path / "plain.json"
        bad.write_text('{"hello": 1}')
        assert run_cli("stats", str(bad)) == 1


class TestSweepCli:
    def test_serial_only_writes_bench(self, capsys, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        assert run_cli(
            "sweep", "--workers", "0", "--primes", "5",
            "--workloads", "analysis", "--out", str(out),
        ) == 0
        bench = json.loads(out.read_text())
        assert bench["bench"] == "sweep"
        assert bench["identical"] is True
        assert bench["n_tasks"] == len(bench["spec"]["pairs"])
        assert "serial" in bench and "parallel" not in bench
        assert bench["host_cpus"] >= 1

    def test_unknown_workload_exit_2(self, capsys, tmp_path):
        assert run_cli(
            "sweep", "--workers", "0", "--workloads", "fuzz",
            "--out", str(tmp_path / "b.json"),
        ) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_parallel_bench_and_trace(self, capsys, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        trace = tmp_path / "sweep_trace.json"
        cache = tmp_path / "cache"
        assert run_cli(
            "sweep", "--workers", "2", "--primes", "5",
            "--workloads", "analysis", "execute",
            "--out", str(out), "--trace", str(trace),
            "--cache-dir", str(cache),
        ) == 0
        bench = json.loads(out.read_text())
        assert bench["identical"] is True
        assert bench["serial"]["digest"] == bench["parallel"]["digest"]
        assert bench["parallel"]["digest"] == bench["warm"]["digest"]
        # cold parallel compiled the grid's programs; the warm rerun
        # served every one from the persistent cache
        assert bench["parallel"]["cache"]["compiled_total"] >= 1
        assert bench["warm"]["compiled_total"] == 0
        assert bench["speedup"] > 0
        assert list(cache.glob("*.npz"))
        validate_chrome_trace(load_chrome_trace(trace))
