"""Command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


class TestInProcess:
    def test_info(self, capsys):
        assert run_cli("info", "--p", "7") == 0
        out = capsys.readouterr().out
        assert "code56" in out and "evenodd" in out

    def test_layout(self, capsys):
        assert run_cli("layout", "code56", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "data cells: 12" in out

    def test_layout_with_virtual(self, capsys):
        assert run_cli("layout", "code56", "--p", "5", "--virtual", "0") == 0
        out = capsys.readouterr().out
        assert "data cells: 6" in out

    def test_certify_pass(self, capsys):
        assert run_cli("certify", "rdp", "--p", "5") == 0
        assert "recoverable=True" in capsys.readouterr().out

    def test_convert_verified(self, capsys):
        assert run_cli("convert", "code56", "direct", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "total=1.333" in out

    def test_convert_two_step(self, capsys):
        assert run_cli("convert", "rdp", "via-raid4", "--p", "5") == 0
        assert "verified: True" in capsys.readouterr().out

    def test_convert_compiled_engine(self, capsys):
        assert run_cli(
            "convert", "code56", "direct", "--p", "5", "--engine", "compiled"
        ) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "total=1.333" in out

    def test_recover(self, capsys):
        assert run_cli("recover", "code56", "--p", "5", "--column", "1") == 0
        assert "hybrid=9" in capsys.readouterr().out

    def test_simulate_small(self, capsys):
        assert run_cli("simulate", "--blocks", "1200", "--p", "5") == 0
        out = capsys.readouterr().out
        assert "direct(code56)" in out

    def test_simulate_nlb(self, capsys):
        assert run_cli("simulate", "--blocks", "1200", "--lb", "0") == 0
        assert "NLB" in capsys.readouterr().out

    def test_efficiency(self, capsys):
        assert run_cli("efficiency", "--max-m", "8") == 0
        out = capsys.readouterr().out
        assert "penalty" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")


class TestSubprocess:
    def test_python_dash_m(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "certify", "code56", "--p", "5"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "recoverable=True" in proc.stdout


class TestScrubCommand:
    def test_scrub_heals(self, capsys):
        assert run_cli("scrub", "code56", "--p", "5", "--corruptions", "2") == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "True" in out

    def test_scrub_other_codes(self, capsys):
        assert run_cli("scrub", "rdp", "--p", "5", "--corruptions", "1") == 0


class TestCertifyTolerance:
    def test_star_triple(self, capsys):
        assert run_cli("certify", "star", "--p", "5", "--tolerance", "3") == 0
        assert "recoverable=True" in capsys.readouterr().out

    def test_raid6_code_fails_triple(self, capsys):
        assert run_cli("certify", "rdp", "--p", "5", "--tolerance", "3") == 1
