"""STAR code: triple-fault tolerance through the same chain framework."""

import itertools

import numpy as np
import pytest

from repro.codes import ArrayCode, apply_recovery_plan, build_recovery_plan, certify_mds
from repro.codes.mds import check_erasures
from repro.codes.star import anti_adjuster_cells, star_layout


class TestGeometry:
    def test_shape(self):
        lay = star_layout(5)
        assert (lay.rows, lay.cols) == (4, 8)
        assert lay.num_parity == 3 * 4

    def test_adjusters_are_disjoint_diagonals(self):
        p = 7
        s2 = anti_adjuster_cells(p)
        assert all((r - c) % p == p - 1 for r, c in s2)
        assert len(s2) == p - 1

    def test_rejects_nonprime(self):
        with pytest.raises(ValueError):
            star_layout(9)


class TestTripleTolerance:
    @pytest.mark.parametrize("p", [5, 7])
    def test_exhaustive_triple_certification(self, p):
        report = certify_mds(star_layout(p), tolerance=3)
        assert report.is_mds
        assert report.storage_optimal  # (n-3)*rows data cells

    def test_double_certification_also_holds(self):
        assert certify_mds(star_layout(5), tolerance=2).is_mds

    def test_payload_roundtrip_all_triples(self, rng):
        p = 5
        lay = star_layout(p)
        code = ArrayCode(lay)
        data = rng.integers(0, 256, size=(code.num_data, 8), dtype=np.uint8)
        stripe = code.make_stripe(data)
        assert code.verify(stripe)
        for cols in itertools.combinations(range(lay.cols), 3):
            lost = tuple((r, c) for c in cols for r in range(lay.rows))
            plan = build_recovery_plan(lay, lost)
            broken = stripe.copy()
            for c in cols:
                broken[:, c, :] = 0
            apply_recovery_plan(plan, broken)
            assert np.array_equal(broken, stripe), cols

    def test_quadruple_erasure_fails(self):
        lay = star_layout(5)
        failures = check_erasures(lay, 4)
        assert failures  # beyond the designed tolerance

    def test_shortened_star_keeps_tolerance(self):
        lay = star_layout(5, virtual_cols=(4,))
        assert certify_mds(lay, tolerance=3).is_mds

    def test_update_penalty_is_three_or_storm(self):
        """Each data cell feeds a row, a diagonal and an anti-diagonal;
        adjuster cells feed every chain of their family."""
        lay = star_layout(5)
        pens = {lay.update_penalty(c) for c in lay.data_cells}
        assert min(pens) == 3
