"""Unit tests for GF(2^8) arithmetic."""

import numpy as np
import pytest

from repro.util.gf256 import (
    EXP_TABLE,
    GF256,
    LOG_TABLE,
    MUL_TABLE,
    gf_inv,
    gf_mul,
    gf_mul_blocks,
    gf_pow,
)


class TestTables:
    def test_exp_log_inverse_of_each_other(self):
        for a in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[a]] == a

    def test_exp_wraparound(self):
        assert np.array_equal(EXP_TABLE[255:510], EXP_TABLE[0:255])

    def test_generator_order(self):
        seen = {int(EXP_TABLE[i]) for i in range(255)}
        assert len(seen) == 255  # 2 generates the full multiplicative group


class TestScalarOps:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_mul_commutative_associative(self, rng):
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf_mul(a, b) == gf_mul(b, a)
            assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    def test_distributive_over_xor(self, rng):
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_known_product(self):
        # 2 * 0x80 = 0x11D ^ 0x100 = 0x1D in this field
        assert gf_mul(2, 0x80) == 0x1D

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 8) == 0x1D
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1

    def test_pow_matches_repeated_mul(self, rng):
        for _ in range(30):
            a = int(rng.integers(1, 256))
            n = int(rng.integers(0, 20))
            expect = 1
            for _ in range(n):
                expect = gf_mul(expect, a)
            assert gf_pow(a, n) == expect


class TestBlockOps:
    def test_mul_table_consistency(self, rng):
        for _ in range(200):
            a, b = (int(x) for x in rng.integers(0, 256, 2))
            assert MUL_TABLE[a][b] == gf_mul(a, b)

    def test_gf_mul_blocks_matches_scalar(self, rng):
        block = rng.integers(0, 256, size=64, dtype=np.uint8)
        for coeff in (0, 1, 2, 37, 255):
            out = gf_mul_blocks(coeff, block)
            expect = np.array([gf_mul(coeff, int(b)) for b in block], dtype=np.uint8)
            assert np.array_equal(out, expect)

    def test_gf_mul_blocks_out_param(self, rng):
        block = rng.integers(0, 256, size=16, dtype=np.uint8)
        out = np.empty_like(block)
        ret = gf_mul_blocks(3, block, out=out)
        assert ret is out
        assert np.array_equal(out, gf_mul_blocks(3, block))


class TestSolve2:
    def test_double_erasure_system(self, rng):
        for _ in range(50):
            x1, x2 = (int(v) for v in rng.integers(0, 256, 2))
            g1, g2 = gf_pow(2, 3), gf_pow(2, 7)
            b1 = x1 ^ x2
            b2 = gf_mul(g1, x1) ^ gf_mul(g2, x2)
            got = GF256.solve2(1, 1, g1, g2, b1, b2)
            assert got == (x1, x2)
