"""Chrome trace export: schema, disk tracks vs. simulator ground truth."""

import json

import numpy as np
import pytest

from repro.migration import build_plan
from repro.obs.timeline import (
    DISK_PID,
    SPAN_PID,
    build_chrome_trace,
    disk_events,
    load_chrome_trace,
    span_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer
from repro.simdisk import closed_request_schedule, get_preset, simulate_closed
from repro.workloads import conversion_trace, uniform_trace


@pytest.fixture
def schedule():
    plan = build_plan("code56", "direct", p=5)
    trace = conversion_trace(plan, block_size=4096)
    return closed_request_schedule(trace, get_preset("sas-15k"))


def make_spans(n=3):
    t = Tracer(enabled=True)
    for i in range(n):
        with t.span(f"s{i}", cat="test", track="main" if i % 2 == 0 else "other"):
            pass
    return t.spans


class TestSpanEvents:
    def test_empty(self):
        assert span_events([]) == []

    def test_rebased_and_tracked(self):
        events = span_events(make_spans())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["pid"] == SPAN_PID for e in xs)
        # two tracks -> two distinct tids plus thread_name metadata for each
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"main", "other"}
        assert len({e["tid"] for e in xs}) == 2


class TestDiskEvents:
    def test_one_slice_per_request(self, schedule):
        events = disk_events(schedule)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(schedule)
        assert all(e["pid"] == DISK_PID for e in xs)
        assert {e["name"] for e in xs} <= {"R", "W"}
        # one thread row per disk, tid = disk + 1
        tids = {e["tid"] for e in xs}
        assert tids <= set(range(1, schedule.n_disks + 1))

    def test_component_breakdown_sums_to_duration(self, schedule):
        for e in disk_events(schedule):
            if e["ph"] != "X":
                continue
            parts = e["args"]
            total_ms = parts["seek_ms"] + parts["rotate_ms"] + parts["transfer_ms"]
            assert e["dur"] / 1e3 == pytest.approx(total_ms, abs=1e-2)

    def test_truncation(self, schedule):
        events = disk_events(schedule, max_slices=5)
        assert sum(1 for e in events if e["ph"] == "X") == 5


class TestBuildAndValidate:
    def test_busy_matches_simulator(self, schedule):
        plan = build_plan("code56", "direct", p=5)
        trace = conversion_trace(plan, block_size=4096)
        result = simulate_closed(trace, get_preset("sas-15k"))
        doc = build_chrome_trace(schedule=schedule)
        np.testing.assert_allclose(
            doc["otherData"]["per_disk_busy_ms"], result.per_disk_busy_ms, rtol=1e-9
        )
        assert doc["otherData"]["disk_requests"] == result.n_requests

    def test_schema_valid(self, schedule):
        doc = build_chrome_trace(
            spans=make_spans(),
            schedule=schedule,
            metrics={"counters": []},
            meta={"command": "test"},
        )
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["metrics"] == {"counters": []}
        assert doc["otherData"]["command"] == "test"

    def test_truncation_recorded(self, schedule):
        doc = build_chrome_trace(schedule=schedule, max_disk_slices=4)
        other = doc["otherData"]
        assert other["disk_slices_exported"] == 4
        assert other["disk_slices_truncated"] == len(schedule) - 4

    def test_write_and_load_roundtrip(self, tmp_path, schedule):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(path, spans=make_spans(), schedule=schedule)
        loaded = load_chrome_trace(path)
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        doc = {
            "traceEvents": [
                "not-an-object",
                {"ph": "Z", "pid": 1, "tid": 1, "name": "x"},
                {"ph": "X", "pid": "one", "tid": 1, "name": "x", "ts": -1, "dur": 0},
                {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": 1, "args": []},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert len(problems) >= 4

    def test_uniform_trace_schedule_valid(self):
        rng = np.random.default_rng(9)
        trace = uniform_trace(rng, n_requests=64, n_disks=4, blocks_per_disk=128)
        schedule = closed_request_schedule(trace, get_preset("sas-15k"), n_disks=4)
        doc = build_chrome_trace(schedule=schedule)
        assert validate_chrome_trace(doc) == []
        result = simulate_closed(trace, get_preset("sas-15k"), n_disks=4)
        np.testing.assert_allclose(
            doc["otherData"]["per_disk_busy_ms"], result.per_disk_busy_ms, rtol=1e-9
        )
