"""Property-based tests over the migration machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import metrics_from_plan
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
    verify_conversion,
)
from repro.migration.approaches import _resolve_width, alignment_cycle

PAIRS = st.sampled_from(supported_conversions())
PRIMES = st.sampled_from([5, 7])


@st.composite
def conversion_config(draw):
    code, approach = draw(PAIRS)
    p = draw(PRIMES)
    canonical = _resolve_width(code, p, None)
    if code in ("code56", "code56-right"):
        n = draw(st.integers(4, canonical))
    elif code in ("rdp", "evenodd"):
        n = draw(st.integers(5, canonical))
    elif code == "hcode":
        n = draw(st.sampled_from([p, p + 1]))
    else:
        n = canonical
    groups = draw(st.integers(1, 3)) * alignment_cycle(code, p, n)
    return code, approach, p, n, groups


@given(conversion_config(), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_any_configuration_converts_and_verifies(cfg, seed):
    """Every buildable (code, approach, p, n, groups) conversion must
    execute on a real array and pass the full audit."""
    code, approach, p, n, groups = cfg
    plan = build_plan(code, approach, p, groups=groups, n_disks=n)
    rng = np.random.default_rng(seed)
    array, data = prepare_source_array(plan, rng, block_size=4)
    result = execute_plan(plan, array, data)
    assert verify_conversion(result, rng), plan.describe()


@given(conversion_config())
@settings(max_examples=30, deadline=None)
def test_metrics_are_group_invariant(cfg):
    """Per-B metrics must not depend on how many alignment cycles run."""
    code, approach, p, n, groups = cfg
    cycle = alignment_cycle(code, p, n)
    a = metrics_from_plan(build_plan(code, approach, p, groups=cycle, n_disks=n))
    b = metrics_from_plan(build_plan(code, approach, p, groups=2 * cycle, n_disks=n))
    for field in (
        "invalid_parity_ratio",
        "migration_ratio",
        "new_parity_ratio",
        "computation_cost",
        "write_ios",
        "total_ios",
    ):
        assert abs(getattr(a, field) - getattr(b, field)) < 1e-12, field


@given(conversion_config())
@settings(max_examples=30, deadline=None)
def test_plan_invariants(cfg):
    """Structural truths every plan must satisfy."""
    code, approach, p, n, groups = cfg
    plan = build_plan(code, approach, p, groups=groups, n_disks=n)
    # parity-operation conservation: every old parity is reused,
    # invalidated, or migrated — never double-counted
    old_parities = plan.data_blocks // (plan.m - 1)
    assert plan.invalid_parities + plan.migrated_parities <= old_parities
    # writes >= new parities (plus invalidation/migration writes)
    assert plan.write_ios >= plan.new_parities
    # every physical disk index is in range
    assert all(0 <= op.disk < plan.n for op in plan.ops)
    assert all(op.block >= 0 for op in plan.ops)
    # blocks stay within the declared per-disk capacity
    assert all(op.block < plan.blocks_per_disk for op in plan.ops)
