"""RAID-5 layout rotations and address mapping."""

import pytest

from repro.raid.layouts import Raid5Layout, cell_role, data_disk, locate_block, parity_disk


class TestParityPlacement:
    def test_left_asymmetric_rotation(self):
        # parity walks down from the last disk (the md 'la' layout)
        n = 4
        got = [parity_disk(Raid5Layout.LEFT_ASYMMETRIC, s, n) for s in range(6)]
        assert got == [3, 2, 1, 0, 3, 2]

    def test_right_asymmetric_rotation(self):
        n = 4
        got = [parity_disk(Raid5Layout.RIGHT_ASYMMETRIC, s, n) for s in range(6)]
        assert got == [0, 1, 2, 3, 0, 1]

    def test_symmetric_matches_asymmetric_parity(self):
        # symmetric variants only change *data* placement, never parity
        for s in range(10):
            assert parity_disk(Raid5Layout.LEFT_SYMMETRIC, s, 5) == parity_disk(
                Raid5Layout.LEFT_ASYMMETRIC, s, 5
            )

    def test_code56_alignment(self):
        """Left-asymmetric parity of row i sits at disk m-1-i — Code 5-6's
        horizontal-parity anti-diagonal (the paper's core trick)."""
        p = 7
        m = p - 1
        for i in range(m):
            assert parity_disk(Raid5Layout.LEFT_ASYMMETRIC, i, m) == m - 1 - i

    def test_tiny_array_rejected(self):
        with pytest.raises(ValueError):
            parity_disk(Raid5Layout.LEFT_ASYMMETRIC, 0, 1)


class TestDataPlacement:
    @pytest.mark.parametrize("layout", list(Raid5Layout))
    def test_stripe_is_a_permutation(self, layout):
        n = 5
        for stripe in range(n + 2):
            disks = [data_disk(layout, stripe, n, k) for k in range(n - 1)]
            disks.append(parity_disk(layout, stripe, n))
            assert sorted(disks) == list(range(n))

    def test_asymmetric_keeps_ascending_order(self):
        n, stripe = 5, 1  # parity on disk 3 (left-asymmetric)
        disks = [data_disk(Raid5Layout.LEFT_ASYMMETRIC, stripe, n, k) for k in range(4)]
        assert disks == [0, 1, 2, 4]

    def test_symmetric_wraps_after_parity(self):
        n, stripe = 5, 0  # parity on disk 4
        disks = [data_disk(Raid5Layout.LEFT_SYMMETRIC, stripe, n, k) for k in range(4)]
        assert disks == [0, 1, 2, 3]
        disks = [data_disk(Raid5Layout.LEFT_SYMMETRIC, 1, n, k) for k in range(4)]
        assert disks == [4, 0, 1, 2]  # parity on 3, data continues after it

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            data_disk(Raid5Layout.LEFT_ASYMMETRIC, 0, 4, 3)


class TestAddressMapping:
    @pytest.mark.parametrize("layout", list(Raid5Layout))
    def test_locate_inverse_of_cell_role(self, layout):
        n = 6
        for lba in range(3 * (n - 1)):
            stripe, disk = locate_block(layout, lba, n)
            k = cell_role(layout, stripe, disk, n)
            assert k is not None
            assert stripe * (n - 1) + k == lba

    @pytest.mark.parametrize("layout", list(Raid5Layout))
    def test_parity_cells_have_no_role(self, layout):
        n = 6
        for stripe in range(6):
            pd = parity_disk(layout, stripe, n)
            assert cell_role(layout, stripe, pd, n) is None

    def test_negative_lba(self):
        with pytest.raises(ValueError):
            locate_block(Raid5Layout.LEFT_ASYMMETRIC, -1, 4)
