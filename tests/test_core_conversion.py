"""High-level migration API: upgrade, downgrade, migrator facade."""

import numpy as np
import pytest

from repro.codes import get_code
from repro.core import Code56Migrator, downgrade_to_raid5, upgrade_to_raid6
from repro.migration import OnlineRequest
from repro.raid import BlockArray, Raid5Array, Raid5Layout, Raid6Array


class TestUpgrade:
    @pytest.mark.parametrize("m", [3, 4, 5, 6, 7, 10, 12])
    def test_any_width_verifies(self, m):
        outcome = upgrade_to_raid6(m, groups=2)
        assert outcome.verified, outcome.summary

    def test_caller_data_respected(self, rng):
        m, groups = 4, 3
        # B for m=4, p=5: groups * m * (m-1) = 36
        data = rng.integers(0, 256, size=(groups * m * (m - 1), 16), dtype=np.uint8)
        outcome = upgrade_to_raid6(m, groups=groups, data=data)
        assert outcome.verified
        assert np.array_equal(outcome.result.data, data)

    def test_wrong_data_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            upgrade_to_raid6(4, groups=2, data=np.zeros((5, 16), dtype=np.uint8))

    def test_io_is_b_plus_parity(self):
        outcome = upgrade_to_raid6(4, groups=4)
        b = outcome.plan.data_blocks
        assert outcome.result.measured_reads == b
        assert outcome.result.measured_writes == b // 3


class TestDowngrade:
    def _make_raid6(self, rng, p=5, groups=3, bs=8):
        code = get_code("code56", p)
        array = BlockArray(p, groups * (p - 1), block_size=bs)
        r6 = Raid6Array(array, code)
        data = rng.integers(0, 256, size=(r6.capacity_blocks, bs), dtype=np.uint8)
        r6.format_with(data)
        return array, data

    def test_downgrade_preserves_data(self, rng):
        array, data = self._make_raid6(rng)
        r5 = downgrade_to_raid5(array, 5)
        assert r5.verify()
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_downgrade_needs_zero_io(self, rng):
        array, _ = self._make_raid6(rng)
        array.reset_counters()
        downgrade_to_raid5(array, 5)
        assert array.total_ios == 0

    def test_refuses_inconsistent_array(self, rng):
        array, _ = self._make_raid6(rng)
        array.raw(0, 0)[0] ^= 1
        with pytest.raises(ValueError):
            downgrade_to_raid5(array, 5)

    def test_refuses_wrong_width(self, rng):
        array, _ = self._make_raid6(rng)
        array.add_disk()
        with pytest.raises(ValueError):
            downgrade_to_raid5(array, 5)


class TestMigratorFacade:
    def _fresh_raid5(self, rng, p=5, groups=4, bs=8):
        m = p - 1
        array = BlockArray(m, groups * (p - 1), block_size=bs)
        r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
        data = rng.integers(0, 256, size=(r5.capacity_blocks, bs), dtype=np.uint8)
        r5.format_with(data)
        return array, data

    def test_full_cycle(self, rng):
        array, data = self._fresh_raid5(rng)
        mig = Code56Migrator(array, 5)
        mig.check_source()
        disk = mig.add_parity_disk()
        assert disk == 4
        report = mig.convert_online([])
        assert report.parities_generated == 16
        r6 = mig.as_raid6()
        assert r6.verify()
        r5 = mig.revert()
        assert r5.verify()
        for lba in range(r5.capacity_blocks):
            assert np.array_equal(r5.read(lba), data[lba])

    def test_check_source_catches_corruption(self, rng):
        array, _ = self._fresh_raid5(rng)
        array.raw(0, 0)[0] ^= 1
        mig = Code56Migrator(array, 5)
        with pytest.raises(ValueError):
            mig.check_source()

    def test_add_parity_disk_idempotent(self, rng):
        array, _ = self._fresh_raid5(rng)
        mig = Code56Migrator(array, 5)
        assert mig.add_parity_disk() == 4
        assert mig.add_parity_disk() == 4
        assert array.n_disks == 5

    def test_online_with_writes_end_state(self, rng):
        array, data = self._fresh_raid5(rng, groups=6)
        truth = data.copy()
        mig = Code56Migrator(array, 5)
        mig.add_parity_disk()
        reqs = []
        for t in (2.0, 40.0, 90.0, 1e6):
            lba = int(rng.integers(0, len(truth)))
            payload = rng.integers(0, 256, size=8, dtype=np.uint8)
            truth[lba] = payload
            reqs.append(OnlineRequest(time=t, lba=lba, is_write=True, payload=payload))
        mig.convert_online(reqs)
        r6 = mig.as_raid6()
        assert r6.verify()
        for lba in range(r6.capacity_blocks):
            assert np.array_equal(r6.read(lba), truth[lba])
