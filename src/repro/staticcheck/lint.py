"""Project-specific AST lint over ``src/repro``.

Three rules that generic linters cannot express, each guarding an
invariant earlier PRs fought for:

* **SC-L001** — ``BlockArray``'s private buffers (``_store``,
  ``_failed``) are only touched inside ``raid/array.py``.  Everything
  else must go through the counted/bulk I/O API, or the I/O accounting
  that the paper's figures are built on silently drifts.
* **SC-L002** — no per-block Python loop performs counted I/O inside a
  hot-path module (the compiled executor and the bulk helpers exist
  precisely to batch those): a ``for ... in range(...)`` whose body
  calls ``.read(`` / ``.write(`` / ``.write_zero(`` is flagged.
* **SC-L003** — no imports of ``repro.migration.fast`` anywhere: the
  deprecated shim is deleted (its fused lowering lives on as
  ``repro.migration.batch`` behind the kernel tier), and the allowance
  set is empty so not even a compatibility re-export may revive it.
* **SC-L004** — ``multiprocessing`` (and ``concurrent.futures``) is
  imported only inside ``repro.sweep`` and ``repro.fleet``.  Process
  management, shared memory and the resource-tracker workarounds live
  behind audited boundaries — the sweep runner and the fleet service's
  admission worker pool; a stray ``import multiprocessing`` elsewhere
  bypasses their determinism and cleanup guarantees.
* **SC-L005** — no direct ``np.bitwise_xor`` (nor the ``xor_reduce`` /
  ``xor_into`` helpers) on ``BlockArray`` storage outside
  ``repro.kernels``.  A function-local taint pass marks every value
  derived from ``bulk_view`` / ``gather_raw`` (the bulk storage
  accessors) and flags XOR calls touching tainted data: hot-path XOR on
  the store must go through an :class:`~repro.kernels.base.XorKernel`
  backend, or backend selection, instrumentation and the numba path are
  silently bypassed.
* **SC-L006** — no nondeterminism primitives in the deterministic
  packages (``repro.core``, ``repro.compiled``, ``repro.migration``,
  ``repro.faults``).  Every run there must replay bit-identically from
  an explicit seed — the fault plane's crash schedules, the sweep's
  shared-memory results and the model checker's state hashes all depend
  on it.  Flagged: ``time.time`` / ``time.time_ns``, any stdlib
  ``random`` usage, ``os.urandom``, ``np.random.*`` legacy global-state
  calls, and *unseeded* ``np.random.default_rng()``.  Allowed:
  ``time.monotonic`` / ``perf_counter`` (deadlines, not data) and
  seeded ``default_rng(seed)`` / ``Generator`` / ``SeedSequence``.

The rules operate purely on the AST — no imports of the linted modules
— so a syntax-level violation is caught even in code that is never
executed by the test suite.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.report import Finding

__all__ = [
    "PRIVATE_BUFFER_ATTRS",
    "HOT_PATH_MODULES",
    "lint_source",
    "run_lint",
]

#: BlockArray internals nobody else may name
PRIVATE_BUFFER_ATTRS = frozenset({"_store", "_failed"})
#: modules allowed to touch them (the class lives there)
_PRIVATE_ALLOWED = frozenset({"raid/array.py"})

#: modules whose docstrings promise batched I/O — per-block loops banned
HOT_PATH_MODULES = frozenset(
    {"compiled/executor.py", "util/blocks.py", "migration/batch.py"}
)
_PER_BLOCK_CALLS = frozenset({"read", "write", "write_zero"})

_DEPRECATED_MODULE = "repro.migration.fast"
#: the module is deleted — no file may import it, not even a shim
_DEPRECATED_ALLOWED: frozenset[str] = frozenset()

#: process-management modules confined to the sweep package
_MP_MODULES = frozenset({"multiprocessing", "concurrent.futures"})
#: the packages allowed to spawn workers / map shared memory: the
#: sweep runner and the fleet service's admission worker pool
_MP_ALLOWED_PREFIXES = ("sweep/", "fleet/")

#: bulk storage accessors whose results are BlockArray storage (taint roots)
_STORAGE_ACCESSORS = frozenset({"bulk_view", "gather_raw"})
#: XOR entry points that must not touch tainted storage directly
_XOR_CALLS = frozenset({"bitwise_xor", "xor_reduce", "xor_into"})
#: the one package whose job is XORing the store
_XOR_ALLOWED_PREFIX = "kernels/"

#: packages whose behaviour must replay bit-identically from a seed
_DETERMINISTIC_PREFIXES = ("core/", "compiled/", "migration/", "faults/")
#: wall-clock readers banned there (monotonic/perf_counter stay legal)
_TIME_BANNED = frozenset({"time", "time_ns"})
#: np.random names that carry an explicit seed (everything else is
#: legacy global-state API)
_NP_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})

#: rules evaluated per file (the per-file check count)
RULES = ("SC-L001", "SC-L002", "SC-L003", "SC-L004", "SC-L005", "SC-L006")


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str):
        self.rel = rel_path
        self.findings: list[Finding] = []
        #: stack of per-scope tainted-name sets (module scope at [0])
        self._tainted: list[set[str]] = [set()]
        #: local binding -> dotted module it names (``np`` -> ``numpy``)
        self._mod_alias: dict[str, str] = {}
        #: local bindings of ``numpy.random.default_rng`` (from-imports)
        self._rng_ctors: set[str] = set()

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                analyzer="lint",
                rule=rule,
                location=f"{self.rel}:{getattr(node, 'lineno', 0)}",
                message=message,
            )
        )

    # ------------------------------------------------------------ SC-L001
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in PRIVATE_BUFFER_ATTRS and self.rel not in _PRIVATE_ALLOWED:
            self._flag(
                "SC-L001",
                node,
                f"direct access to BlockArray private buffer `.{node.attr}` — "
                "use the counted/bulk I/O API (read/write/bulk_view/raw)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------ SC-L002
    def visit_For(self, node: ast.For) -> None:
        if self.rel in HOT_PATH_MODULES and self._is_range_loop(node):
            call = self._per_block_io_call(node)
            if call is not None:
                self._flag(
                    "SC-L002",
                    node,
                    f"per-block `{call}` inside a range() loop in a hot-path "
                    "module — batch it through the bulk I/O API",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_range_loop(node: ast.For) -> bool:
        it = node.iter
        return (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        )

    @staticmethod
    def _per_block_io_call(node: ast.For) -> str | None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _PER_BLOCK_CALLS
            ):
                return f".{child.func.attr}()"
        return None

    # ------------------------------------------------------------ SC-L005
    def _storage_derived(self, expr: ast.AST) -> bool:
        """True if ``expr`` (or any sub-expression) names tainted storage:
        a ``bulk_view`` / ``gather_raw`` call, or a variable assigned from
        one (views/reshapes/slices of tainted names stay tainted)."""
        tainted = self._tainted[-1]
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _STORAGE_ACCESSORS
            ):
                return True
        return False

    def _taint_targets(self, targets: list[ast.expr]) -> None:
        for tgt in targets:
            for node in ast.walk(tgt):
                if isinstance(node, ast.Name):
                    self._tainted[-1].add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._tainted.append(set())
        self.generic_visit(node)
        self._tainted.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._storage_derived(node.value):
            self._taint_targets(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._storage_derived(node.value):
            self._taint_targets([node.target])
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        if (
            name in _XOR_CALLS
            and not self.rel.startswith(_XOR_ALLOWED_PREFIX)
            and any(
                self._storage_derived(arg)
                for arg in [*node.args, *(kw.value for kw in node.keywords)]
            )
        ):
            self._flag(
                "SC-L005",
                node,
                f"direct `{name}` on BlockArray storage (bulk_view/gather_raw "
                "data) outside repro.kernels — route it through an XorKernel "
                "backend (repro.kernels.resolve_kernel)",
            )
        self._check_nondet_call(node)
        self.generic_visit(node)

    # ------------------------------------------------------------ SC-L006
    @property
    def _deterministic(self) -> bool:
        return self.rel.startswith(_DETERMINISTIC_PREFIXES)

    def _resolve_module_attr(self, func: ast.expr) -> tuple[str, str] | None:
        """Resolve ``alias.a.b(...)`` to ``("module.a", "b")`` when the
        base name is a tracked module alias, else ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or not parts:
            return None
        base = self._mod_alias.get(node.id)
        if base is None:
            return None
        parts.reverse()
        return ".".join([base, *parts[:-1]]), parts[-1]

    def _flag_nondet(self, node: ast.AST, what: str, fix: str) -> None:
        self._flag(
            "SC-L006",
            node,
            f"nondeterminism primitive {what} in a deterministic package — "
            f"{fix}",
        )

    def _check_nondet_call(self, node: ast.Call) -> None:
        if not self._deterministic:
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self._rng_ctors
            and not node.args
            and not node.keywords
        ):
            self._flag_nondet(
                node, "unseeded `default_rng()`", "pass an explicit seed"
            )
            return
        resolved = self._resolve_module_attr(node.func)
        if resolved is None:
            return
        module, attr = resolved
        if module == "time" and attr in _TIME_BANNED:
            self._flag_nondet(
                node,
                f"`time.{attr}()`",
                "inject the clock, or use time.monotonic for deadlines",
            )
        elif module == "random":
            self._flag_nondet(
                node,
                f"stdlib `random.{attr}()`",
                "use a seeded np.random.default_rng(seed)",
            )
        elif module == "os" and attr == "urandom":
            self._flag_nondet(
                node, "`os.urandom()`", "use a seeded np.random.default_rng(seed)"
            )
        elif module == "numpy.random":
            if attr not in _NP_RANDOM_ALLOWED:
                self._flag_nondet(
                    node,
                    f"legacy global-state `np.random.{attr}()`",
                    "use a seeded np.random.default_rng(seed)",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                self._flag_nondet(
                    node, "unseeded `default_rng()`", "pass an explicit seed"
                )

    def _record_import(self, alias: ast.alias) -> None:
        bound = alias.asname or alias.name.split(".", 1)[0]
        self._mod_alias[bound] = alias.name if alias.asname else bound

    def _check_nondet_from(self, node: ast.ImportFrom, module: str) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "time" and alias.name in _TIME_BANNED:
                if self._deterministic:
                    self._flag_nondet(
                        node,
                        f"`from time import {alias.name}`",
                        "inject the clock, or use time.monotonic for deadlines",
                    )
            elif module == "random":
                if self._deterministic:
                    self._flag_nondet(
                        node,
                        f"`from random import {alias.name}`",
                        "use a seeded np.random.default_rng(seed)",
                    )
            elif module == "os" and alias.name == "urandom":
                if self._deterministic:
                    self._flag_nondet(
                        node,
                        "`from os import urandom`",
                        "use a seeded np.random.default_rng(seed)",
                    )
            elif module == "numpy.random":
                if alias.name == "default_rng":
                    self._rng_ctors.add(bound)
                elif alias.name not in _NP_RANDOM_ALLOWED and self._deterministic:
                    self._flag_nondet(
                        node,
                        f"legacy global-state `from numpy.random import "
                        f"{alias.name}`",
                        "use a seeded np.random.default_rng(seed)",
                    )

    # ------------------------------------------------- SC-L003 / SC-L004
    def _check_mp(self, node: ast.AST, module: str) -> None:
        top = module.split(".", 1)[0]
        if (
            (module in _MP_MODULES or top == "multiprocessing")
            and not self.rel.startswith(_MP_ALLOWED_PREFIXES)
        ):
            self._flag(
                "SC-L004",
                node,
                f"import of `{module}` outside repro.sweep/repro.fleet — "
                "process pools and shared memory go through the sweep "
                "runner (repro.sweep.run_sweep / repro.sweep.shm) or the "
                "fleet service's worker pool (repro.fleet.service)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _DEPRECATED_MODULE and self.rel not in _DEPRECATED_ALLOWED:
                self._flag(
                    "SC-L003",
                    node,
                    "import of deleted repro.migration.fast — use "
                    "repro.migration.batch or the compiled engine",
                )
            self._check_mp(node, alias.name)
            self._record_import(alias)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self.rel not in _DEPRECATED_ALLOWED:
            if module == _DEPRECATED_MODULE or (
                module == "repro.migration"
                and any(alias.name == "fast" for alias in node.names)
            ):
                self._flag(
                    "SC-L003",
                    node,
                    "import of deleted repro.migration.fast — use "
                    "repro.migration.batch or the compiled engine",
                )
        self._check_mp(node, module)
        self._check_nondet_from(node, module)
        if module == "concurrent" and not self.rel.startswith(_MP_ALLOWED_PREFIXES):
            # `from concurrent import futures` names the pool machinery too
            for alias in node.names:
                if alias.name == "futures":
                    self._check_mp(node, "concurrent.futures")
        self.generic_visit(node)


def lint_source(source: str, rel_path: str) -> list[Finding]:
    """Lint one module's source; ``rel_path`` is relative to ``repro/``."""
    tree = ast.parse(source, filename=rel_path)
    linter = _Linter(rel_path.replace("\\", "/"))
    linter.visit(tree)
    return linter.findings


def run_lint(package_root: Path | None = None) -> tuple[int, list[Finding]]:
    """Lint every module under ``repro`` (or ``package_root``)."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    findings: list[Finding] = []
    checks = 0
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if rel.startswith("staticcheck/"):
            # the analyzers name the forbidden symbols in their own rules
            continue
        checks += len(RULES)
        findings.extend(lint_source(path.read_text(), rel))
    return checks, findings
