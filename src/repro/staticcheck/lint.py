"""Project-specific AST lint over ``src/repro``.

Three rules that generic linters cannot express, each guarding an
invariant earlier PRs fought for:

* **SC-L001** — ``BlockArray``'s private buffers (``_store``,
  ``_failed``) are only touched inside ``raid/array.py``.  Everything
  else must go through the counted/bulk I/O API, or the I/O accounting
  that the paper's figures are built on silently drifts.
* **SC-L002** — no per-block Python loop performs counted I/O inside a
  hot-path module (the compiled executor and the bulk helpers exist
  precisely to batch those): a ``for ... in range(...)`` whose body
  calls ``.read(`` / ``.write(`` / ``.write_zero(`` is flagged.
* **SC-L003** — no *new* imports of the deprecated
  ``repro.migration.fast`` shim outside its own package exports and the
  code that still intentionally references it.
* **SC-L004** — ``multiprocessing`` (and ``concurrent.futures``) is
  imported only inside ``repro.sweep``.  Process management, shared
  memory and the resource-tracker workarounds live behind one audited
  boundary; a stray ``import multiprocessing`` elsewhere bypasses the
  sweep runner's determinism and cleanup guarantees.

The rules operate purely on the AST — no imports of the linted modules
— so a syntax-level violation is caught even in code that is never
executed by the test suite.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.report import Finding

__all__ = [
    "PRIVATE_BUFFER_ATTRS",
    "HOT_PATH_MODULES",
    "lint_source",
    "run_lint",
]

#: BlockArray internals nobody else may name
PRIVATE_BUFFER_ATTRS = frozenset({"_store", "_failed"})
#: modules allowed to touch them (the class lives there)
_PRIVATE_ALLOWED = frozenset({"raid/array.py"})

#: modules whose docstrings promise batched I/O — per-block loops banned
HOT_PATH_MODULES = frozenset(
    {"compiled/executor.py", "util/blocks.py", "migration/fast.py"}
)
_PER_BLOCK_CALLS = frozenset({"read", "write", "write_zero"})

_DEPRECATED_MODULE = "repro.migration.fast"
#: the shim itself, the package export keeping the public name alive,
#: and this package's own self-test fixtures
_DEPRECATED_ALLOWED = frozenset(
    {"migration/__init__.py", "migration/fast.py"}
)

#: process-management modules confined to the sweep package
_MP_MODULES = frozenset({"multiprocessing", "concurrent.futures"})
#: the one package allowed to spawn processes / map shared memory
_MP_ALLOWED_PREFIX = "sweep/"

#: rules evaluated per file (the per-file check count)
RULES = ("SC-L001", "SC-L002", "SC-L003", "SC-L004")


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str):
        self.rel = rel_path
        self.findings: list[Finding] = []

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                analyzer="lint",
                rule=rule,
                location=f"{self.rel}:{getattr(node, 'lineno', 0)}",
                message=message,
            )
        )

    # ------------------------------------------------------------ SC-L001
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in PRIVATE_BUFFER_ATTRS and self.rel not in _PRIVATE_ALLOWED:
            self._flag(
                "SC-L001",
                node,
                f"direct access to BlockArray private buffer `.{node.attr}` — "
                "use the counted/bulk I/O API (read/write/bulk_view/raw)",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------ SC-L002
    def visit_For(self, node: ast.For) -> None:
        if self.rel in HOT_PATH_MODULES and self._is_range_loop(node):
            call = self._per_block_io_call(node)
            if call is not None:
                self._flag(
                    "SC-L002",
                    node,
                    f"per-block `{call}` inside a range() loop in a hot-path "
                    "module — batch it through the bulk I/O API",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_range_loop(node: ast.For) -> bool:
        it = node.iter
        return (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        )

    @staticmethod
    def _per_block_io_call(node: ast.For) -> str | None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _PER_BLOCK_CALLS
            ):
                return f".{child.func.attr}()"
        return None

    # ------------------------------------------------- SC-L003 / SC-L004
    def _check_mp(self, node: ast.AST, module: str) -> None:
        top = module.split(".", 1)[0]
        if (
            (module in _MP_MODULES or top == "multiprocessing")
            and not self.rel.startswith(_MP_ALLOWED_PREFIX)
        ):
            self._flag(
                "SC-L004",
                node,
                f"import of `{module}` outside repro.sweep — process pools "
                "and shared memory go through the sweep runner "
                "(repro.sweep.run_sweep / repro.sweep.shm)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _DEPRECATED_MODULE and self.rel not in _DEPRECATED_ALLOWED:
                self._flag(
                    "SC-L003",
                    node,
                    "import of deprecated repro.migration.fast — "
                    "use BlockArray.bulk_view/credit_ios or the compiled engine",
                )
            self._check_mp(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self.rel not in _DEPRECATED_ALLOWED:
            if module == _DEPRECATED_MODULE or (
                module == "repro.migration"
                and any(alias.name == "fast" for alias in node.names)
            ):
                self._flag(
                    "SC-L003",
                    node,
                    "import of deprecated repro.migration.fast — "
                    "use BlockArray.bulk_view/credit_ios or the compiled engine",
                )
        self._check_mp(node, module)
        if module == "concurrent" and not self.rel.startswith(_MP_ALLOWED_PREFIX):
            # `from concurrent import futures` names the pool machinery too
            for alias in node.names:
                if alias.name == "futures":
                    self._check_mp(node, "concurrent.futures")
        self.generic_visit(node)


def lint_source(source: str, rel_path: str) -> list[Finding]:
    """Lint one module's source; ``rel_path`` is relative to ``repro/``."""
    tree = ast.parse(source, filename=rel_path)
    linter = _Linter(rel_path.replace("\\", "/"))
    linter.visit(tree)
    return linter.findings


def run_lint(package_root: Path | None = None) -> tuple[int, list[Finding]]:
    """Lint every module under ``repro`` (or ``package_root``)."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    findings: list[Finding] = []
    checks = 0
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if rel.startswith("staticcheck/"):
            # the analyzers name the forbidden symbols in their own rules
            continue
        checks += len(RULES)
        findings.extend(lint_source(path.read_text(), rel))
    return checks, findings
