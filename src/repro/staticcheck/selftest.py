"""Seeded-fault self-test: prove the checkers are not vacuously green.

A static checker that always says CLEAN is indistinguishable from one
that checks nothing.  This module plants known faults — one broken
parity equation per catalog code, and corrupted index vectors in a
compiled conversion program — and demands the prover/dataflow analyzer
flag every single one.  An undetected fault is itself a finding
(**SC-S001**), so a regression that blinds an analyzer turns the gate
red instead of silently weakening it.

The mutations are deliberately *minimal* (one dropped chain member, one
off-by-one block index): if the analyzers catch these, they catch
anything coarser.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import numpy as np

from repro.codes.geometry import CodeLayout, ParityChain
from repro.codes.registry import CODE_CATALOG, get_layout
from repro.staticcheck.report import Finding

__all__ = [
    "mutated_layouts",
    "mutated_programs",
    "crash_recovery_checks",
    "run_selftest",
]


def _drop_member(layout: CodeLayout) -> CodeLayout:
    """Remove one real member from the first chain that has any.

    The dropped term changes one parity equation; for a storage-optimal
    code this must break either two-erasure recoverability (SC-P001) or
    parity determinism (SC-P002).
    """
    virtual = layout.virtual_cells
    for i, chain in enumerate(layout.chains):
        real = [m for m in chain.members if m not in virtual]
        if not real:
            continue
        members = tuple(m for m in chain.members if m != real[0])
        chains = list(layout.chains)
        chains[i] = ParityChain(chain.parity, members, chain.kind)
        return CodeLayout(
            name=layout.name,
            p=layout.p,
            rows=layout.rows,
            cols=layout.cols,
            chains=chains,
            virtual_cols=layout.virtual_cols,
            extra_virtual_cells=layout.extra_virtual_cells,
        )
    raise AssertionError(f"{layout.name}: no chain with real members to mutate")


def mutated_layouts(p: int = 5) -> list[tuple[str, CodeLayout]]:
    """One broken-parity-equation variant of every catalog code."""
    return [
        (name, _drop_member(get_layout(name, p))) for name in sorted(CODE_CATALOG)
    ]


def _copy_program(program):
    """Deep-copy a CompiledPlan so mutations cannot leak anywhere."""
    phases = tuple(
        dataclasses.replace(
            ph,
            **{
                f.name: getattr(ph, f.name).copy()
                for f in dataclasses.fields(ph)
                if isinstance(getattr(ph, f.name), np.ndarray)
            },
        )
        for ph in program.phases
    )
    return replace(program, phases=phases)


def _first_phase_with(program, vector: str):
    for i, ph in enumerate(program.phases):
        if getattr(ph, vector).size:
            return i, ph
    raise AssertionError(f"program has no {vector} entries to mutate")


def mutated_programs() -> list[tuple[str, object, object]]:
    """(description, plan, corrupted program) triples.

    Built fresh with ``use_cache=False``: the compiler cache hands out
    shared ndarray-backed programs, and mutating a cached program would
    poison every later compile of the same plan.
    """
    from repro.compiled.compiler import compile_plan
    from repro.migration.approaches import build_plan

    cases: list[tuple[str, object, object]] = []

    plan = build_plan("code56", "direct", 5, groups=2)
    base = compile_plan(plan, use_cache=False)

    prog = _copy_program(base)
    _i, ph = _first_phase_with(prog, "parity_block")
    ph.parity_block[0] = (ph.parity_block[0] + 1) % plan.blocks_per_disk
    cases.append(("code56/direct: parity write retargeted one block off", plan, prog))

    prog = _copy_program(base)
    _i, ph = _first_phase_with(prog, "read_disk")
    ph.read_disk[0] = (ph.read_disk[0] + 1) % plan.n
    cases.append(("code56/direct: stripe read redirected to wrong disk", plan, prog))

    prog = _copy_program(base)
    _i, ph = _first_phase_with(prog, "read_block")
    ph.read_block[0] = plan.blocks_per_disk  # one past the end
    cases.append(("code56/direct: read index out of bounds", plan, prog))

    mplan = build_plan("rdp", "via-raid4", 5, groups=4)
    mbase = compile_plan(mplan, use_cache=False)
    prog = _copy_program(mbase)
    _i, ph = _first_phase_with(prog, "migrate_dst_block")
    ph.migrate_dst_block[0] = (ph.migrate_dst_block[0] + 1) % mplan.blocks_per_disk
    cases.append(("rdp/via-raid4: migration lands on the wrong block", mplan, prog))

    prog = _copy_program(mbase)
    _i, ph = _first_phase_with(prog, "migrate_src_disk")
    ph.migrate_src_disk[0] = (ph.migrate_src_disk[0] + 1) % mplan.n
    cases.append(("rdp/via-raid4: migration reads the wrong source disk", mplan, prog))

    return cases


def _replace_first_fused(program, fn):
    """Rebuild ``program`` with ``fn`` applied to its first FusedPhase.

    The fused IR is frozen dataclasses, so this never mutates shared
    state — every corrupted variant is a fresh object graph.
    """
    phases = []
    done = False
    for ph in program.phases:
        if ph.fused is not None and not done:
            ph = dataclasses.replace(ph, fused=fn(ph.fused))
            done = True
        phases.append(ph)
    if not done:
        raise AssertionError("program has no fused phase to corrupt")
    return replace(program, phases=tuple(phases))


def mutated_fused_programs() -> list[tuple[str, object, object]]:
    """(description, plan, program-with-corrupted-fused-IR) triples.

    Each variant is a lowering bug the fused executor would happily run
    — wrong bytes or wrong counters with no crash — so SC-D006 is the
    only line of defence and must catch every one.
    """
    from repro.compiled.compiler import compile_plan
    from repro.migration.approaches import build_plan

    # groups past the alignment cycle so stride terms exist
    plan = build_plan("code56", "direct", 5, groups=8)
    base = compile_plan(plan, use_cache=False)
    cases: list[tuple[str, object, object]] = []

    def shift(fz):
        ops = list(fz.ops)
        for i, op in enumerate(ops):
            for j, t in enumerate(op.terms):
                if t.kind == "stride":
                    terms = list(op.terms)
                    terms[j] = dataclasses.replace(t, start=t.start + 1)
                    ops[i] = dataclasses.replace(op, terms=tuple(terms))
                    return dataclasses.replace(fz, ops=tuple(ops))
        raise AssertionError("no stride term")

    cases.append(
        ("code56/direct: fused stride operand shifted one block", plan,
         _replace_first_fused(base, shift))
    )

    def drop(fz):
        ops = list(fz.ops)
        ops[0] = dataclasses.replace(ops[0], terms=ops[0].terms[1:])
        return dataclasses.replace(fz, ops=tuple(ops))

    cases.append(
        ("code56/direct: fused chain lost an XOR operand", plan,
         _replace_first_fused(base, drop))
    )

    def credit(fz):
        rc = fz.read_credit.copy()
        rc[0] += 1
        return dataclasses.replace(fz, read_credit=rc)

    cases.append(
        ("code56/direct: fused read credit drifts from counted I/O", plan,
         _replace_first_fused(base, credit))
    )
    return cases


def crash_recovery_checks() -> list[tuple[str, bool]]:
    """Plant stale checkpoints; demand detection plus re-execution.

    A committed journal unit whose bytes no longer match its digest, or
    an online watermark mark with no parity behind it, must be rolled
    back / unmarked and re-executed — never trusted.  Each drill returns
    ``(description, recovered)`` where ``recovered`` requires both the
    detection *and* byte-level reconvergence with an untampered run, so
    a recovery path that silently trusts (or silently diverges) fails.
    """
    from repro.faults import (
        ConversionJournal,
        FaultPlane,
        FaultScenario,
        OnlineJournal,
        execute_checkpointed,
    )
    from repro.migration.approaches import build_plan
    from repro.migration.engine import prepare_source_array
    from repro.migration.online import OnlineCode56Conversion

    checks: list[tuple[str, bool]] = []
    plan = build_plan("code56", "direct", 5, groups=2)

    for engine in ("audited", "compiled"):
        array, data = prepare_source_array(
            plan, np.random.default_rng(11), block_size=8
        )
        journal = ConversionJournal()
        execute_checkpointed(plan, array, data, journal, engine=engine)
        reference = array.snapshot()

        # control: with the journal intact, resume skips every unit
        rerun = execute_checkpointed(plan, array, data, journal, engine=engine)
        control = rerun.stale_detected == 0 and rerun.units_executed == 0

        # flip one byte a committed unit wrote; its digest is now a lie
        rec = next(r for r in journal.records.values() if r.state == "committed")
        payloads = array.gather_raw(rec.disks, rec.blocks)
        payloads[0, 0] ^= 0xFF
        array.restore_blocks(rec.disks, rec.blocks, payloads)
        resumed = execute_checkpointed(plan, array, data, journal, engine=engine)
        recovered = (
            control
            and resumed.stale_detected >= 1
            and resumed.rollbacks >= 1
            and bool(np.array_equal(array.snapshot(), reference))
        )
        checks.append(
            (f"{engine} engine: tampered committed checkpoint re-executed",
             recovered)
        )

    # online: a mark with no parity bytes behind it must be dropped
    array, _data = prepare_source_array(plan, np.random.default_rng(11), block_size=8)
    plane = FaultPlane(FaultScenario())
    plane.attach(array)
    journal = OnlineJournal(plan.groups, 4)
    journal.mark(0, 0)  # claims a diagonal parity that was never generated
    conv = OnlineCode56Conversion(array, 5, journal=journal)
    dropped = (
        not journal.is_marked(0, 0)
        and plane.counters["stale_checkpoints"] >= 1
    )
    conv.run([])
    plane.detach()
    checks.append(
        ("online: stale watermark mark dropped and parity regenerated",
         dropped and conv.verify())
    )
    return checks


def run_selftest() -> tuple[int, list[Finding]]:
    """Every seeded fault must be detected; each miss is an SC-S001."""
    from repro.staticcheck.dataflow import analyze_fused, analyze_program
    from repro.staticcheck.prover import prove_code

    findings: list[Finding] = []
    checks = 0

    for name, broken in mutated_layouts(p=5):
        checks += 1
        _c, caught = prove_code(name, 5, layout=broken)
        if not caught:
            findings.append(
                Finding(
                    analyzer="selftest",
                    rule="SC-S001",
                    location=f"{name}@p=5",
                    message=(
                        "prover missed a seeded fault: one member dropped from a "
                        "parity chain went undetected — the MDS proof is vacuous"
                    ),
                )
            )

    for description, plan, program in mutated_programs():
        checks += 1
        _c, caught = analyze_program(plan, program)
        if not caught:
            findings.append(
                Finding(
                    analyzer="selftest",
                    rule="SC-S001",
                    location=description,
                    message=(
                        "dataflow analyzer missed a seeded fault: a corrupted "
                        "compiled index program went undetected"
                    ),
                )
            )

    for description, plan, program in mutated_fused_programs():
        checks += 1
        _c, caught = analyze_fused(plan, program)
        if not caught:
            findings.append(
                Finding(
                    analyzer="selftest",
                    rule="SC-S001",
                    location=description,
                    message=(
                        "dataflow analyzer missed a seeded fault: a corrupted "
                        "fused region-op lowering went undetected (SC-D006 is "
                        "vacuous)"
                    ),
                )
            )

    for description, recovered in crash_recovery_checks():
        checks += 1
        if not recovered:
            findings.append(
                Finding(
                    analyzer="selftest",
                    rule="SC-S001",
                    location=description,
                    message=(
                        "recovery drill failed: a deliberately stale checkpoint "
                        "was trusted (or resume diverged) instead of being "
                        "detected and re-executed"
                    ),
                )
            )
    return checks, findings
