"""Findings and reports shared by every static analyzer.

A :class:`Finding` is one violated proof obligation or lint rule; a
:class:`CheckReport` aggregates the findings of a whole run together
with how many obligations were *discharged* (so "0 findings" can be told
apart from "0 checks ran" — a vacuously green checker is a bug, which is
what the seeded-fault self-test guards against).

Exit-code contract (enforced by ``python -m repro.staticcheck`` and the
``repro check`` CLI, and relied on by CI):

* ``0`` — every check ran and produced no findings;
* ``1`` — at least one finding;
* ``2`` — an analyzer failed internally (crash, unbuildable input).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Finding",
    "CheckReport",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


class Severity:
    """Severity levels (plain strings so reports stay JSON-trivial)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One violated obligation.

    ``analyzer`` is the producing subsystem (``prover`` / ``dataflow`` /
    ``lint`` / ``selftest``), ``rule`` a stable machine-readable id
    (``SC-P001`` ...), ``location`` whatever locates the problem —
    ``path:line`` for lint, ``code@p=7`` for the prover, a plan label for
    the dataflow analyzer.
    """

    analyzer: str
    rule: str
    location: str
    message: str
    severity: str = Severity.ERROR

    def to_dict(self) -> dict:
        return {
            "analyzer": self.analyzer,
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return f"[{self.rule}] {self.severity} {self.location}: {self.message}"


@dataclass
class CheckReport:
    """Aggregated outcome of one static-check run."""

    findings: list[Finding] = field(default_factory=list)
    #: proof obligations discharged / rules evaluated, per analyzer
    checks: dict[str, int] = field(default_factory=dict)
    #: analyzer name -> wall seconds
    durations: dict[str, float] = field(default_factory=dict)
    #: internal analyzer failures (tracebacks / messages); non-empty => exit 2
    internal_errors: list[str] = field(default_factory=list)

    # ------------------------------------------------------------ aggregation
    def add(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def count_checks(self, analyzer: str, n: int) -> None:
        self.checks[analyzer] = self.checks.get(analyzer, 0) + n

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.findings and not self.internal_errors

    @property
    def exit_code(self) -> int:
        if self.internal_errors:
            return EXIT_INTERNAL_ERROR
        if self.findings:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    # -------------------------------------------------------------- rendering
    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "exit_code": self.exit_code,
            "checks": dict(self.checks),
            "total_checks": self.total_checks,
            "durations_s": {k: round(v, 4) for k, v in self.durations.items()},
            "findings": [f.to_dict() for f in self.findings],
            "internal_errors": list(self.internal_errors),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.render())
        for err in self.internal_errors:
            lines.append(f"[internal-error] {err}")
        for analyzer in sorted(self.checks):
            dur = self.durations.get(analyzer)
            suffix = f" in {dur:.2f}s" if dur is not None else ""
            lines.append(
                f"{analyzer}: {self.checks[analyzer]} check(s){suffix}, "
                f"{sum(1 for f in self.findings if f.analyzer == analyzer)} finding(s)"
            )
        verdict = "CLEAN" if self.clean else ("INTERNAL ERROR" if self.internal_errors else "FINDINGS")
        lines.append(
            f"staticcheck: {verdict} — {self.total_checks} checks, "
            f"{len(self.findings)} finding(s), exit {self.exit_code}"
        )
        return "\n".join(lines)
