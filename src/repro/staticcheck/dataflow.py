"""Def/use dataflow analysis of conversion plans and compiled programs.

The audited engine executes group work strictly in ``(phase, group)``
order; the compiled executor batches whole phases.  Both are only
correct if the plan's reads and writes admit that schedule — which this
module verifies *statically*, from the plan alone, independently of the
compiler's own hazard pass (:func:`repro.compiled.compiler._check_hazards`
guards compilation; this analyzer is the checker that would catch a bug
in either the planners or that guard).

Obligations, per phase (phases are hard barriers — a phase-``k`` read of
a location written in phase ``k-1`` is always correctly sequenced):

* **SC-D001** write-once: no physical block is written twice in a phase
  (a second write would make the result depend on group scheduling);
* **SC-D002** read sequencing: every read observes either pre-phase
  state or the one write the engine order puts before it — migration
  sources must not be clobbered by earlier groups, stripe-assembly reads
  must not race later-group migrations/NULLs/trims or earlier-group
  parity writes, and reused-parity audit reads must see untouched blocks;
* **SC-D003** parity coverage: every physical parity cell of the target
  code is established (freshly written, migrated in, or NULL) or audited
  in place, and every chain a group encodes has all its real members
  available in controller memory;
* **SC-D004** address-map sanity: ``cell_locations`` is injective and in
  bounds — two stripe cells sharing a physical block can never verify;
* **SC-D005** program fidelity: the compiled index program performs
  exactly the plan's operation multiset (nothing dropped, duplicated,
  or retargeted) with every index in bounds and cell roles preserved;
* **SC-D006** fusion fidelity: each phase's fused region ops (the
  kernel-backend lowering) expand — term by term, ``ref`` chains
  resolved transitively — to exactly the multiset of physical source
  blocks that a symbolic replay of the unfused stripe-tensor path
  (assembly from the read/fill vectors, then the stock chain-walk
  encode) XORs into every parity/check output, with ``parity_src`` /
  ``check_src`` addressing the scratch rows the cell vectors name and
  ``read_credit`` equal to the classic path's counted read traffic.

Separately, :func:`check_online_lost_writes` drives the *online*
converter (Algorithm 2) through every (write-address, conversion-
progress) interleaving at a small size and verifies no write is lost
and no parity left stale — the lost-write-window check.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.codes.geometry import CodeLayout
from repro.migration.plan import ConversionPlan, GroupWork, Location
from repro.staticcheck.report import Finding

if TYPE_CHECKING:  # runtime imports stay lazy (analyzer convention)
    from repro.compiled.program import CompiledPlan

__all__ = [
    "analyze_plan",
    "analyze_program",
    "analyze_fused",
    "analyze_conversion",
    "check_online_lost_writes",
    "run_dataflow",
]

# write kinds in engine order within a group (mirrors the executor)
_MIGRATE, _NULL, _TRIM, _PARITY = range(4)
_KIND_NAME = {_MIGRATE: "migrate", _NULL: "null", _TRIM: "trim", _PARITY: "parity"}


def _label(plan: ConversionPlan) -> str:
    return f"{plan.code.name}/{plan.approach}@p={plan.p}"


def _flat(loc: Location, bpd: int) -> int:
    return loc.disk * bpd + loc.block


def _fill_cells(plan: ConversionPlan, gw: GroupWork) -> list[tuple[tuple[int, int], Location]]:
    """Data cells the engine pulls uncounted into the stripe buffer (step 5)."""
    layout = plan.code.layout
    touched = set(gw.parity_writes) | set(gw.null_writes) | gw.null_cells | set(gw.reads)
    out: list[tuple[tuple[int, int], Location]] = []
    for cell in layout.data_cells:
        if cell in touched or cell in gw.migrates:
            continue
        loc = plan.cell_locations.get((gw.group, cell))
        if loc is not None:
            out.append((cell, loc))
    return out


def _audit_cells(plan: ConversionPlan, gw: GroupWork) -> list[tuple[tuple[int, int], Location]]:
    """Reused parity cells the engine audits after encoding (step 7)."""
    layout = plan.code.layout
    out: list[tuple[tuple[int, int], Location]] = []
    for cell in layout.parity_cells:
        if cell in gw.parity_writes or cell in layout.virtual_cells:
            continue
        loc = plan.cell_locations.get((gw.group, cell))
        if loc is not None:
            out.append((cell, loc))
    return out


def analyze_plan(plan: ConversionPlan) -> tuple[int, list[Finding]]:
    """Discharge SC-D001..SC-D004 for one conversion plan."""
    layout = plan.code.layout
    bpd = plan.blocks_per_disk
    where = _label(plan)
    findings: list[Finding] = []
    checks = 0

    def flag(rule: str, message: str) -> None:
        findings.append(
            Finding(analyzer="dataflow", rule=rule, location=where, message=message)
        )

    # ---------------------------------------------- SC-D004: address map
    seen: dict[int, tuple[int, tuple[int, int]]] = {}
    for (g, cell), loc in plan.cell_locations.items():
        checks += 1
        if not (0 <= loc.disk < plan.n and 0 <= loc.block < bpd):
            flag(
                "SC-D004",
                f"cell {cell} of group {g} mapped out of bounds: "
                f"disk {loc.disk} block {loc.block} "
                f"(array is {plan.n} disks x {bpd} blocks)",
            )
            continue
        key = _flat(loc, bpd)
        if key in seen:
            og, ocell = seen[key]
            flag(
                "SC-D004",
                f"cells {ocell} (group {og}) and {cell} (group {g}) share "
                f"physical block disk {loc.disk} block {loc.block}",
            )
        else:
            seen[key] = (g, cell)

    # ------------------------------------------ per-phase def/use graph
    by_phase: dict[int, list[GroupWork]] = defaultdict(list)
    for gw in sorted(plan.group_works, key=lambda g: (g.phase, g.group)):
        by_phase[gw.phase].append(gw)

    for phase, gws in sorted(by_phase.items()):
        writes: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for gw in gws:
            for _src, dst, _rp, _wp in gw.migrates.values():
                writes[_flat(dst, bpd)].append((gw.group, _MIGRATE))
            for loc in gw.null_writes.values():
                writes[_flat(loc, bpd)].append((gw.group, _NULL))
            for loc in gw.trims:
                writes[_flat(loc, bpd)].append((gw.group, _TRIM))
            for loc in gw.parity_writes.values():
                writes[_flat(loc, bpd)].append((gw.group, _PARITY))

        # SC-D001: write-once per phase
        for key, entries in writes.items():
            checks += 1
            if len(entries) > 1:
                detail = ", ".join(
                    f"group {g} {_KIND_NAME[k]}" for g, k in entries
                )
                flag(
                    "SC-D001",
                    f"phase {phase}: disk {key // bpd} block {key % bpd} "
                    f"written {len(entries)} times ({detail})",
                )

        # SC-D002: every read is correctly sequenced under both schedules
        def read_hazard(key: int, g: int, mode: str) -> tuple[int, int] | None:
            for g_w, kind in writes.get(key, ()):
                if mode == "migration":
                    # engine: groups in order, migrates first within a
                    # group — any earlier write, or a same-group migrate
                    # (gather/scatter batching), clobbers the source
                    if g_w < g or (g_w == g and kind == _MIGRATE):
                        return g_w, kind
                elif mode == "stripe":
                    # stripe assembly reads happen after all earlier
                    # groups' work and before this group's parity write
                    if kind == _PARITY:
                        if g_w < g:
                            return g_w, kind
                    elif g_w > g:
                        return g_w, kind
                else:  # audit: must observe pre-phase content
                    return g_w, kind
            return None

        for gw in gws:
            for cell, (src, _dst, _rp, _wp) in gw.migrates.items():
                checks += 1
                hz = read_hazard(_flat(src, bpd), gw.group, "migration")
                if hz is not None:
                    flag(
                        "SC-D002",
                        f"phase {phase}: migration source of cell {cell} "
                        f"(group {gw.group}, disk {src.disk} block {src.block}) is "
                        f"overwritten by group {hz[0]} {_KIND_NAME[hz[1]]}",
                    )
            stripe_reads = list(gw.reads.items()) + _fill_cells(plan, gw)
            for cell, loc in stripe_reads:
                checks += 1
                hz = read_hazard(_flat(loc, bpd), gw.group, "stripe")
                if hz is not None:
                    flag(
                        "SC-D002",
                        f"phase {phase}: stripe read of cell {cell} "
                        f"(group {gw.group}, disk {loc.disk} block {loc.block}) races "
                        f"group {hz[0]} {_KIND_NAME[hz[1]]}",
                    )
            for cell, loc in _audit_cells(plan, gw):
                if not gw.parity_writes:
                    continue  # group encodes nothing; no audit happens
                checks += 1
                hz = read_hazard(_flat(loc, bpd), gw.group, "audit")
                if hz is not None:
                    flag(
                        "SC-D002",
                        f"phase {phase}: reused-parity audit of cell {cell} "
                        f"(group {gw.group}) reads disk {loc.disk} block {loc.block} "
                        f"which group {hz[0]} {_KIND_NAME[hz[1]]}-writes in the phase",
                    )

    # ---------------------------------- SC-D003: parity coverage per group
    gws_of_group: dict[int, list[GroupWork]] = defaultdict(list)
    for gw in plan.group_works:
        gws_of_group[gw.group].append(gw)

    real_parities = [
        cell for cell in layout.parity_cells if cell not in layout.virtual_cells
    ]
    for g, gws in sorted(gws_of_group.items()):
        audited = any(gw.parity_writes for gw in gws)
        for pc in real_parities:
            if (g, pc) not in plan.cell_locations:
                continue
            checks += 1
            established = any(
                pc in gw.parity_writes
                or pc in gw.migrates
                or pc in gw.null_writes
                or pc in gw.null_cells
                for gw in gws
            )
            if not established and not audited:
                flag(
                    "SC-D003",
                    f"parity cell {pc} of group {g} is never generated, migrated, "
                    "nulled, nor audited — its content is unconstrained",
                )
        # member availability for every chain the group encodes
        for gw in gws:
            if not gw.parity_writes:
                checks += 1
                if gw.reads:
                    flag(
                        "SC-D003",
                        f"group {gw.group} (phase {gw.phase}) plans {len(gw.reads)} "
                        "read(s) but encodes nothing — the engine never performs "
                        "them, so op accounting would diverge from execution",
                    )
                continue
            available = (
                set(gw.reads)
                | set(gw.migrates)
                | set(gw.null_writes)
                | gw.null_cells
                | layout.virtual_cells
                | layout.parity_cells  # computed in encode_order
            )
            for chain in layout.chains:
                if chain.parity in layout.virtual_cells:
                    continue
                for member in chain.members:
                    checks += 1
                    if member in available:
                        continue
                    if (gw.group, member) in plan.cell_locations:
                        continue  # engine step 5 fills it uncounted
                    flag(
                        "SC-D003",
                        f"group {gw.group} encodes parity {chain.parity} but member "
                        f"{member} is neither read, migrated, NULL, nor addressable",
                    )
    return checks, findings


def _index_multisets(
    plan: ConversionPlan, gws: list[GroupWork]
) -> dict[str, Counter[tuple[int, ...]]]:
    """The operation multisets one phase of the engine performs."""
    expect: dict[str, Counter[tuple[int, ...]]] = {
        k: Counter()
        for k in ("migrate", "null", "trim", "read", "fill", "parity", "check")
    }
    for gw in gws:
        for src, dst, _rp, _wp in gw.migrates.values():
            expect["migrate"][(src.disk, src.block, dst.disk, dst.block)] += 1
        for loc in gw.null_writes.values():
            expect["null"][(loc.disk, loc.block)] += 1
        for loc in gw.trims:
            expect["trim"][(loc.disk, loc.block)] += 1
        if gw.parity_writes:
            for _cell, loc in gw.reads.items():
                expect["read"][(loc.disk, loc.block)] += 1
            for _cell, loc in _fill_cells(plan, gw):
                expect["fill"][(loc.disk, loc.block)] += 1
            for _cell, loc in gw.parity_writes.items():
                expect["parity"][(loc.disk, loc.block)] += 1
            for _cell, loc in _audit_cells(plan, gw):
                expect["check"][(loc.disk, loc.block)] += 1
    return expect


def analyze_program(
    plan: ConversionPlan, program: CompiledPlan
) -> tuple[int, list[Finding]]:
    """SC-D005: the compiled program is the plan, exactly.

    Cross-validates every index vector of every :class:`PhaseProgram`
    against the operation multisets derived from the plan, checks all
    indices stay in bounds, and checks scatter/gather cell slots land on
    cells of the right kind.
    """
    layout: CodeLayout = plan.code.layout
    rows, cols = layout.rows, layout.cols
    bpd = plan.blocks_per_disk
    where = _label(plan)
    findings: list[Finding] = []
    checks = 0

    def flag(message: str) -> None:
        findings.append(
            Finding(analyzer="dataflow", rule="SC-D005", location=where, message=message)
        )

    checks += 1
    if program.n_disks != plan.n or program.blocks_per_disk != bpd:
        flag(
            f"program geometry ({program.n_disks} disks x {program.blocks_per_disk}) "
            f"differs from plan ({plan.n} x {bpd})"
        )
        return checks, findings

    by_phase: dict[int, list[GroupWork]] = defaultdict(list)
    for gw in sorted(plan.group_works, key=lambda g: (g.phase, g.group)):
        by_phase[gw.phase].append(gw)

    checks += 1
    if tuple(ph.phase for ph in program.phases) != tuple(sorted(by_phase)):
        flag(
            f"program phases {[ph.phase for ph in program.phases]} != "
            f"plan phases {sorted(by_phase)}"
        )
        return checks, findings

    vectors = {
        "migrate": ("migrate_src_disk", "migrate_src_block", "migrate_dst_disk", "migrate_dst_block"),
        "null": ("null_disk", "null_block"),
        "trim": ("trim_disk", "trim_block"),
        "read": ("read_disk", "read_block"),
        "fill": ("fill_disk", "fill_block"),
        "parity": ("parity_disk", "parity_block"),
        "check": ("check_disk", "check_block"),
    }
    cell_vectors = {
        "read": ("read_cell", "read_disk"),
        "fill": ("fill_cell", "fill_disk"),
        "parity": ("parity_cell", "parity_disk"),
        "check": ("check_cell", "check_disk"),
    }

    for ph in program.phases:
        gws = by_phase[ph.phase]
        expect = _index_multisets(plan, gws)
        encode_groups = sum(1 for gw in gws if gw.parity_writes)
        checks += 1
        if ph.batch != encode_groups:
            flag(
                f"phase {ph.phase}: batch={ph.batch} but the plan encodes "
                f"{encode_groups} group(s)"
            )
        for op, names in vectors.items():
            arrays = [getattr(ph, name) for name in names]
            checks += 1
            got: Counter[tuple[int, ...]] = (
                Counter(zip(*(a.tolist() for a in arrays)))
                if arrays[0].size
                else Counter()
            )
            if got != expect[op]:
                missing = expect[op] - got
                extra = got - expect[op]
                flag(
                    f"phase {ph.phase}: {op} ops diverge from the plan "
                    f"(missing {sorted(missing.elements())[:4]}, "
                    f"extra {sorted(extra.elements())[:4]})"
                )
            # bounds: disks and blocks address the physical array
            for name, arr in zip(names, arrays):
                checks += 1
                if arr.size == 0:
                    continue
                limit = plan.n if name.endswith("disk") else bpd
                if int(arr.min()) < 0 or int(arr.max()) >= limit:
                    flag(
                        f"phase {ph.phase}: {name} index out of bounds "
                        f"[{int(arr.min())}, {int(arr.max())}] vs limit {limit}"
                    )

        stripe_cells = rows * cols
        for op, (cell_name, _disk_name) in cell_vectors.items():
            cells = getattr(ph, cell_name)
            checks += 1
            if cells.size == 0:
                continue
            if int(cells.min()) < 0 or int(cells.max()) >= ph.batch * stripe_cells:
                flag(
                    f"phase {ph.phase}: {cell_name} outside the "
                    f"{ph.batch}-stripe buffer"
                )
                continue
            rc = np.stack(
                [(cells % stripe_cells) // cols, (cells % stripe_cells) % cols], axis=1
            )
            for r, c in map(tuple, rc.tolist()):
                cell = (int(r), int(c))
                ok = (
                    cell in layout.parity_cells
                    if op in ("parity", "check")
                    else cell not in layout.virtual_cells
                )
                if not ok:
                    flag(
                        f"phase {ph.phase}: {cell_name} targets {cell}, which is "
                        + ("not a parity cell" if op in ("parity", "check") else "virtual")
                    )
                    break
    return checks, findings


def analyze_fused(
    plan: ConversionPlan, program: CompiledPlan
) -> tuple[int, list[Finding]]:
    """SC-D006: the fused region ops *are* the stripe-tensor encode.

    The lowering pass (:func:`repro.compiled.compiler.lower_program`)
    replays the encode symbolically to build each phase's
    :class:`~repro.compiled.program.FusedPhase`.  This checker validates
    that IR independently: it expands every region op back to per-slot
    multisets of flat physical block ids (``stride`` / ``const`` /
    ``gather`` terms from their address arithmetic, ``sparse`` rows from
    their scatter lists, ``ref`` terms by substituting the referenced
    chain's own expansion) and compares them against the multisets a
    symbolic replay of the *unfused* program produces — stripe assembly
    from the read/fill index vectors, then the stock chain-walk encode
    over ``layout.encode_order``.  A lowering bug that drops, duplicates
    or retargets even one block of one slot breaks multiset equality.

    Also discharged per fused phase: ``parity_src`` / ``check_src``
    address exactly the (chain, slot) scratch rows the program's cell
    vectors name, every expanded block id is in bounds, ``ref`` terms
    only point at already-computed chains, and ``read_credit`` equals
    ``bincount(read_disk)`` — the counted traffic the classic path
    would have performed.
    """
    layout: CodeLayout = plan.code.layout
    rows, cols = layout.rows, layout.cols
    cps = rows * cols
    bpd = plan.blocks_per_disk
    n_blocks = plan.n * bpd
    where = _label(plan)
    findings: list[Finding] = []
    checks = 0

    def flag(message: str) -> None:
        findings.append(
            Finding(analyzer="dataflow", rule="SC-D006", location=where, message=message)
        )

    for ph in program.phases:
        fz = ph.fused
        if fz is None:
            continue  # not lowered: the executor runs the tensor path
        checks += 1
        if fz.batch != ph.batch:
            flag(f"phase {ph.phase}: fused batch {fz.batch} != program batch {ph.batch}")
            continue
        batch = ph.batch

        # ---- reference: symbolic stripe assembly + chain-walk encode
        src: dict[tuple[int, int], int] = {}  # (slot, template cell) -> block id
        for cell_v, disk_v, block_v in (
            (ph.read_cell, ph.read_disk, ph.read_block),
            (ph.fill_cell, ph.fill_disk, ph.fill_block),
        ):
            for cell, d, b in zip(cell_v.tolist(), disk_v.tolist(), block_v.tolist()):
                src[(cell // cps, cell % cps)] = d * bpd + b
        ref_exp: dict[tuple[int, tuple[int, int]], Counter[int]] = {}
        for chain in layout.encode_order:
            if chain.parity in layout.virtual_cells:
                continue
            for slot in range(batch):
                acc: Counter[int] = Counter()
                for m in chain.members:
                    if m in layout.virtual_cells:
                        continue
                    if m in layout.parity_cells:
                        acc.update(ref_exp[(slot, m)])
                    else:
                        blk = src.get((slot, m[0] * cols + m[1]))
                        if blk is not None:
                            acc[blk] += 1
                ref_exp[(slot, chain.parity)] = acc

        # ---- independent expansion of the fused region ops
        fz_exp: dict[tuple[int, int], Counter[int]] = {}  # (slot, chain_index) -> Counter
        parity_of: dict[int, tuple[int, int]] = {}
        for op in fz.ops:
            checks += 1
            if op.chain_index in parity_of:
                flag(f"phase {ph.phase}: chain index {op.chain_index} appears twice")
                continue
            parity_of[op.chain_index] = op.parity
            broken = False
            for slot in range(batch):
                acc = Counter()
                for t in op.terms:
                    if t.kind == "stride":
                        acc[t.start + slot * t.step] += 1
                    elif t.kind == "const":
                        acc[t.start] += 1
                    elif t.kind == "gather":
                        acc[int(t.indices[slot])] += 1
                    elif t.kind == "ref":
                        prev = fz_exp.get((slot, t.ref))
                        if prev is None:
                            flag(
                                f"phase {ph.phase}: chain {op.chain_index} references "
                                f"chain {t.ref}, which is not computed before it"
                            )
                            broken = True
                            break
                        acc.update(prev)
                    else:
                        flag(f"phase {ph.phase}: unknown term kind {t.kind!r}")
                        broken = True
                        break
                if broken:
                    break
                for sp in op.sparse:
                    for j in np.flatnonzero(sp.rows == slot):
                        acc[int(sp.indices[j])] += 1
                bad = [b for b in acc if not 0 <= b < n_blocks]
                if bad:
                    flag(
                        f"phase {ph.phase}: chain {op.chain_index} slot {slot} "
                        f"sources out-of-bounds block id(s) {sorted(bad)[:4]}"
                    )
                    broken = True
                    break
                fz_exp[(slot, op.chain_index)] = acc
            if broken:
                parity_of.pop(op.chain_index, None)

        # ---- outputs: scratch-row mapping + multiset equality
        for name, cell_v, src_rows in (
            ("parity", ph.parity_cell, fz.parity_src),
            ("check", ph.check_cell, fz.check_src),
        ):
            checks += 1
            if src_rows.shape[0] != cell_v.shape[0]:
                flag(
                    f"phase {ph.phase}: {name}_src has {src_rows.shape[0]} rows "
                    f"for {cell_v.shape[0]} {name} cells"
                )
                continue
            for i in range(cell_v.size):
                checks += 1
                slot, tmpl = divmod(int(cell_v[i]), cps)
                cell = (tmpl // cols, tmpl % cols)
                ci, row_slot = divmod(int(src_rows[i]), batch)
                if row_slot != slot or parity_of.get(ci) != cell:
                    flag(
                        f"phase {ph.phase}: {name}_src[{i}] addresses chain "
                        f"{parity_of.get(ci)} slot {row_slot}, but the program's "
                        f"{name} cell is {cell} slot {slot}"
                    )
                    continue
                got = fz_exp.get((slot, ci))
                want = ref_exp.get((slot, cell))
                if got != want:
                    missing = (want or Counter()) - (got or Counter())
                    extra = (got or Counter()) - (want or Counter())
                    flag(
                        f"phase {ph.phase}: fused {name} {cell} slot {slot} XORs "
                        f"the wrong blocks (missing {sorted(missing.elements())[:4]}, "
                        f"extra {sorted(extra.elements())[:4]})"
                    )

        # ---- counter fidelity of the bypassed read path
        checks += 1
        expect_credit = np.bincount(ph.read_disk, minlength=plan.n)
        if fz.read_credit.shape != expect_credit.shape or not np.array_equal(
            fz.read_credit, expect_credit
        ):
            flag(
                f"phase {ph.phase}: read_credit {fz.read_credit.tolist()} != "
                f"counted stripe reads {expect_credit.tolist()} — fused I/O "
                "accounting would drift from the audited engine"
            )
    return checks, findings


def analyze_conversion(
    code_name: str, approach: str, p: int, groups: int | None = None
) -> tuple[int, list[Finding]]:
    """Build the (code, approach, p) plan + program and analyze all three
    layers: the plan (SC-D001..4), the index program (SC-D005), and the
    fused region-op lowering (SC-D006)."""
    from repro.compiled.compiler import compile_plan
    from repro.migration.approaches import alignment_cycle, build_plan

    if groups is None:
        groups = alignment_cycle(code_name, p, None)
    plan = build_plan(code_name, approach, p, groups=groups)
    program = compile_plan(plan)
    checks, findings = analyze_plan(plan)
    c2, f2 = analyze_program(plan, program)
    c3, f3 = analyze_fused(plan, program)
    return checks + c2 + c3, findings + f2 + f3


def check_online_lost_writes(
    p: int = 5, groups: int = 2, block_size: int = 4
) -> tuple[int, list[Finding]]:
    """Exhaustive lost-write-window check on the online converter.

    For every logical block address and every conversion-progress
    boundary (the write arrives after exactly ``k`` diagonal parities
    are generated, ``k = 1 .. total``), run Algorithm 2 with that single
    interleaving and verify (a) the final array is a consistent Code 5-6
    (no stale parity escaped the generated-bitmap gate) and (b) every
    logical block reads back as written (no lost write).  The sweep
    covers writes to converted and unconverted regions, both sides of
    each diagonal-parity boundary, and every (row, disk) geometry class.
    """
    from repro.raid.array import BlockArray
    from repro.raid.raid5 import Raid5Array
    from repro.migration.online import OnlineCode56Conversion, OnlineRequest
    from repro.raid.layouts import Raid5Layout

    m = p - 1
    rows = p - 1
    total = groups * rows
    per_parity = p - 1  # (p-2) chain reads + 1 parity write
    where = f"online-code56@p={p},groups={groups}"
    findings: list[Finding] = []
    checks = 0

    base = np.arange(groups * rows * (m - 1) * block_size, dtype=np.uint8)
    data = (base.reshape(-1, block_size) * 3 + 1).astype(np.uint8)
    capacity = data.shape[0]
    payload = np.full(block_size, 0xA5, dtype=np.uint8)

    for lba in range(capacity):
        for k in range(1, total + 1):
            checks += 1
            array = BlockArray(m, groups * rows, block_size=block_size)
            r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
            r5.format_with(data.copy())
            array.add_disk()
            conv = OnlineCode56Conversion(array, p)
            req = OnlineRequest(
                time=float(k * per_parity), lba=lba, is_write=True, payload=payload
            )
            conv.run([req])
            stale = not conv.verify()
            readback = Raid5Array(
                array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=m
            )
            lost = [
                other
                for other in range(capacity)
                if not np.array_equal(
                    readback.read(other),
                    payload if other == lba else data[other],
                )
            ]
            if stale or lost:
                what = []
                if stale:
                    what.append("a parity is stale (lost update window)")
                if lost:
                    what.append(f"block(s) {lost[:4]} corrupted")
                findings.append(
                    Finding(
                        analyzer="dataflow",
                        rule="SC-D010",
                        location=where,
                        message=(
                            f"write to lba {lba} interleaved after {k} generated "
                            f"parities: " + "; ".join(what)
                        ),
                    )
                )
    return checks, findings


def run_dataflow(primes: tuple[int, ...] = (5, 7)) -> tuple[int, list[Finding]]:
    """All 11 (code, approach) pairs at each prime, plus the online check."""
    from repro.migration.approaches import supported_conversions

    checks = 0
    findings: list[Finding] = []
    for code_name, approach in supported_conversions():
        for p in primes:
            c, f = analyze_conversion(code_name, approach, p)
            checks += c
            findings.extend(f)
    c, f = check_online_lost_writes()
    checks += c
    findings.extend(f)
    return checks, findings
