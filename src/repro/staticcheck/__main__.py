"""``python -m repro.staticcheck`` — run every static analyzer."""

import sys

from repro.staticcheck.runner import main

if __name__ == "__main__":
    sys.exit(main())
