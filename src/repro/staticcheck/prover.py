"""Symbolic GF(2) prover for the paper's two structural claims.

Everything here reasons about *equations*, never payload bytes.  A code
layout is lowered to its parity-check matrix H over GF(2): one row per
parity chain (``parity XOR members = 0``), one column per physical cell.
Columns are bit-packed ints (:class:`repro.util.gf2.Gf2Basis`), so rank
queries are word-XOR cheap and a full prime sweep 5..31 stays well under
the CI budget.

Claim 1 — MDS (:func:`prove_mds`).  An erasure pattern E is recoverable
iff the columns of H indexed by E are linearly independent *and* the
null space of H is exactly the code.  The latter is the "parity
determinism" obligation rank(H) = #parity cells: it forces every parity
cell to be a function of the data cells, so dim(null H) = #data cells
and the code *is* the null space.  Given that, checking independence of
every column pair of H proves any two lost disks are recoverable — the
MDS property for a RAID-6 code at optimal redundancy.

Claim 2 — Code 5-6 / RAID-5 identity (:func:`prove_code56_identity`).
The horizontal-parity equations of (possibly shortened) Code 5-6 are
*syntactically* the rotating-parity equations of the source RAID-5 from
:mod:`repro.raid.layouts`: same parity block address, same member block
addresses, for every stripe.  Hence conversion invalidates zero parities
and moves zero data blocks — which we also check directly on the
``direct`` conversion plan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.codes.geometry import CellKind, ChainKind, CodeLayout
from repro.codes.registry import CODE_CATALOG, get_layout
from repro.raid.layouts import locate_block, parity_disk
from repro.staticcheck.report import Finding
from repro.util.gf2 import Gf2Basis

__all__ = [
    "DEFAULT_PRIMES",
    "TOLERANCE",
    "MdsProof",
    "equation_columns",
    "prove_mds",
    "prove_code",
    "prove_code56_identity",
    "run_prover",
]

#: every prime in the acceptance sweep 5 <= p <= 31
DEFAULT_PRIMES: tuple[int, ...] = (5, 7, 11, 13, 17, 19, 23, 29, 31)

#: erasure tolerance each catalog code claims (RAID-6 = 2; STAR = 3)
TOLERANCE: dict[str, int] = {"star": 3}


def _tolerance(name: str) -> int:
    return TOLERANCE.get(name, 2)


def equation_columns(layout: CodeLayout) -> dict[tuple[int, int], int]:
    """Columns of the parity-check matrix H, bit-packed per physical cell.

    Bit ``i`` of ``columns[cell]`` is 1 iff chain ``i`` involves ``cell``
    (as parity or member).  Virtual cells are identically zero, so they
    are no columns at all: a chain touching them simply loses those
    terms, which is exactly the shortening semantics.
    """
    virtual = layout.virtual_cells
    columns: dict[tuple[int, int], int] = {
        (r, c): 0
        for c in layout.physical_cols
        for r in range(layout.rows)
        if (r, c) not in virtual
    }
    for i, chain in enumerate(layout.chains):
        bit = 1 << i
        for cell in (chain.parity, *chain.members):
            if cell not in virtual:
                columns[cell] |= bit
    return columns


@dataclass(frozen=True)
class MdsProof:
    """Outcome of one symbolic MDS proof attempt."""

    name: str
    p: int
    n_disks: int
    tolerance: int
    #: erasure patterns checked (all column combinations of that size)
    patterns_checked: int
    #: column sets whose erasure is NOT recoverable
    failed_patterns: tuple[tuple[int, ...], ...]
    #: rank of the full parity-check matrix
    rank: int
    #: physical (non-virtual) parity cells — must equal ``rank``
    real_parities: int
    num_data: int

    @property
    def deterministic(self) -> bool:
        """True iff every parity is a function of the data cells."""
        return self.rank == self.real_parities

    @property
    def proven(self) -> bool:
        return self.deterministic and not self.failed_patterns


def prove_mds(layout: CodeLayout, tolerance: int = 2) -> MdsProof:
    """Statically prove ``layout`` recovers any ``tolerance`` lost disks."""
    columns = equation_columns(layout)
    by_col: dict[int, list[int]] = {c: [] for c in layout.physical_cols}
    for (r, c), vec in columns.items():
        by_col[c].append(vec)

    full = Gf2Basis()
    for vec in columns.values():
        full.add(vec)

    failed: list[tuple[int, ...]] = []
    patterns = 0
    for combo in itertools.combinations(layout.physical_cols, tolerance):
        patterns += 1
        basis = Gf2Basis()
        if not all(basis.add(vec) for c in combo for vec in by_col[c]):
            failed.append(combo)

    real_parities = sum(
        1 for cell in layout.parity_cells if cell not in layout.virtual_cells
    )
    return MdsProof(
        name=layout.name,
        p=layout.p,
        n_disks=layout.n_disks,
        tolerance=tolerance,
        patterns_checked=patterns,
        failed_patterns=tuple(failed),
        rank=full.rank,
        real_parities=real_parities,
        num_data=layout.num_data,
    )


def prove_code(name: str, p: int, layout: CodeLayout | None = None) -> tuple[int, list[Finding]]:
    """Run every prover obligation for one code at one prime.

    Returns ``(checks_discharged, findings)``.  ``layout`` overrides the
    registry build (the seeded-fault self-test proves *mutated* layouts).
    """
    if layout is None:
        layout = get_layout(name, p)
    tol = _tolerance(name)
    where = f"{name}@p={p}"
    findings: list[Finding] = []

    # proving at the declared tolerance subsumes the pair check: every
    # column pair extends to some larger pattern, and subsets of
    # independent column sets are independent
    proof = prove_mds(layout, tolerance=tol)
    checks = proof.patterns_checked
    for combo in proof.failed_patterns:
        findings.append(
            Finding(
                analyzer="prover",
                rule="SC-P001",
                location=where,
                message=(
                    f"erasure of columns {combo} is not recoverable: "
                    "parity-check columns are linearly dependent"
                ),
            )
        )

    checks += 1
    if not proof.deterministic:
        findings.append(
            Finding(
                analyzer="prover",
                rule="SC-P002",
                location=where,
                message=(
                    f"parity equations are not deterministic: rank(H)={proof.rank} "
                    f"but {proof.real_parities} physical parity cells — the code is "
                    "not the null space of its parity-check matrix"
                ),
            )
        )

    # Storage optimality: a full (unshortened) t-tolerant stripe over n
    # disks must carry exactly (n - t) disks' worth of data.
    if not layout.virtual_cells:
        checks += 1
        optimal = (layout.n_disks - tol) * layout.rows
        if proof.num_data != optimal:
            findings.append(
                Finding(
                    analyzer="prover",
                    rule="SC-P003",
                    location=where,
                    message=(
                        f"stripe stores {proof.num_data} data cells, "
                        f"storage-optimal is {optimal} "
                        f"({layout.n_disks} disks x {layout.rows} rows, tolerance {tol})"
                    ),
                )
            )
    return checks, findings


def prove_code56_identity(
    p: int, orientation: str = "left", n_disks: int | None = None, groups: int = 2
) -> tuple[int, list[Finding]]:
    """Prove Code 5-6's horizontal parities == the source RAID-5's parities.

    Builds the actual ``direct`` conversion plan (so the obligation is
    discharged against the shipped planner, not a reimplementation) and
    checks, per stripe: the horizontal parity chain's parity cell sits at
    the RAID-5 rotating-parity block of that stripe, and its real members
    are exactly the stripe's data blocks.  Then checks the plan moves
    nothing: no migrations, no parity invalidation, and every logical
    block's new address equals its old RAID-5 address.
    """
    from repro.migration.approaches import build_plan

    code_name = "code56" if orientation == "left" else "code56-right"
    plan = build_plan(code_name, "direct", p, groups=groups, n_disks=n_disks)
    layout = plan.code.layout
    m = plan.m
    where = f"{code_name}@p={p},m={m}"
    findings: list[Finding] = []
    checks = 0

    def flag(rule: str, message: str) -> None:
        findings.append(
            Finding(analyzer="prover", rule=rule, location=where, message=message)
        )

    horizontal = [
        ch
        for ch in layout.chains
        if ch.kind is ChainKind.HORIZONTAL and ch.parity not in layout.virtual_cells
    ]
    if len(horizontal) != m:
        flag(
            "SC-P010",
            f"{len(horizontal)} physical horizontal parities for {m} source stripes/group",
        )
    for g in range(plan.groups):
        for ch in horizontal:
            row = ch.parity[0]
            stripe = g * m + row
            pd = parity_disk(plan.source_layout, stripe, m)
            checks += 1
            got = plan.cell_locations[(g, ch.parity)]
            if (got.disk, got.block) != (pd, stripe):
                flag(
                    "SC-P010",
                    f"horizontal parity of row {row} (group {g}) lives at "
                    f"disk {got.disk} block {got.block}, but the RAID-5 "
                    f"{plan.source_layout.value} parity of stripe {stripe} "
                    f"is disk {pd} block {stripe}",
                )
            checks += 1
            members = {
                plan.cell_locations[(g, mc)]
                for mc in ch.members
                if mc not in layout.virtual_cells
            }
            # the stripe's data blocks: every non-parity disk, same stripe
            expected = {(d, stripe) for d in range(m) if d != pd}
            if {(loc.disk, loc.block) for loc in members} != expected:
                flag(
                    "SC-P010",
                    f"horizontal chain of row {row} (group {g}) XORs "
                    f"{sorted((loc.disk, loc.block) for loc in members)}, "
                    f"but RAID-5 stripe {stripe} parity covers {sorted(expected)}",
                )

    # zero movement / zero invalidation, straight off the plan
    for gw in plan.group_works:
        checks += 1
        if gw.migrates or gw.null_writes or gw.trims:
            flag(
                "SC-P011",
                f"group {gw.group} moves data (migrates={len(gw.migrates)}, "
                f"null_writes={len(gw.null_writes)}, trims={len(gw.trims)})",
            )
        checks += 1
        if gw.invalid_parities or gw.migrated_parities:
            flag(
                "SC-P011",
                f"group {gw.group} invalidates {gw.invalid_parities} and migrates "
                f"{gw.migrated_parities} parities; the identity claim demands zero",
            )
        for cell in gw.parity_writes:
            checks += 1
            if layout.kind(cell) is not CellKind.DIAGONAL:
                flag(
                    "SC-P011",
                    f"group {gw.group} writes non-diagonal parity cell {cell}: "
                    "only the new diagonal column may be written",
                )

    for lba, (g, cell) in plan.data_locations.items():
        checks += 1
        stripe, disk = locate_block(plan.source_layout, lba, m)
        got = plan.cell_locations[(g, cell)]
        if (got.disk, got.block) != (disk, stripe):
            flag(
                "SC-P011",
                f"lba {lba} maps to disk {got.disk} block {got.block} after "
                f"conversion but lived at disk {disk} block {stripe} before: "
                "direct conversion must not move data",
            )
    return checks, findings


def run_prover(
    primes: tuple[int, ...] = DEFAULT_PRIMES,
    codes: tuple[str, ...] | None = None,
) -> tuple[int, list[Finding]]:
    """Full sweep: MDS for every catalog code x prime, plus the identity.

    The identity is proven for both orientations and every shortened
    width 3 <= m <= p-1 (the full range the planner accepts).
    """
    names = tuple(codes) if codes is not None else tuple(CODE_CATALOG)
    checks = 0
    findings: list[Finding] = []
    for name in names:
        for p in primes:
            c, f = prove_code(name, p)
            checks += c
            findings.extend(f)
    if codes is None or "code56" in names or "code56-right" in names:
        for p in primes:
            for orientation in ("left", "right"):
                if codes is not None:
                    wanted = "code56" if orientation == "left" else "code56-right"
                    if wanted not in names:
                        continue
                for m in range(3, p):
                    c, f = prove_code56_identity(p, orientation, n_disks=m + 1)
                    checks += c
                    findings.extend(f)
    return checks, findings
