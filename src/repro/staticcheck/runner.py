"""Front-end: run the analyzers, aggregate a report, set the exit code.

``python -m repro.staticcheck`` and ``repro check`` both land here.  An
analyzer that *crashes* is an internal error (exit 2) — distinct from
findings (exit 1) — so CI can tell "the code is wrong" apart from "the
checker is wrong".
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from collections.abc import Callable

from repro.staticcheck.report import Finding, CheckReport

__all__ = ["ANALYZERS", "DEFAULT_ANALYZERS", "run_checks", "main"]

#: quick sweep (CI smoke / tests); the full sweep covers 5..31
QUICK_PRIMES: tuple[int, ...] = (5, 7)


def _run_prover(primes: tuple[int, ...]) -> tuple[int, list[Finding]]:
    from repro.staticcheck.prover import run_prover

    return run_prover(primes=primes)


def _run_dataflow(primes: tuple[int, ...]) -> tuple[int, list[Finding]]:
    from repro.staticcheck.dataflow import run_dataflow

    # plan analysis scales with group count; two primes cover every
    # planner branch (virtual disks appear whenever n is held at the
    # smaller canonical width)
    return run_dataflow(primes=tuple(p for p in primes if p <= 7) or (5,))


def _run_lint(primes: tuple[int, ...]) -> tuple[int, list[Finding]]:
    from repro.staticcheck.lint import run_lint

    return run_lint()


def _run_selftest(primes: tuple[int, ...]) -> tuple[int, list[Finding]]:
    from repro.staticcheck.selftest import run_selftest

    return run_selftest()


def _run_concur(primes: tuple[int, ...]) -> tuple[int, list[Finding]]:
    from repro.staticcheck.concur import run_concur

    # the interleaving model is exhaustive at p=5 and sampled at p=7;
    # larger primes add states, not protocol branches
    return run_concur(primes=tuple(p for p in primes if p <= 7) or (5, 7))


ANALYZERS: dict[str, Callable[[tuple[int, ...]], tuple[int, list[Finding]]]] = {
    "prover": _run_prover,
    "dataflow": _run_dataflow,
    "lint": _run_lint,
    "selftest": _run_selftest,
    "concur": _run_concur,
}

#: what runs when no analyzer is named — the concurrency plane explores
#: tens of thousands of interleavings, so it is opt-in (``--concur`` /
#: ``--analyzer concur``); CI gives it a dedicated job
DEFAULT_ANALYZERS: tuple[str, ...] = ("prover", "dataflow", "lint", "selftest")


def run_checks(
    primes: tuple[int, ...] | None = None,
    analyzers: tuple[str, ...] | None = None,
    registry=None,
) -> CheckReport:
    """Run ``analyzers`` (default: all) and aggregate a report.

    ``primes`` bounds the prover sweep (default: every prime 5..31).
    Findings and check counts are mirrored into the ``repro.obs``
    metrics registry (``registry`` overrides the global one).
    """
    from repro.staticcheck.prover import DEFAULT_PRIMES

    primes = tuple(primes) if primes else DEFAULT_PRIMES
    selected = tuple(analyzers) if analyzers else DEFAULT_ANALYZERS
    report = CheckReport()
    for name in selected:
        runner = ANALYZERS.get(name)
        if runner is None:
            raise KeyError(f"unknown analyzer {name!r}; known: {sorted(ANALYZERS)}")
        start = time.perf_counter()
        try:
            checks, findings = runner(primes)
        except Exception:
            report.internal_errors.append(f"{name}: {traceback.format_exc()}")
        else:
            report.count_checks(name, checks)
            report.add(findings)
        report.durations[name] = time.perf_counter() - start

    from repro.obs import record_staticcheck

    record_staticcheck(report, registry=registry)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Static verification: GF(2) code prover, plan/program "
        "dataflow analyzer, AST lint, seeded-fault self-test.",
    )
    parser.add_argument(
        "--analyzer",
        action="append",
        choices=sorted(ANALYZERS),
        help="run only this analyzer (repeatable; default: all)",
    )
    parser.add_argument(
        "--primes",
        type=int,
        nargs="+",
        metavar="P",
        help="prover prime sweep (default: every prime 5..31)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"shorthand for --primes {' '.join(map(str, QUICK_PRIMES))}",
    )
    parser.add_argument(
        "--concur",
        action="store_true",
        help="also run the concurrency plane (interleaving model checker, "
        "race detector, sanitizer smoke, seeded-defect selftest)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    args = parser.parse_args(argv)

    primes = tuple(args.primes) if args.primes else (QUICK_PRIMES if args.quick else None)
    selected = tuple(args.analyzer) if args.analyzer else None
    if args.concur and "concur" not in (selected or ()):
        selected = (selected or DEFAULT_ANALYZERS) + ("concur",)
    try:
        report = run_checks(primes=primes, analyzers=selected)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.render_text())
    return report.exit_code
