"""Runtime shared-state sanitizer: vector clocks over block regions.

An opt-in shadow-access recorder behind the counted :class:`~repro.raid.
array.BlockArray` I/O API, mirroring the fault plane's design: attached
via :meth:`BlockArray.attach_sanitizer`, it observes every *completed*
counted read/write; detached (the default) the array pays a single
``is None`` test per op and the I/O counters are untouched either way.

The concurrency model is the classic vector-clock one:

* every **actor** (a logical thread: ``"conversion"``, ``"app"``, a
  worker id) carries a vector clock; the ambient actor is set with the
  :meth:`BlockSanitizer.actor` context manager (thread-local, so real
  threads compose) and defaults to ``"main"``;
* a **fence** (:meth:`BlockSanitizer.fence`) records a synchronization
  edge from one actor to another — a cooperative-scheduler hand-off, a
  process spawn/join, a journal commit — by joining the destination's
  clock with the source's;
* each block region ``(disk, block)`` shadows its last write (actor +
  clock snapshot) and the last read per actor.  A read must
  happen-after the last write; a write must happen-after the last write
  *and* every read.  An unordered conflicting pair is recorded as an
  :class:`AccessViolation` (or raised immediately with ``strict=True``).

This is the dynamic complement to the static SC-R rules: the AST pass
cannot see aliasing through runtime handles, the sanitizer cannot see
code that never runs — together they cover the fleet-service invariant
ROADMAP item 1 needs (no two actors touch a block region unordered).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "AccessViolation",
    "SharedStateRaceError",
    "BlockSanitizer",
    "sanitized_online_smoke",
]


@dataclass(frozen=True)
class AccessViolation:
    """One unordered conflicting access to a block region."""

    kind: str  # "write-write" | "read-write" | "write-read"
    disk: int
    block: int
    actor: str
    prior_actor: str

    def describe(self) -> str:
        return (
            f"{self.kind} race on (disk {self.disk}, block {self.block}): "
            f"`{self.actor}` is not ordered after `{self.prior_actor}` — "
            "add a fence (sync edge) between them"
        )


class SharedStateRaceError(RuntimeError):
    """Raised in strict mode on the first unordered conflicting access."""

    def __init__(self, violation: AccessViolation):
        super().__init__(violation.describe())
        self.violation = violation


class BlockSanitizer:
    """Vector-clock shadow recorder for counted block I/O."""

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: list[AccessViolation] = []
        self.ops = 0
        self._clocks: dict[str, dict[str, int]] = {}
        self._tls = threading.local()
        #: region -> (actor, clock snapshot) of the last write
        self._last_write: dict[tuple[int, int], tuple[str, dict[str, int]]] = {}
        #: region -> {actor: clock snapshot} of reads since the last write
        self._reads: dict[tuple[int, int], dict[str, dict[str, int]]] = {}

    # ------------------------------------------------------------- actors
    def _clock(self, name: str) -> dict[str, int]:
        clock = self._clocks.get(name)
        if clock is None:
            clock = self._clocks[name] = {name: 1}
        return clock

    def _current(self) -> tuple[str, dict[str, int]]:
        name = getattr(self._tls, "actor", None) or "main"
        return name, self._clock(name)

    @contextmanager
    def actor(self, name: str):
        """Run the body as logical thread ``name`` (thread-local)."""
        self._clock(name)
        prev = getattr(self._tls, "actor", None)
        self._tls.actor = name
        try:
            yield self
        finally:
            self._tls.actor = prev

    def fence(self, src: str, dst: str) -> None:
        """Record a synchronization edge: everything ``src`` did so far
        happens-before everything ``dst`` does next."""
        a, b = self._clock(src), self._clock(dst)
        for k, v in a.items():
            if b.get(k, 0) < v:
                b[k] = v
        a[src] = a.get(src, 0) + 1

    @staticmethod
    def _ordered(prior: tuple[str, dict[str, int]], actor: str,
                 clock: dict[str, int]) -> bool:
        prior_actor, prior_clock = prior
        if prior_actor == actor:
            return True  # program order
        return prior_clock.get(prior_actor, 0) <= clock.get(prior_actor, 0)

    def _violate(self, kind: str, disk: int, block: int,
                 actor: str, prior_actor: str) -> None:
        violation = AccessViolation(kind, disk, block, actor, prior_actor)
        self.violations.append(violation)
        if self.strict:
            raise SharedStateRaceError(violation)

    # ---------------------------------------------------------- recording
    def record_read(self, disk: int, block: int) -> None:
        self.ops += 1
        actor, clock = self._current()
        key = (int(disk), int(block))
        last = self._last_write.get(key)
        if last is not None and not self._ordered(last, actor, clock):
            self._violate("write-read", key[0], key[1], actor, last[0])
        clock[actor] = clock.get(actor, 0) + 1
        self._reads.setdefault(key, {})[actor] = dict(clock)

    def record_write(self, disk: int, block: int) -> None:
        self.ops += 1
        actor, clock = self._current()
        key = (int(disk), int(block))
        last = self._last_write.get(key)
        if last is not None and not self._ordered(last, actor, clock):
            self._violate("write-write", key[0], key[1], actor, last[0])
        for reader, snapshot in self._reads.get(key, {}).items():
            if not self._ordered((reader, snapshot), actor, clock):
                self._violate("read-write", key[0], key[1], actor, reader)
        clock[actor] = clock.get(actor, 0) + 1
        self._last_write[key] = (actor, dict(clock))
        self._reads[key] = {}

    def record_reads(self, disks, blocks) -> None:
        for d, b in zip(disks, blocks):
            self.record_read(d, b)

    def record_writes(self, disks, blocks) -> None:
        for d, b in zip(disks, blocks):
            self.record_write(d, b)


def sanitized_online_smoke(
    p: int = 5, groups: int = 2, block_size: int = 8, fenced: bool = True
) -> BlockSanitizer:
    """Drive Algorithm 2 as two sanitized actors over one array.

    The conversion thread and the application thread interleave exactly
    as the cooperative scheduler would; with ``fenced=True`` every
    hand-off records the corresponding sync edge (this is the
    happens-before relation the protocol actually relies on) and the
    run must be violation-free.  With ``fenced=False`` the hand-offs
    are dropped, so the app's diagonal-parity patch conflicts with the
    conversion's earlier parity write — the seeded race the selftest
    asserts the sanitizer reports.
    """
    import numpy as np

    from repro.migration.online import (
        OnlineCode56Conversion,
        OnlineReport,
        OnlineRequest,
    )
    from repro.raid.array import BlockArray
    from repro.raid.layouts import Raid5Layout
    from repro.raid.raid5 import Raid5Array

    m = p - 1
    rows = p - 1
    capacity = groups * rows * (m - 1)
    data = (
        np.arange(capacity * block_size, dtype=np.uint8)
        .reshape(capacity, block_size)
    )
    sanitizer = BlockSanitizer()
    array = BlockArray(m, groups * rows, block_size=block_size)
    array.attach_sanitizer(sanitizer)
    Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC).format_with(data.copy())
    array.add_disk()
    conv = OnlineCode56Conversion(array, p)
    if fenced:  # formatting happened on the main actor
        sanitizer.fence("main", "conversion")
        sanitizer.fence("main", "app")
    report = OnlineReport()
    served = 0
    while conv.pending_parity() is not None:
        with sanitizer.actor("conversion"):
            conv.generate_step(report)
            conv.mark_step()
        # one app write after every other parity — half land on
        # converted regions (diagonal patch), half on unconverted
        if served < capacity and served % 2 == 0:
            if fenced:
                sanitizer.fence("conversion", "app")
            with sanitizer.actor("app"):
                payload = np.full(block_size, 0x5A + served, dtype=np.uint8)
                conv.serve_request(
                    OnlineRequest(0.0, served, True, payload), 0.0, report
                )
            if fenced:
                sanitizer.fence("app", "conversion")
        served += 1
    return sanitizer
