"""AST happens-before race detector (SC-R rules).

Static shared-state taint analysis over the modules that cross a process
boundary: the sweep pool (``repro.sweep``), the crash journals
(``repro.faults.journal``), the counted block store (``repro.raid.
array``) and the on-disk compiled-program cache (``repro.compiled.
compiler``).  The question each rule asks is the happens-before
question: *is this access to shared state ordered by an explicit
synchronization edge?*  The edges this codebase recognises:

* **pool initializer** — ``ProcessPoolExecutor(initializer=f)`` runs
  ``f`` in the worker before any submitted task; state ``f`` populates
  is ordered before every task read;
* **process spawn/join** — arguments pickled into ``submit`` and results
  returned through futures are copies, not shares;
* **file atomic-rename** — ``os.replace(tmp, final)`` publishes a fully
  written file in one atomic step; readers see old or new, never torn.

Rules (all purely syntactic — nothing is imported or executed):

* **SC-R001** — a *worker-context* function (one submitted to a pool,
  or reachable from one through module-local calls) writes a
  module-level mutable global, or reads one that no pool initializer
  establishes.  Unordered cross-process state is a silent fork: each
  worker mutates its own copy and the parent sees none of it — or, with
  a fork start-method, a genuine data race.
* **SC-R002** — a shared file is published non-atomically: a write-mode
  ``open`` / ``write_text`` / ``write_bytes`` whose target is neither
  pid-private (its name derives from ``os.getpid()`` / ``mkstemp``) nor
  later pushed through ``os.replace``/``os.rename``.  A concurrent
  reader of such a file can observe a torn write.
* **SC-R003** — a worker-context function stores into a shared-memory
  buffer (a value derived from ``SharedNDArray.attach`` /
  ``attach_block_array`` / ``shared_block_array`` / their ``.ndarray``).
  The sweep's shm segments are single-writer (the parent) by design;
  worker-side stores race every other attacher.  The runtime sanitizer
  (:mod:`repro.staticcheck.concur.sanitizer`) covers the aliasing this
  syntactic pass cannot see.
* **SC-R004** — a worker-context function other than the initializer
  calls a process-wide singleton mutator (``set_registry`` /
  ``set_tracer`` / ``set_default_kernel`` / ``set_program_cache_dir``).
  Swapping a singleton mid-task races every other task in the same
  worker; the initializer is the one ordered place to do it.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.report import Finding

__all__ = ["RULES", "DEFAULT_SCOPE", "analyze_source", "run_races"]

RULES = ("SC-R001", "SC-R002", "SC-R003", "SC-R004")

#: files (relative to the ``repro`` package root) the detector scans:
#: everything that touches process pools, shared memory, journals or
#: cross-process cache files
DEFAULT_SCOPE = (
    "sweep/",
    "faults/journal.py",
    "raid/array.py",
    "compiled/compiler.py",
)

#: module-level values considered shared mutable state
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "Counter", "OrderedDict", "bytearray"}
)
#: method calls that mutate a dict/list/set in place
_MUTATORS = frozenset(
    {
        "update", "clear", "setdefault", "pop", "popitem",
        "append", "extend", "insert", "remove", "discard", "add",
    }
)
#: process-wide singleton mutators (SC-R004)
_SINGLETON_MUTATORS = frozenset(
    {"set_registry", "set_tracer", "set_default_kernel", "set_program_cache_dir"}
)
#: constructors whose results alias a shared-memory segment (SC-R003)
_SHM_SOURCES = frozenset(
    {"attach", "from_array", "create", "attach_block_array", "shared_block_array"}
)
#: functions whose results name a pid/temp-private path (SC-R002)
_PRIVATE_PATH_CALLS = frozenset(
    {"getpid", "mkstemp", "mkdtemp", "NamedTemporaryFile", "TemporaryDirectory"}
)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _root_name(expr: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain (``a.b[c].d`` → a)."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _contains_call(expr: ast.AST, names: frozenset) -> bool:
    return any(
        isinstance(node, ast.Call) and _call_name(node.func) in names
        for node in ast.walk(expr)
    )


class _Module:
    """One file's shared-state model: globals, workers, call graph."""

    def __init__(self, tree: ast.Module, rel: str):
        self.rel = rel
        self.tree = tree
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.mutable_globals: set[str] = set()
        self.initializers: set[str] = set()
        self.worker_roots: set[str] = set()
        self._scan()

    def _scan(self) -> None:
        # module-level mutable globals
        for node in self.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not self._is_mutable(value):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    self.mutable_globals.add(tgt.id)
        # every function definition, by bare name (module-local graph)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, node)
        # worker roots and initializers
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "initializer":
                    name = _call_name(kw.value) or (
                        kw.value.id if isinstance(kw.value, ast.Name) else None
                    )
                    if name:
                        self.initializers.add(name)
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if attr in ("submit", "map") and node.args:
                first = node.args[0]
                name = first.id if isinstance(first, ast.Name) else None
                if name:
                    self.worker_roots.add(name)

    @staticmethod
    def _is_mutable(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and _call_name(value.func) in _MUTABLE_CALLS
        )

    def worker_context(self) -> set[str]:
        """Worker roots plus their module-local call-graph closure."""
        frontier = list(self.worker_roots)
        closure: set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in closure or name not in self.functions:
                continue
            closure.add(name)
            for node in ast.walk(self.functions[name]):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in self.functions:
                        frontier.append(node.func.id)
        return closure

    def initializer_established(self) -> set[str]:
        """Mutable globals an initializer populates (the sync edge)."""
        out: set[str] = set()
        for name in self.initializers:
            fn = self.functions.get(name)
            if fn is None:
                continue
            for node in ast.walk(fn):
                written = self._global_write(node)
                if written in self.mutable_globals:
                    out.add(written)
        return out

    def _global_write(self, node: ast.AST) -> str | None:
        """Name of the mutable global this node writes, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    root = _root_name(tgt)
                    if root in self.mutable_globals:
                        return root
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                root = _root_name(node.func.value)
                if root in self.mutable_globals:
                    return root
        return None


class _FunctionChecker:
    """SC-R001/R003/R004 inside one worker-context function."""

    def __init__(self, module: _Module, fn, established: set[str],
                 is_initializer: bool, findings: list[Finding]):
        self.module = module
        self.fn = fn
        self.established = established
        self.is_initializer = is_initializer
        self.findings = findings
        # prepass: local bindings (params + plain-name assigns without a
        # `global` declaration), explicit globals, and shm taint — so the
        # flagging pass below is order-independent
        self.global_decls: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
        self.locals: set[str] = {
            a.arg
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        }
        self.shm_tainted: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                tainted = self._shm_derived(node.value)
                for tgt in node.targets:
                    if not isinstance(tgt, ast.Name):
                        # storing a tainted value *into* a container is
                        # not itself a buffer write; only plain-name
                        # aliases propagate shm taint
                        continue
                    if tainted:
                        self.shm_tainted.add(tgt.id)
                    if tgt.id not in self.global_decls:
                        self.locals.add(tgt.id)

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                analyzer="concur",
                rule=rule,
                location=f"{self.module.rel}:{getattr(node, 'lineno', 0)}",
                message=message,
            )
        )

    def _is_shared_global(self, name: str | None) -> bool:
        return (
            name is not None
            and name in self.module.mutable_globals
            and name not in self.locals
        )

    def _shm_derived(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.shm_tainted:
                return True
            if isinstance(node, ast.Call) and _call_name(node.func) in _SHM_SOURCES:
                return True
        return False

    def check(self) -> None:
        fn_label = f"{self.fn.name}()"
        for node in ast.walk(self.fn):
            # ------------------------------------------------- SC-R001
            if not self.is_initializer:
                written = self.module._global_write(node)
                if written is None and isinstance(node, ast.Assign):
                    # `global X; X = ...` rebinds the module state too
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Name)
                            and tgt.id in self.global_decls
                            and tgt.id in self.module.mutable_globals
                        ):
                            written = tgt.id
                if written is not None and not self._is_local(written):
                    self._flag(
                        "SC-R001",
                        node,
                        f"worker-context {fn_label} writes shared module "
                        f"state `{written}` without a synchronization edge — "
                        "populate it in the pool initializer or return the "
                        "value through the future",
                    )
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    if (
                        self._is_shared_global(node.id)
                        and node.id not in self.established
                    ):
                        self._flag(
                            "SC-R001",
                            node,
                            f"worker-context {fn_label} reads shared module "
                            f"state `{node.id}` that no pool initializer "
                            "establishes — there is no happens-before edge "
                            "ordering the write it expects",
                        )
            # ------------------------------------------------- SC-R003
            if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                root = _root_name(node)
                if root in self.shm_tainted or self._shm_derived(node.value):
                    self._flag(
                        "SC-R003",
                        node,
                        f"worker-context {fn_label} stores into a shared-"
                        "memory buffer — shm segments are single-writer "
                        "(the creating parent); return results through the "
                        "future instead",
                    )
            # ------------------------------------------------- SC-R004
            if isinstance(node, ast.Call) and not self.is_initializer:
                name = _call_name(node.func)
                if name in _SINGLETON_MUTATORS:
                    self._flag(
                        "SC-R004",
                        node,
                        f"worker-context {fn_label} calls `{name}` — "
                        "process-wide singletons may only be swapped in the "
                        "pool initializer (the one ordered point before "
                        "tasks run)",
                    )

    def _is_local(self, name: str) -> bool:
        # a `global X` declaration makes writes target the module state;
        # otherwise a plain local binding shadows the global name
        if name in self.global_decls:
            return False
        return name in self.locals


def _check_file_publishes(module: _Module, findings: list[Finding]) -> None:
    """SC-R002 over every function (shared files race across processes)."""
    for fn in module.functions.values():
        private: set[str] = set()
        replaced: set[str] = set()
        writes: list[tuple[ast.AST, str | None, ast.expr]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _contains_call(
                node.value, _PRIVATE_PATH_CALLS
            ):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        private.add(tgt.id)
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in ("replace", "rename") and node.args:
                    # os.replace(tmp, final) / tmp_path.replace(final)
                    if isinstance(node.func, ast.Attribute) and _root_name(
                        node.func.value
                    ) not in ("os", None):
                        if len(node.args) == 1:  # Path.replace(target)
                            root = _root_name(node.func.value)
                            if root:
                                replaced.add(root)
                    else:
                        root = (
                            node.args[0].id
                            if isinstance(node.args[0], ast.Name)
                            else None
                        )
                        if root:
                            replaced.add(root)
                if name == "open" and node.args:
                    mode = None
                    if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                        mode = node.args[1].value
                    for kw in node.keywords:
                        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                            mode = kw.value.value
                    if isinstance(mode, str) and any(c in mode for c in "wax"):
                        writes.append((node, _root_name(node.args[0]), node.args[0]))
                if name in ("write_text", "write_bytes") and isinstance(
                    node.func, ast.Attribute
                ):
                    writes.append(
                        (node, _root_name(node.func.value), node.func.value)
                    )
        for node, root, target in writes:
            if root in private or root in replaced:
                continue
            if _contains_call(target, _PRIVATE_PATH_CALLS):
                continue
            findings.append(
                Finding(
                    analyzer="concur",
                    rule="SC-R002",
                    location=f"{module.rel}:{getattr(node, 'lineno', 0)}",
                    message=(
                        f"{fn.name}() publishes a file non-atomically — "
                        "write to a pid-private temp name (os.getpid / "
                        "mkstemp) and os.replace() it into place so "
                        "concurrent readers never see a torn file"
                    ),
                )
            )


def analyze_source(source: str, rel_path: str) -> list[Finding]:
    """Run every SC-R rule over one module's source."""
    tree = ast.parse(source, filename=rel_path)
    module = _Module(tree, rel_path.replace("\\", "/"))
    findings: list[Finding] = []
    established = module.initializer_established()
    worker = module.worker_context()
    for name in sorted(worker | module.initializers):
        fn = module.functions.get(name)
        if fn is None:
            continue
        _FunctionChecker(
            module,
            fn,
            established,
            is_initializer=(name in module.initializers),
            findings=findings,
        ).check()
    _check_file_publishes(module, findings)
    return findings


def run_races(
    package_root: Path | None = None, scope: tuple[str, ...] = DEFAULT_SCOPE
) -> tuple[int, list[Finding]]:
    """Scan the in-scope modules; returns (checks, findings)."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    findings: list[Finding] = []
    checks = 0
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if not any(
            rel == entry or (entry.endswith("/") and rel.startswith(entry))
            for entry in scope
        ):
            continue
        checks += len(RULES)
        findings.extend(analyze_source(path.read_text(), rel))
    return checks, findings
