"""Exhaustive small-scope interleaving model checker for Algorithm 2.

The online converter (:class:`repro.migration.online.
OnlineCode56Conversion`) exposes its protocol as explicit transitions —
``generate_step`` / ``mark_step`` / ``serve_request`` plus the journal
flush and crash windows between them.  This module drives those
transitions through **every** interleaving at a small scope (the
small-scope hypothesis: protocol bugs show up at p=5 with one or two
in-flight writes) via depth-first search with state hashing and
sleep-set partial-order reduction, checking four machine-readable
safety invariants at every reachable state:

* **SC-C001 — no lost write**: every applied write's logical data block
  holds exactly its payload; every untouched block holds the initial
  image.
* **SC-C002 — watermark soundness**: at every *post-crash, pre-resume*
  state, every journal-marked diagonal parity's bytes equal its chain
  XOR.  A healthy torn crash leaves the in-flight parity *unmarked*
  (write-ahead ordering), so a marked-but-stale entry can only come
  from a protocol that journals before the bytes land.
* **SC-C003 — resume idempotence**: from every reachable state, draining
  normally and crash-resuming-then-draining produce byte-identical,
  fully verified final arrays (any crash prefix is recoverable).
* **SC-C004 — parity-chain consistency**: at every state, every
  horizontal (RAID-5) parity equals the XOR of its row, and every
  *generated* diagonal parity equals its chain XOR.

Transition alphabet (``batch == 1``, the per-parity protocol):

* ``CONVERT`` — one healthy conversion step (generate + journal mark);
* ``WRITE i`` — serve application write ``i`` (Algorithm 2 interrupt);
* ``CRASH-CLEAN`` — generate the pending parity, crash in the pre-mark
  window (bytes landed, mark lost), reboot and resume;
* ``CRASH-TORN`` — same, but the parity write tears mid-block before
  the crash (half old bytes, half new).

Batched scenarios (``batch > 1``) split the conversion step at the
run/mark boundary so the in-flight window — parity bytes landed,
group-commit pending — is an explicit reachable state that application
writes interleave into (exercising the converter's vectorized overlap
check):

* ``GEN`` — :meth:`generate_run_step`: claim and write a whole run
  (the fused lowering on these healthy model arrays);
* ``MARK`` — :meth:`mark_run_step`: the single group-commit flush;
* ``CRASH-WINDOW`` — crash *inside* the window: the run's bytes stand,
  every mark of the run is lost, reboot and resume;
* ``CRASH-CLEAN`` / ``CRASH-TORN`` — generate a run then crash before
  the commit (torn: the run's last parity write tears mid-block).

Fleet scenarios add the self-healing service's transitions
(:mod:`repro.fleet`), so the breaker pause and the hot-spare rebuild are
*proved*, not just soak-tested:

* ``PAUSE`` (``pauses > 0``) — the QoS circuit breaker trips between
  steps: the in-memory converter is discarded and a fresh one resumes
  from the journal watermark (the fleet's backoff/resume edge — exactly
  a crash-resume without the crash, so every watermark obligation
  carries over);
* ``FAIL`` (``spare=True``) — data disk ``fail_disk`` dies; conversion
  and application writes continue degraded (reconstruct-on-read,
  reconstruct-writes through the parities);
* ``SPARE`` — a hot spare is attached: the failed column is rebuilt by
  row XOR through the still-maintained horizontal parity, and the
  converter re-instantiates from the journal (the fleet's post-rebuild
  resume).

While the disk is failed, SC-C001 checks the failed column *through
reconstruction* (the write-path invariant that makes the rebuild
correct), SC-C004's horizontal check is skipped (with one column
erased it is definitionally satisfiable — reconstruction and the check
would be the same XOR), and chain XORs reconstruct failed cells.

Partial-order reduction is sound here because the independent pairs
commute *by construction*: two writes to distinct LBAs touch disjoint
data blocks and XOR-patch parities (XOR commutes), and a conversion
step commutes with any write — converting first then patching the
diagonal, or writing first then folding the new data into the chain
XOR, produce the same parity bytes.  Crash transitions are treated as
dependent with everything.  In batched scenarios only distinct-LBA
write pairs are treated as independent (``GEN``/``MARK`` interact with
every write through the overlap window) — conservative, hence still
sound.  Sleep sets never remove *states* from the exploration, only
redundant transitions, so per-state invariants keep their full
coverage.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.staticcheck.report import Finding

__all__ = [
    "ModelScenario",
    "ModelStats",
    "check_scenario",
    "model_scenarios",
    "run_model_check",
]

#: invariant rules discharged per state
RULES = ("SC-C001", "SC-C002", "SC-C003", "SC-C004")

#: cap on findings per scenario — one protocol bug floods every state it
#: reaches; a handful of witnesses is what a human needs
_MAX_FINDINGS_PER_SCENARIO = 8


@dataclass(frozen=True)
class ModelScenario:
    """One small-scope exploration: geometry plus an in-flight write set."""

    p: int
    groups: int
    lbas: tuple[int, ...]  # distinct LBAs, one write each
    block_size: int = 4
    max_crashes: int = 1
    #: evaluate SC-C003 at every state (else only at post-crash states)
    resume_everywhere: bool = True
    #: run budget the explorer hands to ``generate_run_step``; 1 keeps
    #: the per-parity ``generate_step``/``mark_step`` alphabet
    batch: int = 1
    #: breaker pauses the explorer may interleave (each discards the
    #: in-memory converter and resumes from the journal watermark)
    pauses: int = 0
    #: enable the FAIL/SPARE pair: ``fail_disk`` may die at any point
    #: and a hot spare may be attached (row-XOR rebuild) at any later one
    spare: bool = False
    #: which data disk the FAIL transition kills (must be < p-1)
    fail_disk: int = 0

    @property
    def label(self) -> str:
        suffix = f",batch={self.batch}" if self.batch != 1 else ""
        if self.pauses:
            suffix += f",pauses={self.pauses}"
        if self.spare:
            suffix += f",spare(d{self.fail_disk})"
        return (
            f"online-code56@p={self.p},groups={self.groups},"
            f"writes={list(self.lbas)}{suffix}"
        )


@dataclass
class ModelStats:
    """Exploration size counters (reported via the obs registry)."""

    scenarios: int = 0
    states: int = 0
    transitions: int = 0
    checks: int = 0

    def merge(self, other: "ModelStats") -> None:
        self.scenarios += other.scenarios
        self.states += other.states
        self.transitions += other.transitions
        self.checks += other.checks


def _initial_data(capacity: int, block_size: int) -> npt.NDArray[np.uint8]:
    base = np.arange(capacity * block_size, dtype=np.uint8)
    return (base.reshape(capacity, block_size) * 3 + 1).astype(np.uint8)


def _write_payload(i: int, block_size: int) -> npt.NDArray[np.uint8]:
    return np.full(block_size, (0xA5 + 0x11 * i) & 0xFF, dtype=np.uint8)


class _Explorer:
    """DFS over one scenario's interleaving graph."""

    def __init__(self, scenario: ModelScenario, converter_cls=None):
        from repro.faults.journal import OnlineJournal
        from repro.migration.online import OnlineCode56Conversion
        from repro.raid.array import BlockArray
        from repro.raid.layouts import Raid5Layout
        from repro.raid.raid5 import Raid5Array

        self.scenario = scenario
        self.converter_cls = converter_cls or OnlineCode56Conversion
        p, groups, bs = scenario.p, scenario.groups, scenario.block_size
        self.p, self.m, self.rows = p, p - 1, p - 1
        self.layout = Raid5Layout.LEFT_ASYMMETRIC
        capacity = groups * self.rows * (self.m - 1)
        if len(set(scenario.lbas)) != len(scenario.lbas):
            raise ValueError("scenario LBAs must be distinct (unordered writes)")
        if any(lba >= capacity for lba in scenario.lbas):
            raise ValueError(f"LBA out of range (capacity {capacity})")
        if scenario.spare and not 0 <= scenario.fail_disk < self.m:
            raise ValueError(
                f"fail_disk must name a data-array column (< {self.m})"
            )
        self.data = _initial_data(capacity, bs)
        self.payloads = [
            _write_payload(i, bs) for i in range(len(scenario.lbas))
        ]
        self.array = BlockArray(self.m, groups * self.rows, block_size=bs)
        Raid5Array(self.array, self.layout).format_with(self.data.copy())
        self.array.add_disk()
        self.journal = OnlineJournal(groups, self.rows)
        self.conv = self.converter_cls(self.array, p, journal=self.journal)
        self.applied: frozenset[int] = frozenset()
        self.crashes = 0
        self.pauses_done = 0
        self.failed = False
        self.findings: list[Finding] = []
        self.stats = ModelStats(scenarios=1)
        #: state hash -> sleep sets already explored from it
        self._memo: dict[bytes, list[frozenset]] = {}

    # ----------------------------------------------------- state plumbing
    def _capture(self):
        return (
            self.array.snapshot(),
            self.journal.marked(),
            self.conv.thread_state(),
            self.applied,
            self.crashes,
            self.pauses_done,
            self.array.failed_disks,
        )

    def _restore(self, state) -> None:
        arr, marks, thread, applied, crashes, pauses_done, failed = state
        self.array.restore(arr)
        self.journal.restore_marks(marks)
        self.conv.restore_thread_state(thread)
        self.applied = applied
        self.crashes = crashes
        self.pauses_done = pauses_done
        # snapshot/restore cover bytes only; failure state is explorer
        # bookkeeping (BlockArray has no public "un-replace" — this is
        # state rollback, not a modelled transition)
        self.array._failed = set(failed)
        self.failed = self.scenario.fail_disk in failed if self.scenario.spare else False

    def _hash(self) -> bytes:
        cursor, generated, run = self.conv.thread_state()
        h = hashlib.sha256()
        h.update(self.array.snapshot().tobytes())
        h.update(self.journal.marked().tobytes())
        h.update(cursor.to_bytes(4, "little"))
        h.update(generated.tobytes())
        h.update(repr(run).encode())
        mask = 0
        for i in self.applied:
            mask |= 1 << i
        h.update(mask.to_bytes(4, "little"))
        h.update(self.crashes.to_bytes(2, "little"))
        h.update(bytes([self.pauses_done, 1 if self.failed else 0]))
        return h.digest()

    # ------------------------------------------------------- transitions
    def _enabled(self) -> list[tuple]:
        out: list[tuple] = []
        batched = self.scenario.batch > 1
        if batched and self.conv.in_flight_run is not None:
            out.append(("M",))
            if self.crashes < self.scenario.max_crashes:
                out.append(("K",))
        elif self.conv.pending_parity() is not None:
            out.append(("G",) if batched else ("C",))
            if self.crashes < self.scenario.max_crashes:
                out.append(("KC",))
                out.append(("KT",))
        in_window = batched and self.conv.in_flight_run is not None
        if (
            self.pauses_done < self.scenario.pauses
            and not in_window
            and self.conv.pending_parity() is not None
        ):
            # the fleet commits an in-flight run before pausing, so the
            # pause edge only exists between committed steps
            out.append(("P",))
        if self.scenario.spare:
            if not self.failed:
                out.append(("F",))
            elif not in_window:
                out.append(("S",))
        for i in range(len(self.payloads)):
            if i not in self.applied:
                out.append(("W", i))
        return out

    def _independent(self, a: tuple, b: tuple) -> bool:
        # crashes are dependent with everything (they reshape the whole
        # thread state); so are pause/fail/spare-attach (conservative:
        # the fleet transitions reshape converter identity or geometry);
        # distinct-LBA writes and write-vs-convert commute
        if a[0] in ("KC", "KT", "K", "P", "F", "S") or b[0] in (
            "KC", "KT", "K", "P", "F", "S",
        ):
            return False
        if a[0] == "W" and b[0] == "W":
            return a[1] != b[1]  # distinct scenario writes → distinct LBAs
        if self.scenario.batch > 1:
            # GEN/MARK interact with every write through the in-flight
            # overlap window — keep them dependent (conservative, sound)
            return False
        return a != b

    def _serve_write(self, i: int) -> None:
        from repro.migration.online import OnlineReport, OnlineRequest

        lba = self.scenario.lbas[i]
        req = OnlineRequest(
            time=0.0, lba=lba, is_write=True, payload=self.payloads[i]
        )
        self.conv.serve_request(req, 0.0, OnlineReport())
        self.applied = self.applied | {i}

    def _apply(self, t: tuple) -> None:
        from repro.migration.online import OnlineReport

        self.stats.transitions += 1
        kind = t[0]
        if kind == "W":
            self._serve_write(t[1])
            return
        if kind == "C":
            self.conv.generate_step(OnlineReport())
            self.conv.mark_step()
            return
        if kind == "G":
            self.conv.generate_run_step(OnlineReport(), budget=self.scenario.batch)
            return
        if kind == "M":
            self.conv.mark_run_step()
            return
        if kind == "K":
            # crash inside the group-commit window: the run's parity
            # bytes stand, its marks were never flushed, the thread dies
            self.crashes += 1
            self._check_watermark()
            self.conv = self.converter_cls(self.array, self.p, journal=self.journal)
            return
        if kind == "P":
            # breaker pause: the fleet discards the converter and later
            # resumes from the watermark — same recovery obligation as a
            # clean crash, minus the crash budget
            self.pauses_done += 1
            self.conv = self.converter_cls(self.array, self.p, journal=self.journal)
            return
        if kind == "F":
            self.failed = True
            self.array.fail_disk(self.scenario.fail_disk)
            return
        if kind == "S":
            self._attach_spare()
            return
        # crash variants: the pending work's parity writes land (clean)
        # or the last one tears (torn), the mark is lost with the
        # process, then reboot
        if self.scenario.batch > 1:
            run = self.conv.pending_run(self.scenario.batch)
            assert run
            group, prow = run[-1]
        else:
            pending = self.conv.pending_parity()
            assert pending is not None
            group, prow = pending
        block = group * self.rows + prow
        pre = self.array.raw(self.m, block).copy()
        if self.scenario.batch > 1:
            self.conv.generate_run_step(OnlineReport(), budget=self.scenario.batch)
        else:
            self.conv.generate_step(OnlineReport())
        if kind == "KT":
            torn = self.array.raw(self.m, block).copy()
            half = torn.shape[0] // 2
            torn[half:] = pre[half:]
            self.array.restore_blocks([self.m], [block], torn[None, :])
        self.crashes += 1
        # the in-memory converter died with the crash; the journal and
        # the array survive.  Check SC-C002 on exactly that wreckage.
        self._check_watermark()
        self.conv = self.converter_cls(self.array, self.p, journal=self.journal)

    def _attach_spare(self) -> None:
        """SPARE: replace the failed column, rebuild it by row XOR.

        The rebuild writes through :meth:`~repro.raid.array.BlockArray.
        restore_blocks` (the out-of-band recovery scatter) and the
        converter re-instantiates from the journal — the fleet's
        post-rebuild resume (:meth:`repro.fleet.volume.FleetVolume.
        _rebuild_slice`).
        """
        disk = self.scenario.fail_disk
        self.array.replace_disk(disk)
        stripes = self.scenario.groups * self.rows
        for stripe in range(stripes):
            self.array.restore_blocks(
                [disk], [stripe], self._reconstruct(disk, stripe)[None, :]
            )
        self.failed = False
        self.conv = self.converter_cls(self.array, self.p, journal=self.journal)

    # -------------------------------------------------------- invariants
    def _flag(self, rule: str, message: str) -> None:
        if len(self.findings) >= _MAX_FINDINGS_PER_SCENARIO:
            return
        self.findings.append(
            Finding(
                analyzer="concur",
                rule=rule,
                location=self.scenario.label,
                message=message,
            )
        )

    def _truth(self, lba: int) -> npt.NDArray[np.uint8]:
        for i in self.applied:
            if self.scenario.lbas[i] == lba:
                return self.payloads[i]
        return self.data[lba]

    def _reconstruct(self, disk: int, block: int) -> npt.NDArray[np.uint8]:
        """Row-XOR reconstruction of one cell of a failed data column."""
        acc = np.zeros(self.scenario.block_size, dtype=np.uint8)
        for d in range(self.m):
            if d != disk:
                np.bitwise_xor(acc, self.array.raw(d, block), out=acc)
        return acc

    def _cell(self, disk: int, block: int) -> npt.NDArray[np.uint8]:
        """A cell's logical bytes: raw, or reconstructed while failed."""
        if self.failed and disk == self.scenario.fail_disk:
            return self._reconstruct(disk, block)
        return self.array.raw(disk, block)

    def _chain_xor(self, group: int, prow: int) -> npt.NDArray[np.uint8]:
        from repro.codes.code56 import diagonal_chain_cells

        acc = np.zeros(self.scenario.block_size, dtype=np.uint8)
        for r, c in diagonal_chain_cells(self.p, prow):
            np.bitwise_xor(
                acc, self._cell(c, group * self.rows + r), out=acc
            )
        return acc

    def _check_watermark(self) -> None:
        """SC-C002 at a post-crash, pre-resume state."""
        self.stats.checks += 1
        for group in range(self.scenario.groups):
            for row in range(self.rows):
                if not self.journal.is_marked(group, row):
                    continue
                expect = self._chain_xor(group, row)
                got = self.array.raw(self.m, group * self.rows + row)
                if not np.array_equal(got, expect):
                    self._flag(
                        "SC-C002",
                        f"after a crash, journal-marked diagonal parity "
                        f"(g{group}, r{row}) does not match its chain XOR — "
                        "the watermark ran ahead of the bytes (mark must "
                        "follow the parity write)",
                    )
                    return

    def _check_state(self, trail: str) -> None:
        """SC-C001 + SC-C004 at one reachable state."""
        from repro.raid.layouts import locate_block, parity_disk

        self.stats.checks += 1
        # SC-C001: every logical data block reads back as the truth
        # model — through row-XOR reconstruction for a failed column
        # (the invariant that makes the hot-spare rebuild correct)
        for lba in range(self.data.shape[0]):
            stripe, disk = locate_block(self.layout, lba, self.m)
            if not np.array_equal(self._cell(disk, stripe), self._truth(lba)):
                self._flag(
                    "SC-C001",
                    f"lost write: lba {lba} diverges from the applied-write "
                    f"truth model after [{trail}]",
                )
                break
        # SC-C004: horizontal parity of every stripe; generated diagonals.
        # Skipped while a column is erased: with one member missing the
        # row equation is the reconstruction definition itself (vacuous);
        # SC-C001 above carries the degraded-mode obligation instead.
        stripes = self.scenario.groups * self.rows
        if not self.failed:
            for stripe in range(stripes):
                pd = parity_disk(self.layout, stripe, self.m)
                acc = np.zeros(self.scenario.block_size, dtype=np.uint8)
                for d in range(self.m):
                    if d != pd:
                        np.bitwise_xor(acc, self.array.raw(d, stripe), out=acc)
                if not np.array_equal(self.array.raw(pd, stripe), acc):
                    self._flag(
                        "SC-C004",
                        f"horizontal parity of stripe {stripe} inconsistent "
                        f"after [{trail}]",
                    )
                    break
        _cursor, generated, run = self.conv.thread_state()
        # an in-flight run's bytes have landed; they must already be
        # chain-consistent (this is what proves the overlap check patches
        # writes into unmarked in-window parities)
        for g, r in run or ():
            generated[g, r] = True
        for group in range(self.scenario.groups):
            for row in range(self.rows):
                if not generated[group, row]:
                    continue
                expect = self._chain_xor(group, row)
                got = self.array.raw(self.m, group * self.rows + row)
                if not np.array_equal(got, expect):
                    self._flag(
                        "SC-C004",
                        f"generated diagonal parity (g{group}, r{row}) "
                        f"inconsistent with its chain after [{trail}] — a "
                        "write to its chain was not patched through",
                    )
                    return

    def _drain(self) -> tuple[npt.NDArray[np.uint8], bool]:
        """Deterministic completion: remaining writes in order, then convert."""
        from repro.migration.online import OnlineReport

        if self.conv.in_flight_run is not None:
            self.conv.mark_run_step()
        if self.failed:
            # the audit needs a healthy array: attach the spare first
            # (the fleet's own drain does the same before verifying)
            self._attach_spare()
        for i in range(len(self.payloads)):
            if i not in self.applied:
                self._serve_write(i)
        report = OnlineReport()
        while self.conv.pending_parity() is not None:
            self.conv.generate_step(report)
            self.conv.mark_step()
        return self.array.snapshot(), bool(self.conv.verify())

    def _check_resume(self, trail: str) -> None:
        """SC-C003: drain-normally == crash-resume-then-drain, both verified."""
        self.stats.checks += 1
        state = self._capture()
        normal, normal_ok = self._drain()
        self._restore(state)
        self.conv = self.converter_cls(self.array, self.p, journal=self.journal)
        resumed, resumed_ok = self._drain()
        self._restore(state)
        if not normal_ok or not resumed_ok:
            which = "normal" if not normal_ok else "crash-resumed"
            self._flag(
                "SC-C003",
                f"the {which} completion from state [{trail}] fails the "
                "full Code 5-6 audit",
            )
        elif not np.array_equal(normal, resumed):
            self._flag(
                "SC-C003",
                f"resume is not idempotent: crash-resume-then-drain from "
                f"state [{trail}] diverges from draining normally",
            )

    # -------------------------------------------------------------- DFS
    def explore(self) -> None:
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 10_000))
        self._dfs(frozenset(), "init")

    def _visit(self, key: bytes, sleep: frozenset) -> str:
        """Memoize (state, sleep set).

        ``"new"`` — first sight: check invariants and expand.
        ``"skip"`` — a prior visit explored with a sleep set no larger
        than this one, so every awake transition was already taken.
        ``"expand"`` — state already invariant-checked, but this visit
        wakes transitions a prior one slept through: re-expand only.
        """
        seen = self._memo.get(key)
        if seen is None:
            self._memo[key] = [sleep]
            self.stats.states += 1
            return "new"
        for prior in seen:
            if prior <= sleep:
                return "skip"
        seen[:] = [s for s in seen if not (sleep <= s)]
        seen.append(sleep)
        return "expand"

    def _dfs(self, sleep: frozenset, trail: str) -> None:
        if len(self.findings) >= _MAX_FINDINGS_PER_SCENARIO:
            return
        status = self._visit(self._hash(), sleep)
        if status == "skip":
            return
        if status == "new":
            self._check_state(trail)
            if self.scenario.resume_everywhere or self.crashes:
                self._check_resume(trail)
        enabled = self._enabled()
        explored: list[tuple] = []
        for t in enabled:
            if t in sleep:
                continue
            state = self._capture()
            self._apply(t)
            child_sleep = frozenset(
                u
                for u in set(sleep) | set(explored)
                if self._independent(u, t)
            )
            self._dfs(child_sleep, f"{trail} {self._fmt(t)}")
            self._restore(state)
            explored.append(t)

    @staticmethod
    def _fmt(t: tuple) -> str:
        if t[0] == "W":
            return f"W{t[1]}"
        return {
            "C": "C",
            "G": "gen",
            "M": "mark",
            "K": "window-crash",
            "KC": "crash",
            "KT": "torn-crash",
            "P": "pause",
            "F": "fail",
            "S": "spare",
        }[t[0]]


def check_scenario(
    scenario: ModelScenario, converter_cls=None
) -> tuple[ModelStats, list[Finding]]:
    """Explore one scenario exhaustively; returns (stats, findings)."""
    ex = _Explorer(scenario, converter_cls=converter_cls)
    ex.explore()
    return ex.stats, ex.findings


def _representative_lbas(p: int, groups: int) -> list[int]:
    """One LBA per (row, data-disk) class of group 0, plus group 1's first."""
    from repro.raid.layouts import Raid5Layout, locate_block

    m = p - 1
    rows = p - 1
    capacity = groups * rows * (m - 1)
    seen: set[tuple[int, int]] = set()
    out: list[int] = []
    for lba in range(rows * (m - 1)):  # group 0
        stripe, disk = locate_block(Raid5Layout.LEFT_ASYMMETRIC, lba, m)
        cls = (stripe % rows, disk)
        if cls not in seen:
            seen.add(cls)
            out.append(lba)
    if groups > 1 and rows * (m - 1) < capacity:
        out.append(rows * (m - 1))  # first LBA of group 1
    return out


def model_scenarios(p: int, exhaustive: bool) -> list[ModelScenario]:
    """The scenario battery for one prime.

    ``exhaustive`` (p=5): two groups; a single-write scenario for *every*
    LBA (subsuming the SC-D010 boundary sweep — the DFS covers every
    conversion-progress point, plus every crash placement), pair
    scenarios over representative (row, disk) geometry classes, one
    triple, and the batched protocol re-proved for every run budget of
    {2, rows, groups*rows} — a two-parity run, one full parity row span,
    and a single run covering the whole conversion — over the same
    representative singles plus a pair subset.  Fleet transitions ride
    the same battery: breaker-pause singles over every representative
    LBA, fail/spare singles cycling the failed column over every data
    disk, one pause+spare pair, and batched pause/spare variants.
    Sampled (p=7): one group, a spread of single writes, a couple of
    pairs, two batched scenarios, and one pause + one spare single.
    """
    rows = p - 1
    m = p - 1
    if exhaustive:
        groups = 2
        capacity = groups * rows * (m - 1)
        singles = [
            ModelScenario(p=p, groups=groups, lbas=(lba,))
            for lba in range(capacity)
        ]
        reps = _representative_lbas(p, groups)
        pairs = [
            ModelScenario(p=p, groups=groups, lbas=(a, b))
            for i, a in enumerate(reps)
            for b in reps[i + 1 :]
        ]
        triple = [ModelScenario(p=p, groups=groups, lbas=tuple(reps[:3]))]
        batch_sizes = (2, rows, groups * rows)
        batched = [
            ModelScenario(p=p, groups=groups, lbas=(lba,), batch=bsz)
            for bsz in batch_sizes
            for lba in reps
        ] + [
            ModelScenario(p=p, groups=groups, lbas=(a, b), batch=bsz)
            for bsz in batch_sizes
            for i, a in enumerate(reps[:4])
            for b in reps[i + 1 : 4]
        ]
        fleet = (
            [
                ModelScenario(p=p, groups=groups, lbas=(lba,), pauses=1)
                for lba in reps
            ]
            + [
                ModelScenario(
                    p=p, groups=groups, lbas=(lba,), spare=True,
                    fail_disk=i % m,
                )
                for i, lba in enumerate(reps)
            ]
            + [
                ModelScenario(
                    p=p, groups=groups, lbas=(reps[0], reps[1]),
                    pauses=1, spare=True, fail_disk=1,
                ),
                ModelScenario(
                    p=p, groups=groups, lbas=(reps[0],), batch=rows, pauses=1,
                ),
                ModelScenario(
                    p=p, groups=groups, lbas=(reps[0],), batch=2,
                    spare=True, fail_disk=2,
                ),
            ]
        )
        return singles + pairs + triple + batched + fleet
    groups = 1
    capacity = groups * rows * (m - 1)
    step = max(1, capacity // 6)
    sampled = list(range(0, capacity, step))
    singles = [
        ModelScenario(p=p, groups=groups, lbas=(lba,), resume_everywhere=False)
        for lba in sampled
    ]
    pairs = [
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[0], sampled[-1]),
            resume_everywhere=False,
        ),
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[1], sampled[2]),
            resume_everywhere=False,
        ),
    ]
    batched = [
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[0],), batch=rows,
            resume_everywhere=False,
        ),
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[0], sampled[-1]), batch=2,
            resume_everywhere=False,
        ),
    ]
    fleet = [
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[0],), pauses=1,
            resume_everywhere=False,
        ),
        ModelScenario(
            p=p, groups=groups, lbas=(sampled[-1],), spare=True, fail_disk=1,
            resume_everywhere=False,
        ),
    ]
    return singles + pairs + batched + fleet


def run_model_check(
    primes: tuple[int, ...] = (5, 7)
) -> tuple[int, list[Finding], ModelStats]:
    """Model-check the online protocol at each prime (5 exhaustive)."""
    stats = ModelStats()
    findings: list[Finding] = []
    for p in primes:
        for scenario in model_scenarios(p, exhaustive=(p == 5)):
            s, f = check_scenario(scenario)
            stats.merge(s)
            findings.extend(f)
    return stats.checks, findings, stats
