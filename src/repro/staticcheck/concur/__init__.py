"""Concurrency verification plane for the online-migration protocols.

Three tools over one question — *is every access to shared state
ordered?* — at three levels of abstraction:

* :mod:`~repro.staticcheck.concur.model` — exhaustive small-scope
  interleaving model checker over the online converter's explicit
  transitions (SC-C001..C004 safety invariants);
* :mod:`~repro.staticcheck.concur.races` — AST happens-before race
  detector over the process-crossing modules (SC-R001..R004);
* :mod:`~repro.staticcheck.concur.sanitizer` — opt-in runtime
  vector-clock recorder behind the counted BlockArray I/O API;
* :mod:`~repro.staticcheck.concur.selftest` — seeded-defect probes
  proving all of the above have zero false negatives (SC-S002).

``repro check --concur`` (and ``python -m repro.staticcheck --analyzer
concur``) runs the full plane.
"""

from __future__ import annotations

from repro.staticcheck.concur.model import (
    ModelScenario,
    ModelStats,
    check_scenario,
    model_scenarios,
    run_model_check,
)
from repro.staticcheck.concur.races import analyze_source, run_races
from repro.staticcheck.concur.sanitizer import (
    AccessViolation,
    BlockSanitizer,
    SharedStateRaceError,
    sanitized_online_smoke,
)
from repro.staticcheck.concur.selftest import run_concur_selftest
from repro.staticcheck.report import Finding

__all__ = [
    "ModelScenario",
    "ModelStats",
    "check_scenario",
    "model_scenarios",
    "run_model_check",
    "analyze_source",
    "run_races",
    "AccessViolation",
    "BlockSanitizer",
    "SharedStateRaceError",
    "sanitized_online_smoke",
    "run_concur_selftest",
    "run_concur",
]


def run_concur(primes: tuple[int, ...] = (5, 7)) -> tuple[int, list[Finding]]:
    """The full concurrency plane: model check, race scan, sanitizer
    smoke, seeded-defect selftest.  Returns ``(checks, findings)``."""
    checks, findings, _stats = run_model_check(
        primes=tuple(p for p in primes if p in (5, 7)) or (5, 7)
    )
    c, f = run_races()
    checks += c
    findings.extend(f)
    # fenced cooperative run must be violation-free
    smoke = sanitized_online_smoke(fenced=True)
    checks += 1
    for violation in smoke.violations:
        findings.append(
            Finding(
                analyzer="concur",
                rule="SC-C005",
                location="sanitizer-smoke",
                message=violation.describe(),
            )
        )
    c, f = run_concur_selftest()
    checks += c
    findings.extend(f)
    return checks, findings
