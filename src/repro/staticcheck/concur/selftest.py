"""Seeded-defect selftest: the concur plane must catch every plant.

Mirrors :mod:`repro.staticcheck.selftest`: each probe injects one
deliberate concurrency defect and asserts the matching tool reports it.
A probe whose defect goes *unreported* is itself a finding (**SC-S002**)
— a silent verification plane is worse than none, because it converts
"unchecked" into "checked and passed".

Probes:

* **lost diagonal patch** — a converter whose write path drops the
  diagonal-parity RMW (the exact Algorithm 2 lost-write window); the
  model checker must flag SC-C001/C003/C004.
* **mark-before-write** — the journal mark lands before the parity
  bytes; a torn crash then leaves a marked-but-stale watermark that the
  model checker's post-crash SC-C002 sweep must flag.
* **eager watermark** — the journal runs one entry ahead of generation;
  same SC-C002 obligation.
* **group-commit-before-run** — the batched converter's ``mark_many``
  flush lands before the run's parity writes; a crash inside the run
  then leaves marked-but-stale watermarks that the batched-scenario
  SC-C002 sweep must flag.
* **racy cache write** — a worker-context function publishing a shared
  file without the atomic-rename idiom; the AST race detector must flag
  SC-R002 (plus SC-R001/R003/R004 probes for the other rules).
* **unfenced interleaving** — the sanitizer smoke with its sync edges
  dropped; the vector-clock recorder must report the write conflicts.
"""

from __future__ import annotations

import textwrap

from repro.staticcheck.report import Finding

__all__ = ["run_concur_selftest"]


def _miss(probe: str, expected: str) -> Finding:
    return Finding(
        analyzer="concur",
        rule="SC-S002",
        location=f"selftest:{probe}",
        message=(
            f"seeded defect was NOT reported (expected {expected}) — "
            "the concur plane has a false-negative blind spot"
        ),
        severity="error",
    )


def _model_probes() -> tuple[int, list[Finding]]:
    from repro.migration.online import OnlineCode56Conversion
    from repro.staticcheck.concur.model import ModelScenario, check_scenario

    class LostDiagonalPatch(OnlineCode56Conversion):
        """Defect: the write path forgets the diagonal-parity RMW."""

        def _patch_diagonal(self, group, prow, delta, report):
            report.writes_to_converted += 1
            return 2  # claims the I/O, never touches the parity

    class MarkBeforeWrite(OnlineCode56Conversion):
        """Defect: journal mark ordered before the parity write."""

        def generate_step(self, report):
            pending = self.pending_parity()
            if pending is not None and self.journal is not None:
                self.journal.mark(*pending)
            return super().generate_step(report)

    class EagerWatermark(OnlineCode56Conversion):
        """Defect: the watermark runs one entry ahead of generation."""

        def mark_step(self):
            super().mark_step()
            if self.journal is not None:
                ahead = self.pending_parity()
                if ahead is not None:
                    self.journal.mark(*ahead)

    class GroupCommitBeforeRun(OnlineCode56Conversion):
        """Defect: the batched group commit precedes the parity writes."""

        def generate_run_step(self, report, budget=None):
            run = self.pending_run(budget)
            if run and self.journal is not None:
                self.journal.mark_many(run)
            return super().generate_run_step(report, budget=budget)

    scenario = ModelScenario(p=5, groups=2, lbas=(0, 7))
    batched = ModelScenario(p=5, groups=2, lbas=(0, 7), batch=2)
    probes = (
        ("lost-diagonal-patch", scenario, LostDiagonalPatch,
         {"SC-C001", "SC-C003", "SC-C004"}),
        ("mark-before-write", scenario, MarkBeforeWrite, {"SC-C002"}),
        ("eager-watermark", scenario, EagerWatermark, {"SC-C002"}),
        ("group-commit-before-run", batched, GroupCommitBeforeRun, {"SC-C002"}),
    )
    findings: list[Finding] = []
    for name, scen, cls, expected in probes:
        _stats, caught = check_scenario(scen, converter_cls=cls)
        if not {f.rule for f in caught} & expected:
            findings.append(_miss(name, " or ".join(sorted(expected))))
    return len(probes), findings


def _race_probes() -> tuple[int, list[Finding]]:
    from repro.staticcheck.concur.races import analyze_source

    probes = (
        ("worker-global-write", "SC-R001", """
            _CACHE: dict = {}

            def worker(x):
                _CACHE[x] = compute(x)

            def go(executor, xs):
                for x in xs:
                    executor.submit(worker, x)
        """),
        ("racy-cache-write", "SC-R002", """
            def worker(cache_path, payload):
                with open(cache_path, "w") as fh:
                    fh.write(payload)

            def go(executor):
                executor.submit(worker, "programs.json", "{}")
        """),
        ("worker-shm-store", "SC-R003", """
            from repro.sweep.shm import SharedNDArray

            def worker(handle):
                segment = SharedNDArray.attach(handle)
                segment.ndarray[0] = 99

            def go(executor, handle):
                executor.submit(worker, handle)
        """),
        ("worker-singleton-swap", "SC-R004", """
            def worker(task):
                from repro.obs import set_registry
                set_registry(None)

            def go(executor, task):
                executor.submit(worker, task)
        """),
    )
    findings: list[Finding] = []
    for name, rule, source in probes:
        caught = analyze_source(textwrap.dedent(source), f"selftest/{name}.py")
        if rule not in {f.rule for f in caught}:
            findings.append(_miss(name, rule))
    return len(probes), findings


def _sanitizer_probe() -> tuple[int, list[Finding]]:
    from repro.staticcheck.concur.sanitizer import sanitized_online_smoke

    findings: list[Finding] = []
    if sanitized_online_smoke(fenced=False).violations == []:
        findings.append(_miss("unfenced-interleaving", "a vector-clock race"))
    return 1, findings


def run_concur_selftest() -> tuple[int, list[Finding]]:
    """Every seeded concurrency defect must be caught (zero false negatives)."""
    checks = 0
    findings: list[Finding] = []
    for probe in (_model_probes, _race_probes, _sanitizer_probe):
        c, f = probe()
        checks += c
        findings.extend(f)
    return checks, findings
