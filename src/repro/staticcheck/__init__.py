"""Static verification: symbolic code prover, dataflow analyzer, lint.

Five analyzers, one report format, one front-end:

* :mod:`repro.staticcheck.prover` — proves the MDS property and the
  Code 5-6 / RAID-5 parity identity from parity-check matrices over
  GF(2), without executing a single XOR;
* :mod:`repro.staticcheck.dataflow` — def/use analysis of conversion
  plans, their compiled index programs, and the online converter's
  write interleavings;
* :mod:`repro.staticcheck.lint` — project-specific AST rules over
  ``src/``;
* :mod:`repro.staticcheck.selftest` — seeded faults proving the
  checkers are not vacuously green;
* :mod:`repro.staticcheck.concur` — the concurrency plane: exhaustive
  interleaving model checker over the online converter (SC-C rules),
  AST happens-before race detector (SC-R rules), runtime vector-clock
  sanitizer, and its own seeded-defect selftest.

Run everything with ``python -m repro.staticcheck`` or ``repro check``;
the concurrency plane is opt-in via ``--concur`` (it explores tens of
thousands of interleavings and has its own CI job).
"""

from repro.staticcheck.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    CheckReport,
    Finding,
    Severity,
)
from repro.staticcheck.runner import ANALYZERS, DEFAULT_ANALYZERS, run_checks

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
    "CheckReport",
    "Finding",
    "Severity",
    "ANALYZERS",
    "DEFAULT_ANALYZERS",
    "run_checks",
]
