"""Static verification: symbolic code prover, dataflow analyzer, lint.

Three analyzers, one report format, one front-end:

* :mod:`repro.staticcheck.prover` — proves the MDS property and the
  Code 5-6 / RAID-5 parity identity from parity-check matrices over
  GF(2), without executing a single XOR;
* :mod:`repro.staticcheck.dataflow` — def/use analysis of conversion
  plans, their compiled index programs, and the online converter's
  write interleavings;
* :mod:`repro.staticcheck.lint` — project-specific AST rules over
  ``src/``;
* :mod:`repro.staticcheck.selftest` — seeded faults proving the
  checkers are not vacuously green.

Run everything with ``python -m repro.staticcheck`` or ``repro check``.
"""

from repro.staticcheck.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    CheckReport,
    Finding,
    Severity,
)
from repro.staticcheck.runner import ANALYZERS, run_checks

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
    "CheckReport",
    "Finding",
    "Severity",
    "ANALYZERS",
    "run_checks",
]
