"""Virtual disks: Code 5-6 over any number of source disks (Section IV-B2).

``m + 1`` prime is the sweet spot; otherwise the next prime ``p`` is used
with ``v = p - m - 1`` *virtual disks* — imaginary all-NULL columns
prepended to the stripe.  The virtual-element rule voids both the
virtual columns and every data cell whose horizontal parity would sit on
one, so each stripe-group carries ``m`` real rows of ``m - 1`` data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.geometry import CodeLayout
from repro.codes.registry import get_layout
from repro.util.primes import prime_for_disks

__all__ = ["VirtualDiskPlan", "virtual_disk_plan"]


@dataclass(frozen=True)
class VirtualDiskPlan:
    """How a RAID-5 of ``m`` disks maps onto a Code 5-6 stripe."""

    m: int  # source disks
    n: int  # converted disks (m + 1)
    p: int  # prime stripe parameter
    v: int  # virtual disks
    virtual_cols: tuple[int, ...]

    @property
    def needs_virtual(self) -> bool:
        return self.v > 0

    def layout(self) -> CodeLayout:
        return get_layout("code56", self.p, virtual_cols=self.virtual_cols)

    @property
    def data_per_group(self) -> int:
        """Real data cells per stripe (= ``m`` source rows of ``m-1``)."""
        return self.m * (self.m - 1)


def virtual_disk_plan(m: int) -> VirtualDiskPlan:
    """Pick ``p`` and the virtual columns for an ``m``-disk RAID-5."""
    if m < 3:
        raise ValueError("need at least a 3-disk RAID-5")
    p = prime_for_disks(m)
    v = p - 1 - m
    return VirtualDiskPlan(
        m=m,
        n=m + 1,
        p=p,
        v=v,
        virtual_cols=tuple(range(v)),
    )
