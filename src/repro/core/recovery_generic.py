"""Hybrid single-disk recovery for *any* registered code.

Section III-E.4 notes that Xiang et al.'s read-sharing recovery (built
for RDP, ~12.6% recovery-time saving) "can be used in many MDS codes".
This module is that generalisation: for a single failed column, every
lost cell independently picks one covering parity chain, and the
optimiser minimises the number of *distinct* surviving blocks read —
reads shared between the chosen chains are counted once.

For Code 5-6 this reproduces :mod:`repro.core.recovery` (9 vs 12 reads
at p=5); for RDP it reproduces the Xiang et al. result; for single-family
codes (X-Code rows are covered by two diagonal families, P-Code cells by
two label chains) it still finds sharing where the geometry allows it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.codes.geometry import Cell, ChainKind, CodeLayout
from repro.codes.plans import RecoveryPlan, RecoveryStep

__all__ = ["GenericHybridRecovery", "plan_generic_hybrid_recovery"]

#: exhaustive search bound on the number of choice combinations
_EXHAUSTIVE_COMBOS = 1 << 14


@dataclass(frozen=True)
class GenericHybridRecovery:
    """Scored single-column recovery for an arbitrary layout."""

    layout_name: str
    column: int
    plan: RecoveryPlan
    reads: int
    conventional_reads: int

    @property
    def read_savings(self) -> float:
        if self.conventional_reads == 0:
            return 0.0
        return 1.0 - self.reads / self.conventional_reads


def _candidates(layout: CodeLayout, lost: set[Cell]) -> dict[Cell, list[tuple[Cell, ...]]]:
    """Per lost cell: every source-set (one per usable chain).

    A chain is usable for a cell when the cell is its parity (recompute)
    or a member (solve), and no *other* lost cell appears among the
    remaining terms.
    """
    out: dict[Cell, list[tuple[Cell, ...]]] = {cell: [] for cell in lost}
    virtual = layout.virtual_cells
    for chain in layout.chains:
        terms = [t for t in (chain.parity, *chain.members) if t not in virtual]
        hit = [t for t in terms if t in lost]
        if len(hit) != 1:
            continue  # covers none, or cannot isolate a single unknown
        target = hit[0]
        sources = tuple(sorted(t for t in terms if t != target))
        out[target].append(sources)
    return out


def _ordered_candidates(
    layout: CodeLayout, cands: dict[Cell, list[tuple[Cell, ...]]]
) -> dict[Cell, list[tuple[Cell, ...]]]:
    """Stable order: horizontal-family chains first (the conventional pick)."""
    horiz_parities = {
        ch.parity for ch in layout.chains if ch.kind is ChainKind.HORIZONTAL
    }

    def rank(cell: Cell, sources: tuple[Cell, ...]) -> tuple:
        chain_parity = None
        for ch in layout.chains:
            terms = {ch.parity, *ch.members}
            if cell in terms and set(sources) == terms - {cell} - layout.virtual_cells:
                chain_parity = ch.parity
                break
        is_horizontal = chain_parity in horiz_parities
        return (0 if is_horizontal else 1, sources)

    return {
        cell: sorted(options, key=lambda s: rank(cell, s))
        for cell, options in cands.items()
    }


def plan_generic_hybrid_recovery(layout: CodeLayout, column: int) -> GenericHybridRecovery:
    """Minimise distinct reads to rebuild one failed column of ``layout``."""
    if column not in layout.physical_cols:
        raise ValueError(f"column {column} is not a physical column of {layout.name}")
    lost = {
        (r, column)
        for r in range(layout.rows)
        if (r, column) not in layout.virtual_cells
    }
    cands = _ordered_candidates(layout, _candidates(layout, lost))
    uncovered = [cell for cell, options in cands.items() if not options]
    if uncovered:
        raise ValueError(
            f"{layout.name}: cells {uncovered} have no single-unknown chain — "
            "not a single-failure-correcting layout?"
        )
    cells = sorted(cands)
    option_lists = [cands[c] for c in cells]

    def score(choice: tuple[tuple[Cell, ...], ...]) -> int:
        reads: set[Cell] = set()
        for sources in choice:
            reads.update(sources)
        return len(reads)

    conventional = tuple(options[0] for options in option_lists)
    conventional_reads = score(conventional)

    combos = 1
    for options in option_lists:
        combos *= len(options)
    if combos <= _EXHAUSTIVE_COMBOS:
        best = min(itertools.product(*option_lists), key=score)
    else:
        # greedy descent: flip one cell's choice at a time while it helps
        best = list(conventional)
        best_reads = conventional_reads
        improved = True
        while improved:
            improved = False
            for i, options in enumerate(option_lists):
                for opt in options:
                    if opt == best[i]:
                        continue
                    trial = list(best)
                    trial[i] = opt
                    r = score(tuple(trial))
                    if r < best_reads:
                        best, best_reads = trial, r
                        improved = True
        best = tuple(best)

    steps = tuple(
        RecoveryStep(target=cell, sources=sources)
        for cell, sources in zip(cells, best)
    )
    plan = RecoveryPlan(lost=tuple(cells), steps=steps)
    return GenericHybridRecovery(
        layout_name=layout.name,
        column=column,
        plan=plan,
        reads=score(best),
        conventional_reads=conventional_reads,
    )
