"""Algorithm 1 of the paper: Code 5-6 double-erasure reconstruction.

The generic GF(2) decoder (:mod:`repro.codes.decoder`) recovers any
pattern but expresses each lost cell directly in surviving cells, which
costs extra XORs.  Algorithm 1 instead *walks two recovery chains*:

* **Case I** — the diagonal parity column ``p-1`` is one of the failures:
  rebuild the square column row-by-row through horizontal chains, then
  recompute the diagonal column.
* **Case II** — two square columns ``f1 < f2 <= p-2`` fail: exactly two
  diagonal chains have a single lost member (the diagonals that *miss*
  column ``f2`` and ``f1`` respectively), giving the starting points
  ``C(f2-f1-1, f1)`` and ``C(p-1-(f2-f1), f2)``.  From each start the
  walk alternates horizontal steps (recover the sibling cell in the other
  failed column) and diagonal steps, terminating at the horizontal-parity
  cells ``C(p-2-f2, f2)`` and ``C(p-2-f1, f1)``.

Every step uses one parity chain, so each lost element costs ``p-3``
XORs — the optimal decoding complexity claimed in Section III-E.  The
output is a standard :class:`RecoveryPlan`, validated against the generic
decoder in the test suite.
"""

from __future__ import annotations

from repro.codes.code56 import horizontal_parity_cell
from repro.codes.geometry import Cell, CodeLayout
from repro.codes.plans import RecoveryPlan, RecoveryStep

__all__ = ["plan_double_column_recovery", "recovery_chain_starting_points"]


def recovery_chain_starting_points(p: int, f1: int, f2: int) -> tuple[Cell, Cell]:
    """The two data cells recoverable immediately (Theorem 1's proof).

    ``C(f2-f1-1, f1)`` lies on the diagonal that misses column ``f2``;
    ``C(p-1-(f2-f1), f2)`` lies on the diagonal that misses ``f1``.
    """
    if not 0 <= f1 < f2 <= p - 2:
        raise ValueError("starting points exist only for two square columns")
    return (f2 - f1 - 1, f1), (p - 1 - (f2 - f1), f2)


def _horizontal_sources(p: int, target: Cell) -> tuple[Cell, ...]:
    """All other square cells in the target's row (Eq. 1 / Eq. 3)."""
    i, c = target
    return tuple((i, j) for j in range(p - 1) if j != c)


def _diagonal_sources(p: int, target: Cell) -> tuple[Cell, ...]:
    """The diagonal parity plus the target's diagonal siblings (Eq. 5)."""
    i, c = target
    d = (i + c) % p
    parity_row = (d + 1) % p  # the diagonal stored at row r covers d = r - 1
    siblings = tuple(
        (r, j)
        for r in range(p - 1)
        for j in range(p - 1)
        if (r + j) % p == d and (r, j) != target
    )
    return ((parity_row, p - 1), *siblings)


def _recompute_diagonal_sources(p: int, parity_row: int) -> tuple[Cell, ...]:
    d = (parity_row - 1) % p
    return tuple(
        (r, j) for r in range(p - 1) for j in range(p - 1) if (r + j) % p == d
    )


def plan_double_column_recovery(layout: CodeLayout, f1: int, f2: int | None = None) -> RecoveryPlan:
    """Build Algorithm 1's recovery plan for failed columns ``f1`` (and ``f2``).

    Handles single failures too (either a square column or the diagonal
    column), so callers can use one entry point for any disk-loss event.
    """
    if layout.name != "code56":
        raise ValueError("the chain decoder is specific to Code 5-6")
    if layout.virtual_cols:
        raise ValueError(
            "the chain walk assumes a full prime stripe; decode shortened "
            "stripes with the generic decoder"
        )
    p = layout.p
    if f2 is not None and f2 < f1:
        f1, f2 = f2, f1
    for f in (f1,) if f2 is None else (f1, f2):
        if not 0 <= f <= p - 1:
            raise ValueError(f"column {f} outside stripe of {p} columns")
    if f2 == f1:
        f2 = None

    steps: list[RecoveryStep] = []

    def lost_cells(*cols: int) -> tuple[Cell, ...]:
        return tuple((r, c) for c in cols for r in range(p - 1))

    # ------------------------------------------------- single-column failure
    if f2 is None:
        if f1 == p - 1:
            for i in range(p - 1):
                steps.append(
                    RecoveryStep(target=(i, p - 1), sources=_recompute_diagonal_sources(p, i))
                )
        else:
            for i in range(p - 1):
                steps.append(
                    RecoveryStep(target=(i, f1), sources=_horizontal_sources(p, (i, f1)))
                )
        return RecoveryPlan(lost=lost_cells(f1), steps=tuple(steps))

    # --------------------------------------------- Case I: diagonal col lost
    if f2 == p - 1:
        for i in range(p - 1):
            steps.append(
                RecoveryStep(target=(i, f1), sources=_horizontal_sources(p, (i, f1)))
            )
        for i in range(p - 1):
            steps.append(
                RecoveryStep(target=(i, p - 1), sources=_recompute_diagonal_sources(p, i))
            )
        return RecoveryPlan(lost=lost_cells(f1, p - 1), steps=tuple(steps))

    # ------------------------------------- Case II: two square columns lost
    start_a, start_b = recovery_chain_starting_points(p, f1, f2)

    def walk(start: Cell, own_col: int, other_col: int) -> None:
        """Walk one recovery chain from a diagonal-recoverable start."""
        cur = start
        steps.append(RecoveryStep(target=cur, sources=_diagonal_sources(p, cur)))
        while True:
            # Horizontal step: the sibling of `cur` in the other failed column.
            sibling = (cur[0], other_col)
            steps.append(
                RecoveryStep(target=sibling, sources=_horizontal_sources(p, sibling))
            )
            if sibling == horizontal_parity_cell(p, sibling[0]):
                return  # endpoint: the row parity itself, just recomputed
            # Diagonal step: the next lost cell of `sibling`'s diagonal is in
            # our own column at row (r + other - own) mod p.
            nxt = ((sibling[0] + other_col - own_col) % p, own_col)
            steps.append(RecoveryStep(target=nxt, sources=_diagonal_sources(p, nxt)))
            cur = nxt

    walk(start_a, own_col=f1, other_col=f2)
    walk(start_b, own_col=f2, other_col=f1)
    return RecoveryPlan(lost=lost_cells(f1, f2), steps=tuple(steps))
