"""Hybrid single-disk recovery for Code 5-6 (Section III-E.4, Figure 6).

When one square column fails, every lost data cell can be rebuilt from
either its horizontal chain or its diagonal chain.  Choosing a mix lets
reads be *shared* between the two families (a surviving cell that sits on
both a chosen row and a chosen diagonal is read once), cutting recovery
read I/O — the approach Xiang et al. proposed for RDP, applied here to
Code 5-6.  At ``p = 5`` the paper reports 9 reads instead of 12 per
stripe (a 25% reduction; the paper rounds the per-element read saving to
"up to 33%": 12/9 = 1.33x).

``plan_hybrid_recovery`` enumerates all 2^(p-2) choice vectors for small
``p`` (the paper's regime) and falls back to a local-search heuristic for
large ``p``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.codes.code56 import horizontal_parity_cell
from repro.codes.geometry import Cell, CodeLayout
from repro.codes.plans import RecoveryPlan, RecoveryStep
from repro.core.chain_decoder import (
    _diagonal_sources,
    _horizontal_sources,
    plan_double_column_recovery,
)

__all__ = ["HybridRecovery", "plan_hybrid_recovery", "conventional_recovery_reads"]

#: Exhaustive search bound: 2^(p-2) plans are scored below this p.
_EXHAUSTIVE_P_LIMIT = 17


@dataclass(frozen=True)
class HybridRecovery:
    """A scored single-column recovery strategy."""

    column: int
    plan: RecoveryPlan
    #: chain family chosen per lost data cell ("horizontal" / "diagonal")
    choices: tuple[str, ...]
    reads: int
    conventional_reads: int

    @property
    def read_savings(self) -> float:
        """Fraction of conventional reads avoided (paper's Fig. 6 metric)."""
        if self.conventional_reads == 0:
            return 0.0
        return 1.0 - self.reads / self.conventional_reads


def conventional_recovery_reads(layout: CodeLayout, column: int) -> int:
    """Reads used by the conventional single-family recovery.

    A failed square column is rebuilt purely through horizontal chains
    (each of the ``p-1`` rows reads its ``p-2`` surviving cells; rows
    share nothing).  The diagonal column is rebuilt purely from data.
    """
    plan = plan_double_column_recovery(layout, column)
    return plan.total_reads


def plan_hybrid_recovery(layout: CodeLayout, column: int) -> HybridRecovery:
    """Best-mix recovery of a single failed column of Code 5-6.

    For the diagonal column there is no choice (horizontal chains do not
    cover it), so the conventional plan is returned as-is.
    """
    if layout.name != "code56":
        raise ValueError("hybrid recovery is specific to Code 5-6")
    p = layout.p
    if column == p - 1:
        plan = plan_double_column_recovery(layout, column)
        reads = plan.total_reads
        return HybridRecovery(
            column=column,
            plan=plan,
            choices=(),
            reads=reads,
            conventional_reads=reads,
        )
    if not 0 <= column <= p - 2:
        raise ValueError(f"column {column} outside stripe")

    parity_cell = horizontal_parity_cell(p, p - 2 - column)
    data_rows = [r for r in range(p - 1) if (r, column) != parity_cell]

    def sources_for(row: int, family: str) -> tuple[Cell, ...]:
        target = (row, column)
        if family == "horizontal":
            return _horizontal_sources(p, target)
        return _diagonal_sources(p, target)

    def score(choice: tuple[str, ...]) -> tuple[int, set[Cell]]:
        reads: set[Cell] = set()
        # the column's horizontal parity cell is always recomputed from its
        # row (it belongs to no diagonal chain)
        reads.update(_horizontal_sources(p, parity_cell))
        for row, family in zip(data_rows, choice):
            reads.update(sources_for(row, family))
        return len(reads), reads

    if p <= _EXHAUSTIVE_P_LIMIT:
        best_choice = min(
            itertools.product(("horizontal", "diagonal"), repeat=len(data_rows)),
            key=lambda ch: (score(ch)[0], ch),
        )
    else:
        # Greedy + single-flip local search for large p.
        best_choice = tuple("horizontal" for _ in data_rows)
        best_reads = score(best_choice)[0]
        improved = True
        while improved:
            improved = False
            for i in range(len(data_rows)):
                flipped = list(best_choice)
                flipped[i] = "diagonal" if flipped[i] == "horizontal" else "horizontal"
                cand = tuple(flipped)
                cand_reads = score(cand)[0]
                if cand_reads < best_reads:
                    best_choice, best_reads = cand, cand_reads
                    improved = True

    steps = [
        RecoveryStep(target=(row, column), sources=sources_for(row, family))
        for row, family in zip(data_rows, best_choice)
    ]
    steps.append(
        RecoveryStep(target=parity_cell, sources=_horizontal_sources(p, parity_cell))
    )
    plan = RecoveryPlan(
        lost=tuple((r, column) for r in range(p - 1)), steps=tuple(steps)
    )
    reads = plan.total_reads
    return HybridRecovery(
        column=column,
        plan=plan,
        choices=best_choice,
        reads=reads,
        conventional_reads=conventional_recovery_reads(layout, column),
    )
