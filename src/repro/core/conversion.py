"""High-level bidirectional RAID-5 <-> RAID-6 migration API (Section IV).

This is the library's front door for the paper's headline capability:

* :func:`upgrade_to_raid6` — offline/batch conversion through the plan
  engine (verified end state, measured I/O), handling any ``m >= 3`` via
  virtual disks;
* :class:`Code56Migrator` — stateful facade that also runs the *online*
  conversion of Algorithm 2 (concurrent application I/O) and the trivial
  reverse migration (drop the diagonal column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.registry import get_code
from repro.core.virtual import virtual_disk_plan
from repro.migration.approaches import build_plan
from repro.migration.engine import (
    ConversionResult,
    execute_plan,
    prepare_source_array,
    verify_conversion,
)
from repro.migration.online import (
    DiskFailureEvent,
    OnlineCode56Conversion,
    OnlineReport,
    OnlineRequest,
)
from repro.migration.plan import ConversionPlan
from repro.raid.array import BlockArray
from repro.raid.layouts import Raid5Layout
from repro.raid.raid5 import Raid5Array
from repro.raid.raid6 import Raid6Array

__all__ = ["MigrationOutcome", "upgrade_to_raid6", "downgrade_to_raid5", "Code56Migrator"]


@dataclass
class MigrationOutcome:
    """A completed (and audited) RAID-5 -> RAID-6 migration."""

    plan: ConversionPlan
    result: ConversionResult
    verified: bool

    @property
    def total_ios(self) -> int:
        return self.result.measured_total

    @property
    def summary(self) -> str:
        return (
            f"{self.plan.describe()} | measured {self.result.measured_reads}R/"
            f"{self.result.measured_writes}W | verified={self.verified}"
        )


def upgrade_to_raid6(
    m: int,
    groups: int = 4,
    block_size: int = 16,
    rng: np.random.Generator | None = None,
    data: np.ndarray | None = None,
) -> MigrationOutcome:
    """Convert a freshly built ``m``-disk RAID-5 to a Code 5-6 RAID-6.

    Builds the source array (filled with ``data`` or random payloads),
    executes the direct conversion plan, and audits the result.  ``m``
    may be any width >= 3; non-prime ``m+1`` engages virtual disks.
    """
    vplan = virtual_disk_plan(m)
    plan = build_plan("code56", "direct", vplan.p, groups=groups, n_disks=m + 1)
    if rng is None:
        rng = np.random.default_rng(0)
    array, payload = prepare_source_array(plan, rng, block_size=block_size)
    if data is not None:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != payload.shape:
            raise ValueError(f"data must be {payload.shape}, got {data.shape}")
        # re-format the source region with caller data
        src = Raid5Array(array, plan.source_layout, n_disks=plan.m)
        for lba in range(plan.data_blocks):
            stripe, disk = src.locate(lba)
            array.raw(disk, stripe)[...] = data[lba]
        for stripe in range(plan.data_blocks // (plan.m - 1)):
            pd = src.parity_disk(stripe)
            acc = np.zeros(block_size, dtype=np.uint8)
            for d in range(plan.m):
                if d != pd:
                    np.bitwise_xor(acc, array.raw(d, stripe), out=acc)
            array.raw(pd, stripe)[...] = acc
        payload = data
        array.reset_counters()
    result = execute_plan(plan, array, payload)
    verified = verify_conversion(result)
    return MigrationOutcome(plan=plan, result=result, verified=verified)


def downgrade_to_raid5(array: BlockArray, p: int) -> Raid5Array:
    """RAID-6 -> RAID-5 (Algorithm 2's reverse direction).

    Step 1: check ``n == p`` and that the Code 5-6 parities are
    consistent; Step 2: delete the last (diagonal-parity) disk.  No data
    or parity I/O is needed — the remaining columns *are* a
    left-asymmetric RAID-5.
    """
    if array.n_disks != p:
        raise ValueError(f"expected a Code 5-6 array of {p} disks, got {array.n_disks}")
    code = get_code("code56", p)
    probe = Raid6Array(array, code)
    if not probe.verify():
        raise ValueError("array is not a consistent Code 5-6 RAID-6; refusing to downgrade")
    array.remove_disk()
    raid5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=p - 1)
    if not raid5.verify():  # pragma: no cover - implied by the Code 5-6 check
        raise AssertionError("downgraded array lost RAID-5 consistency")
    return raid5


class Code56Migrator:
    """Stateful migration driver bound to a live array.

    Typical use (see ``examples/migrate_raid5_to_raid6.py``)::

        migrator = Code56Migrator(array, p=5)
        migrator.add_parity_disk()          # Step 2
        report = migrator.convert_online(requests)   # Step 3
        raid6 = migrator.as_raid6()
    """

    def __init__(self, array: BlockArray, p: int):
        self.array = array
        self.p = p
        self.m = p - 1
        self._online: OnlineCode56Conversion | None = None

    def check_source(self) -> None:
        """Algorithm 2, Step 1: the array must be an m = p-1 RAID-5."""
        raid5 = Raid5Array(self.array, Raid5Layout.LEFT_ASYMMETRIC, n_disks=self.m)
        if not raid5.verify():
            raise ValueError("source is not a consistent left-asymmetric RAID-5")

    def add_parity_disk(self) -> int:
        """Algorithm 2, Step 2: hot-add the diagonal-parity disk."""
        if self.array.n_disks >= self.p:
            return self.p - 1
        return self.array.add_disk()

    def convert_online(
        self,
        requests: list[OnlineRequest] | None = None,
        failures: list[DiskFailureEvent] | None = None,
    ) -> OnlineReport:
        """Algorithm 2, Step 3: conversion concurrent with app I/O.

        ``failures`` injects disk losses mid-conversion; the migration
        completes degraded and the audit is deferred until the failed
        disks are rebuilt (``as_raid6().rebuild_disks(...)``).
        """
        self._online = OnlineCode56Conversion(self.array, self.p)
        report = self._online.run(requests or [], failures=failures)
        if not self.array.failed_disks:
            if not self._online.verify():
                raise AssertionError("online conversion left inconsistent parities")
        return report

    def as_raid6(self, rotation_period: int | None = None) -> Raid6Array:
        return Raid6Array(self.array, get_code("code56", self.p), rotation_period)

    def revert(self) -> Raid5Array:
        """RAID-6 -> RAID-5: drop the diagonal column."""
        return downgrade_to_raid5(self.array, self.p)
