"""The paper's contribution: Code 5-6 algorithms beyond raw geometry.

* :mod:`repro.core.chain_decoder` — Algorithm 1 (two recovery chains)
* :mod:`repro.core.recovery` — hybrid single-disk recovery (Fig. 6)
* :mod:`repro.core.conversion` — bidirectional migration (Algorithm 2)
* :mod:`repro.core.virtual` — virtual disks for any array width
"""

from repro.core.chain_decoder import plan_double_column_recovery, recovery_chain_starting_points
from repro.core.conversion import (
    Code56Migrator,
    MigrationOutcome,
    downgrade_to_raid5,
    upgrade_to_raid6,
)
from repro.core.recovery import HybridRecovery, conventional_recovery_reads, plan_hybrid_recovery
from repro.core.virtual import VirtualDiskPlan, virtual_disk_plan

__all__ = [
    "plan_double_column_recovery",
    "recovery_chain_starting_points",
    "Code56Migrator",
    "MigrationOutcome",
    "downgrade_to_raid5",
    "upgrade_to_raid6",
    "HybridRecovery",
    "conventional_recovery_reads",
    "plan_hybrid_recovery",
    "VirtualDiskPlan",
    "virtual_disk_plan",
]

from repro.core.recovery_generic import GenericHybridRecovery, plan_generic_hybrid_recovery

__all__ += ["GenericHybridRecovery", "plan_generic_hybrid_recovery"]
