"""Minimal discrete-event core for the disk-array simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A timestamped event; ``seq`` breaks ties deterministically."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic priority queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(self._heap, Event(time, next(self._counter), kind, payload))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
