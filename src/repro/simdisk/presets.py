"""Disk parameter presets.

Loosely modelled on the drives DiskSim-era papers simulated; absolute
values are representative, not vendor-exact — the reproduction compares
*relative* conversion times, which depend on I/O mix and sequentiality,
not on the precise seek curve.
"""

from __future__ import annotations

from repro.simdisk.disk import DiskModel

__all__ = ["PRESETS", "get_preset"]

PRESETS: dict[str, DiskModel] = {
    # mainstream 7200rpm SATA (Barracuda-class), the paper's default tier
    "sata-7200": DiskModel(
        name="sata-7200",
        rpm=7200,
        single_cyl_seek_ms=0.8,
        max_seek_ms=10.0,
        cylinders=60_000,
        blocks_per_cylinder=1024,
        transfer_mb_s=100.0,
    ),
    # enterprise 10k SAS
    "sas-10k": DiskModel(
        name="sas-10k",
        rpm=10_000,
        single_cyl_seek_ms=0.5,
        max_seek_ms=7.0,
        cylinders=50_000,
        blocks_per_cylinder=768,
        transfer_mb_s=150.0,
    ),
    # enterprise 15k (Cheetah-class)
    "sas-15k": DiskModel(
        name="sas-15k",
        rpm=15_000,
        single_cyl_seek_ms=0.4,
        max_seek_ms=5.0,
        cylinders=40_000,
        blocks_per_cylinder=512,
        transfer_mb_s=200.0,
    ),
}


def get_preset(name: str) -> DiskModel:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown disk preset {name!r}; known: {sorted(PRESETS)}") from None
