"""Parametric mechanical disk model (the DiskSim substitute's core).

Service time of a request decomposes the classic way:

* **seek** — zero for same-cylinder access, otherwise
  ``single_cyl + k * sqrt(distance)`` scaled so a full-stroke seek costs
  ``max_seek`` (the square-root law DiskSim's extracted models follow);
* **rotation** — half a revolution on a random (non-sequential) access;
  zero when the head is already streaming sequentially;
* **transfer** — request size over the sustained media rate.

Sequential detection: a request to ``prev_block + 1`` streams (transfer
only).  This is what makes conversion workloads — long sequential reads
plus a sequential parity column — realistically cheaper per I/O than
random traffic, exactly the effect the paper leans on in Figure 19.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiskModel"]


@dataclass(frozen=True)
class DiskModel:
    """Mechanical parameters of one disk.

    Times are in milliseconds, sizes in bytes.
    """

    name: str
    rpm: float = 7200.0
    single_cyl_seek_ms: float = 0.8
    max_seek_ms: float = 10.0
    cylinders: int = 60_000
    blocks_per_cylinder: int = 1024
    transfer_mb_s: float = 100.0

    # ----------------------------------------------------------- components
    @property
    def revolution_ms(self) -> float:
        return 60_000.0 / self.rpm

    @property
    def avg_rotational_ms(self) -> float:
        return self.revolution_ms / 2.0

    def cylinder_of(self, block: int) -> int:
        return block // self.blocks_per_cylinder

    def seek_ms(self, from_cyl: int, to_cyl: int) -> float:
        d = abs(to_cyl - from_cyl)
        if d == 0:
            return 0.0
        span = max(self.cylinders - 1, 1)
        k = (self.max_seek_ms - self.single_cyl_seek_ms) / np.sqrt(span)
        return self.single_cyl_seek_ms + k * float(np.sqrt(d))

    def transfer_ms(self, size_bytes: int) -> float:
        return size_bytes / (self.transfer_mb_s * 1e6) * 1e3

    # ------------------------------------------------------------ composite
    def service_ms(self, prev_block: int | None, block: int, size_bytes: int) -> float:
        """Service time for a request given the previous head position.

        Three regimes:

        * ``block == prev+1`` — streaming: transfer only;
        * short *forward* gap on the same cylinder — the head flies over
          the skipped blocks at rotational speed (one transfer-time per
          skipped block, capped by a full rotational wait): this is what
          makes read-sparse recovery plans pay for the gaps they leave,
          but not a full seek per gap;
        * anything else — seek + average rotational latency + transfer.
        """
        xfer = self.transfer_ms(size_bytes)
        if prev_block is not None and block == prev_block + 1:
            return xfer  # streaming
        if prev_block is not None and block > prev_block and (
            self.cylinder_of(prev_block) == self.cylinder_of(block)
        ):
            flyover = (block - prev_block - 1) * xfer
            return min(flyover, self.avg_rotational_ms) + xfer
        if prev_block is None:
            seek = self.seek_ms(0, self.cylinder_of(block))
        else:
            seek = self.seek_ms(self.cylinder_of(prev_block), self.cylinder_of(block))
        return seek + self.avg_rotational_ms + xfer

    def service_components_vector(
        self,
        blocks: np.ndarray,
        size_bytes: int,
        first: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised FCFS service-time *breakdown*: (seek, rotate, transfer).

        The three arrays sum (exactly, term by term in the same order) to
        :meth:`service_ms_vector`; the timeline exporter renders them as
        the per-request slice breakdown.  Regimes map to components as:

        * streaming — transfer only;
        * same-cylinder forward fly-over — the wait is rotational
          (capped at half a revolution) plus the transfer;
        * random access — seek + average rotational latency + transfer.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size == 0:
            return np.zeros(0), np.zeros(0), np.zeros(0)
        prev = np.empty_like(blocks)
        prev[0] = -(1 << 40)  # force an initial seek from cylinder 0
        prev[1:] = blocks[:-1]
        if first is not None:
            prev = np.where(np.asarray(first, dtype=bool), -(1 << 40), prev)
        xfer = self.transfer_ms(size_bytes)
        sequential = blocks == prev + 1
        cyl = blocks // self.blocks_per_cylinder
        prev_cyl = np.clip(prev, 0, None) // self.blocks_per_cylinder
        prev_cyl[prev == -(1 << 40)] = 0
        # forward fly-over within a cylinder (see service_ms)
        gap = blocks - prev - 1
        flyover_ok = (gap > 0) & (cyl == prev_cyl)
        flyover_rot = np.minimum(gap * xfer, self.avg_rotational_ms)
        d = np.abs(cyl - prev_cyl)
        span = max(self.cylinders - 1, 1)
        k = (self.max_seek_ms - self.single_cyl_seek_ms) / np.sqrt(span)
        seek_random = np.where(d == 0, 0.0, self.single_cyl_seek_ms + k * np.sqrt(d))
        seek = np.where(sequential | flyover_ok, 0.0, seek_random)
        rot = np.where(
            sequential, 0.0, np.where(flyover_ok, flyover_rot, self.avg_rotational_ms)
        )
        return seek, rot, np.full_like(seek, xfer)

    def service_ms_vector(
        self,
        blocks: np.ndarray,
        size_bytes: int,
        first: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorised FCFS service times for a per-disk request sequence.

        Equivalent to chaining :meth:`service_ms` over ``blocks``; used by
        the fast closed-loop simulator at paper scale (0.6M blocks).

        ``first`` (optional boolean mask) marks positions that begin a
        fresh sequence — the head is parked at cylinder 0 there, exactly
        as at index 0.  It lets one call cover many disks' concatenated
        queues instead of one call per disk.
        """
        seek, rot, xfer = self.service_components_vector(blocks, size_bytes, first=first)
        if seek.size == 0:
            return np.zeros(0)
        return seek + rot + xfer
