"""Request validation and per-request service faults for the simulator.

Two concerns, both deliberately engine-agnostic so the closed-loop and
event-driven engines stay equivalent under them:

* :class:`SimRequestError` — typed rejection of malformed requests: a
  block address outside the disk's capacity, or a non-positive request
  size.  Both engines validate the trace up front (a real controller
  rejects these at the door; silently simulating them would fabricate
  service times for impossible geometry).
* :class:`ServiceFaults` — a deterministic, seeded model of transient
  media retries: each request independently suffers a retry penalty
  (e.g. an ECC re-read costing extra revolutions) with probability
  ``transient_rate``.  The penalty vector is keyed by *trace index*, not
  queue position, so any engine — whatever order it serves requests in —
  charges the same request the same penalty, preserving the tested
  closed-loop/event-driven equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simdisk.disk import DiskModel

__all__ = ["SimRequestError", "ServiceFaults", "validate_trace"]


class SimRequestError(ValueError):
    """A trace request the disk array cannot serve (bad address/size)."""

    def __init__(self, reason: str, *, index: int | None = None,
                 disk: int | None = None, block: int | None = None):
        self.reason = reason
        self.index = index
        self.disk = disk
        self.block = block
        where = "" if index is None else f" (request {index}"
        if index is not None:
            where += f", disk {disk}, block {block})"
        super().__init__(reason + where)


def validate_trace(trace, model: DiskModel, n_disks: int, *,
                   require_disk_in_range: bool = False) -> None:
    """Reject traces no real array could serve.

    ``require_disk_in_range`` is the event-driven engine's stance (it has
    exactly ``n_disks`` queues); the closed-loop engine historically
    *drops* requests beyond the array instead, so it validates only the
    requests it serves.
    """
    if trace.block_size <= 0:
        raise SimRequestError(
            f"request size must be positive, got {trace.block_size}"
        )
    if len(trace) == 0:
        return
    disk = np.asarray(trace.disk)
    block = np.asarray(trace.block, dtype=np.int64)
    capacity = model.cylinders * model.blocks_per_cylinder
    served = disk < n_disks if not require_disk_in_range else np.ones(len(disk), bool)
    if require_disk_in_range:
        bad = np.flatnonzero((disk < 0) | (disk >= n_disks))
        if bad.size:
            i = int(bad[0])
            raise SimRequestError(
                f"disk index out of range [0, {n_disks})",
                index=i, disk=int(disk[i]), block=int(block[i]),
            )
    bad = np.flatnonzero(served & ((block < 0) | (block >= capacity)))
    if bad.size:
        i = int(bad[0])
        raise SimRequestError(
            f"block address out of range [0, {capacity})",
            index=i, disk=int(disk[i]), block=int(block[i]),
        )


@dataclass(frozen=True)
class ServiceFaults:
    """Seeded transient-retry model applied on top of the service time.

    ``retry_penalty_ms`` is charged per hit — think of it as the extra
    revolutions an ECC-triggered re-read costs before the sector finally
    verifies.  The draw is one ``default_rng(seed)`` pass over the trace,
    so a scenario is reproducible from ``(seed, rate, penalty)`` alone.
    """

    seed: int = 0
    transient_rate: float = 0.0
    retry_penalty_ms: float = 10.0

    def delays_ms(self, n_requests: int) -> np.ndarray:
        """Per-request extra service time, indexed by trace position."""
        if n_requests == 0 or self.transient_rate <= 0.0:
            return np.zeros(n_requests)
        rng = np.random.default_rng(self.seed)
        hits = rng.random(n_requests) < self.transient_rate
        return np.where(hits, self.retry_penalty_ms, 0.0)

    def record(self, delays: np.ndarray) -> None:
        """Publish hit/penalty tallies to the metrics registry (if on)."""
        from repro.obs.metrics import get_registry

        registry = get_registry()
        if not registry.enabled:
            return
        hits = int(np.count_nonzero(delays))
        if hits:
            registry.counter("simdisk.service_faults").inc(hits)
            registry.counter("simdisk.fault_penalty_ms").inc(float(delays.sum()))
