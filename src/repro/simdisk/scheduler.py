"""Per-disk queue disciplines for the event-driven simulator."""

from __future__ import annotations

from collections import deque

__all__ = ["make_scheduler", "FcfsQueue", "SstfQueue", "LookQueue"]


class FcfsQueue:
    """First-come first-served."""

    name = "fcfs"

    def __init__(self) -> None:
        self._q: deque = deque()

    def push(self, request) -> None:
        self._q.append(request)

    def pop(self, head_block: int):
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class SstfQueue:
    """Shortest seek time first (greedy nearest block)."""

    name = "sstf"

    def __init__(self) -> None:
        self._q: list = []

    def push(self, request) -> None:
        self._q.append(request)

    def pop(self, head_block: int):
        best = min(range(len(self._q)), key=lambda i: abs(self._q[i].block - head_block))
        return self._q.pop(best)

    def __len__(self) -> int:
        return len(self._q)


class LookQueue:
    """Elevator (LOOK): sweep upward, reverse at the last pending block."""

    name = "look"

    def __init__(self) -> None:
        self._q: list = []
        self._direction = 1

    def push(self, request) -> None:
        self._q.append(request)

    def pop(self, head_block: int):
        ahead = [
            i
            for i in range(len(self._q))
            if (self._q[i].block - head_block) * self._direction >= 0
        ]
        if not ahead:
            self._direction *= -1
            ahead = range(len(self._q))
        best = min(ahead, key=lambda i: abs(self._q[i].block - head_block))
        return self._q.pop(best)

    def __len__(self) -> int:
        return len(self._q)


_SCHEDULERS = {"fcfs": FcfsQueue, "sstf": SstfQueue, "look": LookQueue}


def make_scheduler(name: str):
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; known: {sorted(_SCHEDULERS)}") from None
