"""Trace-driven disk-array simulation (the DiskSim substitute).

Two execution engines over the same :class:`DiskModel`:

* :func:`simulate_closed` — fully vectorised closed-loop FCFS: every
  request is queued from the start and each disk drains its queue in
  trace order.  This is exactly how the paper evaluates conversion time
  ("the overall time to handle all I/O requests in these traces"), and
  it scales to the 0.6M-block Figure 19 workloads in milliseconds.
* :class:`DiskArraySimulator` — event-driven with open arrivals and a
  pluggable per-disk scheduler (FCFS / SSTF / LOOK), for latency studies
  and the online-conversion experiments.  On a closed-loop FCFS workload
  it reproduces :func:`simulate_closed` exactly (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simdisk.disk import DiskModel
from repro.simdisk.events import EventQueue
from repro.simdisk.scheduler import make_scheduler
from repro.workloads.trace import Trace

__all__ = ["SimResult", "simulate_closed", "DiskArraySimulator"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run (times in ms)."""

    makespan_ms: float
    per_disk_busy_ms: np.ndarray
    n_requests: int
    mean_latency_ms: float
    p99_latency_ms: float

    @property
    def makespan_s(self) -> float:
        return self.makespan_ms / 1e3


def simulate_closed(
    trace: Trace,
    model: DiskModel,
    n_disks: int | None = None,
    reorder_window: int | None = None,
) -> SimResult:
    """Closed-loop FCFS makespan (vectorised).

    ``reorder_window`` models command queueing (NCQ) / controller
    write-back: within every window of that many queued requests, each
    disk serves blocks in ascending order — bounded elevator reordering.
    ``None`` replays the trace order verbatim.

    Latency here is time-in-system under saturation — dominated by queue
    position; reported for completeness, the headline output is the
    makespan.
    """
    if reorder_window is not None and reorder_window < 1:
        raise ValueError("reorder_window must be >= 1")
    n = n_disks if n_disks is not None else trace.n_disks
    busy = np.zeros(n)
    latencies: list[np.ndarray] = []
    for d in range(n):
        blocks = trace.per_disk_blocks(d)
        if blocks.size == 0:
            continue
        if reorder_window is not None and reorder_window > 1:
            blocks = blocks.copy()
            for start in range(0, blocks.size, reorder_window):
                window = blocks[start : start + reorder_window]
                window.sort()
        service = model.service_ms_vector(blocks, trace.block_size)
        completion = np.cumsum(service)
        busy[d] = completion[-1]
        latencies.append(completion)
    if not latencies:
        return SimResult(0.0, busy, 0, 0.0, 0.0)
    lat = np.concatenate(latencies)
    return SimResult(
        makespan_ms=float(busy.max()),
        per_disk_busy_ms=busy,
        n_requests=len(trace),
        mean_latency_ms=float(lat.mean()),
        p99_latency_ms=float(np.percentile(lat, 99)),
    )


@dataclass
class _Request:
    arrival: float
    disk: int
    block: int
    is_write: bool
    index: int
    completion: float = np.nan


class DiskArraySimulator:
    """Event-driven array simulator with open arrivals.

    Parameters
    ----------
    model:
        Disk model shared by all spindles (heterogeneous arrays can pass
        ``models`` instead).
    n_disks:
        Array width.
    scheduler:
        Per-disk queue discipline: ``"fcfs"``, ``"sstf"`` or ``"look"``.
    """

    def __init__(
        self,
        model: DiskModel,
        n_disks: int,
        scheduler: str = "fcfs",
        models: list[DiskModel] | None = None,
    ):
        if models is not None and len(models) != n_disks:
            raise ValueError("models must have one entry per disk")
        self.models = models if models is not None else [model] * n_disks
        self.n_disks = n_disks
        self.scheduler_name = scheduler

    def run(self, trace: Trace) -> SimResult:
        queues = [make_scheduler(self.scheduler_name) for _ in range(self.n_disks)]
        head: list[int | None] = [None] * self.n_disks
        busy_until = np.zeros(self.n_disks)
        idle = [True] * self.n_disks
        busy_time = np.zeros(self.n_disks)

        requests = [
            _Request(float(trace.arrival_ms[i]), int(trace.disk[i]), int(trace.block[i]),
                     bool(trace.is_write[i]), i)
            for i in range(len(trace))
        ]
        events = EventQueue()
        for req in requests:
            events.push(req.arrival, "arrive", req)

        def start(disk: int, now: float) -> None:
            q = queues[disk]
            if not q:
                idle[disk] = True
                return
            idle[disk] = False
            req = q.pop(head[disk] if head[disk] is not None else 0)
            service = self.models[disk].service_ms(head[disk], req.block, trace.block_size)
            head[disk] = req.block
            busy_time[disk] += service
            req.completion = now + service
            events.push(req.completion, "complete", (disk, req))

        while events:
            ev = events.pop()
            if ev.kind == "arrive":
                req = ev.payload
                queues[req.disk].push(req)
                if idle[req.disk]:
                    start(req.disk, ev.time)
            else:  # complete
                disk, _req = ev.payload
                start(disk, ev.time)

        completions = np.array([r.completion for r in requests])
        if np.isnan(completions).any():
            raise RuntimeError("simulation ended with unserved requests")
        latencies = completions - trace.arrival_ms
        return SimResult(
            makespan_ms=float(completions.max()) if len(completions) else 0.0,
            per_disk_busy_ms=busy_time,
            n_requests=len(trace),
            mean_latency_ms=float(latencies.mean()) if len(completions) else 0.0,
            p99_latency_ms=float(np.percentile(latencies, 99)) if len(completions) else 0.0,
        )
