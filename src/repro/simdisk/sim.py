"""Trace-driven disk-array simulation (the DiskSim substitute).

Two execution engines over the same :class:`DiskModel`:

* :func:`simulate_closed` — fully vectorised closed-loop FCFS: every
  request is queued from the start and each disk drains its queue in
  trace order.  This is exactly how the paper evaluates conversion time
  ("the overall time to handle all I/O requests in these traces"), and
  it scales to the 0.6M-block Figure 19 workloads in milliseconds.
* :class:`DiskArraySimulator` — event-driven with open arrivals and a
  pluggable per-disk scheduler (FCFS / SSTF / LOOK), for latency studies
  and the online-conversion experiments.  On a closed-loop FCFS workload
  it reproduces :func:`simulate_closed` exactly (tested).

Both report the same :class:`SimResult` (makespan, per-disk busy time
and request counts, p50/p95/p99 latency).  For observability,
:func:`closed_request_schedule` exposes the closed-loop engine's full
per-request schedule — start, seek/rotate/transfer breakdown,
completion — which ``repro.obs.timeline`` renders as one Perfetto track
per disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simdisk.disk import DiskModel
from repro.simdisk.events import EventQueue
from repro.simdisk.faults import ServiceFaults, validate_trace
from repro.simdisk.scheduler import make_scheduler
from repro.workloads.trace import Trace

__all__ = ["SimResult", "DiskSchedule", "simulate_closed", "closed_request_schedule", "DiskArraySimulator"]


def _percentiles(values: np.ndarray) -> tuple[float, float, float, float]:
    """(mean, p50, p95, p99) of a latency vector (0s when empty)."""
    if values.size == 0:
        return 0.0, 0.0, 0.0, 0.0
    p50, p95, p99 = np.percentile(values, [50, 95, 99])
    return float(values.mean()), float(p50), float(p95), float(p99)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run (times in ms)."""

    makespan_ms: float
    per_disk_busy_ms: np.ndarray
    n_requests: int
    mean_latency_ms: float
    p99_latency_ms: float
    p50_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    per_disk_requests: np.ndarray | None = None

    @property
    def makespan_s(self) -> float:
        return self.makespan_ms / 1e3

    def latency_summary(self) -> dict:
        """JSON-ready latency/throughput digest of the run."""
        return {
            "n_requests": self.n_requests,
            "makespan_ms": self.makespan_ms,
            "mean_latency_ms": self.mean_latency_ms,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "per_disk_busy_ms": [float(b) for b in self.per_disk_busy_ms],
            "per_disk_requests": (
                [int(c) for c in self.per_disk_requests]
                if self.per_disk_requests is not None
                else None
            ),
        }


def _closed_queue_order(
    trace: Trace, n: int, reorder_window: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-disk queue layout shared by the engine and the timeline.

    Returns ``(idx, d_sorted, blocks, first, seg_starts, counts)`` where
    ``idx`` maps each queue position back to its request index in the
    trace (after dropping requests beyond disk ``n``), ``d_sorted`` /
    ``blocks`` are the concatenated per-disk queues in service order,
    ``first`` marks each disk's first request, and ``seg_starts`` /
    ``counts`` delimit the per-disk segments.
    """
    disk = np.asarray(trace.disk)
    served = disk < n
    idx = np.flatnonzero(served)
    m = idx.size
    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, np.zeros(0, dtype=bool), empty, empty
    # One stable sort groups every disk's queue in arrival order —
    # identical to per_disk_blocks(d) for each d, without the n passes.
    arrival = np.asarray(trace.arrival_ms)[idx]
    order = np.lexsort((arrival, disk[idx]))
    idx = idx[order]
    d_sorted = disk[idx]
    blocks = np.asarray(trace.block, dtype=np.int64)[idx]
    first = np.empty(m, dtype=bool)  # segment starts (one segment per disk)
    first[0] = True
    np.not_equal(d_sorted[1:], d_sorted[:-1], out=first[1:])
    seg_starts = np.flatnonzero(first)
    counts = np.diff(np.append(seg_starts, m))
    if reorder_window is not None and reorder_window > 1:
        # bounded elevator: ascending blocks within each window of the
        # per-disk queue — one argsort pass, no per-window copy+sort.
        pos = np.arange(m) - np.repeat(seg_starts, counts)
        perm = np.lexsort((blocks, pos // reorder_window, d_sorted))
        blocks = blocks[perm]
        idx = idx[perm]
    return idx, d_sorted, blocks, first, seg_starts, counts


def simulate_closed(
    trace: Trace,
    model: DiskModel,
    n_disks: int | None = None,
    reorder_window: int | None = None,
    faults: ServiceFaults | None = None,
) -> SimResult:
    """Closed-loop FCFS makespan (vectorised).

    ``reorder_window`` models command queueing (NCQ) / controller
    write-back: within every window of that many queued requests, each
    disk serves blocks in ascending order — bounded elevator reordering.
    ``None`` replays the trace order verbatim.

    ``faults`` layers seeded transient-retry penalties on top of the
    mechanical service times (see :class:`ServiceFaults`); penalties are
    keyed by trace index, so the event-driven engine charges the same
    requests identically.

    Latency here is time-in-system under saturation — dominated by queue
    position; reported for completeness, the headline output is the
    makespan.
    """
    if reorder_window is not None and reorder_window < 1:
        raise ValueError("reorder_window must be >= 1")
    n = n_disks if n_disks is not None else trace.n_disks
    validate_trace(trace, model, n)
    busy = np.zeros(n)
    requests = np.zeros(n, dtype=np.int64)
    idx, d_sorted, blocks, first, seg_starts, counts = _closed_queue_order(
        trace, n, reorder_window
    )
    m = d_sorted.size
    if m == 0:
        return SimResult(0.0, busy, 0, 0.0, 0.0, per_disk_requests=requests)
    service = model.service_ms_vector(blocks, trace.block_size, first=first)
    if faults is not None:
        delays = faults.delays_ms(len(trace))[idx]
        service = service + delays
        faults.record(delays)
    # per-disk cumulative completion via one global cumsum minus the
    # running total at each disk's segment start
    cum = np.cumsum(service)
    offset = np.where(seg_starts > 0, cum[seg_starts - 1], 0.0)
    completion = cum - np.repeat(offset, counts)
    seg_ends = seg_starts + counts - 1
    busy[d_sorted[seg_starts]] = completion[seg_ends]
    requests[d_sorted[seg_starts]] = counts
    mean, p50, p95, p99 = _percentiles(completion)
    return SimResult(
        makespan_ms=float(busy.max()),
        per_disk_busy_ms=busy,
        n_requests=len(trace),
        mean_latency_ms=mean,
        p99_latency_ms=p99,
        p50_latency_ms=p50,
        p95_latency_ms=p95,
        per_disk_requests=requests,
    )


@dataclass(frozen=True)
class DiskSchedule:
    """Full per-request schedule of a closed-loop run (times in ms).

    Arrays are aligned: entry ``i`` is one served request, in per-disk
    queue-service order (disk-major).  ``request_index`` maps back to the
    originating position in the trace.  ``start + seek + rotate +
    transfer == completion`` per entry; per-disk busy time equals the
    segment's last completion (identical to :func:`simulate_closed`,
    tested).
    """

    n_disks: int
    block_size: int
    disk: np.ndarray
    block: np.ndarray
    is_write: np.ndarray
    request_index: np.ndarray
    start_ms: np.ndarray
    seek_ms: np.ndarray
    rotate_ms: np.ndarray
    transfer_ms: np.ndarray
    completion_ms: np.ndarray
    #: per-entry transient-retry penalty (zeros unless faults were passed);
    #: with faults, the invariant becomes start + seek + rotate + transfer
    #: + fault == completion
    fault_ms: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.disk)

    @property
    def service_ms(self) -> np.ndarray:
        return self.completion_ms - self.start_ms

    def per_disk_busy_ms(self) -> np.ndarray:
        busy = np.zeros(self.n_disks)
        np.maximum.at(busy, self.disk, self.completion_ms)
        return busy


def closed_request_schedule(
    trace: Trace,
    model: DiskModel,
    n_disks: int | None = None,
    reorder_window: int | None = None,
    faults: ServiceFaults | None = None,
) -> DiskSchedule:
    """The closed-loop engine's schedule, one entry per served request.

    Same queue ordering and service model as :func:`simulate_closed`
    (including NCQ reordering and transient-retry penalties), but keeps
    the per-request start times and the seek/rotate/transfer
    decomposition instead of reducing to a makespan — the raw material
    for the Perfetto disk timeline.
    """
    if reorder_window is not None and reorder_window < 1:
        raise ValueError("reorder_window must be >= 1")
    n = n_disks if n_disks is not None else trace.n_disks
    validate_trace(trace, model, n)
    idx, d_sorted, blocks, first, seg_starts, counts = _closed_queue_order(
        trace, n, reorder_window
    )
    seek, rot, xfer = model.service_components_vector(blocks, trace.block_size, first=first)
    fault = (
        faults.delays_ms(len(trace))[idx]
        if faults is not None and idx.size
        else np.zeros(idx.size)
    )
    service = seek + rot + xfer + fault if seek.size else np.zeros(0)
    cum = np.cumsum(service)
    offset = (
        np.repeat(np.where(seg_starts > 0, cum[seg_starts - 1], 0.0), counts)
        if seg_starts.size
        else np.zeros(0)
    )
    completion = cum - offset
    is_write = np.asarray(trace.is_write, dtype=bool)[idx] if idx.size else np.zeros(0, dtype=bool)
    return DiskSchedule(
        n_disks=n,
        block_size=trace.block_size,
        disk=d_sorted,
        block=blocks,
        is_write=is_write,
        request_index=idx,
        start_ms=completion - service,
        seek_ms=seek,
        rotate_ms=rot,
        transfer_ms=xfer,
        completion_ms=completion,
        fault_ms=fault,
    )


@dataclass
class _Request:
    arrival: float
    disk: int
    block: int
    is_write: bool
    index: int
    completion: float = np.nan


class DiskArraySimulator:
    """Event-driven array simulator with open arrivals.

    Parameters
    ----------
    model:
        Disk model shared by all spindles (heterogeneous arrays can pass
        ``models`` instead).
    n_disks:
        Array width.
    scheduler:
        Per-disk queue discipline: ``"fcfs"``, ``"sstf"`` or ``"look"``.

    When the default metrics registry is enabled (``repro.obs``), each
    run records per-disk busy-time gauges, served-request counters and a
    queue-depth histogram observed at every arrival.
    """

    def __init__(
        self,
        model: DiskModel,
        n_disks: int,
        scheduler: str = "fcfs",
        models: list[DiskModel] | None = None,
    ):
        if models is not None and len(models) != n_disks:
            raise ValueError("models must have one entry per disk")
        self.models = models if models is not None else [model] * n_disks
        self.n_disks = n_disks
        self.scheduler_name = scheduler

    def run(self, trace: Trace, faults: ServiceFaults | None = None) -> SimResult:
        from repro.obs.metrics import get_registry  # lazy: avoids import cycle

        registry = get_registry()
        collect = registry.enabled
        validate_trace(trace, self.models[0], self.n_disks, require_disk_in_range=True)
        if faults is not None:
            fault_delays = faults.delays_ms(len(trace))
            faults.record(fault_delays)
        else:
            fault_delays = None
        queues = [make_scheduler(self.scheduler_name) for _ in range(self.n_disks)]
        head: list[int | None] = [None] * self.n_disks
        busy_until = np.zeros(self.n_disks)
        idle = [True] * self.n_disks
        busy_time = np.zeros(self.n_disks)
        served = np.zeros(self.n_disks, dtype=np.int64)
        depth_hist = registry.histogram("simdisk.queue_depth") if collect else None

        requests = [
            _Request(float(trace.arrival_ms[i]), int(trace.disk[i]), int(trace.block[i]),
                     bool(trace.is_write[i]), i)
            for i in range(len(trace))
        ]
        events = EventQueue()
        for req in requests:
            events.push(req.arrival, "arrive", req)

        def start(disk: int, now: float) -> None:
            q = queues[disk]
            if not q:
                idle[disk] = True
                return
            idle[disk] = False
            req = q.pop(head[disk] if head[disk] is not None else 0)
            service = self.models[disk].service_ms(head[disk], req.block, trace.block_size)
            if fault_delays is not None:
                service += fault_delays[req.index]
            head[disk] = req.block
            busy_time[disk] += service
            served[disk] += 1
            req.completion = now + service
            events.push(req.completion, "complete", (disk, req))

        while events:
            ev = events.pop()
            if ev.kind == "arrive":
                req = ev.payload
                queues[req.disk].push(req)
                if depth_hist is not None:
                    depth_hist.observe(len(queues[req.disk]))
                if idle[req.disk]:
                    start(req.disk, ev.time)
            else:  # complete
                disk, _req = ev.payload
                start(disk, ev.time)

        completions = np.array([r.completion for r in requests])
        if np.isnan(completions).any():
            raise RuntimeError("simulation ended with unserved requests")
        latencies = completions - trace.arrival_ms
        mean, p50, p95, p99 = _percentiles(latencies)
        if collect:
            labels = {"scheduler": self.scheduler_name}
            registry.counter("simdisk.requests", **labels).inc(len(requests))
            for d in range(self.n_disks):
                registry.gauge("simdisk.busy_ms", disk=d, **labels).set(busy_time[d])
                registry.counter("simdisk.served", disk=d, **labels).inc(int(served[d]))
        return SimResult(
            makespan_ms=float(completions.max()) if len(completions) else 0.0,
            per_disk_busy_ms=busy_time,
            n_requests=len(trace),
            mean_latency_ms=mean,
            p99_latency_ms=p99,
            p50_latency_ms=p50,
            p95_latency_ms=p95,
            per_disk_requests=served,
        )
