"""Trace-driven disk-array simulation (the DiskSim substitute).

Two execution engines over the same :class:`DiskModel`:

* :func:`simulate_closed` — fully vectorised closed-loop FCFS: every
  request is queued from the start and each disk drains its queue in
  trace order.  This is exactly how the paper evaluates conversion time
  ("the overall time to handle all I/O requests in these traces"), and
  it scales to the 0.6M-block Figure 19 workloads in milliseconds.
* :class:`DiskArraySimulator` — event-driven with open arrivals and a
  pluggable per-disk scheduler (FCFS / SSTF / LOOK), for latency studies
  and the online-conversion experiments.  On a closed-loop FCFS workload
  it reproduces :func:`simulate_closed` exactly (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simdisk.disk import DiskModel
from repro.simdisk.events import EventQueue
from repro.simdisk.scheduler import make_scheduler
from repro.workloads.trace import Trace

__all__ = ["SimResult", "simulate_closed", "DiskArraySimulator"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run (times in ms)."""

    makespan_ms: float
    per_disk_busy_ms: np.ndarray
    n_requests: int
    mean_latency_ms: float
    p99_latency_ms: float

    @property
    def makespan_s(self) -> float:
        return self.makespan_ms / 1e3


def simulate_closed(
    trace: Trace,
    model: DiskModel,
    n_disks: int | None = None,
    reorder_window: int | None = None,
) -> SimResult:
    """Closed-loop FCFS makespan (vectorised).

    ``reorder_window`` models command queueing (NCQ) / controller
    write-back: within every window of that many queued requests, each
    disk serves blocks in ascending order — bounded elevator reordering.
    ``None`` replays the trace order verbatim.

    Latency here is time-in-system under saturation — dominated by queue
    position; reported for completeness, the headline output is the
    makespan.
    """
    if reorder_window is not None and reorder_window < 1:
        raise ValueError("reorder_window must be >= 1")
    n = n_disks if n_disks is not None else trace.n_disks
    busy = np.zeros(n)
    disk = np.asarray(trace.disk)
    served = disk < n
    m = int(served.sum())
    if m == 0:
        return SimResult(0.0, busy, 0, 0.0, 0.0)
    # One stable sort groups every disk's queue in arrival order —
    # identical to per_disk_blocks(d) for each d, without the n passes.
    arrival = np.asarray(trace.arrival_ms)[served]
    order = np.lexsort((arrival, disk[served]))
    d_sorted = disk[served][order]
    blocks = np.asarray(trace.block, dtype=np.int64)[served][order]
    first = np.empty(m, dtype=bool)  # segment starts (one segment per disk)
    first[0] = True
    np.not_equal(d_sorted[1:], d_sorted[:-1], out=first[1:])
    seg_starts = np.flatnonzero(first)
    counts = np.diff(np.append(seg_starts, m))
    if reorder_window is not None and reorder_window > 1:
        # bounded elevator: ascending blocks within each window of the
        # per-disk queue — one argsort pass, no per-window copy+sort.
        pos = np.arange(m) - np.repeat(seg_starts, counts)
        blocks = blocks[np.lexsort((blocks, pos // reorder_window, d_sorted))]
    service = model.service_ms_vector(blocks, trace.block_size, first=first)
    # per-disk cumulative completion via one global cumsum minus the
    # running total at each disk's segment start
    cum = np.cumsum(service)
    offset = np.where(seg_starts > 0, cum[seg_starts - 1], 0.0)
    completion = cum - np.repeat(offset, counts)
    seg_ends = seg_starts + counts - 1
    busy[d_sorted[seg_starts]] = completion[seg_ends]
    return SimResult(
        makespan_ms=float(busy.max()),
        per_disk_busy_ms=busy,
        n_requests=len(trace),
        mean_latency_ms=float(completion.mean()),
        p99_latency_ms=float(np.percentile(completion, 99)),
    )


@dataclass
class _Request:
    arrival: float
    disk: int
    block: int
    is_write: bool
    index: int
    completion: float = np.nan


class DiskArraySimulator:
    """Event-driven array simulator with open arrivals.

    Parameters
    ----------
    model:
        Disk model shared by all spindles (heterogeneous arrays can pass
        ``models`` instead).
    n_disks:
        Array width.
    scheduler:
        Per-disk queue discipline: ``"fcfs"``, ``"sstf"`` or ``"look"``.
    """

    def __init__(
        self,
        model: DiskModel,
        n_disks: int,
        scheduler: str = "fcfs",
        models: list[DiskModel] | None = None,
    ):
        if models is not None and len(models) != n_disks:
            raise ValueError("models must have one entry per disk")
        self.models = models if models is not None else [model] * n_disks
        self.n_disks = n_disks
        self.scheduler_name = scheduler

    def run(self, trace: Trace) -> SimResult:
        queues = [make_scheduler(self.scheduler_name) for _ in range(self.n_disks)]
        head: list[int | None] = [None] * self.n_disks
        busy_until = np.zeros(self.n_disks)
        idle = [True] * self.n_disks
        busy_time = np.zeros(self.n_disks)

        requests = [
            _Request(float(trace.arrival_ms[i]), int(trace.disk[i]), int(trace.block[i]),
                     bool(trace.is_write[i]), i)
            for i in range(len(trace))
        ]
        events = EventQueue()
        for req in requests:
            events.push(req.arrival, "arrive", req)

        def start(disk: int, now: float) -> None:
            q = queues[disk]
            if not q:
                idle[disk] = True
                return
            idle[disk] = False
            req = q.pop(head[disk] if head[disk] is not None else 0)
            service = self.models[disk].service_ms(head[disk], req.block, trace.block_size)
            head[disk] = req.block
            busy_time[disk] += service
            req.completion = now + service
            events.push(req.completion, "complete", (disk, req))

        while events:
            ev = events.pop()
            if ev.kind == "arrive":
                req = ev.payload
                queues[req.disk].push(req)
                if idle[req.disk]:
                    start(req.disk, ev.time)
            else:  # complete
                disk, _req = ev.payload
                start(disk, ev.time)

        completions = np.array([r.completion for r in requests])
        if np.isnan(completions).any():
            raise RuntimeError("simulation ended with unserved requests")
        latencies = completions - trace.arrival_ms
        return SimResult(
            makespan_ms=float(completions.max()) if len(completions) else 0.0,
            per_disk_busy_ms=busy_time,
            n_requests=len(trace),
            mean_latency_ms=float(latencies.mean()) if len(completions) else 0.0,
            p99_latency_ms=float(np.percentile(latencies, 99)) if len(completions) else 0.0,
        )
