"""Trace-driven disk-array simulator (DiskSim substitute)."""

from repro.simdisk.disk import DiskModel
from repro.simdisk.events import Event, EventQueue
from repro.simdisk.faults import ServiceFaults, SimRequestError, validate_trace
from repro.simdisk.presets import PRESETS, get_preset
from repro.simdisk.scheduler import FcfsQueue, LookQueue, SstfQueue, make_scheduler
from repro.simdisk.sim import (
    DiskArraySimulator,
    DiskSchedule,
    SimResult,
    closed_request_schedule,
    simulate_closed,
)

__all__ = [
    "DiskModel",
    "Event",
    "EventQueue",
    "ServiceFaults",
    "SimRequestError",
    "validate_trace",
    "PRESETS",
    "get_preset",
    "FcfsQueue",
    "SstfQueue",
    "LookQueue",
    "make_scheduler",
    "DiskArraySimulator",
    "DiskSchedule",
    "SimResult",
    "closed_request_schedule",
    "simulate_closed",
]
