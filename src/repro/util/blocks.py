"""Payload-block helpers.

A *block* (the paper's "element") is a contiguous byte buffer; a stripe is
a ``(rows, cols, block_size)`` uint8 array and a whole array region is
``(stripes, rows, cols, block_size)``.  All parity math is XOR, so the
hot path is XOR-reducing a handful of views — kept allocation-free and
vectorised per the HPC guides (views not copies, in-place reductions).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["xor_reduce", "xor_into", "zeros_blocks", "random_blocks"]


def xor_reduce(views: Sequence[np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
    """XOR a sequence of equally-shaped uint8 arrays.

    ``out`` may alias none of the inputs' memory except possibly the first
    (the common "accumulate into the parity slot" case).  With ``out``
    given, no temporary is allocated.
    """
    if not views:
        raise ValueError("xor_reduce needs at least one operand")
    first = views[0]
    if out is None:
        out = first.copy()
    elif out is not first:
        np.copyto(out, first)
    for v in views[1:]:
        np.bitwise_xor(out, v, out=out)
    return out


def xor_into(target: np.ndarray, *views: np.ndarray) -> np.ndarray:
    """In-place ``target ^= v`` for each operand; returns ``target``."""
    for v in views:
        np.bitwise_xor(target, v, out=target)
    return target


def zeros_blocks(*shape: int, block_size: int = 16) -> np.ndarray:
    """Allocate a zeroed block array of ``(*shape, block_size)`` uint8."""
    return np.zeros(shape + (block_size,), dtype=np.uint8)


def random_blocks(rng: np.random.Generator, *shape: int, block_size: int = 16) -> np.ndarray:
    """Random payload blocks — used pervasively by tests and examples."""
    return rng.integers(0, 256, size=shape + (block_size,), dtype=np.uint8)
