"""Low-level utilities: primes, GF(2) and GF(2^8) arithmetic, block buffers."""

from repro.util.primes import is_prime, next_prime, previous_prime, primes_in_range
from repro.util.gf2 import gf2_rank, gf2_solve, gf2_inverse, gf2_elimination
from repro.util.blocks import xor_reduce, xor_into, zeros_blocks, random_blocks
from repro.util.retry import Backoff, BackoffPolicy, total_backoff

__all__ = [
    "Backoff",
    "BackoffPolicy",
    "total_backoff",
    "is_prime",
    "next_prime",
    "previous_prime",
    "primes_in_range",
    "gf2_rank",
    "gf2_solve",
    "gf2_inverse",
    "gf2_elimination",
    "xor_reduce",
    "xor_into",
    "zeros_blocks",
    "random_blocks",
]
