"""Deterministic retry/backoff policy shared by the fault plane and fleet.

One exponential-backoff formula, three consumers:

* :class:`~repro.faults.plane.FaultPlane` accounts the backoff time of
  transient-I/O retries (``delay(attempt) == base * multiplier**attempt``
  — exactly the inline formula it used to carry);
* the fleet circuit breaker (:mod:`repro.fleet.qos`) schedules
  conversion pause/resume with the same curve, bounded by ``cap_ticks``
  and ``deadline_ticks``;
* tests prove the two agree by comparing schedules, not behaviours.

Everything is deterministic: jitter is drawn from a *stateless* seeded
generator keyed on ``(seed, attempt)``, so the n-th delay of a policy is
a pure function of the policy — replayable from a saved scenario with no
hidden RNG state.  Time is in abstract Te ticks (the repo-wide cost
unit); nothing here sleeps or reads a clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["BackoffPolicy", "Backoff", "total_backoff"]


def total_backoff(retries: int, base: float, multiplier: float) -> float:
    """Sum of the first ``retries`` undecorated exponential delays.

    ``sum(base * multiplier**k for k in range(retries))`` — the fault
    plane's historical accounting formula, kept as a closed helper so
    its tests can pin the schedule of :class:`BackoffPolicy` against it.
    """
    return float(sum(base * multiplier**attempt for attempt in range(retries)))


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delay(attempt) = min(base * multiplier**attempt, cap) * j`` where
    ``j`` is drawn uniformly from ``[1 - jitter, 1]`` by a generator
    seeded on ``(seed, attempt)`` — stateless, so two evaluations of the
    same attempt agree.  ``jitter=0`` (default) reproduces the fault
    plane's exact inline schedule.

    ``max_attempts`` bounds how many delays a :class:`Backoff` instance
    hands out; ``deadline_ticks`` additionally bounds their *sum* (the
    total time a caller may spend backing off before giving up).
    """

    base_ticks: float = 1.0
    multiplier: float = 2.0
    max_attempts: int = 3
    cap_ticks: float | None = None
    deadline_ticks: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_ticks < 0 or self.multiplier < 0:
            raise ValueError("base_ticks and multiplier must be non-negative")
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """The ``attempt``-th delay (0-based), capped and jittered."""
        d = self.base_ticks * self.multiplier**attempt
        if self.cap_ticks is not None:
            d = min(d, self.cap_ticks)
        if self.jitter:
            u = float(np.random.default_rng((self.seed, attempt)).random())
            d *= 1.0 - self.jitter * u
        return float(d)

    def schedule(self) -> tuple[float, ...]:
        """Every delay the policy will grant, honouring the deadline."""
        out: list[float] = []
        spent = 0.0
        for attempt in range(self.max_attempts):
            d = self.delay(attempt)
            if self.deadline_ticks is not None and spent + d > self.deadline_ticks:
                break
            out.append(d)
            spent += d
        return tuple(out)

    def total(self, attempts: int | None = None) -> float:
        """Sum of the first ``attempts`` delays (default: the full schedule)."""
        if attempts is None:
            return float(sum(self.schedule()))
        return float(sum(self.delay(a) for a in range(attempts)))


class Backoff:
    """Mutable retry state over a :class:`BackoffPolicy`.

    ``next_delay()`` hands out the schedule one delay at a time and
    returns ``None`` once the policy is exhausted (attempts or deadline);
    ``reset()`` re-arms after a success.  The consumer owns the clock —
    this object never sleeps.
    """

    __slots__ = ("policy", "attempt", "spent")

    def __init__(self, policy: BackoffPolicy):
        self.policy = policy
        self.attempt = 0
        self.spent = 0.0

    def next_delay(self) -> float | None:
        if self.attempt >= self.policy.max_attempts:
            return None
        d = self.policy.delay(self.attempt)
        if (
            self.policy.deadline_ticks is not None
            and self.spent + d > self.policy.deadline_ticks
        ):
            return None
        self.attempt += 1
        self.spent += d
        return d

    @property
    def exhausted(self) -> bool:
        """Would :meth:`next_delay` return ``None`` right now?"""
        if self.attempt >= self.policy.max_attempts:
            return True
        if self.policy.deadline_ticks is None:
            return False
        return self.spent + self.policy.delay(self.attempt) > self.policy.deadline_ticks

    def reset(self) -> None:
        self.attempt = 0
        self.spent = 0.0

    def __iter__(self) -> Iterator[float]:
        while (d := self.next_delay()) is not None:
            yield d
