"""Dense linear algebra over GF(2).

The generic erasure decoder expresses "which surviving cells XOR to which
lost cell" as a linear system over GF(2); these routines solve it.  The
matrices involved are tiny (a few dozen unknowns — two columns of a
stripe), so a dense uint8 elimination is both simple and fast.  The
*block* work (XORing kilobyte payloads) is vectorised separately in
:mod:`repro.util.blocks`; nothing here touches payload data.

The symbolic code prover (:mod:`repro.staticcheck.prover`) works with
the same algebra at much higher call volume (tens of thousands of rank
queries per sweep), so this module also provides a bit-packed
representation: a GF(2) vector as a Python int, one bit per coordinate,
with :class:`Gf2Basis` doing incremental elimination in word-sized XORs.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
import numpy.typing as npt

__all__ = [
    "gf2_elimination",
    "gf2_rank",
    "gf2_solve",
    "gf2_inverse",
    "Gf2Basis",
    "gf2_rank_ints",
]

#: dtype alias for the uint8 0/1 matrices this module trades in
U8Matrix = npt.NDArray[np.uint8]


def gf2_elimination(matrix: npt.ArrayLike) -> tuple[U8Matrix, U8Matrix, list[int]]:
    """Reduced row-echelon form of ``matrix`` over GF(2).

    Returns ``(rref, transform, pivot_cols)`` where ``transform`` records
    the row operations (``transform @ matrix % 2 == rref``).  ``transform``
    is the key output for the decoder: its rows say which original
    equations combine to isolate each unknown.
    """
    a: U8Matrix = (np.asarray(matrix, dtype=np.uint8).copy() % 2).astype(np.uint8)
    rows, cols = a.shape
    t: U8Matrix = np.eye(rows, dtype=np.uint8)
    pivot_cols: list[int] = []
    row = 0
    for col in range(cols):
        if row == rows:
            break
        pivot: int | None = None
        for r in range(row, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            t[[row, pivot]] = t[[pivot, row]]
        hits = np.nonzero(a[:, col])[0]
        for r in hits:
            if r != row:
                a[r] ^= a[row]
                t[r] ^= t[row]
        pivot_cols.append(col)
        row += 1
    return a, t, pivot_cols


def gf2_rank(matrix: npt.ArrayLike) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, _, pivots = gf2_elimination(matrix)
    return len(pivots)


def gf2_solve(matrix: npt.ArrayLike, rhs: npt.ArrayLike) -> U8Matrix | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns the unique solution vector, or ``None`` when the system is
    inconsistent **or** underdetermined (erasure decoding needs a unique
    answer; a solution space of dimension > 0 means unrecoverable).
    """
    a: U8Matrix = (np.asarray(matrix, dtype=np.uint8) % 2).astype(np.uint8)
    b: U8Matrix = (np.asarray(rhs, dtype=np.uint8) % 2).astype(np.uint8)
    rows, cols = a.shape
    rref, t, pivots = gf2_elimination(a)
    if len(pivots) < cols:
        return None
    tb: U8Matrix = ((t @ b) % 2).astype(np.uint8)
    # rows beyond the rank must have zero RHS, otherwise inconsistent
    if rows > cols and tb[cols:].any():
        return None
    x: U8Matrix = np.zeros(cols, dtype=np.uint8)
    for r, col in enumerate(pivots):
        x[col] = tb[r]
    return x


def gf2_inverse(matrix: npt.ArrayLike) -> U8Matrix | None:
    """Inverse of a square matrix over GF(2), or ``None`` if singular."""
    a: U8Matrix = (np.asarray(matrix, dtype=np.uint8) % 2).astype(np.uint8)
    rows, cols = a.shape
    if rows != cols:
        raise ValueError("gf2_inverse requires a square matrix")
    rref, t, pivots = gf2_elimination(a)
    if len(pivots) < cols:
        return None
    return t


class Gf2Basis:
    """Incremental GF(2) basis over bit-packed int vectors.

    Vectors are Python ints (bit ``i`` = coordinate ``i``); insertion
    keeps one pivot row per leading bit, so :meth:`add` is
    ``O(rank)`` XORs and independence testing is a by-product.  This is
    the workhorse of the symbolic prover: deciding whether an erasure
    pattern is recoverable is exactly asking whether its parity-check
    columns are linearly independent.
    """

    __slots__ = ("_pivots",)

    def __init__(self, vectors: Iterable[int] = ()) -> None:
        #: leading-bit position -> reduced pivot vector
        self._pivots: dict[int, int] = {}
        for v in vectors:
            self.add(v)

    def reduce(self, vector: int) -> int:
        """Reduce ``vector`` against the basis; 0 iff it is dependent."""
        v = vector
        while v:
            row = self._pivots.get(v.bit_length() - 1)
            if row is None:
                return v
            v ^= row
        return 0

    def add(self, vector: int) -> bool:
        """Insert ``vector``; True iff it was independent (rank grew)."""
        v = self.reduce(vector)
        if v == 0:
            return False
        self._pivots[v.bit_length() - 1] = v
        return True

    def __contains__(self, vector: int) -> bool:
        """True when ``vector`` lies in the span of the basis."""
        return self.reduce(vector) == 0

    @property
    def rank(self) -> int:
        return len(self._pivots)


def gf2_rank_ints(rows: Iterable[int]) -> int:
    """Rank over GF(2) of bit-packed int vectors.

    Equivalent to :func:`gf2_rank` on the unpacked 0/1 matrix (tested
    against it), but orders of magnitude faster for the prover's
    many-small-queries workload.
    """
    return Gf2Basis(rows).rank
