"""Dense linear algebra over GF(2).

The generic erasure decoder expresses "which surviving cells XOR to which
lost cell" as a linear system over GF(2); these routines solve it.  The
matrices involved are tiny (a few dozen unknowns — two columns of a
stripe), so a dense uint8 elimination is both simple and fast.  The
*block* work (XORing kilobyte payloads) is vectorised separately in
:mod:`repro.util.blocks`; nothing here touches payload data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gf2_elimination", "gf2_rank", "gf2_solve", "gf2_inverse"]


def gf2_elimination(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Reduced row-echelon form of ``matrix`` over GF(2).

    Returns ``(rref, transform, pivot_cols)`` where ``transform`` records
    the row operations (``transform @ matrix % 2 == rref``).  ``transform``
    is the key output for the decoder: its rows say which original
    equations combine to isolate each unknown.
    """
    a = np.asarray(matrix, dtype=np.uint8).copy() % 2
    rows, cols = a.shape
    t = np.eye(rows, dtype=np.uint8)
    pivot_cols: list[int] = []
    row = 0
    for col in range(cols):
        if row == rows:
            break
        pivot = None
        for r in range(row, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            t[[row, pivot]] = t[[pivot, row]]
        hits = np.nonzero(a[:, col])[0]
        for r in hits:
            if r != row:
                a[r] ^= a[row]
                t[r] ^= t[row]
        pivot_cols.append(col)
        row += 1
    return a, t, pivot_cols


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, _, pivots = gf2_elimination(matrix)
    return len(pivots)


def gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns the unique solution vector, or ``None`` when the system is
    inconsistent **or** underdetermined (erasure decoding needs a unique
    answer; a solution space of dimension > 0 means unrecoverable).
    """
    a = np.asarray(matrix, dtype=np.uint8) % 2
    b = np.asarray(rhs, dtype=np.uint8) % 2
    rows, cols = a.shape
    rref, t, pivots = gf2_elimination(a)
    if len(pivots) < cols:
        return None
    tb = (t @ b) % 2
    # rows beyond the rank must have zero RHS, otherwise inconsistent
    if rows > cols and tb[cols:].any():
        return None
    x = np.zeros(cols, dtype=np.uint8)
    for r, col in enumerate(pivots):
        x[col] = tb[r]
    return x


def gf2_inverse(matrix: np.ndarray) -> np.ndarray | None:
    """Inverse of a square matrix over GF(2), or ``None`` if singular."""
    a = np.asarray(matrix, dtype=np.uint8) % 2
    rows, cols = a.shape
    if rows != cols:
        raise ValueError("gf2_inverse requires a square matrix")
    rref, t, pivots = gf2_elimination(a)
    if len(pivots) < cols:
        return None
    return t
