"""Prime-number helpers.

Array codes in this library (Code 5-6, RDP, EVENODD, X-Code, P-Code,
H-Code, HDP) are all parameterised by a prime ``p``; the helpers here are
used by the code constructors and by the virtual-disk machinery that maps
an arbitrary disk count onto the nearest usable prime (Section IV-B2 of
the paper).
"""

from __future__ import annotations


def is_prime(n: int) -> bool:
    """Return True when ``n`` is a prime number.

    Deterministic trial division; code parameters are tiny (tens of
    disks), so no probabilistic test is warranted.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    while not is_prime(candidate):
        candidate += 1
    return candidate


def previous_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n``.

    Raises ``ValueError`` when no such prime exists (``n <= 2``).
    """
    candidate = n - 1
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1
    raise ValueError(f"no prime below {n}")


def primes_in_range(lo: int, hi: int) -> list[int]:
    """All primes ``p`` with ``lo <= p < hi`` (ascending)."""
    return [n for n in range(max(lo, 2), hi) if is_prime(n)]


def prime_for_disks(m: int) -> int:
    """Prime ``p`` used by Code 5-6 to host a RAID-5 of ``m`` disks.

    Per Section IV-B2: the RAID-6 will have ``p`` disks where ``p`` is the
    smallest prime with ``p - 1 >= m`` (no virtual disks needed when
    ``m + 1`` is prime, i.e. ``m = p - 1``).
    """
    if m < 2:
        raise ValueError("a RAID-5 needs at least 2 disks that hold parity rows")
    if is_prime(m + 1):
        return m + 1
    return next_prime(m + 1)
