"""GF(2^8) arithmetic for the Reed-Solomon reference baseline.

The paper's comparison set is XOR-only array codes; classic RAID-6
(P + Q over GF(2^8), polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` — the same
field the Linux md driver uses) is included as an additional horizontal
baseline for Table III-style comparisons and for encode-throughput
benchmarks.  Multiplication is table-driven and vectorised with numpy
fancy indexing so payload blocks never round-trip through Python loops.
"""

from __future__ import annotations

from typing import Final, cast

import numpy as np
import numpy.typing as npt

__all__ = [
    "GF256",
    "gf_mul",
    "gf_pow",
    "gf_inv",
    "gf_mul_blocks",
    "EXP_TABLE",
    "LOG_TABLE",
]

_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1, generator 2


def _build_tables() -> tuple[npt.NDArray[np.uint8], npt.NDArray[np.int16]]:
    exp: npt.NDArray[np.uint8] = np.zeros(512, dtype=np.uint8)
    log: npt.NDArray[np.int16] = np.zeros(256, dtype=np.int16)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _POLY
    exp[255:510] = exp[0:255]  # wraparound so exp[a+b] never needs a mod
    return exp, log


EXP_TABLE: Final[npt.NDArray[np.uint8]]
LOG_TABLE: Final[npt.NDArray[np.int16]]
EXP_TABLE, LOG_TABLE = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Scalar multiply in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + int(LOG_TABLE[b])])


def gf_pow(a: int, n: int) -> int:
    """``a ** n`` in GF(2^8)."""
    if a == 0:
        return 0 if n else 1
    return int(EXP_TABLE[(int(LOG_TABLE[a]) * n) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return int(EXP_TABLE[255 - int(LOG_TABLE[a])])


# Precomputed 256x256 product table: 64 KiB, lets block multiplication be a
# single fancy-index gather (MUL_TABLE[c][block]).
_A = np.arange(256, dtype=np.int32)
_LOG_A = LOG_TABLE[_A]
MUL_TABLE: npt.NDArray[np.uint8] = np.zeros((256, 256), dtype=np.uint8)
for _c in range(1, 256):
    MUL_TABLE[_c] = EXP_TABLE[(int(LOG_TABLE[_c]) + _LOG_A) % 255]
    MUL_TABLE[_c, 0] = 0


def gf_mul_blocks(
    coeff: int,
    block: npt.NDArray[np.uint8],
    out: npt.NDArray[np.uint8] | None = None,
) -> npt.NDArray[np.uint8]:
    """Multiply a whole uint8 payload block by a scalar coefficient."""
    if coeff == 0:
        if out is None:
            return np.zeros_like(block)
        out[...] = 0
        return out
    if coeff == 1:
        if out is None:
            return block.copy()
        np.copyto(out, block)
        return out
    row = MUL_TABLE[coeff]
    if out is None:
        return cast("npt.NDArray[np.uint8]", row[block])
    np.take(row, block, out=out)
    return out


class GF256:
    """Tiny OO facade over the module functions (handy in tests)."""

    mul = staticmethod(gf_mul)
    pow = staticmethod(gf_pow)
    inv = staticmethod(gf_inv)

    @staticmethod
    def add(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def solve2(a11: int, a12: int, a21: int, a22: int, b1: int, b2: int) -> tuple[int, int]:
        """Solve a 2x2 system over GF(2^8) (double-erasure decode)."""
        det = gf_mul(a11, a22) ^ gf_mul(a12, a21)
        inv_det = gf_inv(det)
        x1 = gf_mul(inv_det, gf_mul(a22, b1) ^ gf_mul(a12, b2))
        x2 = gf_mul(inv_det, gf_mul(a21, b1) ^ gf_mul(a11, b2))
        return x1, x2
