"""Command-line interface: ``python -m repro <command>``.

Operational front-end over the library — inspect layouts, certify codes,
run verified conversions, and replay migrations through the disk
simulator without writing any Python.

Observability: ``convert`` and ``simulate`` accept ``--trace out.json``
(Chrome trace-event JSON viewable in Perfetto: real plan/compile/execute/
verify spans plus one simulated-activity track per disk) and
``--metrics`` (metrics snapshot dump); ``stats`` summarises a saved
trace file.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _package_version() -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.codes import CODE_CATALOG, get_code

    p = args.p
    print(f"registered array codes at p={p}")
    print(f"{'code':>14} {'family':>10} {'disks':>6} {'data':>5} {'eff':>6} "
          f"{'upd':>5}  citation")
    for name, info in sorted(CODE_CATALOG.items()):
        try:
            code = get_code(name, p)
        except ValueError as exc:
            print(f"{name:>14} (unavailable at p={p}: {exc})")
            continue
        pens = [code.layout.update_penalty(c) for c in code.layout.data_cells]
        print(
            f"{name:>14} {info.family:>10} {code.n_disks:>6} {code.num_data:>5} "
            f"{code.storage_efficiency():>6.2f} {sum(pens) / len(pens):>5.2f}  {info.citation}"
        )
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    from repro.codes import get_layout

    layout = get_layout(args.code, args.p, virtual_cols=tuple(args.virtual))
    print(layout.describe())
    print(f"data cells: {layout.num_data}, parity cells: {layout.num_parity}, "
          f"encode XORs/stripe: {layout.xor_count_total()}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.codes import certify_mds, get_layout

    layout = get_layout(args.code, args.p, virtual_cols=tuple(args.virtual))
    report = certify_mds(layout, tolerance=args.tolerance)
    print(f"{args.code} p={args.p} (tolerance {args.tolerance}): "
          f"recoverable={report.is_mds} storage-optimal={report.storage_optimal}")
    if report.failed_pairs:
        print(f"unrecoverable column pairs: {report.failed_pairs}")
    return 0 if report.is_mds else 1


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analysis import metrics_from_plan
    from repro.migration import (
        build_plan,
        execute_plan,
        prepare_source_array,
        verify_conversion,
    )
    from repro.migration.approaches import alignment_cycle

    code = args.code_opt or args.code
    approach = args.approach_opt or args.approach
    if code is None or approach is None:
        print("convert: code and approach are required "
              "(positional or --code/--approach)", file=sys.stderr)
        return 2

    from repro.kernels import KernelUnavailableError, set_default_kernel

    try:
        set_default_kernel(args.kernel)
    except KernelUnavailableError as exc:
        print(f"convert: {exc}", file=sys.stderr)
        return 2

    if args.online:
        return _convert_online(args, code, approach)

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    observing = args.trace is not None or args.metrics is not None
    if args.trace is not None:
        tracer.clear()
        tracer.enable()
    if observing:
        registry.clear()
        registry.enabled = True
    try:
        with tracer.span("plan", cat="cli", code=code, approach=approach, p=args.p):
            groups = args.groups or alignment_cycle(code, args.p, args.n)
            plan = build_plan(code, approach, args.p, groups=groups, n_disks=args.n)
        rng = np.random.default_rng(args.seed)
        with tracer.span("prepare", cat="cli", blocks=plan.data_blocks):
            array, data = prepare_source_array(plan, rng, block_size=args.block_size)
        plane = None
        if args.inject is not None:
            from repro.faults import (
                ConversionCrash,
                ConversionJournal,
                FaultPlane,
                FaultScenario,
                execute_checkpointed,
            )

            spec = args.inject.strip()
            scenario = (
                FaultScenario.from_json(spec)
                if spec.startswith("{")
                else FaultScenario.load(spec)
            )
            plane = FaultPlane(scenario)
            plane.attach(array)
            journal = ConversionJournal()
            crashes = 0
            with tracer.span("execute.injected", cat="cli", engine=args.engine):
                while True:
                    try:
                        run = execute_checkpointed(
                            plan, array, data, journal, engine=args.engine
                        )
                        break
                    except ConversionCrash:
                        crashes += 1
                        plane.disarm_crash()
            result = run.result
            ok = verify_conversion(result, rng, check_io_counters=False)
            print(f"fault injection: {crashes} crash(es), "
                  f"{run.units_skipped} unit(s) resumed from journal, "
                  f"{run.rollbacks} rollback(s)")
            fired = {k: v for k, v in plane.counters.items() if v}
            if fired:
                print("fault counters: "
                      + ", ".join(f"{k}={v}" for k, v in sorted(fired.items())))
        elif args.engine == "compiled":
            from repro.compiled import compile_plan, execute_plan_compiled

            with tracer.span("compile", cat="cli"):
                program = compile_plan(plan)
            result = execute_plan_compiled(plan, array, data, program=program)
            ok = verify_conversion(result, rng)
        else:
            result = execute_plan(plan, array, data)
            ok = verify_conversion(result, rng)

        schedule = None
        if args.trace is not None:
            from repro.simdisk import closed_request_schedule, get_preset, simulate_closed
            from repro.workloads import conversion_trace

            with tracer.span("timeline", cat="cli", disk=args.disk):
                stream = conversion_trace(plan, block_size=4096)
                model = get_preset(args.disk)
                schedule = closed_request_schedule(stream, model)
                sim_res = simulate_closed(stream, model)
            obs.record_sim_result(sim_res, registry, prefix="sim")
        if observing:
            from repro.kernels import resolve_kernel

            obs.record_conversion(result, registry)
            obs.record_compiler_cache(registry)
            registry.gauge(
                "kernels.backend", backend=resolve_kernel(args.kernel).name
            ).set(1.0)
            if plane is not None:
                obs.record_fault_plane(plane, registry)

        m = metrics_from_plan(plan)
        print(plan.describe())
        print(f"verified: {ok}")
        print(f"ratios (of B): invalid={m.invalid_parity_ratio:.3f} "
              f"migrated={m.migration_ratio:.3f} new={m.new_parity_ratio:.3f} "
              f"extra-space={m.extra_space_ratio:.3f}")
        print(f"costs  (of B): xors={m.computation_cost:.3f} writes={m.write_ios:.3f} "
              f"total={m.total_ios:.3f} time-nlb={m.time_nlb:.3f} time-lb={m.time_lb:.3f}")

        if args.trace is not None:
            doc = obs.write_chrome_trace(
                args.trace,
                spans=tracer.spans,
                schedule=schedule,
                metrics=registry.snapshot(),
                meta={"command": "convert", "code": code, "approach": approach,
                      "p": args.p, "engine": args.engine},
            )
            print(f"trace: {args.trace} ({len(doc['traceEvents'])} events; "
                  f"open in https://ui.perfetto.dev)")
        if args.metrics is not None:
            if args.metrics != "-":
                from pathlib import Path

                Path(args.metrics).write_text(registry.render_json() + "\n")
                print(f"metrics: {args.metrics}")
            print("-- metrics snapshot --")
            print(registry.render_text())
        return 0 if ok else 1
    finally:
        if args.trace is not None:
            tracer.disable()
        if observing:
            registry.enabled = False


def _convert_online(args: argparse.Namespace, code: str, approach: str) -> int:
    """``repro convert --online``: Algorithm 2 live migration.

    Runs the online converter under a seeded application-write schedule,
    verifies the result, and prints the foreground-latency percentiles
    (stall + service) alongside the batch/kernel accounting.
    """
    from repro import obs
    from repro.faults.journal import OnlineJournal
    from repro.migration import build_plan, prepare_source_array
    from repro.migration.online import OnlineCode56Conversion, OnlineRequest

    if code != "code56" or approach != "direct":
        print("convert --online: Algorithm 2 converts code56/direct only",
              file=sys.stderr)
        return 2

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    observing = args.trace is not None or args.metrics is not None
    if args.trace is not None:
        tracer.clear()
        tracer.enable()
    if observing:
        registry.clear()
        registry.enabled = True
    try:
        with tracer.span("plan", cat="cli", code=code, approach=approach, p=args.p):
            plan = build_plan(code, approach, args.p, groups=args.groups or 2)
        rng = np.random.default_rng(args.seed)
        with tracer.span("prepare", cat="cli", blocks=plan.data_blocks):
            array, _data = prepare_source_array(plan, rng, block_size=args.block_size)

        capacity = plan.groups * (args.p - 1) * (args.p - 2)
        requests = []
        t = 0.0
        for _ in range(args.requests):
            t += float(rng.integers(1, 6))
            is_write = bool(rng.random() < 0.7)
            requests.append(OnlineRequest(
                time=t,
                lba=int(rng.integers(capacity)),
                is_write=is_write,
                payload=(rng.integers(0, 256, size=args.block_size, dtype=np.uint8)
                         if is_write else None),
            ))

        journal = OnlineJournal(plan.groups, args.p - 1)
        conv = OnlineCode56Conversion(
            array, args.p, journal=journal, batch=args.batch, kernel=args.kernel
        )
        with tracer.span("convert.online", cat="cli", batch=args.batch,
                         kernel=conv.kernel.name, requests=len(requests)):
            report = conv.run(requests)
        ok = bool(conv.verify())

        foreground = [s + l for s, l in
                      zip(report.request_stalls, report.request_latencies)]
        print(f"online conversion: p={args.p} groups={plan.groups} "
              f"bs={args.block_size} batch={args.batch} "
              f"kernel={report.kernel}")
        print(f"verified: {ok}")
        print(f"ticks: conversion={report.conversion_ticks} app={report.app_ticks} "
              f"finish={report.finish_tick:.0f}")
        print(f"parities: {report.parities_generated} generated, "
              f"{report.interruptions} interruption(s), "
              f"{report.writes_to_converted} write(s) patched a diagonal")
        if args.batch > 1:
            print(f"runs: {report.runs_committed} committed "
                  f"(max {report.max_run} parities, "
                  f"{report.batch_shrinks} deadline shrink(s)), "
                  f"journal appends={journal.appends}")
        if foreground:
            q = np.percentile(foreground, [50, 95, 99])
            print(f"foreground latency (ticks): p50={q[0]:.1f} "
                  f"p95={q[1]:.1f} p99={q[2]:.1f} max={max(foreground):.1f}")
        if observing:
            obs.record_online_report(report, registry)
            obs.record_array_io(array, registry, prefix="online.array")
            registry.gauge("kernels.backend", backend=conv.kernel.name).set(1.0)
        if args.trace is not None:
            doc = obs.write_chrome_trace(
                args.trace,
                spans=tracer.spans,
                metrics=registry.snapshot(),
                meta={"command": "convert", "online": True, "code": code,
                      "approach": approach, "p": args.p, "batch": args.batch,
                      "kernel": conv.kernel.name},
            )
            print(f"trace: {args.trace} ({len(doc['traceEvents'])} events; "
                  f"open in https://ui.perfetto.dev)")
        if args.metrics is not None:
            if args.metrics != "-":
                from pathlib import Path

                Path(args.metrics).write_text(registry.render_json() + "\n")
                print(f"metrics: {args.metrics}")
            print("-- metrics snapshot --")
            print(registry.render_text())
        return 0 if ok else 1
    finally:
        if args.trace is not None:
            tracer.disable()
        if observing:
            registry.enabled = False


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analysis.costmodel import comparison_width
    from repro.migration import build_plan, supported_conversions
    from repro.migration.approaches import alignment_cycle
    from repro.simdisk import closed_request_schedule, get_preset, simulate_closed
    from repro.workloads import conversion_trace

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    observing = args.trace is not None or args.metrics is not None
    if args.trace is not None:
        tracer.clear()
        tracer.enable()
    if observing:
        registry.clear()
        registry.enabled = True
    try:
        model = get_preset(args.disk)
        rows = []
        export = None  # (label, trace) rendered into --trace disk tracks
        for code, approach in supported_conversions():
            if code == "code56-right":
                continue
            try:
                n = comparison_width(code, args.p)
                plan = build_plan(
                    code, approach, args.p,
                    groups=alignment_cycle(code, args.p, n), n_disks=n,
                )
            except ValueError:
                continue
            trace = conversion_trace(
                plan,
                total_data_blocks=args.blocks,
                block_size=args.block_size,
                lb_rotation_period=args.lb,
            )
            label = f"{approach}({code})"
            with tracer.span("simulate", cat="cli", config=label, requests=len(trace)):
                res = simulate_closed(trace, model)
            if observing:
                obs.record_sim_result(res, registry, prefix=f"sim.{label}")
            if export is None or (code, approach) == ("code56", "direct"):
                export = (label, trace)
            rows.append((label, res.makespan_s))
        rows.sort(key=lambda r: r[1])
        print(f"simulated conversion makespan: p={args.p}, B={args.blocks}, "
              f"bs={args.block_size}, disk={args.disk}, "
              f"{'LB period ' + str(args.lb) if args.lb else 'NLB'}")
        base = rows[0][1]
        for label, secs in rows:
            print(f"  {label:>36}: {secs:9.1f}s ({secs / base:5.2f}x)")
        if args.trace is not None and export is not None:
            label, trace = export
            with tracer.span("timeline", cat="cli", config=label):
                schedule = closed_request_schedule(trace, model)
            doc = obs.write_chrome_trace(
                args.trace,
                spans=tracer.spans,
                schedule=schedule,
                metrics=registry.snapshot(),
                meta={"command": "simulate", "config": label, "p": args.p,
                      "disk": args.disk, "blocks": args.blocks},
            )
            print(f"trace: {args.trace} ({len(doc['traceEvents'])} events, "
                  f"disk tracks: {label})")
        if args.metrics is not None:
            if args.metrics != "-":
                from pathlib import Path

                Path(args.metrics).write_text(registry.render_json() + "\n")
                print(f"metrics: {args.metrics}")
            print("-- metrics snapshot --")
            print(registry.render_text())
        return 0
    finally:
        if args.trace is not None:
            tracer.disable()
        if observing:
            registry.enabled = False


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, summarise_trace

    try:
        summary = summarise_trace(args.trace_file)
    except FileNotFoundError:
        print(f"stats: {args.trace_file}: no such file", file=sys.stderr)
        return 1
    except ValueError as exc:  # includes JSONDecodeError
        print(f"stats: {args.trace_file}: {exc}", file=sys.stderr)
        return 1
    print(render_summary(summary, top=args.top))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.codes import get_layout
    from repro.core import plan_generic_hybrid_recovery

    layout = get_layout(args.code, args.p)
    cols = [args.column] if args.column is not None else list(layout.physical_cols)
    print(f"single-disk recovery reads per stripe for {args.code} p={args.p}")
    for col in cols:
        h = plan_generic_hybrid_recovery(layout, col)
        print(f"  column {col}: hybrid={h.reads} conventional={h.conventional_reads} "
              f"saved={h.read_savings:.0%}")
    return 0


def _cmd_scrub_demo(args: argparse.Namespace) -> int:
    from repro.codes import get_code
    from repro.raid import BlockArray, Raid6Array, scrub_raid6

    rng = np.random.default_rng(args.seed)
    code = get_code(args.code, args.p)
    array = BlockArray(code.n_disks, args.groups * code.rows, block_size=64)
    raid6 = Raid6Array(array, code)
    raid6.format_with(
        rng.integers(0, 256, size=(raid6.capacity_blocks, 64), dtype=np.uint8)
    )
    for _ in range(args.corruptions):
        g = int(rng.integers(0, raid6.groups))
        cell = code.layout.data_cells[int(rng.integers(0, code.num_data))]
        disk = raid6.disk_of(g, cell[1])
        array.raw(disk, raid6.block_of(g, cell[0]))[0] ^= 0xFF
    report = scrub_raid6(raid6)
    print(f"scrub of {args.code} p={args.p}: {report.groups_checked} groups checked")
    print(f"  inconsistent: {report.inconsistent_groups}")
    print(f"  located     : {report.located}")
    print(f"  repaired    : {report.repaired}")
    print(f"  unlocatable : {report.unlocatable_groups}")
    print(f"array consistent after repair: {raid6.verify()}")
    return 0 if raid6.verify() else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Crash-point sweeps, fault soaks and scenario replay (repro.faults)."""
    import json as _json

    from repro.faults import (
        crash_sweep_offline,
        crash_sweep_online,
        fault_soak,
        replay_scenario,
    )
    from repro.kernels import KernelUnavailableError, set_default_kernel

    try:
        set_default_kernel(args.kernel)
    except KernelUnavailableError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        from pathlib import Path

        spec = (
            _json.loads(args.replay)
            if args.replay.strip().startswith("{")
            else _json.loads(Path(args.replay).read_text())
        )
        outcome = replay_scenario(spec)
        ok = bool(outcome.get("ok"))
        print(f"replay {spec.get('kind', '?')}: {'PASS' if ok else 'FAIL'}")
        for k, v in sorted(outcome.items()):
            if k != "ok":
                print(f"  {k}: {v}")
        return 0 if ok else 1

    reports = []
    run_sweep = args.crash_sweep or args.soak is None
    if run_sweep:
        engines = ["audited", "compiled"] if args.engine == "both" else [args.engine]
        for engine in engines:
            reports.append(
                crash_sweep_offline(
                    args.p, engine, groups=args.groups, block_size=args.block_size,
                    seed=args.seed, sample=args.sample, artifacts_dir=args.artifacts,
                )
            )
        if args.online:
            reports.append(
                crash_sweep_online(
                    args.p, groups=args.groups, block_size=args.block_size,
                    seed=args.seed, schedules=args.schedules, batch=args.batch,
                    sample=args.sample, artifacts_dir=args.artifacts,
                )
            )
    if args.soak is not None:
        reports.append(
            fault_soak(
                args.soak, seed=args.seed, block_size=args.block_size,
                max_iterations=args.max_iterations, artifacts_dir=args.artifacts,
            )
        )

    ok = all(r["ok"] for r in reports)
    for r in reports:
        kind = r["kind"]
        status = "PASS" if r["ok"] else f"FAIL ({len(r['failures'])} failures)"
        if kind == "crash-sweep-offline":
            print(f"{kind} [{r['engine']}] p={r['p']}: {r['runs']} runs over "
                  f"{r['points_swept']}/{r['crash_events']} crash points "
                  f"x {len(r['variants'])} variants — {status}")
        elif kind == "crash-sweep-online":
            print(f"{kind} p={r['p']} batch={r['batch']}: {r['runs']} runs over "
                  f"{r['schedules']} schedules (crash events per schedule: "
                  f"{r['crash_events']}) — {status}")
        else:
            by_kind = ", ".join(f"{k}={v}" for k, v in r["by_kind"].items() if v)
            print(f"{kind} seed={r['seed']}: {r['iterations']} iterations "
                  f"({by_kind}) — {status}")
    if not ok and args.artifacts:
        print(f"replayable failure specs saved under {args.artifacts}/")
    return 0 if ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Self-healing migration fleet runs and chaos soaks (repro.fleet)."""
    import json as _json
    from pathlib import Path

    from repro.fleet.service import (
        DEFAULT_TENANTS,
        FleetConfig,
        fleet_soak,
        run_fleet,
    )

    if args.soak is not None:
        soak = fleet_soak(
            args.soak, seed=args.seed, max_iterations=args.max_iterations
        )
        t = soak["totals"]
        status = "PASS" if soak["ok"] else f"FAIL ({len(soak['failures'])} failures)"
        print(
            f"fleet-soak seed={soak['seed']}: {soak['iterations']} fleets, "
            f"{t['volumes']} volumes ({t['complete']} complete, "
            f"{t['rebuilds']} rebuilds, {t['crashes']} crash-resumes, "
            f"{t['divergent_blocks']} divergent blocks) — {status}"
        )
        for fail in soak["failures"]:
            print(f"  iteration {fail['iteration']}: gates {fail['gates']}")
            print(f"    replay config: {_json.dumps(fail['config'])}")
        if args.report is not None:
            Path(args.report).write_text(_json.dumps(soak, indent=2) + "\n")
            print(f"soak report written to {args.report}")
        return 0 if soak["ok"] else 1

    tenants = DEFAULT_TENANTS
    if args.qos_p99 is not None:
        tenants = tuple((name, args.qos_p99) for name, _ in DEFAULT_TENANTS)
    config = FleetConfig(
        volumes=args.volumes,
        clients=args.clients,
        p=args.p,
        groups=args.groups,
        block_size=args.block_size,
        seed=args.seed,
        requests_per_volume=args.requests,
        batch=args.batch,
        spares=args.spares,
        fail_volumes=tuple(args.fail_volumes or ()),
        fail_disk=args.fail_disk,
        transient_rate=args.transient_rate,
        crash_volumes=tuple(args.crash_volumes or ()),
        tenants=tenants,
    )
    report = run_fleet(config)
    states = ", ".join(f"{k}={v}" for k, v in sorted(report["states"].items()))
    gates = ", ".join(f"{k}={'ok' if v else 'FAIL'}" for k, v in report["gates"].items())
    print(
        f"fleet p={config.p} volumes={report['volumes_total']} "
        f"clients={config.clients} spares={config.spares}: {states}"
    )
    print(
        f"  rebuilds={report['rebuilds_completed']} "
        f"breaker-trips={report['breaker_trips']} "
        f"crash-resumes={report['crashes']} "
        f"degraded-reads={report['degraded_reads']} "
        f"scrubbed={report['stripes_scrubbed']}"
    )
    for tenant, t in sorted(report["tenants"].items()):
        print(
            f"  tenant {tenant}: {t['volumes']} volumes, closed p99 "
            f"{t['worst_closed_p99']:.1f} ticks (target {t['p99_target']})"
        )
    print(f"  gates: {gates}")
    if args.report is not None:
        Path(args.report).write_text(_json.dumps(report, indent=2) + "\n")
        print(f"fleet report written to {args.report}")
    if args.metrics:
        from repro.obs import get_registry, record_fleet_report

        registry = get_registry()
        record_fleet_report(report, registry)
        print(registry.render_text())
    return 0 if report["ok"] else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Static verification gate; exit 0 clean / 1 findings / 2 internal."""
    from repro.obs import get_registry
    from repro.staticcheck import EXIT_INTERNAL_ERROR, run_checks
    from repro.staticcheck.runner import DEFAULT_ANALYZERS, QUICK_PRIMES

    primes = tuple(args.primes) if args.primes else (QUICK_PRIMES if args.quick else None)
    analyzers = tuple(args.analyzer) if args.analyzer else None
    if args.concur and "concur" not in (analyzers or ()):
        analyzers = (analyzers or DEFAULT_ANALYZERS) + ("concur",)
    registry = get_registry()
    metrics_on = registry.enabled
    if args.metrics:
        registry.enabled = True
    try:
        report = run_checks(primes=primes, analyzers=analyzers, registry=registry)
    except KeyError as exc:
        print(f"check: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR
    finally:
        registry.enabled = metrics_on
    print(report.to_json() if args.json else report.render_text())
    if args.metrics:
        print("metrics snapshot")
        print(registry.render_text())
    return report.exit_code


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Parallel evaluation grid; writes BENCH_sweep.json (serial vs pool).

    Runs the requested grid three times — serial baseline, cold parallel,
    warm parallel (same program-cache directory) — asserts the merged
    payloads are byte-identical, and reports wall-clock plus compiler
    cache counters.  Exit 1 on any digest mismatch.
    """
    import json
    import os
    import tempfile
    from pathlib import Path

    from repro import obs
    from repro.sweep import SweepSpec, Workload, run_sweep

    kinds = {
        "analysis": Workload.analysis,
        "sim": lambda: Workload.sim(
            total_blocks=args.blocks, block_size=args.block_size, lb=args.lb
        ),
        "execute": lambda: Workload.execute(block_size=args.exec_block_size),
        "appsim-uniform": lambda: Workload.appsim("uniform", n_requests=args.appsim_requests),
        "appsim-zipf": lambda: Workload.appsim("zipf", n_requests=args.appsim_requests),
        "appsim-sequential": lambda: Workload.appsim(
            "sequential", n_requests=args.appsim_requests
        ),
    }
    try:
        workloads = tuple(kinds[name]() for name in args.workloads)
    except KeyError as exc:
        print(f"sweep: unknown workload {exc}; known: {sorted(kinds)}", file=sys.stderr)
        return 2
    from repro.kernels import KernelUnavailableError, resolve_kernel

    try:
        resolve_kernel(args.kernel)
    except (KernelUnavailableError, KeyError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2

    spec = SweepSpec(primes=tuple(args.primes), workloads=workloads, seed=args.seed)
    n_tasks = len(spec.tasks())
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    print(f"sweep: {n_tasks} tasks "
          f"({len(spec.resolved_pairs())} series x {len(args.primes)} primes x "
          f"{len(workloads)} workloads), workers={workers}")

    serial = run_sweep(spec, workers=0, kernel=args.kernel)
    print(f"  serial   : {serial.wall_s:8.2f}s  digest {serial.digest()[:16]}  "
          f"compiled {serial.cache['parent']['compiled']}")

    bench = {
        "bench": "sweep",
        "host_cpus": os.cpu_count(),
        "workers": workers,
        "n_tasks": n_tasks,
        "spec": spec.to_dict(),
        "serial": {"wall_s": serial.wall_s, "digest": serial.digest(),
                   "cache": serial.cache},
    }
    result = serial
    identical = True
    if workers > 0:
        tmp = None
        if args.cache_dir is not None:
            cache_dir = Path(args.cache_dir)
            cache_dir.mkdir(parents=True, exist_ok=True)
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-cache-")
            cache_dir = Path(tmp.name)
        try:
            cold = run_sweep(spec, workers=workers, chunksize=args.chunksize,
                             cache_dir=cache_dir, kernel=args.kernel)
            print(f"  parallel : {cold.wall_s:8.2f}s  digest {cold.digest()[:16]}  "
                  f"compiled {cold.cache['compiled_total']}  "
                  f"(retried {cold.retried_chunks} chunks, "
                  f"{cold.fallback_tasks} tasks inline)")
            warm = run_sweep(spec, workers=workers, chunksize=args.chunksize,
                             cache_dir=cache_dir, kernel=args.kernel)
            print(f"  warm     : {warm.wall_s:8.2f}s  digest {warm.digest()[:16]}  "
                  f"compiled {warm.cache['compiled_total']}")
        finally:
            if tmp is not None:
                tmp.cleanup()
        identical = serial.digest() == cold.digest() == warm.digest()
        bench["parallel"] = {
            "wall_s": cold.wall_s, "digest": cold.digest(), "cache": cold.cache,
            "retried_chunks": cold.retried_chunks,
            "fallback_tasks": cold.fallback_tasks,
        }
        bench["warm"] = {
            "wall_s": warm.wall_s, "digest": warm.digest(),
            "compiled_total": warm.cache["compiled_total"], "cache": warm.cache,
        }
        bench["speedup"] = serial.wall_s / cold.wall_s if cold.wall_s else None
        result = cold
    bench["identical"] = identical

    out = Path(args.out)
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {out}"
          + (f"  (speedup {bench['speedup']:.2f}x at {workers} workers, "
             f"{bench['host_cpus']} host cpus)" if "speedup" in bench else ""))

    if args.trace is not None:
        doc = obs.write_chrome_trace(
            args.trace, spans=result.spans, metrics=result.registry.snapshot(),
            meta={"command": "sweep", "workers": result.workers,
                  "n_tasks": n_tasks},
        )
        print(f"  trace: {args.trace} ({len(doc['traceEvents'])} events; "
              f"open in https://ui.perfetto.dev)")
    if args.metrics is not None:
        if args.metrics != "-":
            Path(args.metrics).write_text(result.registry.render_json() + "\n")
            print(f"  metrics: {args.metrics}")
        else:
            print("-- merged metrics snapshot --")
            print(result.registry.render_text())

    if not identical:
        print("sweep: parallel payload differs from serial baseline",
              file=sys.stderr)
        return 1
    return 0


def _cmd_efficiency(args: argparse.Namespace) -> int:
    from repro.analysis import efficiency_sweep

    print(f"{'m':>4} {'p':>4} {'v':>3} {'Code 5-6':>9} {'MDS':>7} {'penalty':>8}")
    for e in efficiency_sweep(range(3, args.max_m + 1)):
        print(f"{e.m:>4} {e.p:>4} {e.v:>3} {e.paper_efficiency:>9.4f} "
              f"{e.mds_efficiency:>7.4f} {e.penalty:>7.2%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Code 5-6 RAID level migration (ICPP 2015 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="list registered codes")
    p_info.add_argument("--p", type=int, default=5)
    p_info.set_defaults(func=_cmd_info)

    p_layout = sub.add_parser("layout", help="render a stripe layout")
    p_layout.add_argument("code")
    p_layout.add_argument("--p", type=int, default=5)
    p_layout.add_argument("--virtual", type=int, nargs="*", default=[])
    p_layout.set_defaults(func=_cmd_layout)

    p_cert = sub.add_parser("certify", help="exhaustively certify MDS")
    p_cert.add_argument("code")
    p_cert.add_argument("--p", type=int, default=5)
    p_cert.add_argument("--virtual", type=int, nargs="*", default=[])
    p_cert.add_argument("--tolerance", type=int, default=2,
                        help="erasures to certify (3 for STAR)")
    p_cert.set_defaults(func=_cmd_certify)

    p_conv = sub.add_parser("convert", help="run + verify a conversion")
    p_conv.add_argument("code", nargs="?", default=None)
    p_conv.add_argument("approach", nargs="?",
                        choices=["direct", "via-raid0", "via-raid4"], default=None)
    p_conv.add_argument("--code", dest="code_opt", default=None,
                        help="alternative to the positional code")
    p_conv.add_argument("--approach", dest="approach_opt", default=None,
                        choices=["direct", "via-raid0", "via-raid4"],
                        help="alternative to the positional approach")
    p_conv.add_argument("--p", type=int, default=5)
    p_conv.add_argument("--n", type=int, default=None)
    p_conv.add_argument("--groups", type=int, default=None)
    p_conv.add_argument("--block-size", type=int, default=16)
    p_conv.add_argument("--seed", type=int, default=0)
    p_conv.add_argument("--kernel", choices=["numpy", "numba", "auto"], default="auto",
                        help="XOR kernel backend for the compiled engine's "
                             "fused region ops (auto: numba if importable, "
                             "else numpy)")
    p_conv.add_argument("--engine", choices=["audited", "compiled"], default="compiled",
                        help="batched compiled executor (default) or per-block audited engine")
    p_conv.add_argument("--online", action="store_true",
                        help="live-migrate via Algorithm 2 under a seeded "
                             "application-write schedule (code56/direct only)")
    p_conv.add_argument("--batch", type=int, default=1,
                        help="online: parity-run budget per conversion slice "
                             "(>1 enables fused runs + group-committed marks)")
    p_conv.add_argument("--requests", type=int, default=16,
                        help="online: seeded application requests to interleave")
    p_conv.add_argument("--disk", default="sata-7200",
                        help="disk preset for the --trace simulated timeline")
    p_conv.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Perfetto-viewable Chrome trace-event JSON")
    p_conv.add_argument("--metrics", nargs="?", const="-", default=None, metavar="PATH",
                        help="dump the metrics snapshot (optionally also as JSON to PATH)")
    p_conv.add_argument("--inject", default=None, metavar="SCENARIO",
                        help="fault scenario (JSON file or inline JSON): run the "
                             "conversion under the fault plane with journaled "
                             "crash recovery")
    p_conv.set_defaults(func=_cmd_convert)

    p_sim = sub.add_parser("simulate", help="simulated conversion makespans")
    p_sim.add_argument("--p", type=int, default=5)
    p_sim.add_argument("--blocks", type=int, default=60_000)
    p_sim.add_argument("--block-size", type=int, default=4096)
    p_sim.add_argument("--disk", default="sata-7200")
    p_sim.add_argument("--lb", type=int, default=16,
                       help="LB rotation period (0 = dedicated layout)")
    p_sim.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON (disk tracks for "
                            "the direct(code56) configuration)")
    p_sim.add_argument("--metrics", nargs="?", const="-", default=None, metavar="PATH",
                       help="dump the metrics snapshot (optionally also as JSON to PATH)")
    p_sim.set_defaults(func=_cmd_simulate)

    p_stats = sub.add_parser("stats", help="summarise a saved --trace JSON")
    p_stats.add_argument("trace_file")
    p_stats.add_argument("--top", type=int, default=15,
                         help="span names to list, by total wall time")
    p_stats.set_defaults(func=_cmd_stats)

    p_rec = sub.add_parser("recover", help="hybrid single-disk recovery stats")
    p_rec.add_argument("code")
    p_rec.add_argument("--p", type=int, default=5)
    p_rec.add_argument("--column", type=int, default=None)
    p_rec.set_defaults(func=_cmd_recover)

    p_scrub = sub.add_parser("scrub", help="inject + locate + heal silent corruption")
    p_scrub.add_argument("code", nargs="?", default="code56")
    p_scrub.add_argument("--p", type=int, default=5)
    p_scrub.add_argument("--groups", type=int, default=6)
    p_scrub.add_argument("--corruptions", type=int, default=2)
    p_scrub.add_argument("--seed", type=int, default=0)
    p_scrub.set_defaults(func=_cmd_scrub_demo)

    p_chaos = sub.add_parser(
        "chaos", help="crash-point sweeps + seeded fault soaks (repro.faults)"
    )
    p_chaos.add_argument("--crash-sweep", action="store_true",
                         help="sweep every crash point of the offline engines "
                              "(default action when --soak is not given)")
    p_chaos.add_argument("--online", action="store_true",
                         help="also sweep the online converter's crash points")
    p_chaos.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                         help="seeded randomized fault campaign for a time budget")
    p_chaos.add_argument("--replay", default=None, metavar="SPEC",
                         help="re-run a saved failure spec (JSON file or inline)")
    p_chaos.add_argument("--p", type=int, default=5)
    p_chaos.add_argument("--groups", type=int, default=2)
    p_chaos.add_argument("--block-size", type=int, default=8)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--engine", choices=["audited", "compiled", "both"],
                         default="both")
    p_chaos.add_argument("--schedules", type=int, default=3,
                         help="online sweep: app-write interleavings per point")
    p_chaos.add_argument("--batch", type=int, default=1,
                         help="online sweep: converter run budget (crashes land "
                              "inside group-commit windows when > 1)")
    p_chaos.add_argument("--kernel", choices=["numpy", "numba", "auto"],
                         default="auto",
                         help="XOR kernel backend for fused parity runs")
    p_chaos.add_argument("--sample", type=int, default=None,
                         help="sweep an evenly spaced subset of crash points "
                              "(default: exhaustive)")
    p_chaos.add_argument("--max-iterations", type=int, default=None,
                         help="soak: stop after N iterations even within budget")
    p_chaos.add_argument("--artifacts", default=None, metavar="DIR",
                         help="save replayable failure specs here")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_fleet = sub.add_parser(
        "fleet", help="self-healing multi-volume migration fleet (repro.fleet)"
    )
    p_fleet.add_argument("--volumes", type=int, default=8,
                         help="volumes to migrate")
    p_fleet.add_argument("--clients", type=int, default=4,
                         help="worker-pool width (concurrent migrations)")
    p_fleet.add_argument("--p", type=int, default=5)
    p_fleet.add_argument("--groups", type=int, default=2)
    p_fleet.add_argument("--block-size", type=int, default=8)
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--requests", type=int, default=12,
                         help="foreground requests per volume")
    p_fleet.add_argument("--batch", type=int, default=1,
                         help="converter run budget per volume")
    p_fleet.add_argument("--spares", type=int, default=2,
                         help="hot-spare pool size shared by the fleet")
    p_fleet.add_argument("--fail-volumes", type=int, nargs="+", default=None,
                         metavar="ID",
                         help="volume ids that lose a disk mid-migration")
    p_fleet.add_argument("--fail-disk", type=int, default=None,
                         help="disk to fail (default: seeded per-volume pick)")
    p_fleet.add_argument("--crash-volumes", type=int, nargs="+", default=None,
                         metavar="ID",
                         help="volume ids whose conversion crashes once")
    p_fleet.add_argument("--transient-rate", type=float, default=0.0,
                         help="per-I/O transient fault probability")
    p_fleet.add_argument("--qos-p99", type=float, default=None,
                         help="override every tenant's foreground p99 target "
                              "(ticks; default: tenant ring 40/60/90)")
    p_fleet.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                         help="chaos mode: randomized fleets for a time budget")
    p_fleet.add_argument("--max-iterations", type=int, default=None,
                         help="soak: stop after N fleets even within budget")
    p_fleet.add_argument("--report", default=None, metavar="PATH",
                         help="write the JSON fleet/soak report here")
    p_fleet.add_argument("--metrics", action="store_true",
                         help="print the metrics registry after recording")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_sweep = sub.add_parser(
        "sweep", help="parallel evaluation grid (serial vs process pool)"
    )
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="pool size (default: host cpu count; 0 = serial only)")
    p_sweep.add_argument("--primes", type=int, nargs="+", default=[5, 7, 11, 13])
    p_sweep.add_argument(
        "--workloads", nargs="+", default=["analysis", "sim"],
        help="grid workloads: analysis sim execute "
             "appsim-{uniform,zipf,sequential}",
    )
    p_sweep.add_argument("--blocks", type=int, default=600_000,
                         help="sim workload: total data blocks (Fig 19 uses 0.6M)")
    p_sweep.add_argument("--block-size", type=int, default=4096,
                         help="sim workload: migration I/O size in bytes")
    p_sweep.add_argument("--lb", type=int, default=16,
                         help="sim workload: LB rotation period (0 = dedicated)")
    p_sweep.add_argument("--exec-block-size", type=int, default=8,
                         help="execute workload: bytes per block")
    p_sweep.add_argument("--appsim-requests", type=int, default=20_000)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--chunksize", type=int, default=None,
                         help="tasks per worker dispatch (default: auto)")
    p_sweep.add_argument("--kernel", choices=["numpy", "numba", "auto"], default="auto",
                         help="XOR kernel backend in every worker process "
                              "(results are kernel-invariant byte-for-byte)")
    p_sweep.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="persistent compiled-program cache directory "
                              "(default: fresh temp dir per invocation)")
    p_sweep.add_argument("--out", default="BENCH_sweep.json", metavar="PATH")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="write the merged Perfetto timeline "
                              "(per-worker span tracks)")
    p_sweep.add_argument("--metrics", nargs="?", const="-", default=None,
                         metavar="PATH",
                         help="dump the merged metrics snapshot")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_eff = sub.add_parser("efficiency", help="Eq. 6 storage-efficiency sweep")
    p_eff.add_argument("--max-m", type=int, default=20)
    p_eff.set_defaults(func=_cmd_efficiency)

    p_check = sub.add_parser(
        "check", help="static verification (GF(2) prover, dataflow, lint)"
    )
    p_check.add_argument(
        "--analyzer",
        action="append",
        choices=("concur", "dataflow", "lint", "prover", "selftest"),
        help="run only this analyzer (repeatable; default: all but concur)",
    )
    p_check.add_argument(
        "--concur", action="store_true",
        help="also run the concurrency plane (interleaving model checker, "
        "happens-before race detector, sanitizer smoke, seeded defects)",
    )
    p_check.add_argument(
        "--primes", type=int, nargs="+", metavar="P",
        help="prover prime sweep (default: every prime 5..31)",
    )
    p_check.add_argument(
        "--quick", action="store_true", help="small prime sweep (5, 7)"
    )
    p_check.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_check.add_argument(
        "--metrics", action="store_true",
        help="also print the staticcheck metrics snapshot",
    )
    p_check.set_defaults(func=_cmd_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "lb", None) == 0:
        args.lb = None
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
