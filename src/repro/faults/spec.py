"""Replayable fault scenarios: a seed plus an explicit schedule.

A :class:`FaultScenario` is the *complete* description of one fault
run — every deterministic schedule entry (sector errors, torn writes,
transients, disk failures, the armed crash point) plus the seed that
drives any rate-based draws.  It round-trips through JSON unchanged, so
a failure observed in CI ships as a file that reproduces the exact same
byte-level behaviour locally (``repro chaos --replay scenario.json``).

Schedule entries are indexed by the plane's **op counter** (every
plane-visible I/O advances it by one, bulk ops by their element count);
the crash point is indexed by the **crashable-event counter**, which
only advances inside the conversion thread's ``crashable()`` sections
and at journal barriers — so an exhaustive crash sweep enumerates
exactly the conversion's own op boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "RetryPolicy",
    "SectorError",
    "TornWrite",
    "TransientFault",
    "DiskFailureAt",
    "FaultScenario",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the plane retries transient I/O errors.

    ``max_retries`` consecutive failed attempts exhaust the budget and
    surface a :class:`~repro.faults.errors.TransientIOError`; each retry
    adds ``backoff_base_ticks * backoff_multiplier**(attempt-1)`` to the
    plane's accumulated backoff time (metrics only — the in-memory array
    has no clock).
    """

    max_retries: int = 3
    backoff_base_ticks: float = 1.0
    backoff_multiplier: float = 2.0


@dataclass(frozen=True)
class SectorError:
    """A latent sector error: reads of (disk, block) fail until rewritten."""

    disk: int
    block: int


@dataclass(frozen=True)
class TornWrite:
    """The write at plane-op index ``op`` is torn.

    Only the first ``keep_fraction`` of the payload reaches the platter;
    the tail keeps the previous contents (a partial-sector update, the
    classic write-hole ingredient).  The op still completes and counts.
    """

    op: int
    keep_fraction: float = 0.5


@dataclass(frozen=True)
class TransientFault:
    """The I/O at plane-op index ``op`` fails ``failures`` times first."""

    op: int
    failures: int = 1


@dataclass(frozen=True)
class DiskFailureAt:
    """Disk ``disk`` dies at the boundary before plane-op index ``op``."""

    op: int
    disk: int


#: every registered schedule-entry type, keyed by its scenario field —
#: the round-trip methods iterate this, so registering a new event type
#: here is all it takes to make it replayable from JSON artifacts
_SCHEDULE_FIELDS = {
    "sector_errors": SectorError,
    "torn_writes": TornWrite,
    "transients": TransientFault,
    "disk_failures": DiskFailureAt,
}

#: per-entry field coercions (dataclass annotation -> JSON primitive);
#: schedule entries are routinely built from numpy scalars (rng draws),
#: which ``json.dumps`` rejects — normalise at the boundary instead of
#: scattering ``default=int`` over every dump site
_FIELD_TYPES: dict[type, dict[str, type]] = {
    SectorError: {"disk": int, "block": int},
    TornWrite: {"op": int, "keep_fraction": float},
    TransientFault: {"op": int, "failures": int},
    DiskFailureAt: {"op": int, "disk": int},
}


def _jsonify(value: Any) -> Any:
    """Best-effort coercion of a meta value to a JSON-stable primitive."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def _entry_dict(entry: Any) -> dict:
    kinds = _FIELD_TYPES[type(entry)]
    return {name: kind(getattr(entry, name)) for name, kind in kinds.items()}


def _entry_from(entry_cls: type, doc: dict) -> Any:
    kinds = _FIELD_TYPES[entry_cls]
    return entry_cls(**{name: kind(doc[name]) for name, kind in kinds.items() if name in doc})


@dataclass(frozen=True)
class FaultScenario:
    """One seed + schedule bundle; the unit of fault replay."""

    seed: int = 0
    sector_errors: tuple[SectorError, ...] = ()
    torn_writes: tuple[TornWrite, ...] = ()
    transients: tuple[TransientFault, ...] = ()
    disk_failures: tuple[DiskFailureAt, ...] = ()
    #: probability that any single I/O draws a 1-failure transient
    transient_rate: float = 0.0
    #: crashable-event index to die at (None = never crash)
    crash_at: int | None = None
    #: fraction of the in-flight write applied at the crash (None = clean)
    crash_tear: float | None = None
    retry: RetryPolicy = RetryPolicy()
    #: free-form workload parameters (kept verbatim for replay harnesses)
    meta: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------ round-trip
    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "seed": int(self.seed),
            "transient_rate": float(self.transient_rate),
            "crash_at": None if self.crash_at is None else int(self.crash_at),
            "crash_tear": None if self.crash_tear is None else float(self.crash_tear),
            "retry": {
                "max_retries": int(self.retry.max_retries),
                "backoff_base_ticks": float(self.retry.backoff_base_ticks),
                "backoff_multiplier": float(self.retry.backoff_multiplier),
            },
            "meta": {str(k): _jsonify(v) for k, v in self.meta.items()},
        }
        for name in _SCHEDULE_FIELDS:
            doc[name] = [_entry_dict(e) for e in getattr(self, name)]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultScenario":
        crash_at = doc.get("crash_at")
        crash_tear = doc.get("crash_tear")
        kwargs: dict[str, Any] = {
            "seed": int(doc.get("seed", 0)),
            "transient_rate": float(doc.get("transient_rate", 0.0)),
            "crash_at": None if crash_at is None else int(crash_at),
            "crash_tear": None if crash_tear is None else float(crash_tear),
            "retry": RetryPolicy(**doc.get("retry", {})),
            "meta": dict(doc.get("meta", {})),
        }
        for name, entry_cls in _SCHEDULE_FIELDS.items():
            kwargs[name] = tuple(_entry_from(entry_cls, e) for e in doc.get(name, []))
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultScenario":
        return cls.from_json(Path(path).read_text())

    # -------------------------------------------------------------- variants
    def with_crash(self, at_event: int, tear: float | None = None) -> "FaultScenario":
        """The same scenario armed to crash at ``at_event`` (sweep helper)."""
        from dataclasses import replace

        return replace(self, crash_at=at_event, crash_tear=tear)

    def without_crash(self) -> "FaultScenario":
        """The same scenario with the crash disarmed (resume helper)."""
        from dataclasses import replace

        return replace(self, crash_at=None, crash_tear=None)
