"""Crash-consistent conversion: checkpointed execution and resume.

Both offline engines are wrapped in the same write-ahead discipline,
one *unit* at a time — a stripe-group for the audited engine, a whole
phase for the compiled engine:

1. ``journal.begin(unit)`` logs the pre-image of every block the unit
   will write (captured out of band, like controller NVRAM);
2. the unit executes inside the fault plane's ``crashable()`` section,
   so an armed crash can kill it before *any* of its op boundaries —
   including the synthetic barriers right after ``begin`` and right
   before ``commit`` (the classic torn-ordering windows);
3. ``journal.commit(unit)`` seals it with a digest of the bytes written.

Resume re-walks the unit list: validated committed units are skipped,
everything else (in-flight, stale, tampered) is rolled back from its
pre-images and re-executed.  Re-execution is byte-deterministic because
rollback first restores the exact pre-unit state — so a conversion
resumed after a crash at any boundary converges to the byte-identical
final array (the crash-sweep tests enumerate every boundary).

Degraded mode rides the same path: every unit runs through a
:class:`~repro.faults.degraded.ReconstructingReader`, which turns disk
failures and read faults into RAID-5 row reconstructions for
zero-movement plans (direct Code 5-6) and refuses anything else.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.faults.degraded import ReconstructingReader, plan_is_zero_movement
from repro.faults.errors import ConversionCrash, ReadFaultError, TransientIOError
from repro.faults.journal import ConversionJournal
from repro.faults.plane import FaultPlane
from repro.faults.spec import FaultScenario
from repro.migration.engine import ConversionResult, _execute_group
from repro.migration.plan import ConversionPlan
from repro.raid.array import BlockArray, DiskFailure

__all__ = [
    "CheckpointedRun",
    "execute_checkpointed",
    "run_to_completion",
    "count_crash_events",
]

_RECOVERABLE = (DiskFailure, ReadFaultError, TransientIOError)


@dataclass
class CheckpointedRun:
    """Outcome of one (possibly resumed) checkpointed execution."""

    result: ConversionResult
    journal: ConversionJournal
    units_executed: int
    units_skipped: int
    rollbacks: int
    stale_detected: int
    degraded: bool


# --------------------------------------------------------------------- units
def _audited_units(plan: ConversionPlan):
    """(key, group-work, written-disks, written-blocks) in execution order."""
    units = []
    for gw in sorted(plan.group_works, key=lambda g: (g.phase, g.group)):
        disks: list[int] = []
        blocks: list[int] = []
        for _src, dst, _rp, _wp in gw.migrates.values():
            disks.append(dst.disk)
            blocks.append(dst.block)
        for loc in gw.null_writes.values():
            disks.append(loc.disk)
            blocks.append(loc.block)
        for loc in gw.trims:
            disks.append(loc.disk)
            blocks.append(loc.block)
        for loc in gw.parity_writes.values():
            disks.append(loc.disk)
            blocks.append(loc.block)
        units.append(
            (
                ("group", gw.phase, gw.group),
                gw,
                np.asarray(disks, dtype=np.intp),
                np.asarray(blocks, dtype=np.intp),
            )
        )
    return units


def _compiled_units(program):
    """(key, phase-program, written-disks, written-blocks) per phase."""
    units = []
    for ph in program.phases:
        disks = np.concatenate(
            [ph.migrate_dst_disk, ph.null_disk, ph.trim_disk, ph.parity_disk]
        )
        blocks = np.concatenate(
            [ph.migrate_dst_block, ph.null_block, ph.trim_block, ph.parity_block]
        )
        units.append((("phase", ph.phase), ph, disks, blocks))
    return units


# ---------------------------------------------------- compiled phase (shadow)
def _bulk_read_recovering(
    array: BlockArray, reader: ReconstructingReader, disks, blocks
) -> np.ndarray:
    """One counted bulk read; falls back to per-block reconstruction.

    The healthy path is the executor's single gather (identical
    counters); only when the bulk admission faults — a failed disk, a
    sector error, an exhausted transient — does it degrade to per-block
    reads through the reconstructing reader.
    """
    if disks.size == 0:
        return np.zeros((0, array.block_size), dtype=np.uint8)
    try:
        return array.read_blocks(disks, blocks)
    except _RECOVERABLE:
        out = np.empty((disks.size, array.block_size), dtype=np.uint8)
        for i in range(disks.size):
            out[i] = reader.read(int(disks[i]), int(blocks[i]))
        return out


def _gather_peek(array: BlockArray, reader: ReconstructingReader, disks, blocks) -> np.ndarray:
    """Uncounted gather with reconstruction for failed-disk elements."""
    if not array.failed_disks:
        return array.gather_raw(disks, blocks)
    out = np.array(array.gather_raw(disks, blocks), copy=True)
    for i in np.flatnonzero(np.isin(disks, sorted(array.failed_disks))):
        out[i] = reader.peek(int(disks[i]), int(blocks[i]))
    return out


def _run_phase_checkpointed(program, ph, array: BlockArray, reader) -> None:
    """The compiled executor's phase, with degraded/fault fallbacks.

    Mirrors :func:`repro.compiled.executor._run_phase` bulk for bulk (so
    healthy runs land on identical bytes and counters) but lives here —
    outside the hot-path modules — because its recovery fallbacks are
    per-block by nature.  When the phase is lowered and nothing observes
    the counted read path (no fault plane, no failed disks — e.g. a
    resume after the crashing plane is detached), the parity work
    delegates to the executor's fused kernel path; any attached plane or
    failure keeps the shadow stripe-tensor path below, whose fallbacks
    the recovery machinery needs.
    """
    from repro.compiled import executor as _executor

    code = program.code
    if ph.migrate_src_disk.size:
        payload = _bulk_read_recovering(array, reader, ph.migrate_src_disk, ph.migrate_src_block)
        array.write_blocks(ph.migrate_dst_disk, ph.migrate_dst_block, payload)
    if ph.null_disk.size:
        array.write_zero_blocks(ph.null_disk, ph.null_block)
    if ph.trim_disk.size:
        array.trim_blocks(ph.trim_disk, ph.trim_block)
    if ph.batch == 0:
        return
    if ph.fused is not None and _executor._fused_usable(array):
        _executor._run_phase_fused(
            program, ph, ph.fused, array, _executor.resolve_kernel()
        )
        return
    stripes = np.zeros((ph.batch, code.rows, code.cols, array.block_size), dtype=np.uint8)
    flat = stripes.reshape(-1, array.block_size)
    if ph.read_disk.size:
        flat[ph.read_cell] = _bulk_read_recovering(array, reader, ph.read_disk, ph.read_block)
    if ph.fill_disk.size:
        flat[ph.fill_cell] = _gather_peek(array, reader, ph.fill_disk, ph.fill_block)
    code.encode(stripes)
    if ph.parity_disk.size:
        array.write_blocks(ph.parity_disk, ph.parity_block, flat[ph.parity_cell])
    if ph.check_disk.size:
        auditable = (
            ~np.isin(ph.check_disk, sorted(array.failed_disks))
            if array.failed_disks
            else np.ones(ph.check_disk.size, dtype=bool)
        )
        actual = array.gather_raw(ph.check_disk[auditable], ph.check_block[auditable])
        if not np.array_equal(flat[ph.check_cell[auditable]], actual):
            bad = np.flatnonzero((flat[ph.check_cell[auditable]] != actual).any(axis=1))
            raise AssertionError(
                f"pre-existing parity at {bad.size} location(s) of phase "
                f"{ph.phase} does not match the recomputed value — old "
                "parity was not valid"
            )


# ------------------------------------------------------------------ executor
def execute_checkpointed(
    plan: ConversionPlan,
    array: BlockArray,
    data: np.ndarray,
    journal: ConversionJournal | None = None,
    *,
    engine: str = "audited",
    program=None,
    validate: bool = True,
) -> CheckpointedRun:
    """Run (or resume) a conversion under the write-ahead journal.

    Pass the journal of a crashed run to resume it — with the **same
    engine**: unit boundaries differ between the audited (per-group) and
    compiled (per-phase) executors, so a journal only describes the
    engine that wrote it.  ``validate=False`` trusts committed units
    blindly (only the seeded-fault selftest does this, to prove that
    validation is what catches stale checkpoints).
    """
    from repro.obs.tracer import get_tracer

    if engine not in ("audited", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    degraded = bool(array.failed_disks)
    if degraded:
        lost_new = sorted(set(array.failed_disks) & set(plan.new_disks))
        if lost_new:
            raise ValueError(
                f"hot-added disk(s) {lost_new} failed — the generated parities "
                "have nowhere to land; replace the disk and restart"
            )
        if not plan_is_zero_movement(plan):
            raise ValueError(
                "degraded conversion requires a zero-movement plan (direct "
                "Code 5-6): data-moving conversions break the RAID-5 row "
                "invariant that reconstruct-on-read depends on"
            )
    if journal is None:
        journal = ConversionJournal()
    if engine == "compiled":
        if program is None:
            from repro.compiled.compiler import compile_plan

            program = compile_plan(plan)
        units = _compiled_units(program)
    else:
        units = _audited_units(plan)
    reader = ReconstructingReader(
        array, plan.m, allow_reconstruction=plan_is_zero_movement(plan)
    )
    plane = array.fault_plane
    fresh = not journal.records
    if fresh:
        array.reset_counters()

    executed = skipped = rollbacks = stale = 0
    tracer = get_tracer()
    with tracer.span(
        "execute.checkpointed", cat="faults", engine=engine,
        code=plan.code.name, approach=plan.approach, resumed=not fresh,
        degraded=degraded,
    ), (plane.crashable() if plane is not None else nullcontext()):
        for key, work, wdisks, wblocks in units:
            rec = journal.get(key)
            if rec is not None and rec.state == "committed":
                if not validate or journal.validate(key, array):
                    skipped += 1
                    continue
                # a committed unit whose bytes no longer match is never
                # trusted: undo and redo it from the logged pre-images
                stale += 1
                if plane is not None:
                    plane.counters["stale_checkpoints"] += 1
                journal.rollback(key, array)
                rollbacks += 1
            elif rec is not None:  # crashed in flight
                journal.rollback(key, array)
                rollbacks += 1
            journal.begin(key, wdisks, wblocks, array.gather_raw(wdisks, wblocks))
            if plane is not None:
                plane.crash_point(f"begin:{key}")
            if engine == "compiled":
                _run_phase_checkpointed(program, work, array, reader)
            else:
                _execute_group(plan, work, array, io=reader)
            if plane is not None:
                plane.crash_point(f"pre-commit:{key}")
            journal.commit(
                key, ConversionJournal.digest_of(array.gather_raw(wdisks, wblocks))
            )
            executed += 1

    result = ConversionResult(
        array=array,
        plan=plan,
        data=data,
        measured_reads=array.total_reads,
        measured_writes=array.total_writes,
    )
    return CheckpointedRun(
        result=result,
        journal=journal,
        units_executed=executed,
        units_skipped=skipped,
        rollbacks=rollbacks,
        stale_detected=stale,
        degraded=degraded,
    )


def run_to_completion(attempt, max_crashes: int = 10_000):
    """Call ``attempt()`` until it stops raising :class:`ConversionCrash`.

    Returns ``(value, crashes)``.  ``attempt`` must be resumable — e.g.
    a closure over one journal that disarms (or re-arms) the crash
    between calls; ``max_crashes`` guards against a harness that re-arms
    the same crash point forever.
    """
    crashes = 0
    while True:
        try:
            return attempt(), crashes
        except ConversionCrash:
            crashes += 1
            if crashes > max_crashes:
                raise


def count_crash_events(
    plan: ConversionPlan,
    *,
    engine: str = "audited",
    block_size: int = 8,
    seed: int = 0,
    scenario: FaultScenario | None = None,
    program=None,
) -> int:
    """Probe run: how many crashable events does this conversion have?

    Runs the checkpointed executor once on a throwaway array with the
    crash disarmed and returns the crashable-event count — the range an
    exhaustive crash sweep enumerates.  ``scenario`` (minus its crash)
    must match the sweep's, so faulted runs count the same events.
    """
    from repro.migration.engine import prepare_source_array

    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    base = scenario.without_crash() if scenario is not None else FaultScenario()
    plane = FaultPlane(base)
    plane.attach(array)
    execute_checkpointed(plan, array, data, engine=engine, program=program)
    plane.detach()
    return plane.crash_events_done
