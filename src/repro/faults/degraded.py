"""Reconstruct-on-read: degraded-mode I/O for the conversion engines.

The direct Code 5-6 conversion never writes the old RAID-5 columns, so
the horizontal (row) parity stays valid at every instant — the paper's
safe-online property.  That is exactly the invariant that makes
degraded-mode conversion possible: a block on a failed disk (or one
carrying a latent sector error) is the XOR of the other ``m-1`` blocks
of its RAID-5 row, at any point during the conversion.

:class:`ReconstructingReader` packages that recovery as an I/O adapter
the engines consume — ``read`` (counted, with reconstruction fallback),
``peek`` (uncounted, for controller-memory fills and parity audits) and
``check_ok`` (whether a reused-parity audit of a disk is possible).  For
plans that *do* move data (via-RAID-0/4 and the multi-phase codes) the
row invariant breaks mid-flight, so the adapter is built with
``allow_reconstruction=False`` and simply re-raises — degraded
conversion is refused rather than silently corrupted.
"""

from __future__ import annotations

import numpy as np

from repro.faults.errors import ReadFaultError, TransientIOError
from repro.raid.array import BlockArray, DiskFailure

__all__ = ["ReconstructingReader", "plan_is_zero_movement"]

#: faults the reader can hide by reconstructing from the RAID-5 row
_RECOVERABLE = (DiskFailure, ReadFaultError, TransientIOError)


def plan_is_zero_movement(plan) -> bool:
    """True when the conversion never writes the old RAID-5 columns.

    Zero data movement (no migrations, no NULL invalidations, no trims)
    and every generated parity landing on a hot-added disk together
    guarantee the RAID-5 row invariant holds throughout — the predicate
    for degraded-mode conversion.
    """
    for gw in plan.group_works:
        if gw.migrates or gw.null_writes or gw.trims:
            return False
        for loc in gw.parity_writes.values():
            if loc.disk not in plan.new_disks:
                return False
    return True


class ReconstructingReader:
    """Counted reads with RAID-5 row reconstruction on failure.

    Parameters
    ----------
    array:
        The array under conversion.
    m:
        Width of the RAID-5 source region (disks ``0..m-1``); blocks on
        disk ``>= m`` (the hot-added columns) cannot be reconstructed
        from the row and always re-raise.
    allow_reconstruction:
        ``False`` turns the adapter into a transparent pass-through that
        re-raises every fault — used for plans whose row invariant does
        not hold.
    """

    def __init__(self, array: BlockArray, m: int, allow_reconstruction: bool = True):
        self.array = array
        self.m = m
        self.allow = allow_reconstruction

    # ------------------------------------------------------------- counted
    def read(self, disk: int, block: int) -> np.ndarray:
        """One counted read; reconstructs through the row on any fault."""
        if disk not in self.array.failed_disks:
            try:
                return self.array.read(disk, block)
            except _RECOVERABLE:
                if not self.allow or disk >= self.m:
                    raise
        elif not self.allow or disk >= self.m:
            # propagate the array's own failure semantics
            return self.array.read(disk, block)
        return self._reconstruct(disk, block)

    def _reconstruct(self, disk: int, block: int) -> np.ndarray:
        """XOR of the other ``m-1`` row members (counted reads)."""
        from repro.obs.tracer import get_tracer

        plane = self.array.fault_plane
        with get_tracer().span(
            "degraded.reconstruct", cat="faults", track="faults",
            disk=disk, block=block,
        ):
            acc = np.zeros(self.array.block_size, dtype=np.uint8)
            for d in range(self.m):
                if d == disk:
                    continue
                np.bitwise_xor(acc, self.array.read(d, block), out=acc)
        if plane is not None:
            plane.counters["reconstructed_blocks"] += 1
            plane.counters["degraded_reads"] += self.m - 2  # extra vs 1 read
        return acc

    # ----------------------------------------------------------- uncounted
    def peek(self, disk: int, block: int) -> np.ndarray:
        """Uncounted raw view/reconstruction (fills, audits, validation)."""
        if disk not in self.array.failed_disks:
            return self.array.raw(disk, block)
        if not self.allow or disk >= self.m:
            raise DiskFailure(f"disk {disk} has failed")
        acc = np.zeros(self.array.block_size, dtype=np.uint8)
        for d in range(self.m):
            if d != disk:
                np.bitwise_xor(acc, self.array.raw(d, block), out=acc)
        return acc

    def check_ok(self, disk: int) -> bool:
        """Can a reused-parity audit read this disk's true bytes?"""
        return disk not in self.array.failed_disks
