"""Conversion journals: the stable storage that makes crash recovery work.

Two journal shapes, one per conversion style:

* :class:`ConversionJournal` — a write-ahead undo/commit log for the
  offline engines.  Before a unit of work (one stripe-group for the
  audited engine, one phase for the compiled engine) touches the array,
  ``begin`` records the pre-images of every block the unit will write;
  after the unit's last write, ``commit`` seals it with a SHA-256 digest
  of the bytes actually written.  On restart, a committed unit whose
  digest still matches the array is skipped; anything else — an
  in-flight unit, or a committed unit whose bytes no longer match (a
  stale or tampered checkpoint) — is **rolled back from its pre-images
  and re-executed, never trusted**.
* :class:`OnlineJournal` — a watermark bitmap of generated diagonal
  parities for Algorithm 2.  Entries are marked only *after* the parity
  write completes (write-ahead ordering), and a resuming converter
  re-derives trust by recomputing each marked chain — a mark is a hint,
  the bytes are the authority.

Journal traffic is deliberately uncounted on the array: the journal
models a separate stable device (NVRAM / a log partition), and the
paper's I/O figures measure array traffic only.  The journals track
their own op/byte tallies for the fault report instead.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.raid.array import BlockArray

__all__ = ["JournalKey", "JournalRecord", "ConversionJournal", "OnlineJournal"]

IN_FLIGHT = "in-flight"
COMMITTED = "committed"

#: unit identifier — e.g. ``("group", g)`` or ``("phase", i)``
JournalKey = tuple[object, ...]


@dataclass
class JournalRecord:
    """One unit's undo record plus (after commit) its content digest."""

    key: JournalKey
    disks: npt.NDArray[np.intp]
    blocks: npt.NDArray[np.intp]
    preimages: npt.NDArray[np.uint8]
    digest: str | None = None
    state: str = IN_FLIGHT


@dataclass
class ConversionJournal:
    """Write-ahead undo/commit log for checkpointed offline conversion."""

    records: dict[JournalKey, JournalRecord] = field(default_factory=dict)
    #: stable-storage accounting (not array I/O)
    bytes_logged: int = 0
    appends: int = 0

    @staticmethod
    def digest_of(payloads: npt.ArrayLike) -> str:
        """Content digest of a unit's written blocks (order-sensitive)."""
        return hashlib.sha256(np.ascontiguousarray(payloads).tobytes()).hexdigest()

    # ------------------------------------------------------------- WAL ops
    def begin(
        self,
        key: JournalKey,
        disks: npt.ArrayLike,
        blocks: npt.ArrayLike,
        preimages: npt.ArrayLike,
    ) -> None:
        """Log a unit's undo record before it touches the array."""
        disk_ids = np.asarray(disks, dtype=np.intp).ravel().copy()
        block_ids = np.asarray(blocks, dtype=np.intp).ravel().copy()
        images = np.asarray(preimages, dtype=np.uint8).copy()
        self.records[key] = JournalRecord(key, disk_ids, block_ids, images)
        self.bytes_logged += images.nbytes
        self.appends += 1

    def commit(self, key: JournalKey, digest: str) -> None:
        rec = self.records[key]
        rec.digest = digest
        rec.state = COMMITTED
        self.appends += 1

    # ------------------------------------------------------------ recovery
    def get(self, key: JournalKey) -> JournalRecord | None:
        return self.records.get(key)

    def committed(self, key: JournalKey) -> bool:
        rec = self.records.get(key)
        return rec is not None and rec.state == COMMITTED

    def validate(self, key: JournalKey, array: BlockArray) -> bool:
        """Does the array still hold the bytes the unit committed?

        Uses the uncounted gather — validation is the recovery path's
        out-of-band scan, not array traffic.
        """
        rec = self.records[key]
        if rec.state != COMMITTED or rec.digest is None:
            return False
        return self.digest_of(array.gather_raw(rec.disks, rec.blocks)) == rec.digest

    def rollback(self, key: JournalKey, array: BlockArray) -> None:
        """Restore the unit's pre-images (undo), reopening it for re-execution."""
        rec = self.records[key]
        array.restore_blocks(rec.disks, rec.blocks, rec.preimages)
        rec.digest = None
        rec.state = IN_FLIGHT

    # ------------------------------------------------------------ reporting
    def snapshot(self) -> dict[str, object]:
        states: dict[str, int] = {}
        for rec in self.records.values():
            states[rec.state] = states.get(rec.state, 0) + 1
        return {
            "units": len(self.records),
            "states": states,
            "appends": self.appends,
            "bytes_logged": self.bytes_logged,
        }


class OnlineJournal:
    """Watermark of generated diagonal parities (Algorithm 2 checkpoint)."""

    def __init__(self, groups: int, rows: int):
        self._marked: npt.NDArray[np.bool_] = np.zeros((groups, rows), dtype=bool)
        self.appends = 0

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self._marked.shape
        return int(rows), int(cols)

    def mark(self, group: int, row: int) -> None:
        """Record parity (group, row) as generated — call *after* its write."""
        self._marked[group, row] = True
        self.appends += 1

    def mark_many(self, entries: Iterable[tuple[int, int]]) -> None:
        """Group-commit a run of ``(group, row)`` marks in one log append.

        The batched converter's journal flush: issued only after *every*
        parity write in the run has landed (write-ahead ordering held
        run-wide), so a crash anywhere before this call leaves the whole
        run unmarked — correct bytes, regenerated idempotently on
        resume.  One ``appends`` tick models the single stable-storage
        flush.
        """
        pairs = tuple(entries)
        if not pairs:
            return
        groups = np.fromiter((g for g, _r in pairs), dtype=np.intp, count=len(pairs))
        rows = np.fromiter((r for _g, r in pairs), dtype=np.intp, count=len(pairs))
        self._marked[groups, rows] = True
        self.appends += 1

    def unmark(self, group: int, row: int) -> None:
        """Drop a mark that failed validation (stale checkpoint)."""
        self._marked[group, row] = False

    def is_marked(self, group: int, row: int) -> bool:
        return bool(self._marked[group, row])

    def marked(self) -> npt.NDArray[np.bool_]:
        return self._marked.copy()

    def restore_marks(self, marked: npt.NDArray[np.bool_]) -> None:
        """Overwrite the bitmap with a :meth:`marked` snapshot.

        State-space rewind for the interleaving model checker — not a
        log append, so ``appends`` is untouched.
        """
        if marked.shape != self._marked.shape:
            raise ValueError(
                f"snapshot shape {marked.shape} does not match {self._marked.shape}"
            )
        self._marked[...] = marked

    def count(self) -> int:
        return int(self._marked.sum())
