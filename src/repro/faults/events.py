"""Time-domain fault events injected into the online conversion.

:class:`DiskFailureEvent` started life inside ``migration/online.py``;
it lives here now so every fault type the project can inject — op-indexed
schedules (:mod:`repro.faults.spec`) and tick-timed online events alike —
comes from one package.  ``repro.migration.online`` re-exports it, so
existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskFailureEvent"]


@dataclass(frozen=True)
class DiskFailureEvent:
    """A whole-disk failure injected while the conversion runs."""

    time: float
    disk: int
