"""Typed fault exceptions raised by the injection plane.

Every failure mode the plane models surfaces as its own exception type,
so callers can distinguish "retry won't help" (:class:`ReadFaultError` —
a latent sector error / URE), "the retry budget ran out"
(:class:`TransientIOError`), and "the process died"
(:class:`ConversionCrash`) without string matching.  Whole-disk failures
reuse :class:`repro.raid.array.DiskFailure`, the array's own failure
type, so existing degraded-mode handling keeps working unchanged.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "ReadFaultError",
    "TransientIOError",
    "ConversionCrash",
]


class FaultError(Exception):
    """Base class of every injected-fault exception."""


class ReadFaultError(FaultError):
    """A latent sector error (URE): the block is unreadable.

    Retrying does not help — the medium is bad until the block is
    rewritten (drives remap the sector on write).  Callers recover by
    reconstructing the block from redundancy (see
    :class:`repro.faults.degraded.ReconstructingReader`).
    """

    def __init__(self, disk: int, block: int):
        super().__init__(f"unrecoverable read error at disk {disk}, block {block}")
        self.disk = disk
        self.block = block


class TransientIOError(FaultError):
    """A transient I/O error that persisted past the retry budget.

    The plane retries transient faults internally according to the
    scenario's :class:`~repro.faults.spec.RetryPolicy`; this is only
    raised once ``max_retries`` consecutive attempts have failed.
    """

    def __init__(self, disk: int, block: int, attempts: int):
        super().__init__(
            f"I/O to disk {disk}, block {block} still failing after "
            f"{attempts} attempt(s)"
        )
        self.disk = disk
        self.block = block
        self.attempts = attempts


class ConversionCrash(FaultError):
    """The conversion process died at a crash point.

    Raised *instead of completing* the op at the armed crashable-event
    index: the interrupted op is never counted, and for a torn write only
    the scenario's ``crash_tear`` fraction of the payload reached the
    platter.  Catch it at the harness level and resume from the journal.
    """

    def __init__(self, at_event: int, label: str = ""):
        where = f" ({label})" if label else ""
        super().__init__(f"conversion crashed at crashable event {at_event}{where}")
        self.at_event = at_event
        self.label = label
