"""Chaos harness: exhaustive crash-point sweeps and seeded fault soaks.

The crash sweeps are the executable form of the crash-consistency claim:
for *every* crashable event boundary of a conversion (counted by a probe
run), kill the conversion there, resume it from its journal, and demand
the resumed array be **byte-identical** to an uninterrupted run.  Each
crash point is swept under several write-interleaving variants — a clean
kill, a half-torn in-flight write, a one-byte-torn write — and, for the
online engine, under several seeded application-write schedules.

Every run is reproducible from a plain-data spec (seed + fault
schedule): failures come back as JSON-ready dicts that
:func:`replay_scenario` re-executes verbatim, and the CLI saves as
artifacts.  :func:`fault_soak` drives randomized mixed scenarios —
sector errors, transient storms, torn writes healed by the scrubber,
mid-run disk failures, crash/resume — for a wall-clock budget.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.faults.checkpoint import count_crash_events, execute_checkpointed
from repro.faults.errors import ConversionCrash
from repro.faults.journal import ConversionJournal, OnlineJournal
from repro.faults.plane import FaultPlane
from repro.faults.spec import FaultScenario, SectorError, TornWrite, TransientFault

__all__ = [
    "CRASH_VARIANTS",
    "crash_sweep_offline",
    "crash_sweep_online",
    "fault_soak",
    "replay_scenario",
    "save_failures",
]

#: write-interleaving variants per crash point: how the in-flight write
#: is left behind.  ``None`` = clean kill (no write in flight), ``0.5``
#: = half the new payload landed, ``0.0`` = a single new byte landed.
CRASH_VARIANTS: tuple[tuple[str, float | None], ...] = (
    ("clean", None),
    ("torn-half", 0.5),
    ("torn-1-byte", 0.0),
)


def _select_points(n_events: int, crash_points, sample: int | None):
    if crash_points is not None:
        return [int(k) for k in crash_points]
    if sample is not None and sample < n_events:
        return [int(k) for k in np.linspace(0, n_events - 1, sample).round()]
    return list(range(n_events))


# ------------------------------------------------------------------ offline
def _offline_reference(plan, seed: int, block_size: int) -> np.ndarray:
    from repro.migration.engine import execute_plan, prepare_source_array

    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    execute_plan(plan, array, data)
    return array.snapshot()


def _offline_single(
    plan,
    engine: str,
    seed: int,
    block_size: int,
    scenario: FaultScenario,
    reference: np.ndarray,
) -> dict:
    """One crash(+faults)/resume cycle; byte-compared against reference."""
    from repro.migration.engine import prepare_source_array, verify_conversion

    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    plane = FaultPlane(scenario)
    plane.attach(array)
    journal = ConversionJournal()
    crashed = 0
    run = None
    for _attempt in range(2 + len(scenario.disk_failures)):
        try:
            run = execute_checkpointed(plan, array, data, journal, engine=engine)
            break
        except ConversionCrash:
            crashed += 1
            plane.disarm_crash()
    if run is None:  # pragma: no cover - crash kept re-firing
        return {"ok": False, "crashed": crashed, "error": "did not complete"}
    verified = verify_conversion(run.result, check_io_counters=False)
    identical = bool(np.array_equal(array.snapshot(), reference))
    plane.detach()
    return {
        "ok": verified and identical,
        "verified": verified,
        "byte_identical": identical,
        "crashed": crashed,
        "units_skipped": run.units_skipped,
        "rollbacks": run.rollbacks,
        "counters": {k: v for k, v in plane.counters.items() if v},
    }


def crash_sweep_offline(
    p: int = 5,
    engine: str = "audited",
    *,
    groups: int = 2,
    block_size: int = 8,
    seed: int = 0,
    crash_points=None,
    sample: int | None = None,
    artifacts_dir: str | Path | None = None,
) -> dict:
    """Crash the offline conversion at every event boundary and resume.

    Sweeps ``crash_points`` (default: all crashable events, found by a
    probe run; ``sample`` takes an evenly spaced subset for big ``p``)
    under every :data:`CRASH_VARIANTS` interleaving.  A point passes when
    the resumed conversion verifies *and* its bytes equal an
    uninterrupted run's.  Failures (if any) are returned as replayable
    specs and optionally saved under ``artifacts_dir``.
    """
    from repro.migration.approaches import build_plan

    plan = build_plan("code56", "direct", p, groups=groups)
    reference = _offline_reference(plan, seed, block_size)
    n_events = count_crash_events(plan, engine=engine, block_size=block_size, seed=seed)
    points = _select_points(n_events, crash_points, sample)
    runs = 0
    failures: list[dict] = []
    for k in points:
        for label, tear in CRASH_VARIANTS:
            scenario = FaultScenario(seed=seed).with_crash(k, tear)
            outcome = _offline_single(plan, engine, seed, block_size, scenario, reference)
            runs += 1
            if not outcome["ok"]:
                failures.append(
                    {
                        "kind": "offline-crash",
                        "engine": engine,
                        "p": p,
                        "groups": groups,
                        "block_size": block_size,
                        "seed": seed,
                        "variant": label,
                        "scenario": scenario.to_dict(),
                        "outcome": outcome,
                    }
                )
    report = {
        "kind": "crash-sweep-offline",
        "engine": engine,
        "p": p,
        "groups": groups,
        "crash_events": n_events,
        "points_swept": len(points),
        "variants": [label for label, _ in CRASH_VARIANTS],
        "runs": runs,
        "failures": failures,
        "ok": not failures,
    }
    if artifacts_dir is not None and failures:
        save_failures(failures, artifacts_dir)
    return report


# ------------------------------------------------------------------- online
def _online_array(p: int, groups: int, seed: int, block_size: int):
    """A formatted left-asymmetric RAID-5 plus the blank diagonal disk."""
    from repro.migration.approaches import build_plan
    from repro.migration.engine import prepare_source_array

    plan = build_plan("code56", "direct", p, groups=groups)
    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    return array, data


def _online_requests(p: int, groups: int, schedule_seed, n_requests: int, block_size: int):
    """A seeded write-heavy application schedule."""
    from repro.migration.online import OnlineRequest

    rng = np.random.default_rng(schedule_seed)
    capacity = groups * (p - 1) * (p - 2)
    reqs = []
    t = 0.0
    for _ in range(n_requests):
        t += float(rng.integers(1, 6))
        is_write = bool(rng.random() < 0.7)
        reqs.append(
            OnlineRequest(
                time=t,
                lba=int(rng.integers(capacity)),
                is_write=is_write,
                payload=(
                    rng.integers(0, 256, size=block_size, dtype=np.uint8)
                    if is_write
                    else None
                ),
            )
        )
    return reqs


def _online_single(
    p: int,
    groups: int,
    seed: int,
    schedule: int,
    block_size: int,
    scenario: FaultScenario,
    reference: np.ndarray | None,
    n_requests: int = 8,
    batch: int = 1,
) -> dict:
    """One online crash/resume cycle under an app-write schedule."""
    from repro.migration.online import OnlineCode56Conversion

    array, _data = _online_array(p, groups, seed, block_size)
    requests = _online_requests(p, groups, (seed, schedule), n_requests, block_size)
    plane = FaultPlane(scenario)
    plane.attach(array)
    journal = OnlineJournal(groups, p - 1)
    served = 0
    crashed = 0
    verified = False
    for _attempt in range(3):
        conv = OnlineCode56Conversion(array, p, journal=journal, batch=batch)
        try:
            conv.run(requests[served:])
            verified = conv.verify()
            break
        except ConversionCrash:
            crashed += 1
            served += conv.requests_served
            plane.disarm_crash()
    identical = (
        bool(np.array_equal(array.snapshot(), reference))
        if reference is not None
        else True
    )
    plane.detach()
    return {
        "ok": verified and identical,
        "verified": verified,
        "byte_identical": identical,
        "crashed": crashed,
        "counters": {k: v for k, v in plane.counters.items() if v},
    }


def crash_sweep_online(
    p: int = 5,
    *,
    groups: int = 2,
    block_size: int = 8,
    seed: int = 0,
    schedules: int = 3,
    n_requests: int = 8,
    batch: int = 1,
    crash_points=None,
    sample: int | None = None,
    artifacts_dir: str | Path | None = None,
) -> dict:
    """Crash Algorithm 2 at every conversion-thread boundary and resume.

    For each of ``schedules`` seeded application-write interleavings:
    run uninterrupted for the reference bytes, probe the crashable-event
    count, then crash at each point (clean and torn-parity variants),
    resume via the :class:`OnlineJournal` watermark, and require verify
    + byte-identity.  Only the conversion thread is crashable — served
    app requests are durable, so the resume harness replays exactly the
    unserved suffix (``requests_served``).

    ``batch > 1`` sweeps the batched converter instead: crashes land
    inside group-commit windows (whole runs of correct-but-unmarked
    parities), and the reference bytes stay those of an *unbatched*
    run — byte-identity then also proves batched == per-parity.
    """
    from repro.migration.online import OnlineCode56Conversion

    runs = 0
    failures: list[dict] = []
    events_per_schedule = []
    for schedule in range(schedules):
        array, _ = _online_array(p, groups, seed, block_size)
        requests = _online_requests(p, groups, (seed, schedule), n_requests, block_size)
        ref_conv = OnlineCode56Conversion(array, p)
        ref_conv.run(requests)
        if not ref_conv.verify():  # pragma: no cover - sanity
            raise AssertionError("reference online run failed verification")
        reference = array.snapshot()

        probe_array, _ = _online_array(p, groups, seed, block_size)
        plane = FaultPlane(FaultScenario(seed=seed))
        plane.attach(probe_array)
        OnlineCode56Conversion(probe_array, p, batch=batch).run(requests)
        n_events = plane.crash_events_done
        plane.detach()
        events_per_schedule.append(n_events)

        points = _select_points(n_events, crash_points, sample)
        for k in points:
            for label, tear in CRASH_VARIANTS[:2]:  # clean + torn-half
                scenario = FaultScenario(seed=seed).with_crash(k, tear)
                outcome = _online_single(
                    p, groups, seed, schedule, block_size, scenario, reference,
                    n_requests=n_requests, batch=batch,
                )
                runs += 1
                if not outcome["ok"]:
                    failures.append(
                        {
                            "kind": "online-crash",
                            "p": p,
                            "groups": groups,
                            "block_size": block_size,
                            "seed": seed,
                            "schedule": schedule,
                            "n_requests": n_requests,
                            "batch": batch,
                            "variant": label,
                            "scenario": scenario.to_dict(),
                            "outcome": outcome,
                        }
                    )
    report = {
        "kind": "crash-sweep-online",
        "p": p,
        "groups": groups,
        "schedules": schedules,
        "batch": batch,
        "crash_events": events_per_schedule,
        "runs": runs,
        "failures": failures,
        "ok": not failures,
    }
    if artifacts_dir is not None and failures:
        save_failures(failures, artifacts_dir)
    return report


# --------------------------------------------------------------------- soak
def _soak_scenario(rng: np.random.Generator, p: int, kind: str) -> FaultScenario:
    """Draw one randomized fault schedule (reproducible from its fields)."""
    m = p - 1
    # distinct blocks: two sector errors in one RAID-5 row would be a
    # double fault — genuinely unrecoverable, not a harness bug
    blocks = rng.permutation((p - 1) * 2)[: int(rng.integers(0, 3))]
    sector_errors = tuple(
        SectorError(int(rng.integers(m)), int(b)) for b in blocks
    )
    transients = tuple(
        TransientFault(op=int(rng.integers(0, 200)), failures=int(rng.integers(1, 3)))
        for _ in range(int(rng.integers(0, 3)))
    )
    scenario = FaultScenario(
        seed=int(rng.integers(1 << 31)),
        sector_errors=sector_errors,
        transients=transients,
        meta={"kind": kind},
    )
    return scenario


def fault_soak(
    seconds: float = 120.0,
    *,
    seed: int = 0,
    p_values: tuple[int, ...] = (5, 7),
    block_size: int = 8,
    max_iterations: int | None = None,
    artifacts_dir: str | Path | None = None,
) -> dict:
    """Seeded randomized fault campaign for a wall-clock budget.

    Each iteration draws a scenario kind — offline crash/resume (either
    engine), mixed sector-error/transient injection, degraded conversion
    with a failed disk (rebuilt and fully verified afterwards), a torn
    parity write healed by the RAID-6 scrubber, or an online
    crash/resume — runs it, and verifies the end state.  Everything
    derives from ``seed``, so a failing iteration is reproducible from
    the returned spec alone.
    """
    from repro.migration.approaches import build_plan
    from repro.migration.engine import prepare_source_array, verify_conversion
    from repro.raid.scrub import scrub_raid6

    rng = np.random.default_rng(seed)
    deadline = time.monotonic() + seconds
    kinds = ("offline-crash", "offline-faults", "degraded", "torn-scrub", "online-crash")
    tally = {k: 0 for k in kinds}
    iterations = 0
    failures: list[dict] = []

    while time.monotonic() < deadline:
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        p = int(rng.choice(p_values))
        engine = "audited" if rng.random() < 0.5 else "compiled"
        kind = kinds[iterations % len(kinds)]
        tally[kind] += 1
        groups = 2
        plan = build_plan("code56", "direct", p, groups=groups)
        run_seed = int(rng.integers(1 << 31))
        spec = {
            "kind": kind,
            "engine": engine,
            "p": p,
            "groups": groups,
            "block_size": block_size,
            "seed": run_seed,
        }
        try:
            if kind == "online-crash":
                schedule = int(rng.integers(3))
                batch = int(rng.choice((1, 2, p - 1)))
                scenario = FaultScenario(seed=run_seed).with_crash(
                    int(rng.integers(1, 30)), 0.5 if rng.random() < 0.5 else None
                )
                spec.update(
                    schedule=schedule, scenario=scenario.to_dict(),
                    n_requests=6, batch=batch,
                )
                ok = _online_single(
                    p, groups, run_seed, schedule, block_size, scenario, None,
                    n_requests=6, batch=batch,
                )["ok"]
            elif kind == "torn-scrub":
                # a torn parity write is silent corruption: the conversion
                # completes, the scrubber must locate and repair it
                scenario = FaultScenario(
                    seed=run_seed,
                    torn_writes=(TornWrite(op=int(rng.integers(10, 40)), keep_fraction=0.5),),
                )
                spec["scenario"] = scenario.to_dict()
                ok = _run_torn_scrub(plan, engine, run_seed, block_size, scenario)
            elif kind == "degraded":
                failed_disk = int(rng.integers(p - 1))
                # transients only: they always recover within the retry
                # budget.  A sector error on a *second* disk of the same
                # row would be a double fault — beyond RAID-5's tolerance
                # mid-conversion, and correctly fatal rather than a bug.
                scenario = FaultScenario(
                    seed=int(rng.integers(1 << 31)),
                    transients=tuple(
                        TransientFault(op=int(rng.integers(0, 200)), failures=1)
                        for _ in range(int(rng.integers(0, 3)))
                    ),
                    meta={"kind": kind},
                )
                spec.update(failed_disk=failed_disk, scenario=scenario.to_dict())
                ok = _run_degraded(plan, engine, run_seed, block_size, scenario, failed_disk)
            else:
                scenario = _soak_scenario(rng, p, kind)
                if kind == "offline-crash":
                    scenario = scenario.with_crash(
                        int(rng.integers(40)), 0.5 if rng.random() < 0.5 else None
                    )
                spec["scenario"] = scenario.to_dict()
                reference = _offline_reference(plan, run_seed, block_size)
                ok = _offline_single(
                    plan, engine, run_seed, block_size, scenario, reference
                )["ok"]
        except Exception as exc:  # noqa: BLE001 - soak reports, never aborts
            ok = False
            spec["error"] = f"{type(exc).__name__}: {exc}"
        if not ok:
            failures.append(spec)
    report = {
        "kind": "fault-soak",
        "seed": seed,
        "seconds": seconds,
        "iterations": iterations,
        "by_kind": tally,
        "failures": failures,
        "ok": not failures,
    }
    if artifacts_dir is not None and failures:
        save_failures(failures, artifacts_dir)
    return report


def _run_torn_scrub(plan, engine, seed, block_size, scenario) -> bool:
    from repro.migration.engine import prepare_source_array, verify_conversion
    from repro.raid.scrub import scrub_raid6

    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    plane = FaultPlane(scenario)
    plane.attach(array)
    run = execute_checkpointed(plan, array, data, engine=engine)
    plane.detach()
    raid6 = _as_raid6(plan, array)
    report = scrub_raid6(raid6, repair=True)
    if plane.counters["torn_writes"] and not report.repaired:
        return False
    if report.unlocatable_groups:
        return False
    return verify_conversion(run.result, check_io_counters=False)


def _run_degraded(plan, engine, seed, block_size, scenario, failed_disk) -> bool:
    from repro.migration.engine import prepare_source_array, verify_conversion

    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=block_size
    )
    array.fail_disk(failed_disk)
    plane = FaultPlane(scenario)
    plane.attach(array)
    run = execute_checkpointed(plan, array, data, engine=engine)
    plane.detach()
    raid6 = _as_raid6(plan, array)
    raid6.rebuild_disks(failed_disk)
    return verify_conversion(run.result, check_io_counters=False) and raid6.verify()


def _as_raid6(plan, array):
    """The converted array as a Raid6Array (direct plans: column == disk)."""
    from repro.codes.registry import get_code
    from repro.raid.raid6 import Raid6Array

    return Raid6Array(array, get_code("code56", plan.p))


# ------------------------------------------------------------------- replay
def replay_scenario(spec: dict) -> dict:
    """Re-execute a failure spec saved by a sweep or soak, verbatim."""
    from repro.migration.approaches import build_plan

    kind = spec["kind"]
    scenario = FaultScenario.from_dict(spec["scenario"]) if "scenario" in spec else FaultScenario()
    p, groups = spec["p"], spec.get("groups", 2)
    block_size = spec.get("block_size", 8)
    seed = spec["seed"]
    plan = build_plan("code56", "direct", p, groups=groups)
    if kind in ("offline-crash", "offline-faults"):
        reference = _offline_reference(plan, seed, block_size)
        return _offline_single(
            plan, spec.get("engine", "audited"), seed, block_size, scenario, reference
        )
    if kind == "online-crash":
        return _online_single(
            p, groups, seed, spec.get("schedule", 0), block_size, scenario, None,
            n_requests=spec.get("n_requests", 8),
            batch=spec.get("batch", 1),
        )
    if kind == "torn-scrub":
        ok = _run_torn_scrub(plan, spec.get("engine", "audited"), seed, block_size, scenario)
        return {"ok": ok}
    if kind == "degraded":
        ok = _run_degraded(
            plan, spec.get("engine", "audited"), seed, block_size, scenario,
            spec["failed_disk"],
        )
        return {"ok": ok}
    raise ValueError(f"unknown scenario kind {kind!r}")


def save_failures(failures: list[dict], artifacts_dir: str | Path) -> list[Path]:
    """Write each failure spec as a replayable JSON artifact."""
    out = Path(artifacts_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, spec in enumerate(failures):
        path = out / f"fault-scenario-{i:03d}.json"
        path.write_text(json.dumps(spec, indent=2, default=int))
        paths.append(path)
    return paths
