"""repro.faults — deterministic fault injection and crash-consistent recovery.

The robustness layer for the conversion stack:

* :mod:`repro.faults.errors` — typed fault exceptions;
* :mod:`repro.faults.spec` — replayable (seed + schedule) scenarios;
* :mod:`repro.faults.events` — time-domain online events
  (:class:`DiskFailureEvent`, promoted out of ``migration/online.py``);
* :mod:`repro.faults.plane` — the :class:`FaultPlane` that injects
  sector errors, transients, torn writes, disk failures and crash
  points under :class:`~repro.raid.array.BlockArray` I/O;
* :mod:`repro.faults.degraded` — reconstruct-on-read for degraded-mode
  conversion;
* :mod:`repro.faults.journal` — the conversion journals (write-ahead
  undo records for the offline engines, a validated watermark for the
  online converter);
* :mod:`repro.faults.checkpoint` — crash-consistent execution and
  resume for the audited and compiled engines;
* :mod:`repro.faults.chaos` — crash-point sweeps and seeded fault
  soaks (the ``repro chaos`` backend).

The heavyweight modules (journal/checkpoint/degraded/chaos pull in the
migration engines) load lazily so that ``repro.migration`` can import
the light ones without a cycle.
"""

from __future__ import annotations

from repro.faults.errors import (
    ConversionCrash,
    FaultError,
    ReadFaultError,
    TransientIOError,
)
from repro.faults.events import DiskFailureEvent
from repro.faults.plane import FaultPlane
from repro.faults.spec import (
    DiskFailureAt,
    FaultScenario,
    RetryPolicy,
    SectorError,
    TornWrite,
    TransientFault,
)

__all__ = [
    # errors
    "FaultError",
    "ReadFaultError",
    "TransientIOError",
    "ConversionCrash",
    # events
    "DiskFailureEvent",
    # spec
    "FaultScenario",
    "RetryPolicy",
    "SectorError",
    "TornWrite",
    "TransientFault",
    "DiskFailureAt",
    # plane
    "FaultPlane",
    # lazy (heavy) surface
    "ReconstructingReader",
    "ConversionJournal",
    "OnlineJournal",
    "CheckpointedRun",
    "execute_checkpointed",
    "run_to_completion",
    "count_crash_events",
    "crash_sweep_offline",
    "crash_sweep_online",
    "fault_soak",
    "replay_scenario",
    "save_failures",
    "plan_is_zero_movement",
]

_LAZY = {
    "ReconstructingReader": ("repro.faults.degraded", "ReconstructingReader"),
    "ConversionJournal": ("repro.faults.journal", "ConversionJournal"),
    "OnlineJournal": ("repro.faults.journal", "OnlineJournal"),
    "CheckpointedRun": ("repro.faults.checkpoint", "CheckpointedRun"),
    "execute_checkpointed": ("repro.faults.checkpoint", "execute_checkpointed"),
    "run_to_completion": ("repro.faults.checkpoint", "run_to_completion"),
    "count_crash_events": ("repro.faults.checkpoint", "count_crash_events"),
    "crash_sweep_offline": ("repro.faults.chaos", "crash_sweep_offline"),
    "crash_sweep_online": ("repro.faults.chaos", "crash_sweep_online"),
    "fault_soak": ("repro.faults.chaos", "fault_soak"),
    "replay_scenario": ("repro.faults.chaos", "replay_scenario"),
    "save_failures": ("repro.faults.chaos", "save_failures"),
    "plan_is_zero_movement": ("repro.faults.degraded", "plan_is_zero_movement"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
