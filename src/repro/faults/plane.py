"""The fault-injection plane: deterministic faults under every I/O.

A :class:`FaultPlane` attaches to a :class:`~repro.raid.array.BlockArray`
(``array.attach_fault_plane(plane)``) and is consulted by every counted
I/O — per-block and bulk alike — through one ``is not None`` check, so a
detached array pays nothing.  Given a
:class:`~repro.faults.spec.FaultScenario` it injects, deterministically:

* **latent sector errors** — reads of a bad (disk, block) raise
  :class:`~repro.faults.errors.ReadFaultError` until the block is
  rewritten (the write "remaps the sector" and clears the error);
* **transient I/O errors** — retried internally per the scenario's
  :class:`~repro.faults.spec.RetryPolicy` with exponential backoff
  accounting; an exhausted budget raises
  :class:`~repro.faults.errors.TransientIOError`;
* **torn writes** — the scheduled write persists only a prefix of its
  payload (the op still completes and counts);
* **whole-disk failures** — quantised to op boundaries, surfacing as the
  array's own :class:`~repro.raid.array.DiskFailure`;
* **crash points** — inside a :meth:`crashable` section the armed
  crashable event raises :class:`~repro.faults.errors.ConversionCrash`
  *before* the op completes; a bulk op applies and counts only the
  elements before the crash, and an in-flight write can be torn.

Two counters index the schedules: ``op`` advances on every plane-visible
I/O element, everywhere; ``crash_events_done`` advances only inside
``crashable()`` sections (the conversion thread) plus explicit
:meth:`crash_point` barriers, so crash sweeps enumerate exactly the
conversion's own boundaries and never tear application I/O.

Failed attempts (retries, refused reads, crashed ops) never touch the
array's I/O counters — those keep counting *logical, completed* I/O so
the paper's figures stay comparable; the plane's own counters hold the
fault accounting and are bridged into :mod:`repro.obs` post-run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.faults.errors import ConversionCrash, ReadFaultError, TransientIOError
from repro.faults.spec import FaultScenario
from repro.util.retry import total_backoff

__all__ = ["FaultPlane", "BulkCrash"]


class BulkCrash:
    """Outcome of a bulk op interrupted by a crash.

    ``prefix`` elements completed (count them, apply their payloads);
    ``inflight_payload`` is the torn content of the interrupted element
    (apply uncounted) or ``None`` for a clean boundary; ``crash`` is the
    exception to raise once the prefix has been applied.
    """

    __slots__ = ("prefix", "inflight_payload", "crash")

    def __init__(self, prefix: int, inflight_payload: np.ndarray | None,
                 crash: ConversionCrash):
        self.prefix = prefix
        self.inflight_payload = inflight_payload
        self.crash = crash


_COUNTERS = (
    "sector_errors_hit",
    "sector_errors_cleared",
    "transients",
    "retries",
    "retries_exhausted",
    "torn_writes",
    "disk_failures",
    "crashes",
    "degraded_reads",
    "reconstructed_blocks",
    "stale_checkpoints",
)


class FaultPlane:
    """Deterministic, seedable fault injector for one array."""

    def __init__(self, scenario: FaultScenario | None = None):
        self.scenario = scenario if scenario is not None else FaultScenario()
        self._rng = np.random.default_rng(self.scenario.seed)
        self._array = None
        #: plane-visible I/O elements seen so far (schedule index)
        self.op = 0
        #: crashable events completed (crash-point index)
        self.crash_events_done = 0
        self._crashable_depth = 0
        self._crash_at: int | None = self.scenario.crash_at
        self._crash_tear: float | None = self.scenario.crash_tear
        # latent sector errors as flat keys (disk * blocks_per_disk + block)
        self._bad: set[int] = set()
        self._bad_arr: np.ndarray | None = None  # cache for bulk np.isin
        self._torn: dict[int, float] = {
            t.op: t.keep_fraction for t in self.scenario.torn_writes
        }
        self._transient: dict[int, int] = {
            t.op: t.failures for t in self.scenario.transients
        }
        self._fail_at: dict[int, list[int]] = {}
        for f in self.scenario.disk_failures:
            self._fail_at.setdefault(f.op, []).append(f.disk)
        self.counters: dict[str, int] = {name: 0 for name in _COUNTERS}
        self.backoff_ticks = 0.0
        self._bpd = 0  # blocks_per_disk of the attached array

    # ------------------------------------------------------------ attachment
    def attach(self, array) -> None:
        """Bind to ``array`` (also registers the plane on the array)."""
        self._array = array
        self._bpd = array.blocks_per_disk
        self._bad = {
            e.disk * self._bpd + e.block for e in self.scenario.sector_errors
        }
        self._bad_arr = None
        array.attach_fault_plane(self)

    def detach(self) -> None:
        if self._array is not None:
            self._array.attach_fault_plane(None)
            self._array = None

    # -------------------------------------------------------- sector errors
    def add_sector_error(self, disk: int, block: int) -> None:
        """Mark (disk, block) as unreadable from now on (test hook)."""
        self._bad.add(disk * self._bpd + block)
        self._bad_arr = None

    def is_bad(self, disk: int, block: int) -> bool:
        return (disk * self._bpd + block) in self._bad

    def bad_mask(self, disks, blocks) -> np.ndarray:
        """Boolean mask of elements currently carrying a sector error."""
        disks = np.asarray(disks, dtype=np.intp).ravel()
        blocks = np.asarray(blocks, dtype=np.intp).ravel()
        if not self._bad:
            return np.zeros(disks.size, dtype=bool)
        if self._bad_arr is None:
            self._bad_arr = np.fromiter(self._bad, dtype=np.int64)
        return np.isin(disks * self._bpd + blocks, self._bad_arr)

    # --------------------------------------------------------- crash control
    def arm_crash(self, at_event: int, tear: float | None = None) -> None:
        """Die at crashable event ``at_event`` (0 = before the first)."""
        self._crash_at = at_event
        self._crash_tear = tear

    def disarm_crash(self) -> None:
        self._crash_at = None
        self._crash_tear = None

    @contextmanager
    def crashable(self) -> Iterator[None]:
        """Mark a region whose ops are legal crash points.

        Wrap the conversion thread's I/O only: application requests are
        served atomically with respect to crash injection (the write
        hole of the *host* I/O stack is out of scope — the sweep
        exercises the conversion's own recovery logic).
        """
        self._crashable_depth += 1
        try:
            yield
        finally:
            self._crashable_depth -= 1

    def crash_point(self, label: str = "") -> None:
        """A synthetic crashable instant (e.g. the journal-commit barrier).

        Counts as one crashable event whether armed or not, so probe and
        sweep runs agree on the event numbering.
        """
        if not self._crashable_depth:
            return
        if self._crash_at is not None and self.crash_events_done == self._crash_at:
            self._die(label or "barrier")
        self.crash_events_done += 1

    def _die(self, label: str) -> ConversionCrash:
        self.counters["crashes"] += 1
        from repro.obs.tracer import get_tracer

        get_tracer().instant("fault.crash", cat="faults", track="faults",
                             event=self.crash_events_done, label=label)
        raise ConversionCrash(self.crash_events_done, label)

    def _crash_now(self) -> bool:
        return (
            self._crashable_depth > 0
            and self._crash_at is not None
            and self.crash_events_done == self._crash_at
        )

    def _crash_in(self, k: int) -> int | None:
        """Offset of the armed crash within the next ``k`` crashable events."""
        if self._crashable_depth == 0 or self._crash_at is None:
            return None
        off = self._crash_at - self.crash_events_done
        return off if 0 <= off < k else None

    # ------------------------------------------------------- shared helpers
    def _fire_disk_failures(self, span: int) -> None:
        """Fail disks scheduled at or before ops [op, op + span) (boundary model).

        Failure instants are quantised to op boundaries: an instant that
        falls inside a bulk op fires at the bulk's start (the whole bulk
        observes the failure, matching :meth:`BlockArray._check_bulk`'s
        all-or-nothing failure semantics).
        """
        if not self._fail_at:
            return
        due = sorted(o for o in self._fail_at if o < self.op + span)
        for op in due:
            for d in self._fail_at.pop(op):
                if self._array is not None and d not in self._array.failed_disks:
                    self._array.fail_disk(d)
                    self.counters["disk_failures"] += 1
                    from repro.obs.tracer import get_tracer

                    get_tracer().instant("fault.disk-failure", cat="faults",
                                         track="faults", disk=d, op=self.op)

    def _check_not_failed(self, disk: int) -> None:
        if self._array is not None and disk in self._array.failed_disks:
            from repro.raid.array import DiskFailure

            raise DiskFailure(f"disk {disk} has failed")

    def _transient_gate(self, disk: int, block: int, failures: int) -> None:
        """Retry ``failures`` consecutive transient errors, or give up."""
        self.counters["transients"] += 1
        policy = self.scenario.retry
        if failures > policy.max_retries:
            self.counters["retries"] += policy.max_retries
            self._accrue_backoff(policy.max_retries)
            self.counters["retries_exhausted"] += 1
            raise TransientIOError(disk, block, policy.max_retries + 1)
        self.counters["retries"] += failures
        self._accrue_backoff(failures)

    def _accrue_backoff(self, retries: int) -> None:
        policy = self.scenario.retry
        self.backoff_ticks += total_backoff(
            retries, policy.backoff_base_ticks, policy.backoff_multiplier
        )

    def _drawn_transient_failures(self) -> int:
        """Rate-based transient draw for the current op (0 = healthy)."""
        rate = self.scenario.transient_rate
        if rate and self._rng.random() < rate:
            return 1
        return 0

    def _tear(self, payload: np.ndarray, old: np.ndarray, keep: float) -> np.ndarray:
        torn = np.asarray(old, dtype=np.uint8).copy()
        cut = max(1, int(round(keep * torn.shape[-1])))
        torn[:cut] = np.asarray(payload, dtype=np.uint8)[:cut]
        self.counters["torn_writes"] += 1
        return torn

    # -------------------------------------------------------- single-op hooks
    def on_read(self, disk: int, block: int) -> None:
        """Consulted by ``BlockArray.read`` before counting; may raise."""
        self._fire_disk_failures(1)
        self._check_not_failed(disk)
        if self._crash_now():
            self._die(f"read d{disk}b{block}")
        op = self.op
        self.op += 1
        if self._crashable_depth:
            self.crash_events_done += 1
        failures = self._transient.pop(op, 0) or self._drawn_transient_failures()
        if failures:
            self._transient_gate(disk, block, failures)
        if (disk * self._bpd + block) in self._bad:
            self.counters["sector_errors_hit"] += 1
            raise ReadFaultError(disk, block)

    def on_write(
        self, disk: int, block: int, payload: np.ndarray, old: np.ndarray
    ) -> tuple[np.ndarray | None, ConversionCrash | None]:
        """Consulted by single-block writes before counting.

        Returns ``(payload, crash)``: the (possibly torn) payload to
        persist, and — when the armed crash fires here — the exception
        the array must raise after persisting the torn bytes (``payload``
        is ``None`` for a clean-boundary crash).  May raise directly for
        disk failures and exhausted transients.
        """
        self._fire_disk_failures(1)
        self._check_not_failed(disk)
        if self._crash_now():
            try:
                self._die(f"write d{disk}b{block}")
            except ConversionCrash as crash:
                if self._crash_tear is not None:
                    return self._tear(payload, old, self._crash_tear), crash
                return None, crash
        op = self.op
        self.op += 1
        if self._crashable_depth:
            self.crash_events_done += 1
        failures = self._transient.pop(op, 0) or self._drawn_transient_failures()
        if failures:
            self._transient_gate(disk, block, failures)
        keep = self._torn.pop(op, None)
        if keep is not None:
            payload = self._tear(payload, old, keep)
        key = disk * self._bpd + block
        if key in self._bad:
            self._bad.discard(key)
            self._bad_arr = None
            self.counters["sector_errors_cleared"] += 1
        return payload, None

    # ------------------------------------------------------------ bulk hooks
    def on_bulk_read(self, disks: np.ndarray, blocks: np.ndarray) -> BulkCrash | None:
        """Consulted by ``read_blocks``; returns a crash plan or None.

        Admission is all-or-nothing for faults: a sector error or an
        exhausted transient anywhere in the batch raises before anything
        is counted (callers that want partial progress pre-screen with
        :meth:`bad_mask` or fall back to per-block I/O).
        """
        k = disks.size
        self._fire_disk_failures(k)
        if self._array is not None and self._array.failed_disks:
            failed = sorted(self._array.failed_disks)
            if np.isin(disks, failed).any():
                from repro.raid.array import DiskFailure

                raise DiskFailure(f"disk(s) {failed} have failed")
        crash_off = self._crash_in(k)
        if crash_off is not None:
            self.op += crash_off
            self.crash_events_done += crash_off
            try:
                self._die(f"bulk-read[{crash_off}/{k}]")
            except ConversionCrash as crash:
                return BulkCrash(crash_off, None, crash)
        self._bulk_transients(disks, blocks, k)
        if self._bad:
            mask = self.bad_mask(disks, blocks)
            if mask.any():
                i = int(np.flatnonzero(mask)[0])
                self.counters["sector_errors_hit"] += int(mask.sum())
                self.op += k
                if self._crashable_depth:
                    self.crash_events_done += k
                raise ReadFaultError(int(disks[i]), int(blocks[i]))
        self.op += k
        if self._crashable_depth:
            self.crash_events_done += k
        return None

    def on_bulk_write(
        self,
        disks: np.ndarray,
        blocks: np.ndarray,
        payloads: np.ndarray,
        get_old: Callable[[int], np.ndarray],
    ) -> tuple[np.ndarray, BulkCrash | None]:
        """Consulted by bulk writes; returns (payloads, crash plan | None).

        ``payloads`` comes back possibly copied-and-torn; ``get_old(i)``
        lazily reads the pre-write contents of element ``i`` (only called
        for torn elements).
        """
        k = disks.size
        self._fire_disk_failures(k)
        if self._array is not None and self._array.failed_disks:
            failed = sorted(self._array.failed_disks)
            if np.isin(disks, failed).any():
                from repro.raid.array import DiskFailure

                raise DiskFailure(f"disk(s) {failed} have failed")
        crash_off = self._crash_in(k)
        torn_ops = [
            (op - self.op, self._torn.pop(op))
            for op in sorted(self._torn)
            if self.op <= op < self.op + (crash_off if crash_off is not None else k)
        ]
        if torn_ops:
            payloads = np.array(payloads, dtype=np.uint8, copy=True)
            for i, keep in torn_ops:
                payloads[i] = self._tear(payloads[i], get_old(i), keep)
        if crash_off is not None:
            self.op += crash_off
            self.crash_events_done += crash_off
            try:
                self._die(f"bulk-write[{crash_off}/{k}]")
            except ConversionCrash as crash:
                inflight = None
                if self._crash_tear is not None:
                    inflight = self._tear(
                        payloads[crash_off], get_old(crash_off), self._crash_tear
                    )
                return payloads, BulkCrash(crash_off, inflight, crash)
        self._bulk_transients(disks, blocks, k)
        if self._bad:
            cleared = self.bad_mask(disks, blocks)
            n = int(cleared.sum())
            if n:
                keys = (disks * self._bpd + blocks)[cleared]
                self._bad.difference_update(int(x) for x in keys)
                self._bad_arr = None
                self.counters["sector_errors_cleared"] += n
        self.op += k
        if self._crashable_depth:
            self.crash_events_done += k
        return payloads, None

    def _bulk_transients(self, disks: np.ndarray, blocks: np.ndarray, k: int) -> None:
        """Scheduled + rate-drawn transients across a bulk op's elements."""
        for op in [o for o in self._transient if self.op <= o < self.op + k]:
            i = op - self.op
            self._transient_gate(int(disks[i]), int(blocks[i]), self._transient.pop(op))
        rate = self.scenario.transient_rate
        if rate:
            hits = np.flatnonzero(self._rng.random(k) < rate)
            for i in hits:
                self._transient_gate(int(disks[i]), int(blocks[i]), 1)

    # ------------------------------------------------------------- reporting
    def snapshot(self) -> dict:
        """JSON-ready fault accounting (the obs bridge's source)."""
        doc = dict(self.counters)
        doc["backoff_ticks"] = self.backoff_ticks
        doc["ops_seen"] = self.op
        doc["crashable_events"] = self.crash_events_done
        doc["outstanding_sector_errors"] = len(self._bad)
        return doc
