"""repro — Code 5-6: MDS array coding for fast online RAID level migration.

A full reproduction of *"Code 5-6: An Efficient MDS Array Coding Scheme
to Accelerate Online RAID Level Migration"* (Wu, He, Li, Guo — ICPP
2015): the Code 5-6 erasure code, the six comparison codes (EVENODD,
RDP, H-Code, X-Code, P-Code, HDP), RAID-0/4/5/6 array substrates, the
three conversion approaches with a verified block-level engine, an
online (Algorithm 2) converter, a trace-driven disk simulator, and the
complete Section V analysis.

Quickstart::

    import repro

    code = repro.get_code("code56", p=5)          # the paper's code
    outcome = repro.upgrade_to_raid6(m=4)         # RAID-5 -> RAID-6
    print(outcome.summary)
"""

from repro.analysis import (
    ConversionMetrics,
    closed_form,
    code56_efficiency,
    conversion_time,
    metrics_from_plan,
    mttdl_raid5,
    mttdl_raid6,
    speedup_table,
)
from repro.codes import (
    ArrayCode,
    CodeLayout,
    ReedSolomonRaid6,
    certify_mds,
    get_code,
    get_layout,
)
from repro.compiled import compile_plan, execute_plan_compiled
from repro.core import (
    Code56Migrator,
    downgrade_to_raid5,
    plan_double_column_recovery,
    plan_hybrid_recovery,
    upgrade_to_raid6,
    virtual_disk_plan,
)
from repro.migration import (
    OnlineRequest,
    build_plan,
    execute_plan,
    prepare_source_array,
    verify_conversion,
)
from repro import obs
from repro.raid import BlockArray, Raid5Array, Raid5Layout, Raid6Array
from repro.simdisk import DiskArraySimulator, DiskModel, get_preset, simulate_closed
from repro.workloads import Trace, conversion_trace, uniform_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # codes
    "ArrayCode",
    "CodeLayout",
    "ReedSolomonRaid6",
    "certify_mds",
    "get_code",
    "get_layout",
    # core (the paper's contribution)
    "Code56Migrator",
    "downgrade_to_raid5",
    "plan_double_column_recovery",
    "plan_hybrid_recovery",
    "upgrade_to_raid6",
    "virtual_disk_plan",
    # migration machinery
    "OnlineRequest",
    "build_plan",
    "execute_plan",
    "prepare_source_array",
    "verify_conversion",
    # compiled execution layer
    "compile_plan",
    "execute_plan_compiled",
    # raid substrate
    "BlockArray",
    "Raid5Array",
    "Raid5Layout",
    "Raid6Array",
    # analysis
    "ConversionMetrics",
    "closed_form",
    "code56_efficiency",
    "conversion_time",
    "metrics_from_plan",
    "mttdl_raid5",
    "mttdl_raid6",
    "speedup_table",
    # simulation
    "DiskArraySimulator",
    "DiskModel",
    "get_preset",
    "simulate_closed",
    "Trace",
    "conversion_trace",
    "uniform_trace",
]
