"""repro.sweep — the parallel evaluation-grid engine.

Declares the paper's evaluation space as a :class:`SweepSpec` (primes ×
(code, approach) pairs × workloads), lowers it to deterministic seeded
:class:`SweepTask` cells, and executes them either inline or across a
process pool (:func:`run_sweep`) with byte-identical merged output.

Supporting pieces:

* :mod:`repro.sweep.spec`   — the task model (pure, order-stable);
* :mod:`repro.sweep.runner` — chunked process-pool execution with
  timeout/retry, serial fallback, and cross-process metric/span merging;
* :mod:`repro.sweep.shm`    — shared-memory ndarray + BlockArray
  backing (the only module allowed to import ``multiprocessing``).
"""

from repro.sweep.runner import (
    POOL_BLOCKS,
    SweepError,
    SweepResult,
    data_pool,
    run_sweep,
    run_task,
)
from repro.sweep.shm import (
    SharedNDArray,
    ShmHandle,
    attach_block_array,
    shared_block_array,
)
from repro.sweep.spec import SweepSpec, SweepTask, Workload, derive_seed, paper_grid_pairs

__all__ = [
    "SweepSpec",
    "SweepTask",
    "Workload",
    "derive_seed",
    "paper_grid_pairs",
    "run_sweep",
    "run_task",
    "data_pool",
    "SweepResult",
    "SweepError",
    "POOL_BLOCKS",
    "SharedNDArray",
    "ShmHandle",
    "shared_block_array",
    "attach_block_array",
]
