"""Sweep task model: a declarative grid lowered to deterministic tasks.

A :class:`SweepSpec` names the axes of the paper's evaluation space —
(code, approach) pairs, primes, and :class:`Workload` kinds — and expands
them into an ordered list of :class:`SweepTask` cells.  Expansion is pure
and total: the same spec always yields the same tasks in the same order,
each carrying a seed derived by hashing the spec's root seed with the
task's identity, so any task can be executed in any process (or re-run
in isolation) and produce bit-identical output.

Workload kinds (each maps to one family of the paper's figures/tables):

* ``analysis`` — the closed-form metric vector of Figs 10-17 / Tables
  III-IV (:func:`repro.analysis.metrics_from_plan`);
* ``sim``      — trace-driven conversion makespan of Fig 19 / Table V
  (:func:`repro.simdisk.simulate_closed` over a tiled migration trace);
* ``execute``  — an actual compiled conversion plus full verification
  (byte digest of the converted array, measured per-disk I/O counters);
* ``appsim``   — a seeded synthetic application workload (uniform /
  zipf / sequential) replayed through the disk model at the code's
  width, exercising the explicit-seed generator contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["Workload", "SweepTask", "SweepSpec", "derive_seed", "paper_grid_pairs"]


def paper_grid_pairs() -> tuple[tuple[str, str], ...]:
    """The 11 (code, approach) series of the paper's comparison space."""
    from repro.migration import supported_conversions

    return tuple(
        (code, approach)
        for code, approach in supported_conversions()
        if code != "code56-right"  # mirror of code56: identical costs
    )


def derive_seed(root: int, *identity) -> int:
    """A stable 63-bit seed from the root seed plus a task identity."""
    payload = json.dumps([root, *identity], sort_keys=True).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class Workload:
    """One workload axis value: a kind plus its (hashable) parameters."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    _KINDS = ("analysis", "sim", "execute", "appsim")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; known: {self._KINDS}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------ builders
    @classmethod
    def analysis(cls) -> "Workload":
        return cls("analysis")

    @classmethod
    def sim(
        cls,
        total_blocks: int = 600_000,
        block_size: int = 4096,
        lb: int | None = 16,
        reorder_window: int | None = None,
        disk: str = "sata-7200",
    ) -> "Workload":
        return cls(
            "sim",
            (
                ("total_blocks", total_blocks),
                ("block_size", block_size),
                ("lb", lb),
                ("reorder_window", reorder_window),
                ("disk", disk),
            ),
        )

    @classmethod
    def execute(cls, block_size: int = 8) -> "Workload":
        return cls("execute", (("block_size", block_size),))

    @classmethod
    def appsim(
        cls,
        pattern: str = "uniform",
        n_requests: int = 20_000,
        blocks_per_disk: int = 100_000,
        disk: str = "sata-7200",
        **extra,
    ) -> "Workload":
        if pattern not in ("uniform", "zipf", "sequential"):
            raise ValueError(f"unknown appsim pattern {pattern!r}")
        return cls(
            "appsim",
            (
                ("pattern", pattern),
                ("n_requests", n_requests),
                ("blocks_per_disk", blocks_per_disk),
                ("disk", disk),
                *sorted(extra.items()),
            ),
        )

    # ------------------------------------------------------------- queries
    @property
    def options(self) -> dict:
        return dict(self.params)

    @property
    def name(self) -> str:
        """Compact stable label, e.g. ``sim-4k-lb16`` or ``appsim-zipf``."""
        if self.kind == "sim":
            o = self.options
            bits = [f"sim-{o['block_size'] // 1024}k"]
            if o.get("lb"):
                bits.append(f"lb{o['lb']}")
            if o.get("reorder_window"):
                bits.append(f"ncq{o['reorder_window']}")
            return "-".join(bits)
        if self.kind == "appsim":
            return f"appsim-{self.options['pattern']}"
        return self.kind

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": [list(kv) for kv in self.params]}

    @classmethod
    def from_dict(cls, d: dict) -> "Workload":
        return cls(d["kind"], tuple((k, v) for k, v in d["params"]))


@dataclass(frozen=True)
class SweepTask:
    """One grid cell: (code, approach, p, workload) plus its derived seed."""

    index: int
    code: str
    approach: str
    p: int
    workload: Workload
    seed: int

    @property
    def label(self) -> str:
        """The paper's series label, e.g. ``direct(code56)``."""
        return f"{self.approach}({self.code})"

    @property
    def task_id(self) -> str:
        return f"{self.code}/{self.approach}/p{self.p}/{self.workload.name}"

    def to_dict(self) -> dict:
        """Pickle-free wire form (what crosses the process boundary)."""
        return {
            "index": self.index,
            "code": self.code,
            "approach": self.approach,
            "p": self.p,
            "workload": self.workload.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepTask":
        return cls(
            index=d["index"],
            code=d["code"],
            approach=d["approach"],
            p=d["p"],
            workload=Workload.from_dict(d["workload"]),
            seed=d["seed"],
        )


@dataclass(frozen=True)
class SweepSpec:
    """The declarative grid; ``tasks()`` lowers it deterministically."""

    primes: tuple[int, ...] = (5, 7, 11, 13)
    pairs: tuple[tuple[str, str], ...] | None = None  # None = full paper grid
    workloads: tuple[Workload, ...] = field(default_factory=lambda: (Workload.analysis(),))
    seed: int = 0

    def resolved_pairs(self) -> tuple[tuple[str, str], ...]:
        return self.pairs if self.pairs is not None else paper_grid_pairs()

    def tasks(self) -> list[SweepTask]:
        """Workload-major, then prime, then (code, approach) — stable order."""
        out: list[SweepTask] = []
        for workload in self.workloads:
            for p in self.primes:
                for code, approach in self.resolved_pairs():
                    out.append(
                        SweepTask(
                            index=len(out),
                            code=code,
                            approach=approach,
                            p=p,
                            workload=workload,
                            seed=derive_seed(
                                self.seed, code, approach, p,
                                workload.kind, list(map(list, workload.params)),
                            ),
                        )
                    )
        return out

    def to_dict(self) -> dict:
        return {
            "primes": list(self.primes),
            "pairs": [list(pr) for pr in self.resolved_pairs()],
            "workloads": [w.to_dict() for w in self.workloads],
            "seed": self.seed,
        }
