"""Shared-memory ndarray plumbing for the sweep pool.

:class:`SharedNDArray` wraps :class:`multiprocessing.shared_memory.
SharedMemory` with a numpy dtype/shape so pool workers can map the same
bytes the parent wrote — the sweep's source-data pool and any
shared-backed :class:`~repro.raid.array.BlockArray` cross the process
boundary as a tiny :class:`ShmHandle` (name + shape + dtype) instead of
a pickled payload.

Lifetime discipline: the **creator owns the segment** — it (and only it)
calls :meth:`unlink`; attachers call :meth:`close` when done.  Attaching
deregisters the segment from the child's ``resource_tracker`` so a
worker exiting (even crashing) neither destroys the segment under the
parent nor spews leak warnings; the parent's ``unlink`` in its
``finally`` block is the single point of truth, which is what makes
cleanup robust to worker crashes (tested).

This module is the only place in ``repro`` allowed to import
``multiprocessing`` (lint rule SC-L004 enforces that boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.raid.array import BlockArray

__all__ = ["ShmHandle", "SharedNDArray", "shared_block_array", "attach_block_array"]


@dataclass(frozen=True)
class ShmHandle:
    """Pickle-cheap address of a shared ndarray (name, shape, dtype)."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def to_dict(self) -> dict:
        return {"name": self.name, "shape": list(self.shape), "dtype": self.dtype}

    @classmethod
    def from_dict(cls, d: dict) -> "ShmHandle":
        return cls(name=d["name"], shape=tuple(d["shape"]), dtype=d["dtype"])


class SharedNDArray:
    """A numpy array over a shared-memory segment (creator or attacher)."""

    def __init__(self, shm: shared_memory.SharedMemory, shape: tuple[int, ...],
                 dtype: np.dtype, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self.ndarray = np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    # ----------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, shape: tuple[int, ...], dtype=np.uint8) -> "SharedNDArray":
        dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        out = cls(shm, tuple(shape), dtype, owner=True)
        out.ndarray[...] = 0
        return out

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedNDArray":
        """Create a segment holding a copy of ``array``."""
        out = cls.create(array.shape, array.dtype)
        out.ndarray[...] = array
        return out

    @classmethod
    def attach(cls, handle: ShmHandle | dict) -> "SharedNDArray":
        """Map an existing segment (worker side); never destroys it."""
        if isinstance(handle, dict):
            handle = ShmHandle.from_dict(handle)
        # SharedMemory registers every mapping with the resource tracker,
        # even plain attaches (fixed only in 3.13's track=False).  Spawned
        # workers share the parent's tracker process, so an attach-side
        # register/unregister would clobber the creator's registration and
        # spew KeyErrors at exit — suppress registration entirely instead:
        # the creator's unlink remains the single point of destruction.
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = orig_register
        return cls(shm, tuple(handle.shape), np.dtype(handle.dtype), owner=False)

    @property
    def handle(self) -> ShmHandle:
        return ShmHandle(
            name=self._shm.name,
            shape=tuple(self.ndarray.shape),
            dtype=self.ndarray.dtype.str,
        )

    def close(self) -> None:
        """Unmap (both sides); idempotent."""
        if self._closed:
            return
        self._closed = True
        self.ndarray = None  # drop the buffer view before closing the map
        try:
            self._shm.close()
        except BufferError:
            # a BlockArray (or other view) still maps the segment; the
            # mapping is released when that view is collected — unlink
            # still marks the segment for destruction either way
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            raise ValueError("only the creating side may unlink a segment")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "owner" if self._owner else "attached"
        return f"<SharedNDArray {self._shm.name} {state} closed={self._closed}>"


def shared_block_array(
    n_disks: int, blocks_per_disk: int, block_size: int = 16
) -> tuple[BlockArray, SharedNDArray]:
    """A :class:`BlockArray` whose store lives in shared memory.

    Returns ``(array, segment)``; the caller owns the segment (unlink it
    when done).  Workers rebuild the same array with
    :func:`attach_block_array` — zero bytes pickled.
    """
    segment = SharedNDArray.create((n_disks, blocks_per_disk, block_size), np.uint8)
    return BlockArray.over(segment.ndarray), segment


def attach_block_array(handle: ShmHandle | dict) -> tuple[BlockArray, SharedNDArray]:
    """Worker-side view of a :func:`shared_block_array` (same bytes)."""
    segment = SharedNDArray.attach(handle)
    return BlockArray.over(segment.ndarray), segment
