"""Process-pool sweep execution with deterministic, byte-identical merging.

:func:`run_sweep` fans a :class:`~repro.sweep.spec.SweepSpec`'s task grid
out over a :class:`concurrent.futures.ProcessPoolExecutor` (or runs it
inline with ``workers=0``) and merges the results **in task order**, so
the merged payload of a parallel run is byte-for-byte identical to the
serial run — the scheduling is invisible in the output, which is what
lets CI assert equality instead of "roughly equal".

Mechanics:

* **chunked dispatch** — tasks ship to workers in contiguous chunks
  (fewer IPC round-trips); results come back tagged with their task
  index, so arrival order is irrelevant;
* **shared source data** — the ``execute`` workload's logical payload is
  one seed-deterministic random pool, placed in
  :mod:`multiprocessing.shared_memory` for the pool workers (attached by
  name, zero-copy) and materialised as a plain array for serial runs —
  identical bytes either way;
* **timeout / retry** — a chunk that times out, dies with its worker, or
  raises is retried on a fresh pool up to ``retries`` times, then (by
  default) recomputed inline by the parent, so a flaky worker degrades
  throughput, never results;
* **persistent program cache** — workers and parent share the on-disk
  compiled-program tier (:func:`repro.compiled.set_program_cache_dir`),
  so a warm sweep performs zero plan compilations in any process
  (``SweepResult.cache["compiled_total"]``);
* **observability merge** — each worker snapshots its private metrics
  registry and tracer per chunk; the parent folds them into one registry
  (:func:`repro.obs.merge_snapshot`) and one span list with per-worker
  tracks, exportable as a single Perfetto timeline.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from repro.obs import (
    MetricsRegistry,
    Tracer,
    merge_snapshot,
    record_array_io,
    record_sim_result,
    spans_from_dicts,
)
from repro.obs.tracer import SpanRecord
from repro.sweep.spec import SweepSpec, SweepTask, derive_seed

__all__ = ["SweepError", "SweepResult", "run_sweep", "run_task", "POOL_BLOCKS"]

#: logical blocks in the shared source-data pool; ``execute`` tasks tile
#: it to their plan's data_blocks, so any grid size is covered
POOL_BLOCKS = 4096
#: byte width of the pool — execute tasks read the leading ``block_size``
#: columns, so every block size shares one segment
POOL_BLOCK_SIZE = 64


class SweepError(RuntimeError):
    """A task could not be completed within the retry budget."""


# --------------------------------------------------------------------------
# task execution (pure: runs identically in a worker or in the parent)
# --------------------------------------------------------------------------

def data_pool(seed: int) -> np.ndarray:
    """The seed-deterministic ``(POOL_BLOCKS, POOL_BLOCK_SIZE)`` payload."""
    return np.random.default_rng(derive_seed(seed, "source-data-pool")).integers(
        0, 256, size=(POOL_BLOCKS, POOL_BLOCK_SIZE), dtype=np.uint8
    )


def _task_plan(task: SweepTask):
    from repro.analysis.costmodel import comparison_width
    from repro.migration import build_plan
    from repro.migration.approaches import alignment_cycle

    n = comparison_width(task.code, task.p)
    return build_plan(
        task.code, task.approach, task.p,
        groups=alignment_cycle(task.code, task.p, n), n_disks=n,
    )


def run_task(task: SweepTask, pool: np.ndarray | None = None, pool_seed: int = 0) -> dict:
    """Execute one grid cell; returns a JSON-safe record.

    ``pool`` is the shared source-data payload for ``execute`` tasks
    (generated from ``pool_seed`` when absent).  Unsupported (code, p)
    combinations come back as ``{"skipped": ...}`` — a deterministic
    record, so serial and parallel merges agree on the full grid, holes
    included.
    """
    opts = task.workload.options
    base = {
        "task": task.task_id,
        "code": task.code,
        "approach": task.approach,
        "p": task.p,
        "workload": task.workload.name,
        "label": task.label,
    }
    try:
        plan = _task_plan(task)
    except ValueError as exc:
        return {**base, "skipped": str(exc)}

    from repro.obs import get_registry

    registry = get_registry()
    registry.counter("sweep.tasks", workload=task.workload.name).inc()

    kind = task.workload.kind
    if kind == "analysis":
        from dataclasses import asdict

        from repro.analysis import metrics_from_plan

        return {**base, "result": asdict(metrics_from_plan(plan))}

    if kind == "sim":
        from repro.simdisk import get_preset, simulate_closed
        from repro.workloads import conversion_trace

        trace = conversion_trace(
            plan,
            total_data_blocks=opts["total_blocks"],
            block_size=opts["block_size"],
            lb_rotation_period=opts["lb"],
        )
        res = simulate_closed(
            trace, get_preset(opts["disk"]), reorder_window=opts["reorder_window"]
        )
        record_sim_result(res, registry)
        return {
            **base,
            "result": {
                "makespan_s": res.makespan_s,
                "n_requests": res.n_requests,
                "mean_latency_ms": res.mean_latency_ms,
                "p99_latency_ms": res.p99_latency_ms,
            },
        }

    if kind == "execute":
        from repro.compiled import execute_plan_compiled
        from repro.migration import prepare_source_array, verify_conversion

        block_size = opts["block_size"]
        if pool is None:
            pool = data_pool(pool_seed)
        data = pool[np.arange(plan.data_blocks) % POOL_BLOCKS, :block_size]
        rng = np.random.default_rng(task.seed)
        array, data = prepare_source_array(plan, rng, block_size=block_size, data=data)
        result = execute_plan_compiled(plan, array, data)
        ok = verify_conversion(result, np.random.default_rng(task.seed))
        record_array_io(array, registry, prefix="sweep.array")
        return {
            **base,
            "result": {
                "verified": bool(ok),
                "reads": [int(r) for r in array.reads],
                "writes": [int(w) for w in array.writes],
                "digest": hashlib.sha256(array.snapshot().tobytes()).hexdigest(),
            },
        }

    if kind == "appsim":
        from repro.analysis.costmodel import comparison_width
        from repro.simdisk import get_preset, simulate_closed
        from repro.workloads import sequential_trace, uniform_trace, zipf_trace

        n = comparison_width(task.code, task.p)
        pattern = opts["pattern"]
        if pattern == "sequential":
            trace = sequential_trace(opts["n_requests"], n)
        else:
            gen = uniform_trace if pattern == "uniform" else zipf_trace
            trace = gen(task.seed, opts["n_requests"], n, opts["blocks_per_disk"])
        res = simulate_closed(trace, get_preset(opts["disk"]))
        record_sim_result(res, registry)
        return {
            **base,
            "result": {
                "makespan_s": res.makespan_s,
                "n_requests": res.n_requests,
                "mean_latency_ms": res.mean_latency_ms,
                "p99_latency_ms": res.p99_latency_ms,
                "trace_sha256": hashlib.sha256(
                    trace.disk.tobytes() + trace.block.tobytes() + trace.is_write.tobytes()
                ).hexdigest(),
            },
        }

    raise ValueError(f"unknown workload kind {kind!r}")  # pragma: no cover


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(
    pool_handle: dict | None,
    pool_seed: int,
    cache_dir: str | None,
    kernel: str | None = None,
) -> None:
    """Pool initializer: private obs state, shared data pool, disk cache,
    and the process-wide XOR kernel tier (``repro.kernels``)."""
    from repro.compiled import set_program_cache_dir
    from repro.obs import set_registry, set_tracer

    if cache_dir is not None:
        set_program_cache_dir(cache_dir)
    if kernel is not None:
        from repro.kernels import set_default_kernel

        set_default_kernel(kernel)
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=True)
    set_registry(registry)
    set_tracer(tracer)
    _WORKER_STATE.update(
        registry=registry, tracer=tracer, segment=None, pool=None, pool_seed=pool_seed
    )
    if pool_handle is not None:
        from repro.sweep.shm import SharedNDArray

        segment = SharedNDArray.attach(pool_handle)
        _WORKER_STATE["segment"] = segment
        _WORKER_STATE["pool"] = segment.ndarray


def _run_chunk(task_dicts: list[dict]) -> dict:
    """Execute a chunk of tasks; returns per-task records plus obs state."""
    from repro.compiled import program_cache_info
    from repro.obs import get_registry, get_tracer

    registry: MetricsRegistry = _WORKER_STATE.get("registry") or get_registry()
    tracer: Tracer = _WORKER_STATE.get("tracer") or get_tracer()
    out = []
    for d in task_dicts:
        task = SweepTask.from_dict(d)
        with tracer.span("task", cat="sweep.task", task=task.task_id):
            record = run_task(
                task,
                pool=_WORKER_STATE.get("pool"),
                pool_seed=_WORKER_STATE.get("pool_seed", 0),
            )
        out.append({"index": task.index, "record": record})
    response = {
        "pid": os.getpid(),
        "results": out,
        "metrics": registry.snapshot(),
        "spans": [s.to_dict() for s in tracer.spans],
        "cache": program_cache_info(),
    }
    # per-chunk obs state is merged exactly once by the parent; reset so
    # the next chunk from this process reports only its own work (the
    # cache info stays cumulative — the parent keeps last-per-pid)
    registry.clear()
    tracer.clear()
    return response


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Merged outcome of one sweep run (ordered, JSON-safe)."""

    spec: SweepSpec
    workers: int
    results: list[dict]
    wall_s: float
    cache: dict
    registry: MetricsRegistry
    spans: list[SpanRecord] = field(default_factory=list)
    retried_chunks: int = 0
    fallback_tasks: int = 0

    def payload(self) -> dict:
        """The canonical (scheduling-invariant) output of the sweep."""
        return {"spec": self.spec.to_dict(), "tasks": self.results}

    def payload_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True)

    def digest(self) -> str:
        return hashlib.sha256(self.payload_json().encode()).hexdigest()

    def by_workload(self, name: str) -> list[dict]:
        return [r for r in self.results if r["workload"] == name and "result" in r]


def _chunked(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _cache_delta(before: dict, after: dict) -> dict:
    """Per-run view of the process-lifetime compiler cache counters."""
    return {
        k: after[k] - before.get(k, 0) if k != "entries" else after[k]
        for k in after
    }


def run_sweep(
    spec: SweepSpec,
    workers: int = 0,
    *,
    chunksize: int | None = None,
    task_timeout: float | None = None,
    retries: int = 2,
    fallback_serial: bool = True,
    cache_dir: str | os.PathLike | None = None,
    mp_context: str = "spawn",
    executor_factory=None,
    kernel: str | None = None,
) -> SweepResult:
    """Run every task of ``spec``; ``workers=0`` executes inline.

    ``task_timeout`` bounds how long the parent waits without *any* chunk
    completing (seconds).  A chunk that fails — timeout, worker crash,
    exception — is retried on a fresh pool up to ``retries`` times;
    remaining tasks then run inline in the parent when ``fallback_serial``
    (else :class:`SweepError`).  Results are merged by task index, so the
    payload is byte-identical however the work was scheduled.

    ``kernel`` selects the XOR backend tier (``numpy`` / ``numba`` /
    ``auto``) in every process that executes tasks — the pool workers via
    their initializer and the parent for serial or fallback execution.
    Backends are byte-exact, so the merged payload digest is
    kernel-invariant (asserted by the sweep tests).

    ``executor_factory`` (tests) builds the pool given ``(workers,
    initargs)``; by default a spawn-context :class:`ProcessPoolExecutor`.
    """
    from repro.compiled import program_cache_info, set_program_cache_dir
    from repro.obs import set_registry, set_tracer

    t0 = time.perf_counter()
    tasks = spec.tasks()
    registry = MetricsRegistry(enabled=True)
    spans: list[SpanRecord] = []
    results: list[dict | None] = [None] * len(tasks)
    retried = 0
    fellback = 0

    prev_cache_dir = set_program_cache_dir(cache_dir) if cache_dir is not None else None
    prev_kernel = None
    if kernel is not None:
        from repro.kernels import get_default_kernel, set_default_kernel

        prev_kernel = get_default_kernel()
        set_default_kernel(kernel)  # parent: serial runs + inline fallback
    cache_before = program_cache_info()

    needs_pool = any(w.kind == "execute" for w in spec.workloads)
    bad = [
        w for w in spec.workloads
        if w.kind == "execute" and w.options["block_size"] > POOL_BLOCK_SIZE
    ]
    if bad:
        raise ValueError(
            f"execute block_size must be <= POOL_BLOCK_SIZE ({POOL_BLOCK_SIZE})"
        )

    worker_stats: dict[int, dict] = {}
    segment = None
    try:
        local_pool = data_pool(spec.seed) if needs_pool else None
        if workers <= 0:
            # mirror the worker environment: a private registry/tracer so
            # hot-path metrics and spans land in this run's snapshot
            tracer = Tracer(enabled=True)
            prev_reg, prev_tr = set_registry(registry), set_tracer(tracer)
            try:
                for task in tasks:
                    with tracer.span("task", cat="sweep.task", task=task.task_id):
                        results[task.index] = run_task(
                            task, pool=local_pool, pool_seed=spec.seed
                        )
            finally:
                set_registry(prev_reg)
                set_tracer(prev_tr)
            spans.extend(tracer.spans)
        else:
            chunks = _chunked(
                [t.to_dict() for t in tasks],
                chunksize or max(1, -(-len(tasks) // (workers * 4))),
            )
            pool_handle = None
            if needs_pool:
                from repro.sweep.shm import SharedNDArray

                segment = SharedNDArray.from_array(local_pool)
                pool_handle = segment.handle.to_dict()
            init_args = (
                pool_handle, spec.seed, str(cache_dir) if cache_dir else None, kernel,
            )
            if executor_factory is None:
                def executor_factory(n, initargs):
                    return ProcessPoolExecutor(
                        max_workers=n,
                        mp_context=get_context(mp_context),
                        initializer=_worker_init,
                        initargs=initargs,
                    )

            pending = list(range(len(chunks)))
            attempt = 0
            while pending:
                if attempt > retries:
                    if not fallback_serial:
                        raise SweepError(
                            f"{len(pending)} chunk(s) failed after {retries} retries"
                        )
                    for ci in pending:
                        for d in chunks[ci]:
                            task = SweepTask.from_dict(d)
                            results[task.index] = run_task(
                                task, pool=local_pool, pool_seed=spec.seed
                            )
                            fellback += 1
                    pending = []
                    break
                executor = executor_factory(min(workers, len(pending)), init_args)
                failed: list[int] = []
                try:
                    futures = {executor.submit(_run_chunk, chunks[ci]): ci for ci in pending}
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(
                            not_done, timeout=task_timeout, return_when=FIRST_COMPLETED
                        )
                        if not done:  # task_timeout with nothing finishing
                            failed.extend(futures[f] for f in not_done)
                            for f in not_done:
                                f.cancel()
                            break
                        for fut in done:
                            ci = futures[fut]
                            try:
                                response = fut.result()
                            except Exception:
                                failed.append(ci)
                                continue
                            for item in response["results"]:
                                results[item["index"]] = item["record"]
                            merge_snapshot(response["metrics"], registry)
                            spans.extend(
                                spans_from_dicts(
                                    response["spans"],
                                    track_prefix=f"worker-{response['pid']}/",
                                )
                            )
                            worker_stats[response["pid"]] = response["cache"]
                finally:
                    executor.shutdown(wait=not failed, cancel_futures=True)
                if failed:
                    retried += len(failed)
                pending = sorted(failed)
                attempt += 1
    finally:
        if segment is not None:
            segment.unlink()
        if cache_dir is not None:
            set_program_cache_dir(prev_cache_dir)
        if prev_kernel is not None:
            from repro.kernels import set_default_kernel

            set_default_kernel(prev_kernel)

    assert all(r is not None for r in results)
    parent_cache = _cache_delta(cache_before, program_cache_info())
    cache = {
        "parent": parent_cache,
        "workers": {str(pid): info for pid, info in sorted(worker_stats.items())},
        "compiled_total": parent_cache["compiled"]
        + sum(info["compiled"] for info in worker_stats.values()),
    }
    return SweepResult(
        spec=spec,
        workers=workers,
        results=results,  # type: ignore[arg-type]
        wall_s=time.perf_counter() - t0,
        cache=cache,
        registry=registry,
        spans=spans,
        retried_chunks=retried,
        fallback_tasks=fellback,
    )
