"""Online conversion (Algorithm 2): migration concurrent with app I/O.

The paper's Algorithm 2 runs two logical threads:

* the **conversion thread** walks the diagonal-parity column block by
  block — for each not-yet-generated diagonal parity it reads the
  chain's data blocks, XORs, and writes the parity;
* the **application thread** serves user requests.  Reads never conflict
  (the conversion only writes the new column).  A write *interrupts* the
  conversion, performs its read-modify-write — updating the horizontal
  parity always, and the diagonal parity only if that parity has already
  been generated — then resumes the conversion.

We model time in ``Te`` ticks (one block access each, the paper's cost
unit) with a cooperative scheduler: between request arrivals the
conversion thread makes progress; a write stalls it for the duration of
its own I/Os.  The end state is verified: all parities consistent and
every logical block equal to the ground-truth model after the same write
sequence.

The conversion thread is a **resumable step function**: its transitions
are exposed individually so external schedulers (the interleaving model
checker in :mod:`repro.staticcheck.concur`) can drive arbitrary
interleavings of conversion progress, application writes, crash points
and journal flushes:

* :meth:`~OnlineCode56Conversion.pending_parity` — the next diagonal
  parity the conversion thread will generate (or None when done);
* :meth:`~OnlineCode56Conversion.generate_step` — one conversion step:
  read the chain, write the parity (the array mutation, *without* the
  journal flush — the crash window between the two is explicit);
* :meth:`~OnlineCode56Conversion.mark_step` — the journal flush: record
  the just-written parity as generated and advance the cursor;
* :meth:`~OnlineCode56Conversion.serve_request` — one application
  request (a write interrupts the conversion, Algorithm 2);
* :meth:`~OnlineCode56Conversion.thread_state` /
  :meth:`~OnlineCode56Conversion.restore_thread_state` — snapshot and
  restore the conversion thread's in-memory state (cursor + generated
  bitmap + in-flight run) for depth-first state-space exploration.

**Batched transitions** (``batch > 1``) lower a whole *run* of pending
parities onto the fused kernel tier between application events:

* :meth:`~OnlineCode56Conversion.pending_run` — the next (up to a
  budget) pending parities, in cursor order, without mutating state;
* :meth:`~OnlineCode56Conversion.generate_run_step` — generate every
  parity of the run: through :func:`repro.migration.batch.
  execute_run_fused` on a healthy array (region XOR through the
  selected kernel backend, counted bulk write, credited reads), or the
  audited per-parity loop under a fault plane / failed disk.  The run
  stays *in flight* — bytes landed, nothing marked;
* :meth:`~OnlineCode56Conversion.mark_run_step` — the group commit: one
  journal flush (:meth:`OnlineJournal.mark_many`) for the whole run,
  only after every parity write landed.  Write-ahead ordering is
  preserved run-wide: a crash mid-run leaves correct-but-unmarked
  parities, regenerated idempotently on resume.

Application writes that arrive while a run is in flight are detected by
a vectorized overlap check against the run's address interval
(:meth:`~OnlineCode56Conversion.run_overlaps`): an overlapping write
patches the already-written (unmarked) parity — XOR commutes, so resume
stays idempotent — and the scheduler additionally *shrinks* the next
batch so a run never overshoots a request arrival by more than one
parity's cost (foreground latency is bounded exactly as in per-parity
mode).

:meth:`~OnlineCode56Conversion.run` is a driver over exactly these
transitions, so the cooperative-scheduler behaviour and the model
checker explore the same code.

Note the per-chain read pattern costs ``(p-2)`` reads per parity versus
the offline engine's shared whole-group read — the price of fine-grained
interruptibility; both totals are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codes.code56 import diagonal_chain_cells
from repro.codes.registry import get_code
from repro.faults.errors import ReadFaultError, TransientIOError
from repro.faults.events import DiskFailureEvent
from repro.kernels import XorKernel, resolve_kernel
from repro.migration.batch import execute_run_fused, fused_run_usable
from repro.obs.tracer import get_tracer
from repro.raid.array import BlockArray
from repro.raid.layouts import Raid5Layout, locate_block, parity_disk

__all__ = [
    "OnlineRequest",
    "DiskFailureEvent",  # re-exported; the dataclass lives in repro.faults.events
    "OnlineReport",
    "OnlineCode56Conversion",
]

#: read faults the conversion hides by reconstructing through the RAID-5 row
_RECOVERABLE_READS = (ReadFaultError, TransientIOError)


@dataclass(frozen=True)
class OnlineRequest:
    """One application request against the logical volume."""

    time: float  # in Te ticks
    lba: int
    is_write: bool
    payload: np.ndarray | None = None  # required for writes


@dataclass
class OnlineReport:
    """Outcome of an online conversion run."""

    conversion_ticks: int = 0  # I/O ticks spent by the conversion thread
    app_ticks: int = 0  # I/O ticks spent serving requests
    interruptions: int = 0  # writes that pre-empted the conversion
    parities_generated: int = 0
    writes_to_converted: int = 0  # writes that also patched a diagonal parity
    writes_to_unconverted: int = 0
    finish_tick: float = 0.0
    request_latencies: list[float] = field(default_factory=list)
    #: per-request queueing stall behind the conversion thread (the
    #: conversion's overshoot past the arrival instant); foreground
    #: latency = ``request_stalls[i] + request_latencies[i]``
    request_stalls: list[float] = field(default_factory=list)
    #: extra reads spent reconstructing blocks of failed disks
    degraded_reads: int = 0
    failures_survived: int = 0
    #: batched-mode accounting (``batch > 1``)
    runs_committed: int = 0
    max_run: int = 0
    #: runs clipped below the batch budget by an approaching request
    batch_shrinks: int = 0
    #: resolved XOR backend for fused runs ("per-parity" when batch == 1)
    kernel: str = ""


class OnlineCode56Conversion:
    """Algorithm 2 on an in-memory array.

    Parameters
    ----------
    array:
        Physical array holding a left-asymmetric RAID-5 on disks
        ``0..m-1``; disk ``m`` must be the hot-added blank disk.
    p:
        Prime parameter; ``m`` must equal ``p - 1`` (Step 1's check —
        virtual-disk setups convert offline through the plan engine).
    journal:
        Optional :class:`repro.faults.journal.OnlineJournal` watermark.
        When supplied, each generated diagonal parity is marked (only
        *after* its write lands), and construction doubles as **resume**:
        every marked parity is re-validated against a recomputed chain
        XOR — a valid mark is trusted, a stale one (e.g. a torn parity
        write, or a mark that outlived the bytes) is dropped and the
        parity regenerated.  The mark is a hint; the bytes are the
        authority.
    batch:
        Conversion-run budget: how many pending parities the conversion
        thread may claim between application events.  ``1`` (default) is
        the paper-faithful per-parity interleave; larger budgets lower
        whole runs onto the fused kernel tier and group-commit their
        journal marks.  Deadline-aware shrinking keeps foreground
        latency bounded exactly as in per-parity mode.
    kernel:
        XOR backend for fused runs — an :class:`~repro.kernels.base.
        XorKernel` instance, a registry name (``"numpy"``/``"numba"``/
        ``"auto"``), or None for the process default.
    """

    def __init__(
        self,
        array: BlockArray,
        p: int,
        block_size: int | None = None,
        journal=None,
        batch: int = 1,
        kernel: XorKernel | str | None = None,
    ):
        self.array = array
        self.p = p
        self.m = p - 1
        if batch < 1:
            raise ValueError(f"batch budget must be >= 1, got {batch}")
        self.batch = int(batch)
        self.kernel = kernel if isinstance(kernel, XorKernel) else resolve_kernel(kernel)
        if array.n_disks < p:
            raise ValueError("add the new disk (Step 2) before converting")
        self.code = get_code("code56", p)
        self.layout = Raid5Layout.LEFT_ASYMMETRIC
        self.rows = p - 1
        self.groups = array.blocks_per_disk // self.rows
        # generated[g][i] — diagonal parity (i, p-1) of group g written?
        self._generated = np.zeros((self.groups, self.rows), dtype=bool)
        self._cursor = 0  # next (group * rows + row) to generate
        #: in-flight run: parities written but not yet marked (None = idle)
        self._run: tuple[tuple[int, int], ...] | None = None
        self._run_keys: np.ndarray | None = None  # cursor keys, ascending
        self.journal = journal
        #: completed events — a resume harness slices its event lists by
        #: these (app serves are never crash-interrupted, so every event
        #: before the crash was applied in full)
        self.requests_served = 0
        self.failures_applied = 0
        if journal is not None:
            if journal.shape != (self.groups, self.rows):
                raise ValueError(
                    f"journal shape {journal.shape} does not match "
                    f"({self.groups}, {self.rows})"
                )
            self._validate_journal(journal)

    def _validate_journal(self, journal) -> None:
        """Trust-but-verify resume: recompute every marked parity's chain."""
        stale = 0
        for group in range(self.groups):
            for row in range(self.rows):
                if not journal.is_marked(group, row):
                    continue
                expect = self._chain_xor_uncounted(group, row)
                block = group * self.rows + row
                if np.array_equal(self.array.raw(self.m, block), expect):
                    self._generated[group, row] = True
                else:
                    journal.unmark(group, row)  # stale: regenerate, never trust
                    stale += 1
        if stale:
            plane = self.array.fault_plane
            if plane is not None:
                plane.counters["stale_checkpoints"] += stale

    def _chain_xor_uncounted(self, group: int, parity_row: int) -> np.ndarray:
        """Recompute one diagonal parity from raw bytes (recovery scan)."""
        acc = np.zeros(self.array.block_size, dtype=np.uint8)
        failed = self.array.failed_disks
        for r, c in self._diag_chain(parity_row):
            block = group * self.rows + r
            if c in failed:  # RAID-5 row reconstruction, uncounted
                for d in range(self.m):
                    if d != c:
                        np.bitwise_xor(acc, self.array.raw(d, block), out=acc)
            else:
                np.bitwise_xor(acc, self.array.raw(c, block), out=acc)
        return acc

    # ----------------------------------------------------------- geometry
    @property
    def capacity_blocks(self) -> int:
        return self.groups * self.rows * (self.m - 1)

    def locate(self, lba: int) -> tuple[int, int, int, int]:
        """lba -> (group, row, disk, block)."""
        stripe, disk = locate_block(self.layout, lba, self.m)
        group, row = divmod(stripe, self.rows)
        return group, row, disk, stripe

    def _diag_chain(self, parity_row: int) -> tuple[tuple[int, int], ...]:
        return diagonal_chain_cells(self.p, parity_row)

    def _diag_parity_row_of(self, row: int, col: int) -> int:
        """Row of the diagonal parity covering square cell (row, col)."""
        return ((row + col) % self.p + 1) % self.p

    # ------------------------------------------------------------- running
    def run(
        self,
        requests: list[OnlineRequest],
        failures: list[DiskFailureEvent] | None = None,
    ) -> OnlineReport:
        """Interleave the conversion with ``requests`` (sorted by time).

        ``failures`` injects whole-disk losses mid-conversion.  A failed
        *data* disk degrades but never stops the migration: chain reads
        of its blocks reconstruct through the horizontal parity (this is
        Table VI's "High" reliability made executable — the direct
        conversion keeps single-failure tolerance throughout).  Losing
        the hot-added diagonal disk aborts with ``RuntimeError`` (replace
        it and restart; nothing on the old disks was touched).
        """
        tracer = get_tracer()
        report = OnlineReport()
        report.kernel = self.kernel.name if self.batch > 1 else "per-parity"
        events: list[tuple[float, int, object]] = [
            (r.time, 1, r) for r in requests
        ]
        for f in failures or []:
            events.append((f.time, 0, f))
        events.sort(key=lambda e: (e[0], e[1]))
        clock = 0.0
        total_parities = self.groups * self.rows

        for _time, _prio, event in events:
            # conversion thread runs until the event arrives
            clock = self._convert_until(event.time, clock, report)
            # foreground stall: conversion-thread overshoot past arrival
            stall = max(0.0, clock - event.time)
            clock = max(clock, event.time)
            if isinstance(event, DiskFailureEvent):
                tracer.instant(
                    "disk-failure", cat="online", track="application", disk=event.disk
                )
                if event.disk == self.m:
                    raise RuntimeError(
                        "the new diagonal-parity disk failed mid-conversion; "
                        "replace it and restart the conversion"
                    )
                self.array.fail_disk(event.disk)
                report.failures_survived += 1
                self.failures_applied += 1
                continue
            start = clock
            with tracer.span(
                "app.write" if event.is_write else "app.read",
                cat="online", track="application", lba=event.lba, tick=start,
            ) as span:
                clock = self._serve(event, clock, report)
                span.set(ticks=clock - start)
            report.request_latencies.append(clock - start)
            report.request_stalls.append(stall)
            self.requests_served += 1
        # drain the remaining conversion work
        clock = self._convert_until(float("inf"), clock, report)
        report.finish_tick = clock
        report.parities_generated = int(self._generated.sum())
        if report.parities_generated != total_parities:
            raise RuntimeError("conversion finished with ungenerated parities")
        return report

    # --------------------------------------------------- conversion thread
    @property
    def conversion_done(self) -> bool:
        """Every diagonal parity generated (the thread has nothing left)."""
        return bool(self._generated.all())

    def pending_parity(self) -> tuple[int, int] | None:
        """Next ``(group, row)`` the conversion thread will generate.

        Advances the cursor past already-generated entries (a resumed
        converter skips validated work); returns None when the thread
        has drained.
        """
        total = self.groups * self.rows
        while self._cursor < total:
            group, row = divmod(self._cursor, self.rows)
            if not self._generated[group, row]:
                return group, row
            self._cursor += 1
        return None

    def generate_step(self, report: OnlineReport) -> int:
        """Transition: generate the pending diagonal parity — array only.

        Reads the chain and writes the parity block, but does **not**
        record it as generated nor flush the journal: the window between
        this step and :meth:`mark_step` is the protocol's crash window
        (a crash here leaves a correct-but-unmarked parity, regenerated
        idempotently on resume).  Returns the I/O cost in ticks, 0 when
        nothing is pending.
        """
        pending = self.pending_parity()
        if pending is None:
            return 0
        return self._generate_parity(pending[0], pending[1], report)

    def mark_step(self) -> None:
        """Transition: the journal flush for the parity just generated.

        Records the cursor's parity as generated, marks the watermark
        (write-ahead ordering: only *after* the parity write landed) and
        advances the cursor.
        """
        group, row = divmod(self._cursor, self.rows)
        self._generated[group, row] = True
        if self.journal is not None:
            self.journal.mark(group, row)
        self._cursor += 1

    # ----------------------------------------------- batched run transitions
    @property
    def in_flight_run(self) -> tuple[tuple[int, int], ...] | None:
        """The run whose parity bytes landed but whose marks have not."""
        return self._run

    def pending_run(self, budget: int | None = None) -> tuple[tuple[int, int], ...]:
        """Next up-to-``budget`` pending parities in cursor order.

        Pure query — neither the cursor nor the generated bitmap moves
        (the commit happens in :meth:`mark_run_step`).  Empty when the
        thread has drained.
        """
        limit = self.batch if budget is None else int(budget)
        total = self.groups * self.rows
        run: list[tuple[int, int]] = []
        cur = self._cursor
        while cur < total and len(run) < limit:
            group, row = divmod(cur, self.rows)
            if not self._generated[group, row]:
                run.append((group, row))
            cur += 1
        return tuple(run)

    def generate_run_step(self, report: OnlineReport, budget: int | None = None) -> int:
        """Transition: claim a run and write every parity in it — array only.

        On a healthy array the whole run is lowered to fused region ops
        through the kernel backend (:func:`repro.migration.batch.
        execute_run_fused` — counted bulk write, credited reads, zero
        counter drift); under a fault plane or with failed disks it
        falls back to the audited per-parity generator so degraded
        reconstruction and crash/fault hooks keep firing at every I/O.
        Either way nothing is marked: the run stays in flight until
        :meth:`mark_run_step`, and the whole window is the crash window
        — a crash leaves correct-but-unmarked parities, regenerated
        idempotently on resume.  Returns the I/O cost in ticks.
        """
        if self._run is not None:
            raise RuntimeError("a parity run is already in flight; mark it first")
        run = self.pending_run(budget)
        if not run:
            return 0
        if fused_run_usable(self.array):
            cost = execute_run_fused(self.array, self.p, run, self.kernel)
        else:
            cost = 0
            for group, row in run:
                cost += self._generate_parity(group, row, report)
        self._run = run
        self._run_keys = np.fromiter(
            (g * self.rows + r for g, r in run), dtype=np.int64, count=len(run)
        )
        return cost

    def mark_run_step(self) -> None:
        """Transition: group-commit the in-flight run's journal marks.

        One journal flush (:meth:`OnlineJournal.mark_many`) for the
        whole run — issued only after every parity write in the run has
        landed, preserving write-ahead ordering run-wide — then the
        cursor advances past the run.
        """
        run = self._run
        if run is None:
            raise RuntimeError("no parity run in flight")
        for group, row in run:
            self._generated[group, row] = True
        if self.journal is not None:
            self.journal.mark_many(run)
        last_g, last_r = run[-1]
        self._cursor = max(self._cursor, last_g * self.rows + last_r + 1)
        self._run = None
        self._run_keys = None

    def run_overlaps(self, group: int, prow: int) -> bool:
        """Vectorized overlap check of one parity against the in-flight run.

        An interval pre-filter on the run's cursor-key range, then an
        exact vectorized membership test — the conflict detector the
        write path uses to patch parities whose bytes landed but whose
        marks have not.
        """
        keys = self._run_keys
        if keys is None:
            return False
        key = group * self.rows + prow
        if key < int(keys[0]) or key > int(keys[-1]):
            return False
        return bool(np.any(keys == key))

    def thread_state(self) -> tuple[int, np.ndarray, tuple[tuple[int, int], ...] | None]:
        """Snapshot of the conversion thread (cursor, generated, in-flight run)."""
        return self._cursor, self._generated.copy(), self._run

    def restore_thread_state(
        self, state: tuple[int, np.ndarray, tuple[tuple[int, int], ...] | None]
    ) -> None:
        """Restore a :meth:`thread_state` snapshot (model-checker rewind)."""
        cursor, generated, run = state
        self._cursor = int(cursor)
        self._generated[...] = generated
        self._run = run
        self._run_keys = (
            None
            if run is None
            else np.fromiter(
                (g * self.rows + r for g, r in run), dtype=np.int64, count=len(run)
            )
        )

    def _parity_cost_estimate(self) -> int:
        """Upper bound on one parity's tick cost: ``p-1`` healthy, plus
        ``m-2`` per failed data disk (a degraded chain read costs ``m-1``
        instead of 1).  Used to size deadline-shrunk batches — an upper
        bound guarantees a shrunk run never undershoots the claim."""
        est = self.p - 1
        failed_data = sum(1 for d in self.array.failed_disks if d < self.m)
        return est + failed_data * (self.m - 2)

    def _convert_until(self, deadline: float, clock: float, report: OnlineReport) -> float:
        from contextlib import nullcontext

        if self._cursor >= self.groups * self.rows:
            return clock
        start_tick, start_parities = clock, int(self._generated.sum())
        plane = self.array.fault_plane
        # only the conversion thread is crashable: an armed crash kills a
        # parity generation at an I/O boundary, never an app serve
        with get_tracer().span(
            "convert", cat="online", track="conversion", tick=clock,
        ) as span, (plane.crashable() if plane is not None else nullcontext()):
            if self.batch <= 1:
                clock = self._convert_per_parity(deadline, clock, report, plane)
            else:
                clock = self._convert_batched(deadline, clock, report, plane)
            span.set(
                ticks=clock - start_tick,
                parities=int(self._generated.sum()) - start_parities,
            )
        return clock

    def _convert_per_parity(self, deadline, clock, report, plane) -> float:
        """Paper-faithful interleave: one parity per generate/mark pair."""
        while True:
            pending = self.pending_parity()
            if pending is None:
                break
            cost = self.generate_step(report)
            if plane is not None:
                # the write-done/mark-missing window: a crash here
                # leaves a correct but unmarked parity, regenerated
                # (idempotently) on resume
                plane.crash_point(f"pre-mark:g{pending[0]}r{pending[1]}")
            report.conversion_ticks += cost
            clock += cost
            self.mark_step()
            if clock >= deadline:
                break
        return clock

    def _convert_batched(self, deadline, clock, report, plane) -> float:
        """Claim deadline-shrunk runs and group-commit their marks.

        The budget per run is ``min(batch, ceil((deadline - clock) /
        cost_estimate))`` (always at least 1, matching per-parity mode's
        guaranteed minimum progress), so a run overshoots a request
        arrival by strictly less than one parity's cost — the same
        foreground-latency bound as the per-parity interleave.
        """
        while True:
            budget = self.batch
            if deadline != float("inf"):
                est = self._parity_cost_estimate()
                room = int(np.ceil((deadline - clock) / est))
                budget = max(1, min(self.batch, room))
            cost = self.generate_run_step(report, budget=budget)
            if cost == 0:
                break
            run = self._run
            assert run is not None
            if plane is not None:
                # group-wide write-done/marks-missing window
                plane.crash_point(
                    f"pre-mark-run:g{run[0][0]}r{run[0][1]}x{len(run)}"
                )
            report.conversion_ticks += cost
            clock += cost
            report.runs_committed += 1
            report.max_run = max(report.max_run, len(run))
            if budget < self.batch and len(run) == budget:
                report.batch_shrinks += 1
            self.mark_run_step()
            if clock >= deadline:
                break
        return clock

    def _read_block(self, disk: int, block: int, report: OnlineReport) -> tuple[np.ndarray, int]:
        """Read a square-column block, reconstructing if its disk failed.

        Degraded path: XOR the other ``m-1`` blocks of the RAID-5 stripe
        (data plus old parity) — costs ``m-1`` reads instead of 1.  The
        same recovery hides latent sector errors and exhausted transient
        faults surfaced by the fault plane; blocks on the hot-added disk
        (``disk >= m``) have no covering row and re-raise.
        """
        if disk not in self.array.failed_disks:
            try:
                return self.array.read(disk, block), 1
            except _RECOVERABLE_READS:
                if disk >= self.m:
                    raise
        elif disk >= self.m:
            return self.array.read(disk, block), 1  # propagates DiskFailure
        acc = np.zeros(self.array.block_size, dtype=np.uint8)
        ios = 0
        for d in range(self.m):
            if d == disk:
                continue
            np.bitwise_xor(acc, self.array.read(d, block), out=acc)
            ios += 1
        report.degraded_reads += ios - 1
        plane = self.array.fault_plane
        if plane is not None:
            plane.counters["reconstructed_blocks"] += 1
            plane.counters["degraded_reads"] += ios - 1
        return acc, ios

    def _generate_parity(self, group: int, parity_row: int, report: OnlineReport) -> int:
        chain = self._diag_chain(parity_row)
        acc = np.zeros(self.array.block_size, dtype=np.uint8)
        ios = 0
        for r, c in chain:
            block = group * self.rows + r
            value, cost = self._read_block(c, block, report)
            np.bitwise_xor(acc, value, out=acc)
            ios += cost
        self.array.write(self.m, group * self.rows + parity_row, acc)
        return ios + 1

    # -------------------------------------------------- application thread
    def serve_request(
        self, req: OnlineRequest, clock: float, report: OnlineReport
    ) -> float:
        """Transition: serve one application request (Algorithm 2).

        A write interrupts the conversion thread and performs its
        read-modify-write against the horizontal parity (always) and the
        diagonal parity (only if already generated).  Returns the clock
        after the request's I/Os.
        """
        return self._serve(req, clock, report)

    def _patch_diagonal(
        self, group: int, prow: int, delta: np.ndarray, report: OnlineReport
    ) -> int:
        """RMW the generated diagonal parity of ``(group, prow)`` by ``delta``.

        Separated from :meth:`_serve` so defect-injection harnesses (the
        concur selftest) can override exactly the step whose omission
        loses a write.  Returns the I/O cost.
        """
        block = group * self.rows + prow
        dp = self.array.read(self.m, block)
        self.array.write(self.m, block, np.bitwise_xor(dp, delta))
        report.writes_to_converted += 1
        return 2

    def _serve(self, req: OnlineRequest, clock: float, report: OnlineReport) -> float:
        group, row, disk, stripe = self.locate(req.lba)
        failed = self.array.failed_disks
        if not req.is_write:
            _value, ios = self._read_block(disk, stripe, report)
            report.app_ticks += ios
            return clock + ios
        if req.payload is None:
            raise ValueError("write request needs a payload")
        # Algorithm 2: a write interrupts the conversion thread.
        report.interruptions += 1
        ios = 0
        payload = np.asarray(req.payload, dtype=np.uint8)
        old, cost = self._read_block(disk, stripe, report)
        ios += cost
        delta = np.bitwise_xor(old, payload)
        if disk not in failed:
            self.array.write(disk, stripe, payload)
            ios += 1
        # else: the block's new content lives only through the parities
        # until the disk is rebuilt (a reconstruct-write).
        # horizontal parity (always exists: it is the old RAID-5 parity)
        pd = parity_disk(self.layout, stripe, self.m)
        if pd not in failed:
            hp = self.array.read(pd, stripe)
            ios += 1
            self.array.write(pd, stripe, np.bitwise_xor(hp, delta))
            ios += 1
        # diagonal parity if already generated — or written by the
        # in-flight run (bytes landed, marks pending): the vectorized
        # overlap check keeps batched runs and app writes coherent.  XOR
        # commutes, so a crash before the run's marks still resumes
        # idempotently (the regenerated chain folds the new data in).
        prow = self._diag_parity_row_of(row, disk)
        if self._generated[group, prow] or self.run_overlaps(group, prow):
            ios += self._patch_diagonal(group, prow, delta, report)
        else:
            report.writes_to_unconverted += 1
        report.app_ticks += ios
        return clock + ios

    # ---------------------------------------------------------------- audit
    def verify(self) -> bool:
        """Uncounted full-stripe audit of the converted RAID-6.

        Requires a healthy array — rebuild failed disks first (e.g. via
        ``Raid6Array.rebuild_disks``); a degraded array's failed columns
        hold stale bytes that only the erasure code can interpret.
        """
        if self.array.failed_disks:
            raise RuntimeError(
                f"rebuild failed disks {sorted(self.array.failed_disks)} before verifying"
            )
        stripe = self.code.empty_stripe(self.array.block_size)
        for g in range(self.groups):
            for r in range(self.rows):
                for c in range(self.p - 1):
                    stripe[r, c] = self.array.raw(c, g * self.rows + r)
                stripe[r, self.p - 1] = self.array.raw(self.m, g * self.rows + r)
            if not self.code.verify(stripe):
                return False
        return True
