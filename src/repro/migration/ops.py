"""Conversion-plan operations.

A conversion is materialised as an explicit, block-accurate op list.
Executing the list on a :class:`BlockArray` produces the converted
RAID-6; counting it produces every metric of the paper's Section V
(parity ratios, XORs, write I/Os, total I/Os, per-disk load).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OpKind", "Purpose", "IOOp"]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    #: metadata-only free-space marking (a migrated parity's vacated slot);
    #: zeroed in the simulator for bit-verifiability but costs no I/O,
    #: matching the paper's taxonomy where only *invalidation* writes NULLs.
    TRIM = "trim"


class Purpose(enum.Enum):
    """Why an op happens — the paper's parity-operation taxonomy."""

    DATA_READ = "data-read"  # reading surviving data to compute parity
    PARITY_INVALIDATE = "parity-invalidate"  # set invalid old parity to NULL
    PARITY_MIGRATE_READ = "parity-migrate-read"  # old parity off its old disk
    PARITY_MIGRATE_WRITE = "parity-migrate-write"  # ... onto the new disk
    NEW_PARITY_WRITE = "new-parity-write"  # freshly generated parity
    DATA_MIGRATE_READ = "data-migrate-read"  # data displaced by parity cells
    DATA_MIGRATE_WRITE = "data-migrate-write"
    FREE_SLOT = "free-slot"  # TRIM of a vacated slot


@dataclass(frozen=True)
class IOOp:
    """One block operation of a conversion plan.

    ``phase`` orders the conversion macroscopically (``0`` = degrade step
    of the two-step approaches, ``1`` = upgrade / direct step); ops within
    a phase are grouped by ``group`` (stripe-group id) and executable in
    list order.
    """

    kind: OpKind
    purpose: Purpose
    disk: int
    block: int
    group: int
    phase: int = 0

    @property
    def is_io(self) -> bool:
        """Does this op cost a disk I/O?  (TRIMs are metadata only.)"""
        return self.kind is not OpKind.TRIM
