"""Vectorised Code 5-6 conversion: the whole array as one numpy batch.

.. deprecated::
    This module predates the general compiled execution layer.  New code
    should build a plan and run it through
    :func:`repro.compiled.execute_plan_compiled`, which batches *every*
    supported (code, approach) pair — not just direct Code 5-6 — with
    byte-identical results and identical I/O counters.  The function is
    kept because its hand-fused XOR path is the regression baseline for
    ``benchmarks/bench_ablation_vectorised_engine.py``.

The generic engine executes group-by-group through counted single-block
I/O — ideal for auditing, slow in Python.  A production converter would
stream large extents; this module is that fast path for the direct
Code 5-6 migration: every stripe-group's diagonal parities are computed
in one batched XOR reduction per chain (shape ``(groups, block)`` per
cell), touching each disk with bulk array slices obtained through the
public :meth:`BlockArray.bulk_view` API, reduced through the selected
:class:`~repro.kernels.base.XorKernel` backend, and credited through
:meth:`BlockArray.credit_ios`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.codes.code56 import diagonal_chain_cells
from repro.kernels import XorKernel, resolve_kernel
from repro.raid.array import BlockArray

__all__ = ["fast_convert_code56"]


def fast_convert_code56(
    array: BlockArray,
    p: int,
    groups: int | None = None,
    kernel: XorKernel | str | None = None,
) -> int:
    """Directly convert a left-asymmetric RAID-5 of ``p-1`` disks in bulk.

    The array must already have the hot-added blank disk ``p-1``.
    Returns the number of parity blocks written.  I/O counters are
    credited with the same per-block totals the audited engine performs
    (``(p-1)(p-2)`` reads per group on the data disks, ``p-1`` writes on
    the new disk).  ``kernel`` selects the XOR backend (instance,
    registry name, or None for the process default).

    .. deprecated:: see module docstring — prefer
        :func:`repro.compiled.execute_plan_compiled`.
    """
    warnings.warn(
        "fast_convert_code56 is deprecated; use repro.compiled."
        "execute_plan_compiled for the general batched executor",
        DeprecationWarning,
        stacklevel=2,
    )
    m = p - 1
    if array.n_disks < p:
        raise ValueError("add the new disk before converting")
    rows = p - 1
    if groups is None:
        groups = array.blocks_per_disk // rows
    if groups * rows > array.blocks_per_disk:
        raise ValueError("array too small for the requested groups")

    if not isinstance(kernel, XorKernel):
        kernel = resolve_kernel(kernel)

    # Bulk view of the square region: (disk, group, row, block)
    # array storage is (disk, block, bs) with block = g*rows + r.
    bs = array.block_size
    span = slice(0, groups * rows)
    region = array.bulk_view(slice(0, m), span).reshape(m, groups, rows, bs)
    out = array.bulk_view(slice(m, m + 1), span)[0].reshape(groups, rows, bs)

    written = 0
    for parity_row in range(rows):
        chain = diagonal_chain_cells(p, parity_row)
        kernel.region_xor_reduce(
            out[:, parity_row, :], [region[c, :, r, :] for r, c in chain], init=True
        )
        written += groups

    # credit the counters with the per-block equivalents
    reads = np.zeros(array.n_disks, dtype=np.int64)
    for parity_row in range(rows):
        for _r, c in diagonal_chain_cells(p, parity_row):
            reads[c] += 1
    reads *= groups
    writes = np.zeros(array.n_disks, dtype=np.int64)
    writes[m] = written
    array.credit_ios(reads=reads, writes=writes)
    return written
