"""Fused run lowering for the online converter (Algorithm 2, batched).

Between application events the online conversion thread claims a *run*
of pending diagonal parities (:meth:`OnlineCode56Conversion.pending_run`)
and, when the array is healthy, hands the whole run to
:func:`execute_run_fused`: the run is grouped by parity row, each row's
chain becomes one fused XOR reduction over strided ``bulk_view`` slices
of the block store (the ISA-L region-op idiom), reduced through the
selected :class:`~repro.kernels.base.XorKernel` backend into a reused
scratch pool, and written back through the *counted*
:meth:`BlockArray.write_blocks` bulk API.  Reads are credited via
:meth:`BlockArray.credit_ios` with exactly the per-disk totals the
audited per-parity path performs — zero counter drift.

The lowering never runs when a fault plane is attached or a disk has
failed (:func:`fused_run_usable`): the views bypass the counted read
hooks that crash points, sector errors and degraded reconstruction hang
off, so those runs fall back to the audited per-parity generator inside
:meth:`OnlineCode56Conversion.generate_run_step` — same run/mark
protocol, full fault semantics.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.codes.code56 import diagonal_chain_cells
from repro.kernels import XorKernel
from repro.obs.metrics import get_registry
from repro.raid.array import BlockArray

__all__ = ["fused_run_usable", "execute_run_fused", "run_read_credit"]


class _RunScratch:
    """Grow-only scratch backing for run outputs (one flat allocation)."""

    def __init__(self) -> None:
        self._buf = np.empty(0, dtype=np.uint8)

    def take(self, shape: tuple[int, ...]) -> np.ndarray:
        n = int(np.prod(shape))
        if self._buf.size < n:
            self._buf = np.empty(n, dtype=np.uint8)
        return self._buf[:n].reshape(shape)


_SCRATCH = _RunScratch()

#: destination-tile budget — keep each fused reduction's working set in
#: cache rather than streaming a giant run extent once per chain cell
_RUN_TILE_BYTES = 1 << 17

#: below this many destination bytes a run is overhead-bound (one or two
#: groups per row): gather the whole chain cube in one fancy index and
#: reduce it in a single kernel call instead of a reduction per row
_GATHER_RUN_BYTES = 1 << 17


@lru_cache(maxsize=None)
def _chain_tables(p: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row chain geometry as arrays: ``R[prow, j]``/``C[prow, j]``
    the square cell at chain position ``j``, and ``credit[prow, disk]``
    the per-disk read totals one parity of that row bills."""
    rows, chain_len = p - 1, p - 2
    r_tab = np.empty((rows, chain_len), dtype=np.intp)
    c_tab = np.empty((rows, chain_len), dtype=np.intp)
    credit = np.zeros((rows, p), dtype=np.int64)
    for prow in range(rows):
        for j, (r, c) in enumerate(diagonal_chain_cells(p, prow)):
            r_tab[prow, j] = r
            c_tab[prow, j] = c
            credit[prow, c] += 1
    return r_tab, c_tab, credit


def fused_run_usable(array: BlockArray) -> bool:
    """Fused runs bypass the counted read path, so they are only sound
    when nothing observes it: no fault plane (crash/tear hooks fire on
    counted reads) and no failed disks (counted reads raise
    ``DiskFailure``; views would silently serve stale bytes)."""
    return array.fault_plane is None and not array.failed_disks


def run_read_credit(array: BlockArray, p: int, run: tuple[tuple[int, int], ...]) -> np.ndarray:
    """Per-disk read totals the audited path would perform for ``run``."""
    _r_tab, _c_tab, credit = _chain_tables(p)
    counts = np.zeros(p - 1, dtype=np.int64)
    for _g, r in run:
        counts[r] += 1
    reads = np.zeros(array.n_disks, dtype=np.int64)
    reads[:p] = counts @ credit
    return reads


def execute_run_fused(
    array: BlockArray,
    p: int,
    run: tuple[tuple[int, int], ...],
    kernel: XorKernel,
) -> int:
    """Generate every diagonal parity of ``run`` in fused region ops.

    ``run`` is a cursor-ordered tuple of ``(group, row)`` pairs.  Returns
    the conversion-thread cost in Te ticks — ``(p-1)`` per parity, the
    same ``(p-2)`` chain reads + 1 write the audited path bills on a
    healthy array.  Byte- and counter-identical to looping
    ``_generate_parity`` over the run.
    """
    if not run:
        return 0
    m = p - 1
    rows = p - 1
    bs = array.block_size
    n = len(run)

    max_group = max(g for g, _r in run)
    span = slice(0, (max_group + 1) * rows)
    # (disk, group, row, block) view of the square region
    region = array.bulk_view(slice(0, m), span).reshape(m, max_group + 1, rows, bs)

    out = _SCRATCH.take((n, bs))
    out_blocks = np.empty(n, dtype=np.intp)
    xor_bytes = 0

    if n * bs <= _GATHER_RUN_BYTES:
        # overhead-bound small run (a group or two per row): one
        # fancy-indexed gather pulls the whole (chain, n, bs) cube, one
        # kernel call reduces it — no per-row Python loop
        r_tab, c_tab, _credit = _chain_tables(p)
        g_arr = np.fromiter((g for g, _r in run), dtype=np.intp, count=n)
        prows = np.fromiter((r for _g, r in run), dtype=np.intp, count=n)
        np.multiply(g_arr, rows, out=out_blocks)
        out_blocks += prows
        cube = region[c_tab[prows].T, g_arr[None, :], r_tab[prows].T, :]
        kernel.region_xor_reduce(out[:n], list(cube), init=True)
        xor_bytes = cube.nbytes
    else:
        # streaming run: group entries by parity row — a cursor-ordered
        # run keeps each row's groups sorted (contiguous when dense) —
        # and reduce strided views straight off the block store, tiled
        # to keep the destination working set in cache
        by_row: dict[int, list[int]] = {}
        for g, r in run:
            by_row.setdefault(r, []).append(g)
        pos = 0
        for prow in sorted(by_row):
            gs = by_row[prow]
            chain = diagonal_chain_cells(p, prow)
            k = len(gs)
            out_blocks[pos : pos + k] = np.asarray(gs, dtype=np.intp) * rows + prow
            contiguous = k == gs[-1] - gs[0] + 1
            idx = None if contiguous else np.asarray(gs, dtype=np.intp)
            tile = max(1, min(k, _RUN_TILE_BYTES // bs))
            for lo in range(0, k, tile):
                hi = min(k, lo + tile)
                dst = out[pos + lo : pos + hi]
                if contiguous:
                    g0 = gs[0]
                    sources = [region[c, g0 + lo : g0 + hi, r, :] for r, c in chain]
                else:
                    sources = [region[c][idx[lo:hi], r, :] for r, c in chain]
                kernel.region_xor_reduce(dst, sources, init=True)
                xor_bytes += len(chain) * dst.nbytes
            pos += k

    # the views above replaced the counted chain reads; credit the
    # identical per-disk totals, then write parities through the counted
    # bulk API (one flush for the whole run)
    array.credit_ios(reads=run_read_credit(array, p, run))
    array.write_blocks(np.full(n, m, dtype=np.intp), out_blocks, out[:n])

    registry = get_registry()
    if registry.enabled:
        registry.counter("online.fused_runs", kernel=kernel.name).inc()
        registry.counter("online.fused_parities", kernel=kernel.name).inc(n)
        registry.counter("online.fused_xor_bytes", kernel=kernel.name).inc(xor_bytes)
    return n * (p - 1)
