"""Plan builders for the three conversion approaches of Section I/V.

* ``direct``      — RAID-5 -> RAID-6 in one pass (Code 5-6, X-Code,
                    P-Code, HDP).
* ``via-raid0``   — degrade to RAID-0 (invalidate old parities with NULL
                    writes), then upgrade by generating *all* new parities
                    (EVENODD, RDP, H-Code).
* ``via-raid4``   — degrade to RAID-4 (migrate old parities to a new
                    dedicated disk, where they remain valid row parities),
                    then generate only the diagonal/anti-diagonal parities
                    (EVENODD, RDP, H-Code).

Disk mapping conventions: source disks keep indices ``0..m-1``; new disks
are appended.  The source RAID-5 is left-asymmetric (the paper's
default), under which the old parity of stripe ``s`` sits on disk
``m-1 - (s mod m)`` — for the aligned pairings this is exactly Code 5-6's
horizontal-parity anti-diagonal, HDP's anti-diagonal parity cells, and
H-Code's anti-diagonal cells once source disks map to square columns
``1..p-1``.

Shortening (``n_disks`` below the canonical width) follows Section IV-B2:
Code 5-6 adds virtual disks as its first columns; RDP/EVENODD shorten
their trailing data columns; H-Code can drop its parity-free column 0.
That is what enables the paper's same-``n`` comparisons (Table IV).

Every builder produces a block-accurate :class:`ConversionPlan`; the
engine executes it and the converted array is verified bit-for-bit, so
these op accounts are not merely counted — they are proven sufficient.
"""

from __future__ import annotations

from repro.codes.base import ArrayCode
from repro.codes.geometry import Cell, ChainKind, CodeLayout, ParityChain
from repro.codes.registry import get_code
from repro.migration.ops import Purpose
from repro.migration.plan import ConversionPlan, GroupWork, Location
from repro.raid.layouts import Raid5Layout, parity_disk
from repro.util.primes import is_prime

__all__ = [
    "APPROACHES",
    "supported_conversions",
    "build_plan",
    "canonical_disks",
    "conversions_for_n",
]

APPROACHES: tuple[str, ...] = ("direct", "via-raid0", "via-raid4")

#: which codes each approach supports (the paper's methodology, Sec. V-A)
_SUPPORTED: dict[str, tuple[str, ...]] = {
    "direct": ("code56", "code56-right", "xcode", "pcode", "hdp"),
    "via-raid0": ("evenodd", "rdp", "hcode"),
    "via-raid4": ("evenodd", "rdp", "hcode"),
}


def supported_conversions() -> list[tuple[str, str]]:
    """All (code, approach) pairs the planner implements."""
    return [(code, app) for app, codes in _SUPPORTED.items() for code in codes]


def canonical_disks(code_name: str, p: int) -> int:
    """Post-conversion disk count of the unshortened construction."""
    return {
        "code56": p,
        "code56-right": p,
        "rdp": p + 1,
        "evenodd": p + 2,
        "hcode": p + 1,
        "xcode": p,
        "pcode": p - 1,
        "hdp": p - 1,
    }[code_name]


def conversions_for_n(n: int, max_p: int = 31, min_p: int = 5) -> list[tuple[str, str, int]]:
    """All (code, approach, p) able to produce an ``n``-disk RAID-6.

    Uses the smallest usable prime per code (least shortening), the
    paper's Table IV selection rule.  ``min_p`` defaults to 5 because the
    ``p = 3`` constructions are degenerate (two-row stripes).
    """
    out: list[tuple[str, str, int]] = []
    primes = [q for q in range(min_p, max_p) if is_prime(q)]
    for approach, codes in _SUPPORTED.items():
        for code in codes:
            for p in primes:
                try:
                    _resolve_width(code, p, n)
                except ValueError:
                    continue
                out.append((code, approach, p))
                break
    return out


def alignment_cycle(code_name: str, p: int, n_disks: int | None = None) -> int:
    """Smallest group count over which the conversion is exactly periodic.

    The source RAID-5's rotating parity has period ``m`` stripes; a group
    consumes ``rows_pg`` stripes, so old-parity placement repeats every
    ``m / gcd(rows_pg, m)`` groups.  HDP additionally repacks displaced
    data into one overflow group per ``p-3`` source groups.  Building a
    plan over one full cycle makes every per-``B`` ratio exact.
    """
    import math

    n = _resolve_width(code_name, p, n_disks)
    if code_name in ("code56", "code56-right"):
        m, rows_pg = n - 1, n - 1
    elif code_name in ("rdp", "evenodd"):
        m, rows_pg = n - 2, p - 1
    elif code_name == "hcode":
        m, rows_pg = p - 1, p - 1
    elif code_name == "xcode":
        m, rows_pg = p, p - 2
    elif code_name == "pcode":
        m, rows_pg = p - 1, (p - 3) // 2
    else:  # hdp
        m, rows_pg = p - 1, p - 1
    cycle = m // math.gcd(rows_pg, m)
    if code_name == "hdp":
        cycle = cycle * (p - 3) // math.gcd(cycle, p - 3)
    return cycle


def _resolve_width(code_name: str, p: int, n_disks: int | None) -> int:
    """Validate/derive the post-conversion disk count; returns ``n``."""
    canonical = canonical_disks(code_name, p)
    if n_disks is None:
        return canonical
    if n_disks == canonical:
        return n_disks
    if code_name in ("code56", "code56-right"):
        # virtual disks shrink n down to 4 (m >= 3)
        if 4 <= n_disks < canonical:
            return n_disks
        raise ValueError(f"{code_name} at p={p} supports n in 4..{canonical}")
    if code_name in ("rdp", "evenodd"):
        # trailing data columns shorten away; the source RAID-5 (m = n-2)
        # needs at least 3 disks
        if 5 <= n_disks < canonical:
            return n_disks
        raise ValueError(f"{code_name} at p={p} supports n in 5..{canonical}")
    if code_name == "hcode":
        if n_disks == p:  # column 0 dropped
            return n_disks
        raise ValueError(f"hcode at p={p} supports n of {p} or {p + 1}")
    raise ValueError(f"{code_name} cannot be shortened; n is fixed at {canonical}")


# --------------------------------------------------------------------------
# XOR accounting
# --------------------------------------------------------------------------

def _real_members(
    chain: ParityChain,
    layout: CodeLayout,
    dead_cells: frozenset[Cell],
) -> list[Cell]:
    """Chain members that actually contribute payload (not virtual/NULL)."""
    return [
        m
        for m in chain.members
        if m not in layout.virtual_cells and m not in dead_cells
    ]


def _chain_xors(
    chains: list[ParityChain],
    layout: CodeLayout,
    dead_cells: frozenset[Cell],
) -> int:
    """XORs to evaluate ``chains``, skipping zero-valued members.

    EVENODD gets the smart accounting: its adjuster ``S`` (the shared
    tail of every diagonal chain) is computed once and folded into each
    diagonal with a single extra XOR, as a real controller would.
    """
    if layout.name == "evenodd":
        from repro.codes.evenodd import adjuster_cells

        s_cells = set(adjuster_cells(layout.p))
        live_s = [
            c for c in s_cells
            if c not in layout.virtual_cells and c not in dead_cells
        ]
        total = 0
        s_counted = False
        for chain in chains:
            if chain.kind is ChainKind.HORIZONTAL:
                total += max(len(_real_members(chain, layout, dead_cells)) - 1, 0)
                continue
            if not s_counted:
                total += max(len(live_s) - 1, 0)
                s_counted = True
            diag = [
                m
                for m in _real_members(chain, layout, dead_cells)
                if m not in s_cells
            ]
            total += max(len(diag) - 1, 0) + (1 if live_s and diag else 0)
        return total
    return sum(
        max(len(_real_members(ch, layout, dead_cells)) - 1, 0) for ch in chains
    )


# --------------------------------------------------------------------------
# shared context
# --------------------------------------------------------------------------

class _Context:
    """Shared geometry for one conversion build."""

    def __init__(
        self,
        code: ArrayCode,
        approach: str,
        m: int,
        groups: int,
        source_rows_per_group: int,
        col_to_disk: dict[int, int],
        new_disks: tuple[int, ...],
        reserve_rows: tuple[int, ...] = (),
        source_layout: Raid5Layout = Raid5Layout.LEFT_ASYMMETRIC,
    ):
        self.code = code
        self.layout = code.layout
        self.approach = approach
        self.m = m
        self.n = code.layout.n_disks
        self.groups = groups
        self.rows_pg = source_rows_per_group
        self.col_to_disk = col_to_disk
        self.new_disks = new_disks
        self.reserve_rows = reserve_rows
        self.source_layout = source_layout
        self.source_stripes = groups * source_rows_per_group

    # --- stripe-row -> physical block -------------------------------------
    def block_of(self, group: int, row: int) -> int:
        if row in self.reserve_rows:
            idx = self.reserve_rows.index(row)
            return self.source_stripes + group * len(self.reserve_rows) + idx
        src_idx = sum(1 for r in range(row) if r not in self.reserve_rows)
        return group * self.rows_pg + src_idx

    def loc(self, group: int, cell: Cell) -> Location:
        row, col = cell
        return Location(self.col_to_disk[col], self.block_of(group, row))

    def old_parity_disk(self, source_stripe: int) -> int:
        return parity_disk(self.source_layout, source_stripe, self.m)

    def old_parity_cell(self, group: int, row: int) -> Cell:
        """Stripe cell where the source parity of group-row ``row`` sits."""
        disk = self.old_parity_disk(group * self.rows_pg + row)
        col = next(
            c for c, d in self.col_to_disk.items()
            if d == disk and c in self._source_cols
        )
        return (row, col)

    @property
    def _source_cols(self) -> set[int]:
        return {
            c for c, d in self.col_to_disk.items() if d < self.m
        }

    def cell_locations(self) -> dict[tuple[int, Cell], Location]:
        out: dict[tuple[int, Cell], Location] = {}
        virtual = self.layout.virtual_cells
        for g in range(self.groups):
            for r in range(self.layout.rows):
                for c in self.layout.physical_cols:
                    if (r, c) in virtual:
                        continue
                    out[(g, (r, c))] = self.loc(g, (r, c))
        return out

    @property
    def blocks_per_disk(self) -> int:
        return self.source_stripes + self.groups * len(self.reserve_rows)

    @property
    def extra_blocks_per_disk(self) -> int:
        return self.groups * len(self.reserve_rows)


# --------------------------------------------------------------------------
# direct conversions
# --------------------------------------------------------------------------

def _plan_direct_code56(
    p: int, groups: int, n: int, orientation: str = "left"
) -> ConversionPlan:
    """Code 5-6's conversion (Algorithm 2's conversion thread).

    Source left-asymmetric RAID-5 of ``m = n-1`` disks; one disk is added
    for the diagonal column.  When ``m < p-1`` the leading ``v = p-1-m``
    columns are virtual disks (Section IV-B2): rows whose horizontal
    parity would land on a virtual disk carry no data, so each group
    consumes ``m`` source stripes and the diagonal column still spans all
    ``p-1`` rows.  The rotating parities already *are* the horizontal
    parities, so the only work is generating the diagonal column.

    ``orientation="right"`` converts a *right-asymmetric* RAID-5 with the
    mirrored layout of Fig. 7 (Section IV-B1): same accounting, mirrored
    placement (the horizontal parities sit on the main diagonal).
    """
    m = n - 1
    v = p - 1 - m
    if orientation == "left":
        code = get_code("code56", p, virtual_cols=tuple(range(v)))
        col_to_disk = {c: c - v for c in range(v, p - 1)}
        source_layout = Raid5Layout.LEFT_ASYMMETRIC
        col_of_disk = {d: d + v for d in range(m)}
    else:
        code = get_code("code56-right", p, virtual_cols=tuple(range(m, p - 1)))
        col_to_disk = {c: c for c in range(m)}
        source_layout = Raid5Layout.RIGHT_ASYMMETRIC
        col_of_disk = {d: d for d in range(m)}
    layout = code.layout
    col_to_disk[p - 1] = m
    ctx = _Context(
        code,
        "direct",
        m,
        groups,
        source_rows_per_group=m,
        col_to_disk=col_to_disk,
        new_disks=(m,),
        source_layout=source_layout,
    )

    def loc(g: int, cell: Cell) -> Location:
        row, col = cell
        if col == p - 1:  # diagonal column spans all p-1 rows per group
            return Location(m, g * (p - 1) + row)
        return Location(col_to_disk[col], g * m + row)

    diag_chains = [
        ch
        for ch in layout.chains
        if ch.kind is ChainKind.DIAGONAL
        and _real_members(ch, layout, frozenset())
    ]
    works: list[GroupWork] = []
    for g in range(groups):
        gw = GroupWork(group=g)
        for cell in layout.data_cells:
            gw.reads[cell] = loc(g, cell)
        for ch in diag_chains:
            gw.parity_writes[ch.parity] = loc(g, ch.parity)
        gw.new_parities = len(diag_chains)
        gw.xors = _chain_xors(diag_chains, layout, frozenset())
        works.append(gw)

    from repro.raid.layouts import locate_block

    data_locations: dict[int, tuple[int, Cell]] = {}
    capacity = ctx.source_stripes * (m - 1)
    for lba in range(capacity):
        stripe, disk = locate_block(ctx.source_layout, lba, m)
        g, row = divmod(stripe, m)
        data_locations[lba] = (g, (row, col_of_disk[disk]))

    cell_locs: dict[tuple[int, Cell], Location] = {}
    virtual = layout.virtual_cells
    for g in range(groups):
        for r in range(layout.rows):
            for c in layout.physical_cols:
                if (r, c) in virtual:
                    continue
                cell_locs[(g, (r, c))] = loc(g, (r, c))
    return _finish(
        ctx,
        works,
        data_locations,
        cell_locations=cell_locs,
        blocks_per_disk=groups * (p - 1),
        extra_blocks_per_disk=0,
        notes=f"{v} virtual disk(s)" if v else "",
    )


def _plan_direct_xcode(p: int, groups: int) -> ConversionPlan:
    """X-Code direct conversion (Figure 1(c)).

    Source RAID-5 of ``m = p`` disks; every group takes ``p-2`` source
    rows as its data rows, invalidates the old parities inside them
    (NULL writes) and writes the two parity rows into reserved capacity
    (extra-space ratio ``2/p``).
    """
    m = p
    code = get_code("xcode", p)
    ctx = _Context(
        code,
        "direct",
        m,
        groups,
        source_rows_per_group=p - 2,
        col_to_disk={c: c for c in range(p)},
        new_disks=(),
        reserve_rows=(p - 2, p - 1),
    )
    works: list[GroupWork] = []
    for g in range(groups):
        gw = GroupWork(group=g)
        dead: set[Cell] = set()
        for r in range(p - 2):
            pd = ctx.old_parity_disk(g * (p - 2) + r)
            cell = (r, pd)
            dead.add(cell)
            gw.null_writes[cell] = ctx.loc(g, cell)
            gw.invalid_parities += 1
        for r in range(p - 2):
            for c in range(p):
                if (r, c) not in dead:
                    gw.reads[(r, c)] = ctx.loc(g, (r, c))
        for ch in code.layout.chains:
            gw.parity_writes[ch.parity] = ctx.loc(g, ch.parity)
        gw.new_parities = len(code.layout.chains)
        gw.xors = _chain_xors(list(code.layout.chains), code.layout, frozenset(dead))
        works.append(gw)
    data_locations = _inplace_data_locations(ctx, col_of_disk={d: d for d in range(m)})
    return _finish(ctx, works, data_locations)


def _plan_direct_pcode(p: int, groups: int) -> ConversionPlan:
    """P-Code direct conversion.

    Source RAID-5 of ``m = p-1`` disks; each group takes ``(p-3)/2``
    source rows as stripe rows ``1..``, invalidates old parities, and
    writes the parity row 0 into reserved capacity (ratio ``2/(p-1)``).
    """
    m = p - 1
    code = get_code("pcode", p)
    rows_pg = (p - 3) // 2
    ctx = _Context(
        code,
        "direct",
        m,
        groups,
        source_rows_per_group=rows_pg,
        col_to_disk={c: c for c in range(p - 1)},
        new_disks=(),
        reserve_rows=(0,),
    )
    works: list[GroupWork] = []
    for g in range(groups):
        gw = GroupWork(group=g)
        dead: set[Cell] = set()
        for src_r in range(rows_pg):
            pd = ctx.old_parity_disk(g * rows_pg + src_r)
            cell = (src_r + 1, pd)
            dead.add(cell)
            gw.null_writes[cell] = ctx.loc(g, cell)
            gw.invalid_parities += 1
        for cell in code.layout.data_cells:
            if cell not in dead:
                gw.reads[cell] = ctx.loc(g, cell)
        for ch in code.layout.chains:
            gw.parity_writes[ch.parity] = ctx.loc(g, ch.parity)
        gw.new_parities = len(code.layout.chains)
        gw.xors = _chain_xors(list(code.layout.chains), code.layout, frozenset(dead))
        works.append(gw)
    data_locations = _inplace_data_locations(ctx, col_of_disk={d: d for d in range(m)})
    return _finish(ctx, works, data_locations)


def _plan_direct_hdp(p: int, groups: int) -> ConversionPlan:
    """HDP direct conversion.

    Source left-asymmetric RAID-5 of ``m = p-1`` disks.  The old rotating
    parities sit exactly on HDP's anti-diagonal parity cells, so they are
    invalidated in place (overwritten by the new anti-diagonal parities —
    no NULL write needed).  The horizontal parities take the main
    diagonal, displacing ``p-1`` data blocks per group; displaced blocks
    migrate into reserved capacity organised as *overflow* HDP groups
    (extra-space ratio ``1/(p-2)``).
    """
    m = p - 1
    code = get_code("hdp", p)
    layout = code.layout
    anti_cells = {(i, p - 2 - i) for i in range(p - 1)}
    per_overflow = layout.num_data
    moved_total = groups * (p - 1)
    overflow_groups = -(-moved_total // per_overflow)  # ceil

    ctx = _Context(
        code,
        "direct",
        m,
        groups,
        source_rows_per_group=p - 1,
        col_to_disk={c: c for c in range(p - 1)},
        new_disks=(),
    )
    source_blocks = ctx.source_stripes

    def overflow_loc(og: int, cell: Cell) -> Location:
        return Location(cell[1], source_blocks + og * (p - 1) + cell[0])

    works: list[GroupWork] = []
    data_locations: dict[int, tuple[int, Cell]] = {}
    moved_idx = 0
    overflow_fill: dict[int, list[Cell]] = {og: [] for og in range(overflow_groups)}
    for g in range(groups):
        gw = GroupWork(group=g)
        gw.invalid_parities = p - 1  # old parities on the anti-diagonal
        gw.null_cells.update(anti_cells)
        for cell in layout.data_cells:
            gw.reads[cell] = ctx.loc(g, cell)
        for i in range(p - 1):
            src = ctx.loc(g, (i, i))
            og, slot = divmod(moved_idx, per_overflow)
            dst_cell = layout.data_cells[slot]
            dst = overflow_loc(og, dst_cell)
            gw.migrates[(i, i)] = (
                src,
                dst,
                Purpose.DATA_MIGRATE_READ,
                Purpose.DATA_MIGRATE_WRITE,
            )
            overflow_fill[og].append(dst_cell)
            moved_idx += 1
        for ch in layout.chains:
            gw.parity_writes[ch.parity] = ctx.loc(g, ch.parity)
        gw.new_parities = len(layout.chains)
        gw.xors = _chain_xors(list(layout.chains), layout, frozenset())
        works.append(gw)

    for og in range(overflow_groups):
        gw = GroupWork(group=groups + og)
        filled = set(overflow_fill[og])
        dead = frozenset(set(layout.data_cells) - filled)
        for ch in layout.chains:
            gw.parity_writes[ch.parity] = overflow_loc(og, ch.parity)
        gw.new_parities = len(layout.chains)
        gw.xors = _chain_xors(list(layout.chains), layout, dead)
        works.append(gw)

    moved_idx = 0
    remap: dict[tuple[int, Cell], tuple[int, Cell]] = {}
    for g in range(groups):
        for i in range(p - 1):
            og, slot = divmod(moved_idx, per_overflow)
            remap[(g, (i, i))] = (groups + og, layout.data_cells[slot])
            moved_idx += 1
    base = _inplace_data_locations(ctx, col_of_disk={d: d for d in range(m)})
    for lba, (g, cell) in base.items():
        data_locations[lba] = remap.get((g, cell), (g, cell))

    cell_locs = ctx.cell_locations()
    for og in range(overflow_groups):
        for r in range(layout.rows):
            for c in layout.physical_cols:
                cell_locs[(groups + og, (r, c))] = overflow_loc(og, (r, c))
    return _finish(
        ctx,
        works,
        data_locations,
        cell_locations=cell_locs,
        total_groups=groups + overflow_groups,
        blocks_per_disk=source_blocks + overflow_groups * (p - 1),
        extra_blocks_per_disk=overflow_groups * (p - 1),
        notes=(
            "displaced main-diagonal data is repacked into overflow HDP "
            "groups in reserved capacity"
        ),
    )


# --------------------------------------------------------------------------
# two-step conversions (horizontal codes)
# --------------------------------------------------------------------------

def _horizontal_context(code_name: str, p: int, groups: int, approach: str, n: int) -> _Context:
    """Disk mapping for EVENODD / RDP / H-Code conversions."""
    if code_name == "rdp":
        m = n - 2
        virtual = tuple(range(m, p - 1))
        code = get_code("rdp", p, virtual_cols=virtual)
        col_to_disk = {c: c for c in range(m)}
        col_to_disk[p - 1] = m  # row-parity disk
        col_to_disk[p] = m + 1  # diagonal-parity disk
        new = (m, m + 1)
    elif code_name == "evenodd":
        m = n - 2
        virtual = tuple(range(m, p))
        code = get_code("evenodd", p, virtual_cols=virtual)
        col_to_disk = {c: c for c in range(m)}
        col_to_disk[p] = m
        col_to_disk[p + 1] = m + 1
        new = (m, m + 1)
    elif code_name == "hcode":
        # source disks become square columns 1..p-1 so the old rotating
        # parities land exactly on the anti-diagonal parity cells.
        m = p - 1
        if n == p + 1:
            # column 0 is a brand-new (empty) data disk, column p the new
            # horizontal-parity disk.
            code = get_code("hcode", p)
            col_to_disk = {c: c - 1 for c in range(1, p)}
            col_to_disk[0] = m
            col_to_disk[p] = m + 1
            new = (m, m + 1)
        else:  # n == p: drop column 0 entirely
            code = get_code("hcode", p, virtual_cols=(0,))
            col_to_disk = {c: c - 1 for c in range(1, p)}
            col_to_disk[p] = m
            new = (m,)
    else:  # pragma: no cover - guarded by build_plan
        raise ValueError(code_name)
    return _Context(
        code,
        approach,
        m,
        groups,
        source_rows_per_group=p - 1,
        col_to_disk=col_to_disk,
        new_disks=new,
    )


def _group_source_cells(ctx: _Context, group: int) -> tuple[list[Cell], set[Cell]]:
    """(data cells, old-parity cells) of one group, by stripe position."""
    src_disks = set(range(ctx.m))
    parity_cells = {ctx.old_parity_cell(group, r) for r in range(ctx.rows_pg)}
    data = [
        cell
        for cell in ctx.layout.data_cells
        if cell not in parity_cells
        and ctx.col_to_disk[cell[1]] in src_disks
        and cell[0] < ctx.rows_pg
    ]
    return data, parity_cells


def _plan_via_raid0(code_name: str, p: int, groups: int, n: int) -> ConversionPlan:
    """Degrade to RAID-0 (NULL the old parities), then generate all parities."""
    ctx = _horizontal_context(code_name, p, groups, "via-raid0", n)
    layout = ctx.layout
    works: list[GroupWork] = []
    parity_cells = layout.parity_cells
    empty = {
        cell
        for cell in layout.data_cells
        if ctx.col_to_disk[cell[1]] in ctx.new_disks
    }
    for g in range(groups):
        data_cells, old_parity = _group_source_cells(ctx, g)
        # phase 0: invalidate old parities
        deg = GroupWork(group=g, phase=0)
        dead: set[Cell] = set()
        for cell in old_parity:
            dead.add(cell)
            deg.invalid_parities += 1
            if cell in parity_cells:
                # the slot is about to hold a new parity; skip the NULL write
                deg.null_cells.add(cell)
            else:
                deg.null_writes[cell] = ctx.loc(g, cell)
        works.append(deg)
        # phase 1: read data, generate every parity chain
        upg = GroupWork(group=g, phase=1)
        upg.null_cells.update(dead)
        for cell in data_cells:
            upg.reads[cell] = ctx.loc(g, cell)
        for ch in layout.chains:
            upg.parity_writes[ch.parity] = ctx.loc(g, ch.parity)
        upg.new_parities = len(layout.chains)
        upg.xors = _chain_xors(list(layout.chains), layout, frozenset(dead | empty))
        works.append(upg)
    data_locations = _two_step_data_locations(ctx)
    return _finish(ctx, works, data_locations)


def _plan_via_raid4(code_name: str, p: int, groups: int, n: int) -> ConversionPlan:
    """Migrate old parities to a dedicated disk, then generate diagonals.

    The migrated blocks remain valid horizontal parities (for H-Code they
    move from the anti-diagonal cells to the new column ``p``; for
    RDP/EVENODD from the rotating slots to the new row-parity column).
    """
    ctx = _horizontal_context(code_name, p, groups, "via-raid4", n)
    layout = ctx.layout
    works: list[GroupWork] = []
    horizontal = [ch for ch in layout.chains if ch.kind is ChainKind.HORIZONTAL]
    diagonal = [ch for ch in layout.chains if ch.kind is ChainKind.DIAGONAL]
    empty = {
        cell
        for cell in layout.data_cells
        if ctx.col_to_disk[cell[1]] in ctx.new_disks
    }
    for g in range(groups):
        data_cells, old_parity_cells = _group_source_cells(ctx, g)
        # phase 0: parity migration (degrade to RAID-4)
        deg = GroupWork(group=g, phase=0)
        vacated: set[Cell] = set()
        for r in range(ctx.rows_pg):
            src_cell = ctx.old_parity_cell(g, r)
            dst_cell = horizontal[r].parity
            deg.migrates[dst_cell] = (
                ctx.loc(g, src_cell),
                ctx.loc(g, dst_cell),
                Purpose.PARITY_MIGRATE_READ,
                Purpose.PARITY_MIGRATE_WRITE,
            )
            deg.migrated_parities += 1
            vacated.add(src_cell)
            if src_cell not in layout.parity_cells:
                # the vacated slot becomes a free (NULL) data cell —
                # metadata-only trim, no counted I/O (paper's taxonomy)
                deg.trims.append(ctx.loc(g, src_cell))
                deg.null_cells.add(src_cell)
        works.append(deg)
        # phase 1: generate diagonal/anti-diagonal parities
        upg = GroupWork(group=g, phase=1)
        dead = {c for c in vacated if c not in layout.parity_cells}
        upg.null_cells.update(dead)
        for cell in data_cells:
            upg.reads[cell] = ctx.loc(g, cell)
        # RDP's diagonal chains cover the row-parity column: those blocks
        # were written in phase 0 and must be read back in phase 1 (the
        # two steps are separate whole-array passes).
        needed_parities = {
            mem
            for ch in diagonal
            for mem in ch.members
            if mem in layout.parity_cells and mem not in dead
        }
        for cell in sorted(needed_parities):
            upg.reads[cell] = ctx.loc(g, cell)
            upg.read_purposes[cell] = Purpose.PARITY_MIGRATE_READ
        for ch in diagonal:
            upg.parity_writes[ch.parity] = ctx.loc(g, ch.parity)
        upg.new_parities = len(diagonal)
        upg.xors = _chain_xors(diagonal, layout, frozenset(dead | empty))
        works.append(upg)
    data_locations = _two_step_data_locations(ctx)
    return _finish(ctx, works, data_locations)


# --------------------------------------------------------------------------
# shared assembly
# --------------------------------------------------------------------------

def _inplace_data_locations(ctx: _Context, col_of_disk: dict[int, int]) -> dict[int, tuple[int, Cell]]:
    """Logical map when source data blocks stay at their physical location."""
    from repro.raid.layouts import locate_block

    out: dict[int, tuple[int, Cell]] = {}
    capacity = ctx.source_stripes * (ctx.m - 1)
    rows_pg = ctx.rows_pg
    reserve = set(ctx.reserve_rows)
    src_to_stripe_row = [r for r in range(ctx.layout.rows) if r not in reserve]
    for lba in range(capacity):
        stripe, disk = locate_block(ctx.source_layout, lba, ctx.m)
        g, src_row = divmod(stripe, rows_pg)
        out[lba] = (g, (src_to_stripe_row[src_row], col_of_disk[disk]))
    return out


def _two_step_data_locations(ctx: _Context) -> dict[int, tuple[int, Cell]]:
    inv = {d: c for c, d in ctx.col_to_disk.items()}
    return _inplace_data_locations(ctx, col_of_disk={d: inv[d] for d in range(ctx.m)})


def _finish(
    ctx: _Context,
    works: list[GroupWork],
    data_locations: dict[int, tuple[int, Cell]],
    cell_locations: dict[tuple[int, Cell], Location] | None = None,
    total_groups: int | None = None,
    blocks_per_disk: int | None = None,
    extra_blocks_per_disk: int | None = None,
    notes: str = "",
) -> ConversionPlan:
    return ConversionPlan(
        code=ctx.code,
        approach=ctx.approach,
        p=ctx.layout.p,
        m=ctx.m,
        n=ctx.n,
        source_layout=ctx.source_layout,
        groups=total_groups if total_groups is not None else ctx.groups,
        data_blocks=ctx.source_stripes * (ctx.m - 1),
        group_works=works,
        data_locations=data_locations,
        cell_locations=cell_locations if cell_locations is not None else ctx.cell_locations(),
        col_to_disk=dict(ctx.col_to_disk),
        new_disks=ctx.new_disks,
        blocks_per_disk=blocks_per_disk if blocks_per_disk is not None else ctx.blocks_per_disk,
        extra_blocks_per_disk=(
            extra_blocks_per_disk
            if extra_blocks_per_disk is not None
            else ctx.extra_blocks_per_disk
        ),
        notes=notes,
    )


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def build_plan(
    code_name: str,
    approach: str,
    p: int,
    groups: int = 4,
    n_disks: int | None = None,
) -> ConversionPlan:
    """Build the conversion plan for ``code_name`` under ``approach``.

    Parameters
    ----------
    p:
        Prime code parameter.
    groups:
        Target stripe-groups to convert (scales ``B``; every ratio is
        group-invariant over a full alignment cycle).
    n_disks:
        Post-conversion disk count.  Defaults to the canonical width
        (Section V-A pairing): EVENODD/RDP/H-Code convert a RAID-5 of
        ``p-1`` disks by adding two; Code 5-6 adds one; X-Code converts
        ``p`` disks in place; P-Code and HDP convert ``p-1`` in place.
        Smaller values shorten the code (Table IV's same-``n`` matchups).
    """
    if not is_prime(p):
        raise ValueError(f"p must be prime, got {p}")
    if approach not in _SUPPORTED:
        raise ValueError(f"unknown approach {approach!r}; known: {APPROACHES}")
    if code_name not in _SUPPORTED[approach]:
        raise ValueError(
            f"{code_name} does not support {approach} "
            f"(supported: {_SUPPORTED[approach]})"
        )
    if groups < 1:
        raise ValueError("groups must be >= 1")
    n = _resolve_width(code_name, p, n_disks)
    if approach == "direct":
        if code_name == "code56":
            return _plan_direct_code56(p, groups, n)
        if code_name == "code56-right":
            return _plan_direct_code56(p, groups, n, orientation="right")
        builder = {
            "xcode": _plan_direct_xcode,
            "pcode": _plan_direct_pcode,
            "hdp": _plan_direct_hdp,
        }[code_name]
        return builder(p, groups)
    if approach == "via-raid0":
        return _plan_via_raid0(code_name, p, groups, n)
    return _plan_via_raid4(code_name, p, groups, n)
