"""RAID level migration: conversion plans, approaches, execution engine."""

from repro.migration.approaches import APPROACHES, build_plan, supported_conversions
from repro.migration.engine import (
    ConversionResult,
    execute_plan,
    prepare_source_array,
    verify_conversion,
)
from repro.migration.ops import IOOp, OpKind, Purpose
from repro.migration.plan import ConversionPlan, GroupWork, Location

__all__ = [
    "APPROACHES",
    "build_plan",
    "supported_conversions",
    "ConversionPlan",
    "GroupWork",
    "Location",
    "IOOp",
    "OpKind",
    "Purpose",
    "ConversionResult",
    "execute_plan",
    "prepare_source_array",
    "verify_conversion",
]

from repro.migration.approaches import alignment_cycle, canonical_disks, conversions_for_n
from repro.migration.online import (
    DiskFailureEvent,
    OnlineCode56Conversion,
    OnlineReport,
    OnlineRequest,
)

__all__ += [
    "alignment_cycle",
    "canonical_disks",
    "conversions_for_n",
    "DiskFailureEvent",
    "OnlineCode56Conversion",
    "OnlineReport",
    "OnlineRequest",
]

from repro.migration.batch import execute_run_fused, fused_run_usable

__all__ += ["execute_run_fused", "fused_run_usable"]
