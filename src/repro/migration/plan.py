"""Conversion plans: structured, block-accurate descriptions of a migration.

A plan is a list of :class:`GroupWork` items — one per target stripe-group
— plus global metadata.  From the same plan the library derives:

* the flat :class:`IOOp` stream (per-disk histograms, write/total I/O
  counts, Figs 13-17),
* the parity-operation tallies (invalid / migrated / new — Figs 9-11),
* the executable recipe the engine replays onto a :class:`BlockArray`
  to produce (and then verify) the converted RAID-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.codes.base import ArrayCode
from repro.codes.geometry import Cell
from repro.migration.ops import IOOp, OpKind, Purpose
from repro.raid.layouts import Raid5Layout

__all__ = ["Location", "GroupWork", "ConversionPlan"]


@dataclass(frozen=True)
class Location:
    """A physical block address."""

    disk: int
    block: int


@dataclass
class GroupWork:
    """Everything the conversion does for one target stripe-group.

    ``reads`` is the *deduplicated* read set (each needed block is read
    once into controller memory, per the paper's I/O accounting).
    ``migrates`` move a block from its old location to a stripe cell
    (old-parity migration in the via-RAID-4 approach, displaced-data
    migration in direct HDP); the read/write pair is counted, the vacated
    slot is trimmed (metadata-only).
    """

    group: int
    phase: int = 0
    #: cell -> where its current content lives (read into memory)
    reads: dict[Cell, Location] = field(default_factory=dict)
    #: purpose per read cell (DATA_READ unless stated)
    read_purposes: dict[Cell, Purpose] = field(default_factory=dict)
    #: cells whose content becomes NULL, with a counted invalidation write
    null_writes: dict[Cell, Location] = field(default_factory=dict)
    #: cells that are NULL without any write (overwritten or metadata-only)
    null_cells: set[Cell] = field(default_factory=set)
    #: freshly generated parity cells to write
    parity_writes: dict[Cell, Location] = field(default_factory=dict)
    #: migrations: cell -> (source location, destination location, read/write purposes)
    migrates: dict[Cell, tuple[Location, Location, Purpose, Purpose]] = field(
        default_factory=dict
    )
    #: vacated slots (metadata trim, zeroed for bit-verifiability)
    trims: list[Location] = field(default_factory=list)
    #: XOR operations performed for this group's parity generation
    xors: int = 0
    #: parity-op tallies for the ratio metrics
    invalid_parities: int = 0
    migrated_parities: int = 0
    new_parities: int = 0

    def ops(self) -> list[IOOp]:
        """Flatten into the countable op stream."""
        out: list[IOOp] = []
        for cell, loc in self.reads.items():
            purpose = self.read_purposes.get(cell, Purpose.DATA_READ)
            out.append(IOOp(OpKind.READ, purpose, loc.disk, loc.block, self.group, self.phase))
        for src, dst, rp, wp in self.migrates.values():
            out.append(IOOp(OpKind.READ, rp, src.disk, src.block, self.group, self.phase))
            out.append(IOOp(OpKind.WRITE, wp, dst.disk, dst.block, self.group, self.phase))
        for loc in self.null_writes.values():
            out.append(
                IOOp(OpKind.WRITE, Purpose.PARITY_INVALIDATE, loc.disk, loc.block, self.group, self.phase)
            )
        for loc in self.parity_writes.values():
            out.append(
                IOOp(OpKind.WRITE, Purpose.NEW_PARITY_WRITE, loc.disk, loc.block, self.group, self.phase)
            )
        for loc in self.trims:
            out.append(IOOp(OpKind.TRIM, Purpose.FREE_SLOT, loc.disk, loc.block, self.group, self.phase))
        return out


@dataclass
class ConversionPlan:
    """A complete RAID-5 -> RAID-6 conversion recipe.

    ``data_locations`` maps every source logical data block to its
    ``(group, cell)`` in the converted array — the engine's verification
    oracle.  ``cell_locations`` maps ``(group, cell)`` to the physical
    block so stripes can be assembled after conversion.
    """

    code: ArrayCode
    approach: str
    p: int
    m: int
    n: int
    source_layout: Raid5Layout
    groups: int
    data_blocks: int
    group_works: list[GroupWork]
    #: source lba -> (group, cell)
    data_locations: dict[int, tuple[int, Cell]]
    #: (group, cell) -> physical location, for every physical cell
    cell_locations: dict[tuple[int, Cell], Location]
    col_to_disk: dict[int, int]
    new_disks: tuple[int, ...]
    blocks_per_disk: int
    extra_blocks_per_disk: int
    notes: str = ""

    # ------------------------------------------------------------- op stream
    @cached_property
    def ops(self) -> list[IOOp]:
        out: list[IOOp] = []
        for gw in sorted(self.group_works, key=lambda g: (g.phase, g.group)):
            out.extend(gw.ops())
        return out

    # --------------------------------------------------------------- tallies
    @property
    def xors(self) -> int:
        return sum(gw.xors for gw in self.group_works)

    @property
    def invalid_parities(self) -> int:
        return sum(gw.invalid_parities for gw in self.group_works)

    @property
    def migrated_parities(self) -> int:
        return sum(gw.migrated_parities for gw in self.group_works)

    @property
    def new_parities(self) -> int:
        return sum(gw.new_parities for gw in self.group_works)

    @property
    def read_ios(self) -> int:
        return sum(1 for op in self.ops if op.kind is OpKind.READ)

    @property
    def write_ios(self) -> int:
        return sum(1 for op in self.ops if op.kind is OpKind.WRITE)

    @property
    def total_ios(self) -> int:
        return self.read_ios + self.write_ios

    def per_disk_ios(self, phase: int | None = None) -> np.ndarray:
        """I/O count per physical disk (optionally one phase only)."""
        counts = np.zeros(self.n, dtype=np.int64)
        for op in self.ops:
            if not op.is_io:
                continue
            if phase is not None and op.phase != phase:
                continue
            counts[op.disk] += 1
        return counts

    @property
    def phases(self) -> tuple[int, ...]:
        return tuple(sorted({gw.phase for gw in self.group_works}))

    def describe(self) -> str:
        b = self.data_blocks
        return (
            f"{self.approach} {self.code.name} ({self.m}->{self.n} disks, p={self.p}): "
            f"B={b}, reads={self.read_ios}, writes={self.write_ios}, "
            f"xors={self.xors}, invalid={self.invalid_parities}, "
            f"migrated={self.migrated_parities}, new={self.new_parities}"
        )
