"""Conversion engine: executes a :class:`ConversionPlan` on a real array.

The engine is the proof that a plan's op accounting is *sufficient*: it
performs exactly the plan's reads, migrations, NULL writes and parity
writes against a :class:`BlockArray` holding a freshly formatted RAID-5,
then verification re-reads the converted array and checks that

* every source logical block is intact at its mapped location,
* every stripe-group satisfies all parity chains,
* random double-disk failures are recoverable (the array really is a
  RAID-6 now).

I/O counters on the :class:`BlockArray` are compared against the plan's
op stream, so the metrics reported for the paper's figures are the I/Os
actually needed — nothing is counted that was not performed, and nothing
was performed that is not counted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.migration.plan import ConversionPlan, GroupWork
from repro.obs.tracer import get_tracer
from repro.raid.array import BlockArray
from repro.raid.raid5 import Raid5Array

__all__ = ["ConversionResult", "prepare_source_array", "execute_plan", "verify_conversion"]


@dataclass
class ConversionResult:
    """Executed conversion: the array, the plan, and measured I/O."""

    array: BlockArray
    plan: ConversionPlan
    data: np.ndarray  # source logical blocks (ground truth)
    measured_reads: int
    measured_writes: int

    @property
    def measured_total(self) -> int:
        return self.measured_reads + self.measured_writes

    def per_disk_ios(self) -> np.ndarray:
        return self.array.reads + self.array.writes


def prepare_source_array(
    plan: ConversionPlan,
    rng: np.random.Generator,
    block_size: int = 8,
    data: np.ndarray | None = None,
) -> tuple[BlockArray, np.ndarray]:
    """Build the pre-conversion world: a formatted RAID-5 plus blank disks.

    The array is sized for the converted layout (reserved capacity and
    hot-added disks included); the RAID-5 occupies the source region.
    ``data`` supplies the logical payload explicitly (``(data_blocks,
    block_size)`` uint8 — e.g. a slice of a shared-memory pool in
    :mod:`repro.sweep`); by default it is drawn from ``rng``.
    """
    array = BlockArray(plan.n, plan.blocks_per_disk, block_size)
    source = Raid5Array(array, plan.source_layout, n_disks=plan.m)
    stripes = plan.data_blocks // (plan.m - 1)
    if data is None:
        data = rng.integers(
            0, 256, size=(plan.data_blocks, block_size), dtype=np.uint8
        )
    else:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (plan.data_blocks, block_size):
            raise ValueError(
                f"data must be ({plan.data_blocks}, {block_size}), got {data.shape}"
            )
    # format only the source region: format_with targets the whole disk, so
    # place blocks manually through the layout mapping.
    from repro.raid.layouts import locate_block, parity_disk
    from repro.util.blocks import xor_reduce

    for lba in range(plan.data_blocks):
        stripe, disk = locate_block(plan.source_layout, lba, plan.m)
        array.raw(disk, stripe)[...] = data[lba]
    for stripe in range(stripes):
        pd = parity_disk(plan.source_layout, stripe, plan.m)
        views = [array.raw(d, stripe) for d in range(plan.m) if d != pd]
        xor_reduce(views, out=array.raw(pd, stripe))
    array.reset_counters()
    return array, data


def _execute_group(
    plan: ConversionPlan, gw: GroupWork, array: BlockArray, io=None
) -> None:
    """Execute one stripe-group's work.

    ``io`` is an optional adapter supplying ``read(disk, block)``
    (counted), ``peek(disk, block)`` (uncounted) and ``check_ok(disk)``
    — e.g. :class:`repro.faults.degraded.ReconstructingReader`, which
    reconstructs through the RAID-5 row when a disk has failed or a read
    faults.  ``None`` keeps the array's direct (and fastest) path.
    """
    code = plan.code
    layout = code.layout
    read = array.read if io is None else io.read
    peek = array.raw if io is None else io.peek
    # 1. migrations (parity to new disk / data to overflow)
    for _dst_cell, (src, dst, _rp, _wp) in gw.migrates.items():
        payload = read(src.disk, src.block)
        array.write(dst.disk, dst.block, payload)
    # 2. NULL invalidation writes
    for _cell, loc in gw.null_writes.items():
        array.write_zero(loc.disk, loc.block)
    # 3. trims (metadata only; zeroed uncounted for bit-verifiability)
    for loc in gw.trims:
        array.raw(loc.disk, loc.block)[...] = 0
    if not gw.parity_writes:
        return  # pure degrade step: nothing to generate
    # 4. reads into an in-memory stripe
    stripe = code.empty_stripe(array.block_size)
    for cell, loc in gw.reads.items():
        stripe[cell[0], cell[1]] = read(loc.disk, loc.block)
    # 5. cells the plan did not read but the encoder's value check needs:
    #    data written earlier by migrations of other groups (HDP overflow)
    #    is still in controller memory — pulled uncounted.
    touched = set(gw.parity_writes) | set(gw.null_writes) | gw.null_cells | set(gw.reads)
    for cell in layout.data_cells:
        if cell in touched or cell in gw.migrates:
            continue
        loc = plan.cell_locations.get((gw.group, cell))
        if loc is not None:
            stripe[cell[0], cell[1]] = peek(loc.disk, loc.block)
    # 6. encode and write the generated parities
    code.encode(stripe)
    for cell, loc in gw.parity_writes.items():
        array.write(loc.disk, loc.block, stripe[cell[0], cell[1]])
    # 7. consistency: every parity the plan did NOT generate (Code 5-6's
    #    reused RAID-5 parities; via-RAID-4's migrated row parities) must
    #    already hold the value the encoder computes — the paper's claim
    #    that old parities stay valid under these conversions.
    for cell in layout.parity_cells:
        if cell in gw.parity_writes or cell in layout.virtual_cells:
            continue
        loc = plan.cell_locations.get((gw.group, cell))
        if loc is None:
            continue
        if io is not None and not io.check_ok(loc.disk):
            continue  # the disk's true bytes are gone; nothing to audit
        if not np.array_equal(stripe[cell[0], cell[1]], array.raw(loc.disk, loc.block)):
            raise AssertionError(
                f"pre-existing parity at {cell} of group {gw.group} does not "
                "match the recomputed value — old parity was not valid"
            )


def execute_plan(
    plan: ConversionPlan,
    array: BlockArray,
    data: np.ndarray,
) -> ConversionResult:
    """Run every group-work item in phase order; returns measured I/O."""
    tracer = get_tracer()
    array.reset_counters()
    with tracer.span(
        "execute", cat="engine", engine="audited",
        code=plan.code.name, approach=plan.approach, groups=plan.groups,
    ):
        for gw in sorted(plan.group_works, key=lambda g: (g.phase, g.group)):
            with tracer.span(
                f"phase{gw.phase}.group{gw.group}", cat="engine.group",
                phase=gw.phase, group=gw.group,
            ):
                _execute_group(plan, gw, array)
    return ConversionResult(
        array=array,
        plan=plan,
        data=data,
        measured_reads=array.total_reads,
        measured_writes=array.total_writes,
    )


def assemble_group(plan: ConversionPlan, array: BlockArray, group: int) -> np.ndarray:
    """Uncounted gather of a converted stripe-group."""
    code = plan.code
    stripe = code.empty_stripe(array.block_size)
    for r in range(code.rows):
        for c in code.layout.physical_cols:
            loc = plan.cell_locations.get((group, (r, c)))
            if loc is not None:  # virtual cells have no physical block
                stripe[r, c] = array.raw(loc.disk, loc.block)
    return stripe


def verify_conversion(
    result: ConversionResult,
    rng: np.random.Generator | None = None,
    failure_trials: int = 3,
    check_io_counters: bool = True,
) -> bool:
    """Full post-conversion audit (see module docstring).

    Audit semantics are unchanged from the per-group original, but every
    check is batched: one gather compares all logical blocks, one
    batched :meth:`ArrayCode.verify` covers every stripe-group, and each
    double-failure trial recovers all groups in a single
    :func:`apply_recovery_plan` pass over the ``(groups, rows, cols,
    block)`` tensor.
    """
    # imported here: repro.compiled imports this module for ConversionResult
    from repro.compiled.recovery import assemble_all_groups, batch_recover_columns

    tracer = get_tracer()
    plan, array, data = result.plan, result.array, result.data
    code = plan.code
    with tracer.span(
        "verify", cat="engine", code=plan.code.name, approach=plan.approach,
        groups=plan.groups, trials=failure_trials,
    ):
        # 1. every logical block intact (one gather against the ground truth)
        with tracer.span("verify.data", cat="engine"):
            if plan.data_locations:
                lbas, disks, blocks = [], [], []
                for lba, (group, cell) in plan.data_locations.items():
                    loc = plan.cell_locations[(group, cell)]
                    lbas.append(lba)
                    disks.append(loc.disk)
                    blocks.append(loc.block)
                if not np.array_equal(array.gather_raw(disks, blocks), data[np.asarray(lbas)]):
                    return False
        # 2. every stripe-group parity-consistent (one batched verify)
        with tracer.span("verify.parity", cat="engine"):
            stripes = assemble_all_groups(plan, array)
            if not code.verify(stripes):
                return False
        # 3. double-failure recoverability on real payloads, all groups per trial
        if rng is None:
            rng = np.random.default_rng(0)
        cols = code.layout.physical_cols
        with tracer.span("verify.recovery", cat="engine", trials=failure_trials):
            for _ in range(failure_trials):
                f1, f2 = rng.choice(len(cols), size=2, replace=False)
                c1, c2 = cols[int(f1)], cols[int(f2)]
                recovery = code.plan_column_recovery(c1, c2)
                broken = stripes.copy()
                batch_recover_columns(recovery, broken, c1, c2)
                if not np.array_equal(broken, stripes):
                    return False
        # 4. measured I/O == planned I/O.  Crash-resumed and degraded runs
        #    legitimately spend extra I/O (rollback re-execution, row
        #    reconstruction) — they pass check_io_counters=False and keep
        #    every byte-level check above.
        if check_io_counters:
            if result.measured_reads != plan.read_ios:
                return False
            if result.measured_writes != plan.write_ios:
                return False
        return True
