"""Trace generators.

Two families:

* :func:`conversion_trace` — turns a block-accurate conversion plan into
  the migration I/O stream of Section V-C ("we generate different
  synthetic traces for the migration I/Os ... based on the results of
  mathematical analysis").  One alignment cycle of the plan is tiled to
  the requested ``B`` (0.6M blocks in Figure 19), entirely in numpy.
* synthetic application workloads (uniform / zipf / sequential) used by
  the online-conversion machinery, the examples and the sweep engine.

Every stochastic generator takes an **explicit** seed — either an
integer or a ready ``numpy.random.Generator`` — and holds no module
state, so the same ``(generator, seed)`` pair produces bit-identical
traces in any process (the sweep runner threads one derived seed per
task; a regression test replays the pair in a child process).
"""

from __future__ import annotations

import numpy as np

from repro.migration.ops import OpKind
from repro.migration.plan import ConversionPlan
from repro.workloads.trace import Trace

__all__ = [
    "conversion_trace",
    "uniform_trace",
    "zipf_trace",
    "sequential_trace",
]


def conversion_trace(
    plan: ConversionPlan,
    total_data_blocks: int | None = None,
    block_size: int = 4096,
    lb_rotation_period: int | None = None,
) -> Trace:
    """Migration I/O trace for ``plan``, tiled to ``total_data_blocks``.

    The plan should cover one alignment cycle (see
    :func:`repro.migration.approaches.alignment_cycle`); its op stream is
    replicated with per-tile block offsets, preserving the macroscopic
    phase order (the two-step approaches complete their degrade pass over
    the whole array before upgrading, which is what exposes the RAID-0 /
    RAID-4 reliability window of Table VI).

    ``lb_rotation_period`` emulates the "with load balancing support"
    implementation: the column-to-disk assignment rotates by one position
    every that many stripe-groups, spreading the dedicated-parity write
    stream over all spindles.
    """
    ops = [op for op in plan.ops if op.kind is not OpKind.TRIM]
    if not ops:
        raise ValueError("plan has no I/O operations")
    phase = np.array([op.phase for op in ops], dtype=np.int32)
    group = np.array([op.group for op in ops], dtype=np.int64)
    disk = np.array([op.disk for op in ops], dtype=np.int64)
    block = np.array([op.block for op in ops], dtype=np.int64)
    is_write = np.array([op.kind is OpKind.WRITE for op in ops], dtype=bool)

    if total_data_blocks is None:
        tiles = 1
    else:
        tiles = max(1, -(-total_data_blocks // plan.data_blocks))
    t = np.arange(tiles, dtype=np.int64)

    # tile: block += t * blocks_per_disk ; group += t * cycle_groups
    blocks = (block[None, :] + t[:, None] * plan.blocks_per_disk).ravel()
    groups = (group[None, :] + t[:, None] * plan.groups).ravel()
    disks = np.broadcast_to(disk, (tiles, len(ops))).ravel().copy()
    writes = np.broadcast_to(is_write, (tiles, len(ops))).ravel()
    phases = np.broadcast_to(phase, (tiles, len(ops))).ravel()

    if lb_rotation_period is not None:
        if lb_rotation_period < 1:
            raise ValueError("lb_rotation_period must be >= 1")
        disks = (disks + groups // lb_rotation_period) % plan.n

    # phase-major global order; stable within a phase (tile then op order).
    # Conversion traffic is closed-loop (all requests queued up front, the
    # paper's "overall time to handle all I/O requests"), so arrivals are
    # all zero and the array order carries the FCFS queue order.
    order = np.argsort(phases, kind="stable")
    return Trace(
        arrival_ms=np.zeros(len(blocks), dtype=np.float64),
        disk=disks[order].astype(np.int32),
        block=blocks[order],
        is_write=writes[order],
        block_size=block_size,
        name=f"convert-{plan.code.name}-{plan.approach}-p{plan.p}"
        + ("-lb" if lb_rotation_period else ""),
        meta={
            "code": plan.code.name,
            "approach": plan.approach,
            "p": plan.p,
            "m": plan.m,
            "n": plan.n,
            "data_blocks": plan.data_blocks * tiles,
            "tiles": tiles,
        },
    )


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Normalise an explicit seed: pass Generators through, seed ints."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_trace(
    seed: int | np.random.Generator,
    n_requests: int,
    n_disks: int,
    blocks_per_disk: int,
    read_fraction: float = 0.7,
    interarrival_ms: float = 1.0,
    block_size: int = 4096,
) -> Trace:
    """Uniformly random application workload (open arrival process)."""
    rng = _as_rng(seed)
    return Trace(
        arrival_ms=np.cumsum(rng.exponential(interarrival_ms, n_requests)),
        disk=rng.integers(0, n_disks, n_requests).astype(np.int32),
        block=rng.integers(0, blocks_per_disk, n_requests),
        is_write=rng.random(n_requests) >= read_fraction,
        block_size=block_size,
        name="uniform",
    )


def zipf_trace(
    seed: int | np.random.Generator,
    n_requests: int,
    n_disks: int,
    blocks_per_disk: int,
    skew: float = 1.2,
    read_fraction: float = 0.7,
    interarrival_ms: float = 1.0,
    block_size: int = 4096,
) -> Trace:
    """Zipf-skewed workload (hot blocks), the usual datacenter shape."""
    rng = _as_rng(seed)
    raw = rng.zipf(skew, n_requests)
    total = n_disks * blocks_per_disk
    flat = (raw - 1) % total
    return Trace(
        arrival_ms=np.cumsum(rng.exponential(interarrival_ms, n_requests)),
        disk=(flat % n_disks).astype(np.int32),
        block=flat // n_disks,
        is_write=rng.random(n_requests) >= read_fraction,
        block_size=block_size,
        name=f"zipf-{skew}",
    )


def sequential_trace(
    n_requests: int,
    n_disks: int,
    start_block: int = 0,
    is_write: bool = False,
    interarrival_ms: float = 0.1,
    block_size: int = 4096,
) -> Trace:
    """A full-stripe sequential scan (e.g. backup or scrub traffic)."""
    idx = np.arange(n_requests)
    return Trace(
        arrival_ms=idx * interarrival_ms,
        disk=(idx % n_disks).astype(np.int32),
        block=start_block + idx // n_disks,
        is_write=np.full(n_requests, is_write),
        block_size=block_size,
        name="sequential",
    )
