"""Rebuild (single-disk recovery) I/O traces.

Turns a recovery plan into the disk-level I/O stream of rebuilding one
failed column across many stripe-groups: per group, read the plan's
(deduplicated) read set from the surviving disks, write the recovered
blocks to the replacement disk.  Replayed through the simulator this
yields the MTTR — the quantity the paper's Section III-E.4 argues hybrid
recovery improves ("decreases the recovery time (MTTR) and thus
increases the reliability of the disk array").
"""

from __future__ import annotations

import numpy as np

from repro.codes.geometry import CodeLayout
from repro.codes.plans import RecoveryPlan
from repro.workloads.trace import Trace

__all__ = ["rebuild_trace"]


def rebuild_trace(
    layout: CodeLayout,
    plan: RecoveryPlan,
    column: int,
    groups: int,
    block_size: int = 4096,
) -> Trace:
    """Trace of rebuilding ``column`` over ``groups`` stripe-groups.

    The plan must recover exactly that column (e.g. from
    :func:`repro.core.plan_generic_hybrid_recovery` or a column plan from
    the generic decoder).  Disk = code column (identity mapping, the NLB
    layout); the replacement disk receives the writes.
    """
    lost_cols = {c for _r, c in plan.lost}
    if lost_cols != {column}:
        raise ValueError(f"plan recovers columns {sorted(lost_cols)}, not {column}")
    reads = sorted(plan.read_set)
    writes = sorted(plan.lost)
    rows = layout.rows
    cells = reads + writes
    per_group = len(cells)
    n = groups * per_group

    # one tiled per-group pattern instead of a Python loop over groups
    pat_disk = np.array([c for _r, c in cells], dtype=np.int32)
    pat_row = np.array([r for r, _c in cells], dtype=np.int64)
    pat_write = np.zeros(per_group, dtype=bool)
    pat_write[len(reads):] = True
    disk = np.tile(pat_disk, groups)
    block = np.tile(pat_row, groups) + np.repeat(
        np.arange(groups, dtype=np.int64) * rows, per_group
    )
    is_write = np.tile(pat_write, groups)
    return Trace(
        arrival_ms=np.zeros(n),
        disk=disk,
        block=block,
        is_write=is_write,
        block_size=block_size,
        name=f"rebuild-{layout.name}-col{column}",
        meta={"layout": layout.name, "column": column, "groups": groups},
    )
