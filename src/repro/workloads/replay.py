"""Logical workload replay against live arrays: I/O amplification.

Replays a stream of logical block requests through a
:class:`Raid5Array`/:class:`Raid6Array` and reports the physical I/O it
cost — the write-amplification view of the codes' update penalties, and
the read amplification of degraded operation.  Complements the analytic
model in :mod:`repro.analysis.writes` with measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogicalWorkload", "ReplayResult", "logical_workload", "replay"]


@dataclass(frozen=True)
class LogicalWorkload:
    """A stream of logical block requests (volume-level, not per-disk)."""

    lba: np.ndarray
    is_write: np.ndarray

    def __len__(self) -> int:
        return len(self.lba)

    @property
    def reads(self) -> int:
        return int((~self.is_write).sum())

    @property
    def writes(self) -> int:
        return int(self.is_write.sum())


@dataclass(frozen=True)
class ReplayResult:
    """Measured physical cost of a replay."""

    logical_reads: int
    logical_writes: int
    physical_reads: int
    physical_writes: int

    @property
    def read_amplification(self) -> float:
        """Physical reads per logical read (RMW parity reads count here)."""
        total_logical = self.logical_reads + self.logical_writes
        return self.physical_reads / total_logical if total_logical else 0.0

    @property
    def write_amplification(self) -> float:
        """Physical writes per logical write."""
        return (
            self.physical_writes / self.logical_writes if self.logical_writes else 0.0
        )

    @property
    def io_amplification(self) -> float:
        total_logical = self.logical_reads + self.logical_writes
        total_physical = self.physical_reads + self.physical_writes
        return total_physical / total_logical if total_logical else 0.0


def logical_workload(
    rng: np.random.Generator,
    n_requests: int,
    capacity_blocks: int,
    read_fraction: float = 0.7,
) -> LogicalWorkload:
    """Uniform logical request stream over a volume."""
    if capacity_blocks < 1:
        raise ValueError("empty volume")
    return LogicalWorkload(
        lba=rng.integers(0, capacity_blocks, n_requests),
        is_write=rng.random(n_requests) >= read_fraction,
    )


def replay(
    volume,
    workload: LogicalWorkload,
    rng: np.random.Generator,
    block_size: int | None = None,
) -> ReplayResult:
    """Run every request through ``volume`` (counted), return amplification.

    ``volume`` is any object with ``read(lba)``, ``write(lba, payload)``
    and an ``array`` attribute exposing I/O counters — both RAID classes
    qualify.
    """
    array = volume.array
    bs = block_size if block_size is not None else array.block_size
    before_r, before_w = array.total_reads, array.total_writes
    for lba, is_write in zip(workload.lba, workload.is_write):
        if is_write:
            volume.write(int(lba), rng.integers(0, 256, bs, dtype=np.uint8))
        else:
            volume.read(int(lba))
    return ReplayResult(
        logical_reads=workload.reads,
        logical_writes=workload.writes,
        physical_reads=array.total_reads - before_r,
        physical_writes=array.total_writes - before_w,
    )
