"""Workload and trace generation (migration I/O streams, app traffic)."""

from repro.workloads.generators import (
    conversion_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "Trace",
    "conversion_trace",
    "uniform_trace",
    "zipf_trace",
    "sequential_trace",
]

from repro.workloads.rebuild import rebuild_trace
from repro.workloads.replay import LogicalWorkload, ReplayResult, logical_workload, replay

__all__ += ["rebuild_trace", "LogicalWorkload", "ReplayResult", "logical_workload", "replay"]

from repro.workloads.trace import load_disksim, save_disksim

__all__ += ["save_disksim", "load_disksim"]
