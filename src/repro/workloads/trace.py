"""I/O trace containers (the DiskSim-style request stream).

A trace is a struct-of-arrays over numpy for scale: the paper's Figure 19
replays 0.6 million data blocks' worth of conversion traffic, which is
~0.8-1.6M requests per configuration — comfortably vectorisable, hopeless
as Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Trace"]


@dataclass
class Trace:
    """A request stream: arrival time (ms), disk, block, write flag.

    ``block_size`` applies to every request (the paper's element ==
    block granularity; 4KB or 8KB in Figure 19).
    """

    arrival_ms: np.ndarray
    disk: np.ndarray
    block: np.ndarray
    is_write: np.ndarray
    block_size: int = 4096
    name: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.arrival_ms)
        for arr_name in ("disk", "block", "is_write"):
            if len(getattr(self, arr_name)) != n:
                raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.arrival_ms)

    @property
    def n_disks(self) -> int:
        return int(self.disk.max()) + 1 if len(self) else 0

    @property
    def reads(self) -> int:
        return int((~self.is_write.astype(bool)).sum())

    @property
    def writes(self) -> int:
        return int(self.is_write.astype(bool).sum())

    # ------------------------------------------------------------- builders
    @classmethod
    def from_lists(
        cls,
        requests: list[tuple[float, int, int, bool]],
        block_size: int = 4096,
        name: str = "",
    ) -> "Trace":
        if not requests:
            return cls(
                arrival_ms=np.zeros(0),
                disk=np.zeros(0, dtype=np.int32),
                block=np.zeros(0, dtype=np.int64),
                is_write=np.zeros(0, dtype=bool),
                block_size=block_size,
                name=name,
            )
        return cls(
            arrival_ms=np.array([r[0] for r in requests], dtype=np.float64),
            disk=np.array([r[1] for r in requests], dtype=np.int32),
            block=np.array([r[2] for r in requests], dtype=np.int64),
            is_write=np.array([r[3] for r in requests], dtype=bool),
            block_size=block_size,
            name=name,
        )

    # ----------------------------------------------------------------- I/O
    def save(self, path: str | Path) -> None:
        """Persist as a compressed npz (plus readable metadata)."""
        np.savez_compressed(
            Path(path),
            arrival_ms=self.arrival_ms,
            disk=self.disk,
            block=self.block,
            is_write=self.is_write,
            block_size=np.int64(self.block_size),
            name=np.str_(self.name),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        data = np.load(Path(path), allow_pickle=False)
        return cls(
            arrival_ms=data["arrival_ms"],
            disk=data["disk"],
            block=data["block"],
            is_write=data["is_write"],
            block_size=int(data["block_size"]),
            name=str(data["name"]),
        )

    # ------------------------------------------------------------ utilities
    def per_disk_blocks(self, disk: int) -> np.ndarray:
        """Block sequence a disk serves, in arrival (stable) order."""
        mask = self.disk == disk
        order = np.argsort(self.arrival_ms[mask], kind="stable")
        return self.block[mask][order]

    def describe(self) -> str:
        return (
            f"Trace {self.name or '<anon>'}: {len(self)} reqs "
            f"({self.reads} R / {self.writes} W) over {self.n_disks} disks, "
            f"bs={self.block_size}"
        )


def _disksim_lines(trace: "Trace") -> list[str]:
    blocks_per_request = max(trace.block_size // 512, 1)
    lines = []
    for i in range(len(trace)):
        flags = 1 if not trace.is_write[i] else 0  # DiskSim: B_READ = 1
        lines.append(
            f"{float(trace.arrival_ms[i]):.6f} {int(trace.disk[i])} "
            f"{int(trace.block[i]) * blocks_per_request} {blocks_per_request} {flags}"
        )
    return lines


def save_disksim(trace: "Trace", path) -> None:
    """Export in DiskSim 4.0's ASCII trace format.

    Columns: arrival time (ms), device number, starting 512B sector,
    request size in sectors, flags (bit 0 set = read).  Lets the traces
    generated here replay through the original DiskSim for cross-checks.
    """
    from pathlib import Path

    Path(path).write_text("\n".join(_disksim_lines(trace)) + "\n")


def load_disksim(path, block_size: int = 4096, name: str = "") -> "Trace":
    """Import a DiskSim ASCII trace (inverse of :func:`save_disksim`)."""
    from pathlib import Path

    arrival, disk, block, is_write = [], [], [], []
    sectors = max(block_size // 512, 1)
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        t, dev, sector, _size, flags = line.split()[:5]
        arrival.append(float(t))
        disk.append(int(dev))
        block.append(int(sector) // sectors)
        is_write.append(not (int(flags) & 1))
    import numpy as _np

    return Trace(
        arrival_ms=_np.array(arrival),
        disk=_np.array(disk, dtype=_np.int32),
        block=_np.array(block, dtype=_np.int64),
        is_write=_np.array(is_write, dtype=bool),
        block_size=block_size,
        name=name or Path(path).stem,
    )
