"""Optional numba-JIT backend.

Import of :mod:`numba` is deferred and failure-tolerant: on hosts
without numba the class still imports and registers, but
:meth:`NumbaXorKernel.is_available` reports ``False`` and construction
raises :class:`~repro.kernels.base.KernelUnavailableError`.  The CI
kernels job is the only environment expected to install numba; the
default test environment stays dependency-free.

When numba is present the kernels reinterpret the uint8 regions as
``uint64`` words whenever the block width is 8-byte aligned, XOR eight
bytes per op, and parallelise across destination rows with ``prange``.
XOR is associative and commutative, so word width and row order cannot
change the produced bytes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.base import KernelUnavailableError, XorKernel

__all__ = ["NumbaXorKernel"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the common case in dev envs
    _numba = None

_JITTED: dict | None = None


def _build_jitted() -> dict:  # pragma: no cover - requires numba
    """Compile the kernels once per process, lazily."""
    njit = _numba.njit
    prange = _numba.prange

    @njit(parallel=True, cache=True)
    def reduce_rows(dst, srcs, init):
        n_src = len(srcs)
        for r in prange(dst.shape[0]):
            row = dst[r]
            start = 0
            if init:
                first = srcs[0]
                src_row = first[r % first.shape[0]]
                for c in range(row.shape[0]):
                    row[c] = src_row[c]
                start = 1
            for s in range(start, n_src):
                src = srcs[s]
                src_row = src[r % src.shape[0]]
                for c in range(row.shape[0]):
                    row[c] ^= src_row[c]

    @njit(parallel=True, cache=True)
    def scatter_rows(dst, rows, payload):
        for i in prange(rows.shape[0]):
            out = dst[rows[i]]
            src = payload[i]
            for c in range(out.shape[0]):
                out[c] ^= src[c]

    return {"reduce": reduce_rows, "scatter": scatter_rows}


def _as_words(arr: np.ndarray) -> np.ndarray:  # pragma: no cover - requires numba
    """Reinterpret an 8-byte-aligned uint8 region as uint64 words."""
    if arr.ndim == 1:
        return arr.view(np.uint64) if arr.flags.c_contiguous else arr
    return arr.view(np.uint64)


class NumbaXorKernel(XorKernel):
    """JIT tier: word-wide, row-parallel XOR via numba ``prange``."""

    name = "numba"

    def __init__(self) -> None:
        if _numba is None:
            raise KernelUnavailableError(
                "kernel backend 'numba' needs the numba package "
                "(pip install numba); falling back is the caller's job"
            )
        global _JITTED
        if _JITTED is None:  # pragma: no cover - requires numba
            _JITTED = _build_jitted()

    @classmethod
    def is_available(cls) -> bool:
        return _numba is not None

    @classmethod
    def capabilities(cls) -> dict:
        caps = {
            "name": cls.name,
            "available": cls.is_available(),
            "tier": "numba-jit",
            "parallel": True,
        }
        if _numba is not None:  # pragma: no cover - requires numba
            caps["numba_version"] = _numba.__version__
        return caps

    # The jitted reducer indexes sources as ``src[r % src.shape[0]]`` so a
    # broadcast (single-row) operand works without materialising; arbitrary
    # strided views are passed through as-is (numba handles strides).
    def region_xor_reduce(
        self,
        dst: np.ndarray,
        sources: Sequence[np.ndarray],
        init: bool = True,
    ) -> None:  # pragma: no cover - requires numba
        if not sources:
            if init:
                dst[...] = 0
            return
        rows = dst.shape[0]
        width = dst.shape[1]
        use_words = width % 8 == 0 and all(
            s.shape[-1] == width and s.strides[-1] == 1 for s in sources
        )
        if use_words:
            dst_v = _as_words(dst)
            srcs = tuple(
                np.ascontiguousarray(s if s.ndim == 2 else s.reshape(1, -1)).view(np.uint64)
                for s in sources
            )
        else:
            dst_v = dst
            srcs = tuple(
                np.ascontiguousarray(s if s.ndim == 2 else s.reshape(1, -1)) for s in sources
            )
        # Guard: the row-recycling index trick is only valid for full-height
        # or single-row operands.
        if any(s.shape[0] not in (1, rows) for s in srcs):
            raise ValueError("sources must have 1 or rows rows")
        _JITTED["reduce"](dst_v, srcs, init)

    def scatter_xor(
        self, dst: np.ndarray, rows: np.ndarray, payload: np.ndarray
    ) -> None:  # pragma: no cover - requires numba
        width = dst.shape[1]
        if width % 8 == 0 and payload.strides[-1] == 1:
            _JITTED["scatter"](
                _as_words(dst), rows, np.ascontiguousarray(payload).view(np.uint64)
            )
        else:
            _JITTED["scatter"](dst, rows, np.ascontiguousarray(payload))
