"""Pluggable XOR kernel backends for the compiled engine.

The compiled engine's lowering pass (:mod:`repro.compiled.compiler`)
turns per-block XOR chains into contiguous-region reduction ops; this
package supplies the execution tiers for those ops.  See
:class:`~repro.kernels.base.XorKernel` for the two-primitive contract
and :mod:`repro.kernels.registry` for selection (``numpy`` | ``numba`` |
``auto``).
"""

from repro.kernels.base import KernelUnavailableError, XorKernel
from repro.kernels.numba_backend import NumbaXorKernel
from repro.kernels.numpy_backend import NumpyXorKernel
from repro.kernels.registry import (
    KERNEL_CHOICES,
    available_kernels,
    get_default_kernel,
    get_kernel,
    kernel_info,
    register_kernel,
    resolve_kernel,
    set_default_kernel,
)

__all__ = [
    "XorKernel",
    "KernelUnavailableError",
    "NumpyXorKernel",
    "NumbaXorKernel",
    "KERNEL_CHOICES",
    "register_kernel",
    "get_kernel",
    "resolve_kernel",
    "available_kernels",
    "kernel_info",
    "set_default_kernel",
    "get_default_kernel",
]
