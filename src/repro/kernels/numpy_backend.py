"""Default backend: cache-blocked in-place numpy XOR.

The reduction walks the destination in row tiles sized to stay resident
in cache while every source is folded in (the ISA-L
``galois_region_xor`` idiom: the destination tile is written once per
source but only leaves cache once), instead of streaming the full region
per operand.  Sources are consumed as the views the lowering pass built
— strided, broadcast or gathered — so no operand is copied.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.base import XorKernel

__all__ = ["NumpyXorKernel"]

#: destination tile budget; with the operand tile this keeps the working
#: set ~2x this figure, comfortably inside a typical L2
TILE_BYTES = 1 << 20


class NumpyXorKernel(XorKernel):
    """Pure numpy tier — always available, the byte-identity reference."""

    name = "numpy"

    def __init__(self, tile_bytes: int = TILE_BYTES):
        if tile_bytes < 1:
            raise ValueError("tile_bytes must be positive")
        self._tile_bytes = tile_bytes

    @classmethod
    def capabilities(cls) -> dict:
        return {
            "name": cls.name,
            "available": True,
            "tier": "numpy",
            "parallel": False,
            "tile_bytes": TILE_BYTES,
        }

    def region_xor_reduce(
        self,
        dst: np.ndarray,
        sources: Sequence[np.ndarray],
        init: bool = True,
    ) -> None:
        if not sources:
            if init:
                dst[...] = 0
            return
        rows, width = dst.shape

        def _tile_of(src: np.ndarray, lo: int, hi: int) -> np.ndarray:
            # full-height operands are sliced; single-row / 1-D operands
            # broadcast against every destination tile
            if src.ndim == 2 and src.shape[0] == rows:
                return src[lo:hi]
            return src

        tile = max(1, self._tile_bytes // max(width, 1))
        for lo in range(0, rows, tile):
            hi = min(lo + tile, rows)
            out = dst[lo:hi]
            it = iter(sources)
            if init:
                np.copyto(out, _tile_of(next(it), lo, hi))
            for src in it:
                np.bitwise_xor(out, _tile_of(src, lo, hi), out=out)

    def scatter_xor(self, dst: np.ndarray, rows: np.ndarray, payload: np.ndarray) -> None:
        sel = dst[rows]
        np.bitwise_xor(sel, payload, out=sel)
        dst[rows] = sel
