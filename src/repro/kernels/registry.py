"""Kernel backend registry and selection.

Backends register a class under a short name; callers resolve one with
:func:`get_kernel` (exact name, raises if the tier cannot run here) or
:func:`resolve_kernel` (accepts ``auto`` — the fastest available tier,
currently numba when importable, else numpy).  A process-wide default,
settable via :func:`set_default_kernel`, lets the CLI and sweep worker
initialisers pick the tier once and have every executor call inherit it.
"""

from __future__ import annotations

from repro.kernels.base import KernelUnavailableError, XorKernel
from repro.kernels.numba_backend import NumbaXorKernel
from repro.kernels.numpy_backend import NumpyXorKernel

__all__ = [
    "register_kernel",
    "get_kernel",
    "resolve_kernel",
    "available_kernels",
    "kernel_info",
    "set_default_kernel",
    "get_default_kernel",
    "KERNEL_CHOICES",
]

_REGISTRY: dict[str, type[XorKernel]] = {}
_INSTANCES: dict[str, XorKernel] = {}

#: preference order for ``auto`` (first available wins)
_AUTO_ORDER = ("numba", "numpy")

#: what the CLI exposes
KERNEL_CHOICES = ("numpy", "numba", "auto")

_DEFAULT_NAME = "auto"


def register_kernel(cls: type[XorKernel]) -> type[XorKernel]:
    """Register a backend class (usable as a decorator)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("kernel backends must set a concrete name")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def get_kernel(name: str) -> XorKernel:
    """Instantiate (and cache) the backend registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    if not cls.is_available():
        raise KernelUnavailableError(
            f"kernel backend {name!r} is registered but not available on this host"
        )
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _INSTANCES[name] = cls()
    return inst


def resolve_kernel(name: str | None = None) -> XorKernel:
    """Resolve ``name`` (or the process default) to a live backend.

    ``auto`` / ``None`` walks the preference order and returns the first
    available tier; numpy is always available so resolution never fails
    for ``auto``.
    """
    if name is None:
        name = _DEFAULT_NAME
    if name == "auto":
        for candidate in _AUTO_ORDER:
            cls = _REGISTRY.get(candidate)
            if cls is not None and cls.is_available():
                return get_kernel(candidate)
        raise KernelUnavailableError("no kernel backend is available")
    return get_kernel(name)


def available_kernels() -> list[str]:
    """Names of registered backends that can run on this host."""
    return [name for name, cls in sorted(_REGISTRY.items()) if cls.is_available()]


def kernel_info() -> dict[str, dict]:
    """Capability report for every registered backend."""
    return {name: cls.capabilities() for name, cls in sorted(_REGISTRY.items())}


def set_default_kernel(name: str) -> None:
    """Set the process-wide default tier (``auto`` or a backend name).

    Validates eagerly so misconfiguration surfaces at selection time,
    not at the first hot-path dispatch.
    """
    global _DEFAULT_NAME
    resolve_kernel(name)
    _DEFAULT_NAME = name


def get_default_kernel() -> str:
    """The current process-wide default tier name."""
    return _DEFAULT_NAME


register_kernel(NumpyXorKernel)
register_kernel(NumbaXorKernel)
