"""The :class:`XorKernel` backend interface.

All parity arithmetic in this library is XOR over uint8 regions.  The
compiled engine lowers conversion phases into *region reduction ops*
(:class:`~repro.compiled.program.RegionOp`) whose byte work is exactly
two primitives:

* :meth:`XorKernel.region_xor_reduce` — ``dst = src0 ^ src1 ^ ...`` (or
  ``dst ^= ...``) over equally shaped ``(rows, block)`` regions, where
  sources are typically zero-copy strided views of the
  :class:`~repro.raid.array.BlockArray` store;
* :meth:`XorKernel.scatter_xor` — ``dst[rows] ^= payload`` for the
  sparse remainder that does not coalesce into a strided region.

A backend implements those two methods and nothing else; everything
above the seam (lowering, hazard analysis, I/O accounting, fault
semantics) is backend-independent, so the same verified program runs on
any tier.  Backends advertise themselves through
:meth:`XorKernel.is_available` / :meth:`XorKernel.capabilities` and the
registry (:mod:`repro.kernels.registry`) picks one by name or ``auto``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

__all__ = ["XorKernel", "KernelUnavailableError"]


class KernelUnavailableError(RuntimeError):
    """The requested backend cannot run on this host (missing dependency)."""


class XorKernel(ABC):
    """One XOR execution tier.

    Instances are stateless and shared; both methods must be
    deterministic and byte-exact (XOR is associative and commutative, so
    any evaluation order produces identical bytes — backends may tile or
    parallelise freely).
    """

    #: registry name (``numpy``, ``numba``, ...)
    name: str = "abstract"

    # ------------------------------------------------------------ probing
    @classmethod
    def is_available(cls) -> bool:
        """True when the backend can execute on this host."""
        return True

    @classmethod
    def capabilities(cls) -> dict:
        """Describe the tier (JSON-safe; surfaced by ``kernel_info``)."""
        return {"name": cls.name, "available": cls.is_available()}

    # ---------------------------------------------------------- primitives
    @abstractmethod
    def region_xor_reduce(
        self,
        dst: np.ndarray,
        sources: Sequence[np.ndarray],
        init: bool = True,
    ) -> None:
        """XOR-reduce ``sources`` into ``dst`` (all ``(rows, block)`` uint8).

        ``init=True`` overwrites ``dst`` with the reduction of
        ``sources`` (an empty sequence zeroes it); ``init=False``
        accumulates ``dst ^= src`` for every source.  Sources may be
        non-contiguous strided views or broadcast rows; ``dst`` is always
        a writable C-contiguous region and never aliases a source.
        """

    @abstractmethod
    def scatter_xor(self, dst: np.ndarray, rows: np.ndarray, payload: np.ndarray) -> None:
        """Sparse accumulate: ``dst[rows[i]] ^= payload[i]`` for each i.

        ``rows`` contains unique indices (one term contributes at most
        once per destination row), so no read-modify-write collision
        handling is required.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<XorKernel {self.name}>"
